//! End-to-end LLM pipeline tests across models, stages and architectures.

use cimtpu::prelude::*;

fn sim(cfg: TpuConfig) -> Simulator {
    Simulator::new(cfg).expect("preset configs are valid")
}

#[test]
fn every_preset_model_maps_on_every_design() {
    let mut configs = vec![TpuConfig::tpuv4i(), TpuConfig::cim_base()];
    configs.extend(TpuConfig::table4_designs());
    for model in [presets::gpt3_6_7b(), presets::gpt3_30b(), presets::llama2_13b()] {
        let prefill = model.prefill_layer(8, 256).expect("valid");
        let decode = model.decode_layer(8, 512).expect("valid");
        for cfg in &configs {
            let s = sim(cfg.clone());
            let p = s.run(&prefill).expect("prefill maps");
            let d = s.run(&decode).expect("decode maps");
            assert!(p.total_latency().get() > 0.0, "{} on {}", model.name(), cfg.name());
            assert!(d.total_latency().get() > 0.0);
            assert!(p.mxu_energy().get() > 0.0);
        }
    }
}

#[test]
fn decode_cost_grows_with_context() {
    let gpt3 = presets::gpt3_30b();
    let s = sim(TpuConfig::cim_base());
    let mut last = Seconds::ZERO;
    for ctx in [128u64, 512, 1024, 2048, 4096] {
        let rep = s.run(&gpt3.decode_layer(8, ctx).expect("valid")).expect("maps");
        assert!(
            rep.total_latency() >= last,
            "ctx {ctx} should not be cheaper than shorter contexts"
        );
        last = rep.total_latency();
    }
}

#[test]
fn prefill_cost_superlinear_in_sequence_length() {
    // Attention is quadratic in L: doubling L more than doubles layer time.
    let gpt3 = presets::gpt3_30b();
    let s = sim(TpuConfig::tpuv4i());
    let t512 = s
        .run(&gpt3.prefill_layer(8, 512).expect("valid"))
        .expect("maps")
        .total_latency();
    let t1024 = s
        .run(&gpt3.prefill_layer(8, 1024).expect("valid"))
        .expect("maps")
        .total_latency();
    assert!(t1024 > t512 * 2.0, "{} vs {}", t1024.get(), t512.get());
}

#[test]
fn larger_models_cost_more() {
    let s = sim(TpuConfig::cim_base());
    let small = s
        .run(&presets::gpt3_6_7b().decode_layer(8, 1024).expect("valid"))
        .expect("maps");
    let big = s
        .run(&presets::gpt3_30b().decode_layer(8, 1024).expect("valid"))
        .expect("maps");
    assert!(big.total_latency() > small.total_latency());
    assert!(big.mxu_energy() > small.mxu_energy());
    assert!(big.hbm_bytes() > small.hbm_bytes());
}

#[test]
fn decode_is_memory_bound_on_baseline() {
    // The weight-streaming floor: a decode layer can never beat
    // weight-bytes / HBM-bandwidth.
    let gpt3 = presets::gpt3_30b();
    let s = sim(TpuConfig::tpuv4i());
    let rep = s.run(&gpt3.decode_layer(8, 1280).expect("valid")).expect("maps");
    let floor = gpt3.weight_bytes_per_layer().get() as f64 / 614e9;
    assert!(
        rep.total_latency().get() > floor,
        "decode {} must exceed the HBM floor {}",
        rep.total_latency().get(),
        floor
    );
    // ...but not by more than ~4x (it is memory-bound, not compute-bound).
    assert!(rep.total_latency().get() < floor * 4.0);
}

#[test]
fn full_inference_decode_latency_scales_with_output_len() {
    let gpt3 = presets::gpt3_30b();
    let s = sim(TpuConfig::cim_base());
    let short = inference::run_llm(&s, &gpt3, LlmInferenceSpec::new(8, 256, 64).expect("valid"))
        .expect("maps");
    let long = inference::run_llm(&s, &gpt3, LlmInferenceSpec::new(8, 256, 256).expect("valid"))
        .expect("maps");
    let ratio = long.decode_latency / short.decode_latency;
    assert!((3.0..5.5).contains(&ratio), "decode scaling {ratio:.2}");
    // Prefill unchanged.
    assert!((long.prefill_latency / short.prefill_latency - 1.0).abs() < 1e-9);
}

#[test]
fn bf16_runs_and_costs_at_least_int8() {
    let model = TransformerConfig::new("bf16-model", 4, 16, 2048, 8192)
        .expect("valid")
        .with_dtype(DataType::Bf16);
    let int8_model = TransformerConfig::new("int8-model", 4, 16, 2048, 8192).expect("valid");
    let s = sim(TpuConfig::cim_base());
    let bf16 = s.run(&model.decode_layer(8, 512).expect("valid")).expect("maps");
    let int8 = s.run(&int8_model.decode_layer(8, 512).expect("valid")).expect("maps");
    // BF16 weights are 2x the bytes: decode gets strictly slower.
    assert!(bf16.total_latency() > int8.total_latency());
    assert!(bf16.hbm_bytes() > int8.hbm_bytes());
}

#[test]
fn gqa_cuts_decode_attention_cost() {
    // Llama2-70B uses 8 KV heads; compare against the same geometry with
    // full multi-head attention. GQA shrinks KV traffic 8x, so the
    // attention portion of a decode step drops substantially.
    let gqa = presets::llama2_70b();
    let mha = TransformerConfig::new("Llama2-70B-MHA", 80, 64, 8192, 28672)
        .expect("valid geometry");
    let s = sim(TpuConfig::cim_base());
    let ctx = 4096;
    let rep_gqa = s.run(&gqa.decode_layer(8, ctx).expect("valid")).expect("maps");
    let rep_mha = s.run(&mha.decode_layer(8, ctx).expect("valid")).expect("maps");

    let attn_gqa = rep_gqa.latency_in(OpCategory::Attention);
    let attn_mha = rep_mha.latency_in(OpCategory::Attention);
    assert!(
        attn_gqa.get() * 3.0 < attn_mha.get(),
        "GQA attention {} vs MHA {}",
        attn_gqa.get(),
        attn_mha.get()
    );
    // Whole-layer: GQA is faster and streams fewer bytes.
    assert!(rep_gqa.total_latency() < rep_mha.total_latency());
    assert!(rep_gqa.hbm_bytes() < rep_mha.hbm_bytes());
}

#[test]
fn report_serializes_to_json() {
    let s = sim(TpuConfig::design_a());
    let rep = s
        .run(&presets::gpt3_30b().decode_layer(8, 1024).expect("valid"))
        .expect("maps");
    let json = serde_json::to_string(&rep).expect("serializable");
    assert!(json.contains("QKV Gen"));
    let back: Report = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(back.total_latency(), rep.total_latency());
}
