//! Property tests: memoized pricing never changes results.
//!
//! A warmed [`Simulator`] must produce **byte-identical** `Report`s to a
//! freshly constructed one, across every model preset and both MXU kinds
//! (digital systolic and CIM). "Byte-identical" is checked on the serialized
//! JSON, which covers every field of every op row, not just the totals.

use cimtpu::prelude::*;
use proptest::prelude::*;

fn configs() -> Vec<TpuConfig> {
    vec![TpuConfig::tpuv4i(), TpuConfig::cim_base()]
}

fn transformer_presets() -> Vec<TransformerConfig> {
    vec![
        presets::gpt3_6_7b(),
        presets::gpt3_30b(),
        presets::gpt3_175b(),
        presets::llama2_13b(),
        presets::llama2_70b(),
    ]
}

fn report_bytes(r: &Report) -> String {
    serde_json::to_string(r).expect("reports serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decode layers: a simulator warmed on other workloads answers from
    /// its cache and still matches a fresh simulator byte for byte.
    #[test]
    fn warm_and_fresh_simulators_agree_on_decode(
        model_idx in 0usize..5,
        config_idx in 0usize..2,
        batch in 1u64..16,
        ctx in 64u64..4096,
    ) {
        let model = &transformer_presets()[model_idx];
        let cfg = configs()[config_idx].clone();
        let layer = model.decode_layer(batch, ctx).expect("valid layer");

        let warm = Simulator::new(cfg.clone()).expect("valid config");
        // Warm the cache on related workloads first (same weight GEMMs,
        // different attention shapes), then on the layer itself.
        warm.run(&model.decode_layer(batch, ctx + 64).expect("valid"))
            .expect("maps");
        let first = warm.run(&layer).expect("maps");
        let replay = warm.run(&layer).expect("maps");

        let fresh = Simulator::new(cfg).expect("valid config");
        let reference = fresh.run(&layer).expect("maps");

        prop_assert!(warm.cache_stats().hits > 0, "cache never hit");
        prop_assert_eq!(report_bytes(&first), report_bytes(&reference));
        prop_assert_eq!(report_bytes(&replay), report_bytes(&reference));
    }

    /// Prefill layers across every transformer preset and both MXU kinds.
    #[test]
    fn warm_and_fresh_simulators_agree_on_prefill(
        model_idx in 0usize..5,
        config_idx in 0usize..2,
        batch in 1u64..8,
        seq in 128u64..2048,
    ) {
        let model = &transformer_presets()[model_idx];
        let cfg = configs()[config_idx].clone();
        let layer = model.prefill_layer(batch, seq).expect("valid layer");

        let warm = Simulator::new(cfg.clone()).expect("valid config");
        warm.run(&layer).expect("maps");
        let replay = warm.run(&layer).expect("maps");
        let fresh = Simulator::new(cfg).expect("valid config");
        prop_assert_eq!(
            report_bytes(&replay),
            report_bytes(&fresh.run(&layer).expect("maps"))
        );
    }

    /// DiT blocks across the size presets and both MXU kinds.
    #[test]
    fn warm_and_fresh_simulators_agree_on_dit(
        dit_idx in 0usize..3,
        config_idx in 0usize..2,
        batch in 1u64..8,
        res_idx in 0usize..3,
    ) {
        let dit = [presets::dit_xl_2(), presets::dit_l_2(), presets::dit_b_2()][dit_idx].clone();
        let resolution = [256u64, 512, 1024][res_idx];
        let cfg = configs()[config_idx].clone();
        let block = dit.block(batch, resolution).expect("valid block");

        let warm = Simulator::new(cfg.clone()).expect("valid config");
        warm.run(&block).expect("maps");
        let replay = warm.run(&block).expect("maps");
        let fresh = Simulator::new(cfg).expect("valid config");
        prop_assert_eq!(
            report_bytes(&replay),
            report_bytes(&fresh.run(&block).expect("maps"))
        );
    }
}

/// MoE layers exercise the static-weight batched path on both MXU kinds.
#[test]
fn warm_and_fresh_simulators_agree_on_moe() {
    let moe = MoeConfig::mixtral_8x7b_like().expect("valid preset");
    for cfg in configs() {
        for workload in [
            moe.prefill_layer(8, 1024).expect("valid"),
            moe.decode_layer(8, 1280).expect("valid"),
        ] {
            let warm = Simulator::new(cfg.clone()).expect("valid config");
            warm.run(&workload).expect("maps");
            let replay = warm.run(&workload).expect("maps");
            let fresh = Simulator::new(cfg.clone()).expect("valid config");
            assert_eq!(
                report_bytes(&replay),
                report_bytes(&fresh.run(&workload).expect("maps")),
                "{} on {}",
                workload.name(),
                cfg.name()
            );
        }
    }
}

/// Full LLM inference (the Fig. 7 unit of work) is identical with the
/// cache disabled — the benchmark's two measurement modes agree.
#[test]
fn llm_inference_identical_with_cache_disabled() {
    let spec = LlmInferenceSpec::new(4, 128, 32).expect("valid spec");
    let model = presets::gpt3_30b();
    for cfg in configs() {
        let cached = Simulator::new(cfg.clone()).expect("valid config");
        let uncached = Simulator::new(cfg).expect("valid config");
        uncached.mapping_cache().set_enabled(false);
        let a = inference::run_llm(&cached, &model, spec).expect("maps");
        let b = inference::run_llm(&uncached, &model, spec).expect("maps");
        assert_eq!(a, b);
        assert!(cached.cache_stats().hits > 0);
        assert_eq!(uncached.cache_stats().entries, 0);
    }
}
