//! Phase-splitting equivalence properties.
//!
//! The segment structure added to [`Workload`] is bookkeeping only: the
//! flat operator list is untouched, so (a) segment totals must partition
//! the flat totals *exactly* (integer MACs / bytes / op counts), for every
//! model preset, and (b) pricing a workload segment-by-segment through
//! [`ExecutionContext::run_phased`] must agree with the flat
//! [`Simulator::run`] on both MXU kinds.

use cimtpu::models::{MoeConfig, Workload};
use cimtpu::prelude::*;
use proptest::prelude::*;

fn transformer_presets() -> Vec<TransformerConfig> {
    vec![
        presets::gpt3_6_7b(),
        presets::gpt3_30b(),
        presets::gpt3_175b(),
        presets::llama2_13b(),
        presets::llama2_70b(),
    ]
}

/// Segment sums must equal flat totals exactly, and the segments must
/// cover every op exactly once.
fn assert_partition(w: &Workload) {
    let macs: u64 = w.segments().map(|s| s.total_macs()).sum();
    assert_eq!(macs, w.total_macs(), "{}: MACs", w.name());
    let bytes: u64 = w.segments().map(|s| s.main_memory_bytes().get()).sum();
    assert_eq!(bytes, w.main_memory_bytes().get(), "{}: bytes", w.name());
    let ops: usize = w.segments().map(|s| s.ops().len()).sum();
    assert_eq!(ops, w.ops().len(), "{}: op coverage", w.name());
    let executions: u64 = w.segments().map(|s| s.op_executions()).sum();
    let flat: u64 = w.ops().iter().map(|o| o.count()).sum();
    assert_eq!(executions, flat, "{}: op executions", w.name());
    assert!(!w.phases().is_empty(), "{}: untagged workload", w.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every transformer preset, prefill and decode, arbitrary shapes.
    #[test]
    fn segments_partition_transformer_layers(
        model_idx in 0usize..5,
        batch in 1u64..16,
        seq in 16u64..2048,
    ) {
        let model = &transformer_presets()[model_idx];
        assert_partition(&model.prefill_layer(batch, seq).expect("valid"));
        assert_partition(&model.decode_layer(batch, seq).expect("valid"));
    }

    /// Full models (embedding + layers + head) and MoE layers.
    #[test]
    fn segments_partition_full_and_moe_workloads(
        batch in 1u64..8,
        seq in 16u64..512,
    ) {
        let llm = presets::gpt3_30b_full();
        assert_partition(&llm.full_prefill(batch, seq).expect("valid"));
        assert_partition(&llm.full_decode_step(batch, seq).expect("valid"));
        let moe = MoeConfig::mixtral_8x7b_like().expect("valid");
        assert_partition(&moe.prefill_layer(batch, seq).expect("valid"));
        assert_partition(&moe.decode_layer(batch, seq).expect("valid"));
    }

    /// DiT blocks and full forward passes.
    #[test]
    fn segments_partition_dit_workloads(
        batch in 1u64..8,
        res_idx in 0usize..2,
    ) {
        let resolution = [256u64, 512][res_idx];
        let dit = presets::dit_xl_2();
        assert_partition(&dit.block(batch, resolution).expect("valid"));
        assert_partition(&dit.full_forward(batch, resolution).expect("valid"));
    }

    /// Pricing segment-by-segment agrees with the flat run on both MXU
    /// kinds: identical integer traffic, float totals equal up to
    /// summation associativity.
    #[test]
    fn phased_pricing_matches_flat_run(
        config_idx in 0usize..2,
        batch in 1u64..8,
        ctx in 64u64..2048,
    ) {
        let config = [TpuConfig::tpuv4i(), TpuConfig::cim_base()][config_idx].clone();
        let sim = Simulator::new(config).expect("valid config");
        for workload in [
            presets::gpt3_30b().decode_layer(batch, ctx).expect("valid"),
            presets::dit_xl_2().block(batch, 256).expect("valid"),
        ] {
            let flat = sim.run(&workload).expect("maps");
            let phased = sim.run_phased(&workload).expect("maps");
            let rel = (phased.total_latency().get() - flat.total_latency().get()).abs()
                / flat.total_latency().get();
            prop_assert!(rel < 1e-12, "{}: latency rel err {rel:e}", workload.name());
            let rel = (phased.mxu_energy().get() - flat.mxu_energy().get()).abs()
                / flat.mxu_energy().get();
            prop_assert!(rel < 1e-12, "{}: energy rel err {rel:e}", workload.name());
            let seg_bytes: u64 =
                phased.segments.iter().map(|s| s.cost.hbm_bytes.get()).sum();
            prop_assert_eq!(seg_bytes, flat.hbm_bytes().get());
        }
    }
}

/// Non-property sanity check: the phase vocabulary is what the serving
/// layer schedules on.
#[test]
fn workloads_expose_expected_phases() {
    use cimtpu::models::Phase;
    let prefill = presets::gpt3_30b().prefill_layer(8, 128).unwrap();
    assert_eq!(prefill.phases(), vec![Phase::Prefill]);
    let decode = presets::gpt3_30b().decode_layer(8, 128).unwrap();
    assert_eq!(decode.phases(), vec![Phase::Decode]);
    let block = presets::dit_xl_2().block(8, 256).unwrap();
    assert_eq!(block.phases(), vec![Phase::Conditioning, Phase::Prefill]);
    let full = presets::gpt3_30b_full().full_prefill(8, 128).unwrap();
    assert!(full.phases().contains(&Phase::PrePost));
}
