//! Multi-TPU integration tests (Fig. 8 behaviours).

use cimtpu::prelude::*;

#[test]
fn fig8_scaling_and_ordering() {
    let spec = LlmInferenceSpec::new(8, 512, 128).expect("valid");
    let gpt3 = presets::gpt3_30b();
    for cfg in [TpuConfig::tpuv4i(), TpuConfig::design_a(), TpuConfig::design_b()] {
        let mut last = 0.0;
        for devices in [1u64, 2, 4] {
            let r = MultiTpu::new(cfg.clone(), devices)
                .expect("valid cluster")
                .llm_pipeline_throughput(&gpt3, spec)
                .expect("maps");
            assert!(r.throughput > last, "{} @ {devices}", cfg.name());
            last = r.throughput;
        }
    }
}

#[test]
fn design_a_llm_advantage_holds_at_every_scale() {
    let spec = LlmInferenceSpec::paper_fig7(8).expect("valid");
    let gpt3 = presets::gpt3_30b();
    for devices in [1u64, 2, 4] {
        let base = MultiTpu::new(TpuConfig::tpuv4i(), devices)
            .expect("valid")
            .llm_pipeline_throughput(&gpt3, spec)
            .expect("maps");
        let a = MultiTpu::new(TpuConfig::design_a(), devices)
            .expect("valid")
            .llm_pipeline_throughput(&gpt3, spec)
            .expect("maps");
        let speedup = a.throughput / base.throughput;
        assert!(
            (1.05..1.6).contains(&speedup),
            "{devices} TPUs: speedup {speedup:.2} (paper avg: 1.28)"
        );
        let energy = base.llm_energy_ratio(&a);
        assert!(energy > 10.0, "{devices} TPUs: energy ratio {energy:.1} (paper: 24.2)");
    }
}

trait EnergyRatio {
    fn llm_energy_ratio(&self, other: &Self) -> f64;
}

impl EnergyRatio for cimtpu::multi::ThroughputResult {
    fn llm_energy_ratio(&self, other: &Self) -> f64 {
        self.mxu_energy_per_unit.get() / other.mxu_energy_per_unit.get()
    }
}

#[test]
fn tensor_parallel_decode_scales_down_latency() {
    let gpt3 = presets::gpt3_30b();
    let mut last = f64::MAX;
    for devices in [1u64, 2, 4] {
        let t = MultiTpu::new(TpuConfig::cim_base(), devices)
            .expect("valid")
            .llm_tensor_parallel_decode_layer(&gpt3, 8, 1280)
            .expect("maps")
            .get();
        assert!(t < last, "{devices}-way TP regressed: {t}");
        last = t;
    }
}

#[test]
fn ring_collectives_show_up_in_tensor_parallel_costs() {
    // With an artificially slow ICI link, tensor parallelism degrades.
    let gpt3 = presets::gpt3_30b();
    let fast = MultiTpu::new(TpuConfig::cim_base(), 4)
        .expect("valid")
        .llm_tensor_parallel_decode_layer(&gpt3, 8, 1280)
        .expect("maps");
    // Simulate a degraded link by comparing against the ring-collective
    // model directly: all-reduce time must be non-zero and additive.
    let ring = RingTopology::new(4, 2, Bandwidth::from_gb_per_s(100.0)).expect("valid");
    let comm = ring.all_reduce_time(Bytes::new(8 * 7168)) * 2.0;
    assert!(comm.get() > 0.0);
    assert!(fast.get() > comm.get(), "layer must include the collectives");
}

#[test]
fn dit_pipeline_energy_per_image_constant_across_devices() {
    let dit = presets::dit_xl_2();
    let e: Vec<f64> = [1u64, 2, 4]
        .iter()
        .map(|&d| {
            MultiTpu::new(TpuConfig::design_b(), d)
                .expect("valid")
                .dit_pipeline_throughput(&dit, 8, 256, 50)
                .expect("maps")
                .mxu_energy_per_unit
                .get()
        })
        .collect();
    assert!((e[0] - e[1]).abs() / e[0] < 1e-9);
    assert!((e[0] - e[2]).abs() / e[0] < 1e-9);
}
