//! End-to-end DiT pipeline tests.

use cimtpu::prelude::*;

fn sim(cfg: TpuConfig) -> Simulator {
    Simulator::new(cfg).expect("preset configs are valid")
}

#[test]
fn dit_variants_map_on_all_designs() {
    let mut configs = vec![TpuConfig::tpuv4i()];
    configs.extend(TpuConfig::table4_designs());
    for dit in [presets::dit_b_2(), presets::dit_l_2(), presets::dit_xl_2()] {
        let block = dit.block(8, 256).expect("valid");
        for cfg in &configs {
            let rep = sim(cfg.clone()).run(&block).expect("maps");
            assert!(rep.total_latency().get() > 0.0);
        }
    }
}

#[test]
fn higher_resolution_costs_quadratically_in_attention() {
    // 512^2 has 4x the tokens of 256^2: attention (quadratic) grows ~16x,
    // GEMMs ~4x, so the block grows by somewhere in between.
    let dit = presets::dit_xl_2();
    let s = sim(TpuConfig::tpuv4i());
    let low = s.run(&dit.block(8, 256).expect("valid")).expect("maps");
    let high = s.run(&dit.block(8, 512).expect("valid")).expect("maps");
    let ratio = high.total_latency() / low.total_latency();
    assert!((4.0..16.0).contains(&ratio), "block scaling {ratio:.2}");

    let attn_ratio =
        high.latency_in(OpCategory::Attention) / low.latency_in(OpCategory::Attention);
    let gemm_ratio = high.latency_in(OpCategory::Ffn1) / low.latency_in(OpCategory::Ffn1);
    assert!(attn_ratio > gemm_ratio, "attention must grow faster than FFN");
}

#[test]
fn bigger_dit_variants_cost_more() {
    let s = sim(TpuConfig::design_b());
    let mut last = Seconds::ZERO;
    for dit in [presets::dit_b_2(), presets::dit_l_2(), presets::dit_xl_2()] {
        let r = inference::run_dit(&s, &dit, 8, 256).expect("maps");
        assert!(r.total_latency > last, "{} regressed", dit.transformer().name());
        last = r.total_latency;
    }
}

#[test]
fn full_forward_matches_block_times_blocks_plus_prepost() {
    let dit = presets::dit_xl_2();
    let s = sim(TpuConfig::tpuv4i());
    let full = s.run(&dit.full_forward(8, 512).expect("valid")).expect("maps");
    let block = s.run(&dit.block(8, 512).expect("valid")).expect("maps");
    let blocks_total = block.total_latency() * dit.blocks() as f64;
    // Full forward = pre + 28 blocks + post; blocks dominate (Fig. 2d).
    assert!(full.total_latency() > blocks_total);
    let frac = blocks_total / full.total_latency();
    assert!(frac > 0.95, "blocks are only {frac:.3} of full forward");
}

#[test]
fn conditioning_is_minor_but_present() {
    let dit = presets::dit_xl_2();
    let rep = sim(TpuConfig::tpuv4i())
        .run(&dit.block(8, 512).expect("valid"))
        .expect("maps");
    let frac = rep.latency_in(OpCategory::Conditioning) / rep.total_latency();
    assert!(frac > 0.0 && frac < 0.2, "conditioning fraction {frac:.3}");
}

#[test]
fn design_b_throughput_beats_design_a_on_dit() {
    let dit = presets::dit_xl_2();
    let a = inference::run_dit(&sim(TpuConfig::design_a()), &dit, 8, 512).expect("maps");
    let b = inference::run_dit(&sim(TpuConfig::design_b()), &dit, 8, 512).expect("maps");
    assert!(b.images_per_second(50) > a.images_per_second(50));
}
