//! Cross-substrate functional validation: the CIM bit-serial datapath, the
//! systolic cycle-level simulator, and a plain integer reference must all
//! compute the same matrices.

use cimtpu::cim::bitserial::BitSerialMacUnit;
use cimtpu::cim::fp::{Bf16, FpCimPipeline};
use cimtpu::systolic::cycle_sim::{matmul_reference, CycleSim};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Both hardware datapaths compute the same random matrices.
#[test]
fn cim_and_systolic_agree_on_random_matrices() {
    let mut rng = StdRng::seed_from_u64(0xC1A0);
    for _ in 0..25 {
        let m = rng.gen_range(1..=12usize);
        let k = rng.gen_range(1..=16usize);
        let n = rng.gen_range(1..=16usize);
        let a: Vec<Vec<i32>> = (0..m)
            .map(|_| (0..k).map(|_| i32::from(rng.gen_range(-128i8..=127))).collect())
            .collect();
        let w: Vec<Vec<i32>> = (0..k)
            .map(|_| (0..n).map(|_| i32::from(rng.gen_range(-128i8..=127))).collect())
            .collect();

        // Systolic cycle-level result.
        let systolic = CycleSim::new(k, n)
            .expect("valid dims")
            .run(&a, &w)
            .expect("valid operands");

        // CIM bit-serial result, row by row of the activation matrix.
        let unit = BitSerialMacUnit::new(128);
        let w_i8: Vec<Vec<i8>> = w
            .iter()
            .map(|row| row.iter().map(|&x| x as i8).collect())
            .collect();
        let cim: Vec<Vec<i32>> = a
            .iter()
            .map(|row| {
                let row_i8: Vec<i8> = row.iter().map(|&x| x as i8).collect();
                unit.matvec(&row_i8, &w_i8).expect("valid shapes")
            })
            .collect();

        let reference = matmul_reference(&a, &w);
        assert_eq!(systolic.result(), reference.as_slice(), "systolic {m}x{k}x{n}");
        assert_eq!(cim, reference, "cim {m}x{k}x{n}");
    }
}

/// The FP-CIM pipeline tracks an f64 GEMV reference within BF16 error.
#[test]
fn fp_pipeline_tracks_reference_on_gemv() {
    let mut rng = StdRng::seed_from_u64(0xBF16);
    let pipeline = FpCimPipeline::default();
    for _ in 0..20 {
        let k = rng.gen_range(1..=128usize);
        let a: Vec<Bf16> = (0..k).map(|_| Bf16::from_f32(rng.gen_range(-8.0..8.0))).collect();
        let w: Vec<Bf16> = (0..k).map(|_| Bf16::from_f32(rng.gen_range(-8.0..8.0))).collect();
        let got = f64::from(pipeline.dot(&a, &w).expect("finite operands").to_f32());
        let want = FpCimPipeline::dot_reference(&a, &w);
        let scale: f64 = a
            .iter()
            .zip(&w)
            .map(|(x, y)| (f64::from(x.to_f32()) * f64::from(y.to_f32())).abs())
            .sum::<f64>()
            .max(1e-3);
        assert!(
            (got - want).abs() <= scale * 0.02,
            "k={k}: got {got}, want {want}"
        );
    }
}

/// Narrower aligners lose more small products — the error is monotone in
/// the aligner width.
#[test]
fn aligner_width_controls_error() {
    let k = 64;
    let mut rng = StdRng::seed_from_u64(7);
    let a: Vec<Bf16> = (0..k)
        .map(|_| Bf16::from_f32(rng.gen_range(-100.0..100.0)))
        .collect();
    let w: Vec<Bf16> = (0..k)
        .map(|_| Bf16::from_f32(rng.gen_range(-100.0..100.0)))
        .collect();
    let want = FpCimPipeline::dot_reference(&a, &w);
    let err = |bits: u32| -> f64 {
        let p = FpCimPipeline::new(bits).expect("valid width");
        (f64::from(p.dot(&a, &w).expect("finite").to_f32()) - want).abs()
    };
    // A 32-bit aligner is at least as accurate as an 8-bit one.
    assert!(err(32) <= err(8) + 1e-9, "wide {} vs narrow {}", err(32), err(8));
}

/// The engine-level timing models and the functional datapaths agree on
/// *what* is computed: MAC counts match the shape arithmetic.
#[test]
fn timing_macs_match_functional_work() {
    use cimtpu::prelude::*;
    let shape = GemmShape::new(7, 96, 33).expect("valid");
    // 7*96*33 MACs, exactly what the functional test above would execute.
    assert_eq!(shape.macs(), 7 * 96 * 33);
    let engine = MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid");
    // The engine never reports a utilization implying more work than macs.
    let cycles = engine.gemm_cycles(shape, DataType::Int8);
    let implied = cycles.get() * engine.peak_macs_per_cycle();
    assert!(implied >= shape.macs());
}
