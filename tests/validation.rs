//! Failure injection: every invalid input must produce a clean error (not
//! a panic, not a silently wrong number).

use cimtpu::cim::{CimCoreConfig, CimMxuConfig};
use cimtpu::prelude::*;
use cimtpu::systolic::{Dataflow, SystolicConfig};

#[test]
fn invalid_shapes_error() {
    assert!(GemmShape::new(0, 1, 1).is_err());
    assert!(GemmShape::gemv(0, 1).is_err());
    assert!(GemmShape::new(1, 1, 1).unwrap().with_m(0).is_err());
}

#[test]
fn invalid_model_geometries_error() {
    assert!(TransformerConfig::new("x", 0, 1, 64, 64).is_err());
    assert!(TransformerConfig::new("x", 1, 0, 64, 64).is_err());
    assert!(TransformerConfig::new("x", 1, 3, 64, 64).is_err()); // 64 % 3
    assert!(TransformerConfig::new("x", 1, 4, 0, 64).is_err());
    let ok = TransformerConfig::new("x", 1, 4, 64, 64).unwrap();
    assert!(ok.prefill_layer(0, 8).is_err());
    assert!(ok.prefill_layer(8, 0).is_err());
    assert!(ok.decode_layer(0, 8).is_err());
    assert!(ok.decode_layer(8, 0).is_err());
}

#[test]
fn invalid_inference_specs_error() {
    assert!(LlmInferenceSpec::new(0, 1, 1).is_err());
    assert!(LlmInferenceSpec::new(1, 0, 1).is_err());
    assert!(LlmInferenceSpec::new(1, 1, 0).is_err());
}

#[test]
fn invalid_hardware_configs_error() {
    // Systolic geometry.
    assert!(SystolicConfig::new(0, 128, Dataflow::WeightStationary)
        .validate()
        .is_err());
    // CIM geometry.
    assert!(CimMxuConfig::with_grid(0, 8).validate().is_err());
    assert!(CimMxuConfig::paper_default()
        .with_core(CimCoreConfig::paper_default().with_bit_serial_bits(3))
        .validate()
        .is_err());
    assert!(CimMxuConfig::paper_default()
        .with_weight_ingest_bytes_per_cycle(0)
        .validate()
        .is_err());
    // Chip level.
    let bad = TpuConfig::tpuv4i().with_mxu(0, *TpuConfig::tpuv4i().mxu());
    assert!(Simulator::new(bad).is_err());
    let bad_cim = TpuConfig::tpuv4i().with_mxu(4, MxuKind::Cim(CimMxuConfig::with_grid(0, 1)));
    assert!(Simulator::new(bad_cim).is_err());
}

#[test]
fn unknown_presets_error() {
    assert!(presets::transformer_by_name("bert-large").is_err());
    assert!(presets::dit_by_name("unet-v1").is_err());
    let msg = presets::transformer_by_name("bert-large")
        .unwrap_err()
        .to_string();
    assert!(msg.contains("unknown preset"), "{msg}");
}

#[test]
fn invalid_moe_and_parallelism_error() {
    let t = TransformerConfig::new("x", 2, 4, 64, 256).unwrap();
    assert!(MoeConfig::new(t, 4, 5).is_err());
    // 56 heads don't divide 5 ways.
    assert!(cimtpu::multi::tensor_parallel::decode_layer_shard(
        &presets::gpt3_30b(),
        8,
        128,
        5
    )
    .is_err());
    assert!(MultiTpu::new(TpuConfig::tpuv4i(), 0).is_err());
}

#[test]
fn invalid_dit_resolutions_error() {
    let dit = presets::dit_xl_2();
    assert!(dit.tokens_for_resolution(100).is_err()); // not /16
    assert!(dit.block(0, 512).is_err());
    assert!(dit.block(8, 8).is_err());
}

#[test]
fn errors_are_displayable_and_typed() {
    let err = GemmShape::new(0, 1, 1).unwrap_err();
    assert!(matches!(err, Error::InvalidShape(_)));
    assert!(!err.to_string().is_empty());
    let err = presets::transformer_by_name("nope").unwrap_err();
    assert!(matches!(err, Error::UnknownPreset(_)));
}
