//! Property-based tests on the simulator's core invariants.

use cimtpu::prelude::*;
use proptest::prelude::*;

fn engines() -> (MatrixEngine, MatrixEngine) {
    (
        MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu()).expect("valid"),
        MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Neither engine ever reports more work per cycle than its peak.
    #[test]
    fn engines_never_exceed_peak(
        m in 1u64..4096,
        k in 1u64..8192,
        n in 1u64..8192,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        for engine in [&engines().0, &engines().1] {
            let cycles = engine.gemm_cycles(shape, DataType::Int8);
            prop_assert!(cycles.get() > 0);
            let implied_macs = cycles.get().saturating_mul(engine.peak_macs_per_cycle());
            prop_assert!(
                implied_macs >= shape.macs(),
                "{shape}: {} cycles implies less work than {} MACs",
                cycles.get(),
                shape.macs()
            );
        }
    }

    /// Engine latency is monotone in every GEMM dimension.
    #[test]
    fn engine_latency_monotone(
        m in 1u64..2048,
        k in 1u64..4096,
        n in 1u64..4096,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        let bigger = GemmShape::new(m + 64, k, n).expect("non-zero dims");
        for engine in [&engines().0, &engines().1] {
            prop_assert!(
                engine.gemm_cycles(bigger, DataType::Int8)
                    >= engine.gemm_cycles(shape, DataType::Int8)
            );
        }
    }

    /// Dynamic energy is positive and grows with MAC count.
    #[test]
    fn dynamic_energy_positive_and_monotone(
        m in 1u64..1024,
        k in 64u64..4096,
        n in 64u64..4096,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        let bigger = GemmShape::new(m * 2, k, n).expect("non-zero dims");
        for engine in [&engines().0, &engines().1] {
            let e = engine.gemm_dynamic_energy(shape, DataType::Int8);
            let e2 = engine.gemm_dynamic_energy(bigger, DataType::Int8);
            prop_assert!(e.get() > 0.0);
            prop_assert!(e2 > e);
        }
    }

    /// Any random decode workload maps and produces consistent totals on
    /// every Table IV design.
    #[test]
    fn random_decode_layers_always_map(
        batch in 1u64..32,
        ctx in 1u64..4096,
        layers_idx in 0usize..3,
    ) {
        let model = [presets::gpt3_6_7b(), presets::gpt3_30b(), presets::llama2_13b()]
            [layers_idx].clone();
        let layer = model.decode_layer(batch, ctx).expect("valid");
        let sim = Simulator::new(TpuConfig::design_a()).expect("valid config");
        let rep = sim.run(&layer).expect("maps");
        // Totals are the sum of the parts.
        let sum: Seconds = rep.ops().iter().map(|o| o.latency).sum();
        prop_assert!((sum.get() - rep.total_latency().get()).abs() <= 1e-12 * sum.get().max(1.0));
        let cat_sum: Seconds = rep
            .by_category()
            .iter()
            .map(|c| c.latency)
            .sum();
        prop_assert!((cat_sum.get() - rep.total_latency().get()).abs() <= 1e-9 * sum.get().max(1.0));
    }

    /// split_n never loses or duplicates output columns, whatever the split.
    #[test]
    fn gemm_split_conserves_columns(
        m in 1u64..64,
        k in 1u64..512,
        n in 1u64..4096,
        parts in 1u64..16,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        let split = shape.split_n(parts);
        prop_assert_eq!(split.iter().map(|s| s.n()).sum::<u64>(), n);
        prop_assert!(split.iter().all(|s| s.m() == m && s.k() == k));
    }

    /// The mapper always returns schedules no faster than both roofline
    /// bounds (compute at peak; weights over HBM).
    #[test]
    fn mapper_respects_rooflines(
        m in 1u64..2048,
        k in 128u64..8192,
        n in 128u64..8192,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        let sim = Simulator::new(TpuConfig::tpuv4i()).expect("valid config");
        let w = Workload::new("prop").with(OpInstance::new(
            "g",
            OpCategory::Other,
            Op::Gemm { shape, dtype: DataType::Int8 },
        ));
        let rep = sim.run(&w).expect("maps");
        let peak = 65536.0 * 1.05e9; // 4 MXUs * 16384 MACs at 1.05 GHz
        let compute_floor = shape.macs() as f64 / peak;
        let hbm_floor = shape.weight_bytes(DataType::Int8).get() as f64 / 614e9;
        let latency = rep.total_latency().get();
        prop_assert!(
            latency >= compute_floor.max(hbm_floor) * 0.999,
            "{shape}: {latency} under floor {}",
            compute_floor.max(hbm_floor)
        );
    }

    /// The batched-matmul path never implies more work per cycle than peak,
    /// for both dynamic (attention) and static (MoE expert) operands.
    #[test]
    fn batched_path_never_exceeds_peak(
        batch in 1u64..512,
        m in 1u64..1024,
        k in 1u64..4096,
        n in 1u64..4096,
        static_weights in proptest::bool::ANY,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        for engine in [
            MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu()).expect("valid"),
            MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid"),
        ] {
            let cycles = engine.batched_gemm_cycles_with(
                batch, shape, DataType::Int8, static_weights,
            );
            let implied = cycles.get().saturating_mul(engine.peak_macs_per_cycle());
            prop_assert!(
                implied >= batch.saturating_mul(shape.macs()),
                "batch {batch} x {shape}: {} cycles under-counts work",
                cycles.get()
            );
        }
    }

    /// Static-weight batches are never slower than dynamic ones on the
    /// systolic array (pre-staging only helps), and identical on CIM.
    #[test]
    fn static_weights_only_help(
        batch in 1u64..64,
        m in 1u64..512,
        k in 64u64..2048,
        n in 64u64..2048,
    ) {
        let shape = GemmShape::new(m, k, n).expect("non-zero dims");
        let digital = MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu()).expect("valid");
        let cim = MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid");
        prop_assert!(
            digital.batched_gemm_cycles_with(batch, shape, DataType::Int8, true)
                <= digital.batched_gemm_cycles_with(batch, shape, DataType::Int8, false)
        );
        prop_assert_eq!(
            cim.batched_gemm_cycles_with(batch, shape, DataType::Int8, true),
            cim.batched_gemm_cycles_with(batch, shape, DataType::Int8, false)
        );
    }

    /// MoE layers conserve MACs: expert scatter changes locality, not work.
    #[test]
    fn moe_macs_scale_with_top_k(batch in 1u64..32, ctx in 64u64..2048) {
        let moe = MoeConfig::mixtral_8x7b_like().expect("valid preset");
        let layer = moe.decode_layer(batch, ctx).expect("valid");
        // FFN MACs = batch * top_k * 2 * d * d_ff (up to ceil rounding).
        let t = moe.transformer();
        let ffn_macs: u64 = layer
            .ops()
            .iter()
            .filter(|o| o.name().starts_with("Expert FFN"))
            .map(|o| o.total_macs())
            .sum();
        let ideal = batch * moe.top_k() * 2 * t.d_model() * t.d_ff();
        prop_assert!(ffn_macs >= ideal);
        prop_assert!(ffn_macs <= ideal * 2, "ceil rounding should stay bounded");
    }

    /// Ring all-reduce time grows with payload and device count.
    #[test]
    fn all_reduce_monotone(bytes in 1u64..(1 << 30), devices in 2u64..16) {
        let ring = RingTopology::new(devices, 2, Bandwidth::from_gb_per_s(100.0))
            .expect("valid ring");
        let t1 = ring.all_reduce_time(Bytes::new(bytes));
        let t2 = ring.all_reduce_time(Bytes::new(bytes * 2));
        prop_assert!(t2 >= t1);
        let bigger = RingTopology::new(devices + 1, 2, Bandwidth::from_gb_per_s(100.0))
            .expect("valid ring");
        prop_assert!(bigger.all_reduce_time(Bytes::new(bytes)) >= t1);
    }
}
