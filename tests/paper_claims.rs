//! The paper's headline claims, asserted end-to-end against the simulator.
//!
//! Bands are intentionally loose (our substrate is a calibrated analytical
//! simulator, not the authors' testbed): we assert *who wins, by roughly
//! what factor, and where the crossovers fall* — see EXPERIMENTS.md for
//! the exact paper-vs-measured numbers.

use cimtpu::prelude::*;

fn sim(cfg: TpuConfig) -> Simulator {
    Simulator::new(cfg).expect("preset configs are valid")
}

/// Abstract: "Up to 44.2% ... performance improvement for large language
/// model ... inference".
#[test]
fn headline_llm_improvement() {
    let spec = LlmInferenceSpec::paper_fig7(8).expect("valid spec");
    let gpt3 = presets::gpt3_30b();
    let base = inference::run_llm(&sim(TpuConfig::tpuv4i()), &gpt3, spec).expect("mappable");
    let mut best = f64::MAX;
    for cfg in TpuConfig::table4_designs() {
        let r = inference::run_llm(&sim(cfg), &gpt3, spec).expect("mappable");
        best = best.min(r.total_latency() / base.total_latency());
    }
    let improvement = 1.0 - best;
    assert!(
        (0.25..0.55).contains(&improvement),
        "best LLM improvement {improvement:.3} (paper: 0.442)"
    );
}

/// Abstract: "and 33.8% performance improvement for ... diffusion
/// transformer inference".
#[test]
fn headline_dit_improvement() {
    let dit = presets::dit_xl_2();
    let base = inference::run_dit(&sim(TpuConfig::tpuv4i()), &dit, 8, 512).expect("mappable");
    let mut best = f64::MAX;
    for cfg in TpuConfig::table4_designs() {
        let r = inference::run_dit(&sim(cfg), &dit, 8, 512).expect("mappable");
        best = best.min(r.total_latency / base.total_latency);
    }
    let improvement = 1.0 - best;
    assert!(
        (0.25..0.55).contains(&improvement),
        "best DiT improvement {improvement:.3} (paper: 0.338)"
    );
}

/// Abstract: "27.3x reduction in MXU energy consumption can be achieved".
#[test]
fn headline_energy_reduction() {
    let spec = LlmInferenceSpec::paper_fig7(8).expect("valid spec");
    let gpt3 = presets::gpt3_30b();
    let base = inference::run_llm(&sim(TpuConfig::tpuv4i()), &gpt3, spec).expect("mappable");
    let mut best = 0.0f64;
    for cfg in TpuConfig::table4_designs() {
        let r = inference::run_llm(&sim(cfg), &gpt3, spec).expect("mappable");
        best = best.max(base.total_mxu_energy().get() / r.total_mxu_energy().get());
    }
    assert!(
        best > 10.0,
        "max MXU energy reduction {best:.1}x (paper: 27.3x)"
    );
    // The 2x(8x8) config specifically should be near the maximum.
    let small = inference::run_llm(&sim(TpuConfig::cim_variant(2, 8, 8)), &gpt3, spec)
        .expect("mappable");
    let small_red = base.total_mxu_energy().get() / small.total_mxu_energy().get();
    assert!(
        small_red / best > 0.8,
        "2x(8x8) should be near-best: {small_red:.1}x vs {best:.1}x"
    );
}

/// Table II: "9.43x and 2.02x better than digital MXU while maintaining the
/// same MACs per cycle throughput" and Sec. IV: "the same peak performance
/// as the baseline MXU with only 50% area".
#[test]
fn table2_and_area_claims() {
    let digital = MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu()).expect("valid");
    let cim = MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid");
    assert_eq!(digital.peak_macs_per_cycle(), cim.peak_macs_per_cycle());
    let area_ratio = cim.area().as_mm2() / digital.area().as_mm2();
    assert!((0.45..0.55).contains(&area_ratio), "area ratio {area_ratio:.3}");

    // Dynamic MAC-energy ratio ~9.4x.
    let shape = GemmShape::new(1 << 14, 2048, 2048).expect("valid");
    let e_ratio = digital.gemm_dynamic_energy(shape, DataType::Int8).get()
        / cim.gemm_dynamic_energy(shape, DataType::Int8).get();
    assert!((6.0..12.0).contains(&e_ratio), "dynamic energy ratio {e_ratio:.2}");
}

/// Fig. 6 LLM decoding: "CIM TPU accelerates these GEMV layers by 72.7%,
/// leading to a notable 29.9% inference latency reduction" and "13.4x less
/// energy than digital MXU".
#[test]
fn fig6_decode_claims() {
    let gpt3 = presets::gpt3_30b();
    let layer = gpt3.decode_layer(8, 1280).expect("valid");
    let b = sim(TpuConfig::tpuv4i()).run(&layer).expect("mappable");
    let c = sim(TpuConfig::cim_base()).run(&layer).expect("mappable");

    // Attention (the GEMV layers) speeds up dramatically.
    let attn_speedup = 1.0
        - c.latency_in(OpCategory::Attention) / b.latency_in(OpCategory::Attention);
    assert!(
        (0.4..0.9).contains(&attn_speedup),
        "attention GEMV speedup {attn_speedup:.3} (paper: 0.727)"
    );
    // Whole-layer latency reduction ~30%.
    let layer_reduction = 1.0 - c.total_latency() / b.total_latency();
    assert!(
        (0.15..0.45).contains(&layer_reduction),
        "decode reduction {layer_reduction:.3} (paper: 0.299)"
    );
    // Energy about an order of magnitude.
    let e = c.mxu_energy_reduction_vs(&b);
    assert!((9.0..22.0).contains(&e), "decode energy {e:.1}x (paper: 13.4x)");
}

/// Fig. 6 LLM prefilling: "our CIM-MXU will not bring inference latency
/// improvement. However ... 9.21x less energy consumption".
#[test]
fn fig6_prefill_claims() {
    let gpt3 = presets::gpt3_30b();
    let layer = gpt3.prefill_layer(8, 1024).expect("valid");
    let b = sim(TpuConfig::tpuv4i()).run(&layer).expect("mappable");
    let c = sim(TpuConfig::cim_base()).run(&layer).expect("mappable");
    let delta = (c.total_latency() / b.total_latency() - 1.0).abs();
    assert!(delta < 0.08, "prefill latency delta {delta:.3} (paper: +2.43%)");
    let e = c.mxu_energy_reduction_vs(&b);
    assert!((6.0..13.0).contains(&e), "prefill energy {e:.1}x (paper: 9.21x)");

    // "these layers take up 84.9% of TPU inference latency" — GEMM
    // categories dominate the baseline prefill.
    let gemm_frac = [
        OpCategory::QkvGen,
        OpCategory::Projection,
        OpCategory::Ffn1,
        OpCategory::Ffn2,
    ]
    .iter()
    .map(|&cat| b.latency_in(cat) / b.total_latency())
    .sum::<f64>();
    assert!((0.75..0.95).contains(&gemm_frac), "GEMM fraction {gemm_frac:.3}");
}

/// Fig. 6 DiT: "a 6.67% latency and 10.4x energy reduction" and "Softmax
/// computation ... becoming the computation bottleneck".
#[test]
fn fig6_dit_claims() {
    let dit = presets::dit_xl_2();
    let block = dit.block(8, 512).expect("valid");
    let b = sim(TpuConfig::tpuv4i()).run(&block).expect("mappable");
    let c = sim(TpuConfig::cim_base()).run(&block).expect("mappable");
    // CIM no slower, and an order of magnitude more efficient.
    assert!(c.total_latency() <= b.total_latency() * 1.01);
    let e = c.mxu_energy_reduction_vs(&b);
    assert!((6.0..15.0).contains(&e), "DiT energy {e:.1}x (paper: 10.4x)");

    // Softmax is a major bottleneck in the baseline block (paper: 36.9%).
    let softmax: Seconds = b
        .ops()
        .iter()
        .filter(|o| o.name == "Softmax")
        .map(|o| o.latency)
        .sum();
    let frac = softmax / b.total_latency();
    assert!((0.2..0.5).contains(&frac), "softmax fraction {frac:.3}");
}

/// Sec. V-A: "although the 8 CIM-MXU configuration with 16x16 CIM cores has
/// 2x peak performance compared to ... 16x8 ..., only 2.5% performance
/// improvement is achieved" (memory-bound decoding saturates).
#[test]
fn fig7_diminishing_returns() {
    let spec = LlmInferenceSpec::paper_fig7(8).expect("valid");
    let gpt3 = presets::gpt3_30b();
    let wide = inference::run_llm(&sim(TpuConfig::cim_variant(8, 16, 8)), &gpt3, spec)
        .expect("mappable");
    let big = inference::run_llm(&sim(TpuConfig::cim_variant(8, 16, 16)), &gpt3, spec)
        .expect("mappable");
    let marginal = 1.0 - big.total_latency() / wide.total_latency();
    assert!(
        (0.0..0.08).contains(&marginal),
        "16x16 marginal gain {marginal:.3} (paper: 0.025)"
    );
    // ...at a substantial energy increase (paper: +95%).
    assert!(big.total_mxu_energy() > wide.total_mxu_energy() * 1.2);
}

/// Sec. V-A Design A/B definitions produce the paper's trade-offs.
#[test]
fn design_a_and_b_tradeoffs() {
    let spec = LlmInferenceSpec::paper_fig7(8).expect("valid");
    let gpt3 = presets::gpt3_30b();
    let dit = presets::dit_xl_2();

    let base_llm = inference::run_llm(&sim(TpuConfig::tpuv4i()), &gpt3, spec).expect("mappable");
    let base_dit = inference::run_dit(&sim(TpuConfig::tpuv4i()), &dit, 8, 512).expect("mappable");

    // Design A: good LLM latency at big energy savings despite half peak.
    let a_llm = inference::run_llm(&sim(TpuConfig::design_a()), &gpt3, spec).expect("mappable");
    assert!(a_llm.total_latency() < base_llm.total_latency());
    assert!(a_llm.total_mxu_energy().get() * 10.0 < base_llm.total_mxu_energy().get());

    // Design B: faster DiT than both the baseline and Design A.
    let b_dit = inference::run_dit(&sim(TpuConfig::design_b()), &dit, 8, 512).expect("mappable");
    let a_dit = inference::run_dit(&sim(TpuConfig::design_a()), &dit, 8, 512).expect("mappable");
    assert!(b_dit.total_latency < base_dit.total_latency);
    assert!(b_dit.total_latency < a_dit.total_latency);

    // "none of the optimized TPU designs are ideal for all generative model
    // inferences": A beats B on LLM energy, B beats A on DiT latency.
    let b_llm = inference::run_llm(&sim(TpuConfig::design_b()), &gpt3, spec).expect("mappable");
    assert!(a_llm.total_mxu_energy() < b_llm.total_mxu_energy());
}
