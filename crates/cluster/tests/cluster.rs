//! Fleet-level behavior: routing spreads load, replicas scale
//! throughput, disaggregation hands KV over the interconnect, and the
//! CLI-facing KV-budget override reaches every replica.

use cimtpu_cluster::{ClusterEngine, InterconnectSpec, ReplicaSpec, RouterPolicy};
use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, KvBudget, LenDist, MemoryConfig, PrefixTraffic, ServingModel,
    TrafficSpec,
};
use cimtpu_units::Bytes;

fn tiny() -> ServingModel {
    ServingModel::Llm(TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap())
}

fn replica(name: &str) -> ReplicaSpec {
    ReplicaSpec::new(name, TpuConfig::tpuv4i(), tiny())
        .with_policy(BatchPolicy::Continuous { max_batch: 4 })
}

fn traffic(requests: u64) -> TrafficSpec {
    TrafficSpec {
        requests,
        // Arrivals land within a few tiny-model service times of each
        // other, so service capacity (not the arrival rate) is the
        // bottleneck and routing decisions actually matter.
        arrival: ArrivalPattern::OpenLoop { rate_rps: 500_000.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 2, hi: 8 },
        prefix: PrefixTraffic::None,
        seed: 5,
    }
}

#[test]
fn round_robin_spreads_requests_across_replicas() {
    let run = ClusterEngine::colocated(
        vec![replica("a"), replica("b")],
        RouterPolicy::RoundRobin,
    )
    .unwrap()
    .run("spread", &traffic(10))
    .unwrap();
    assert_eq!(run.report.completed, 10);
    assert_eq!(run.report.per_replica.len(), 2);
    assert_eq!(run.report.per_replica[0].requests, 5);
    assert_eq!(run.report.per_replica[1].requests, 5);
    assert_eq!(run.replica_reports.len(), 2);
    // Completions merge back into one id-ordered fleet view.
    assert!(run.completions.windows(2).all(|w| w[0].id < w[1].id));
}

#[test]
fn more_replicas_raise_throughput() {
    let one = ClusterEngine::colocated(vec![replica("solo")], RouterPolicy::PassThrough)
        .unwrap()
        .run("one", &traffic(16))
        .unwrap();
    let three = ClusterEngine::colocated(
        vec![replica("a"), replica("b"), replica("c")],
        RouterPolicy::LeastOutstanding,
    )
    .unwrap()
    .run("three", &traffic(16))
    .unwrap();
    assert!(
        three.report.throughput_rps > one.report.throughput_rps,
        "3 replicas {:.1} rps should beat 1 replica {:.1} rps",
        three.report.throughput_rps,
        one.report.throughput_rps
    );
    // Load is reasonably balanced, not funneled to one replica.
    assert!(three.report.imbalance < 2.0, "imbalance {}", three.report.imbalance);
}

#[test]
fn least_outstanding_favors_the_faster_replica() {
    // A heterogeneous fleet where one replica hosts a 4x-deeper model:
    // its per-step cost is ~4x, its queue builds under load, and the
    // load-aware router must skew work to the faster replica.
    let deep = ServingModel::Llm(TransformerConfig::new("Tiny-8L", 8, 4, 256, 1024).unwrap());
    let run = ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("slow", TpuConfig::tpuv4i(), deep)
                .with_policy(BatchPolicy::Continuous { max_batch: 2 }),
            ReplicaSpec::new("fast", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 2 }),
        ],
        RouterPolicy::LeastOutstanding,
    )
    .unwrap()
    // Arrivals between the two replicas' service capacities: the slow
    // replica's queue builds, the fast one drains, and routing skews.
    .run(
        "hetero",
        &TrafficSpec {
            arrival: ArrivalPattern::OpenLoop { rate_rps: 2_000.0 },
            prompt: LenDist::Fixed(16),
            steps: LenDist::Fixed(64),
            ..traffic(24)
        },
    )
    .unwrap();
    assert_eq!(run.report.completed, 24);
    let slow = &run.report.per_replica[0];
    let fast = &run.report.per_replica[1];
    assert!(
        fast.requests > slow.requests,
        "fast chip took {} requests, slow took {}",
        fast.requests,
        slow.requests
    );
}

#[test]
fn disaggregated_hands_off_every_cache_and_completes() {
    let disagg = ClusterEngine::disaggregated(
        vec![replica("prefill-0")],
        vec![replica("decode-0"), replica("decode-1")],
        RouterPolicy::PassThrough,
        RouterPolicy::LeastOutstanding,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .run("disagg", &traffic(12))
    .unwrap();
    assert_eq!(disagg.report.completed, 12);
    assert_eq!(disagg.report.topology, "disaggregated");
    assert_eq!(disagg.report.kv_transfers, 12);
    // 16-token blocks of 1 KiB/token: every prompt moves >= 16 KiB.
    assert!(disagg.report.kv_transfer_bytes >= 12 * 16 * 1024);
    assert!(disagg.report.kv_transfer_s > 0.0);
    assert!(disagg.report.kv_transfer_energy_j > 0.0);
    // Interconnect energy lands in the fleet total.
    let chip_energy: f64 = disagg.report.per_replica.iter().map(|r| r.energy_j).sum();
    let expected = chip_energy + disagg.report.kv_transfer_energy_j;
    assert!((disagg.report.total_energy_j - expected).abs() < 1e-12);
    // TTFT is the prefill, so it never includes decode queueing: every
    // first token precedes its request's finish.
    assert!(disagg.completions.iter().all(|c| c.first_token < c.finish));
    // Roles are attributed.
    assert_eq!(disagg.report.per_replica[0].role, "prefill");
    assert_eq!(disagg.report.per_replica[1].role, "decode");

    // Matched colocated hardware serves the same trace (sanity: both
    // complete everything; the JSON baseline records the actual numbers).
    let colo = ClusterEngine::colocated(
        vec![replica("c0"), replica("c1"), replica("c2")],
        RouterPolicy::LeastOutstanding,
    )
    .unwrap()
    .run("colo", &traffic(12))
    .unwrap();
    assert_eq!(colo.report.completed, 12);
    assert_eq!(colo.report.kv_transfers, 0);
}

#[test]
fn disaggregated_closed_loop_feeds_back_through_the_pipeline() {
    let run = ClusterEngine::disaggregated(
        vec![replica("prefill-0")],
        vec![replica("decode-0")],
        RouterPolicy::PassThrough,
        RouterPolicy::PassThrough,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .run(
        "disagg-closed",
        &TrafficSpec {
            arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 2.0 },
            ..traffic(9)
        },
    )
    .unwrap();
    assert_eq!(run.report.completed, 9);
    assert_eq!(run.report.kv_transfers, 9);
}

#[test]
fn kv_budget_override_reaches_every_replica() {
    let engine = ClusterEngine::colocated(
        vec![replica("a"), replica("b")],
        RouterPolicy::RoundRobin,
    )
    .unwrap();
    let unlimited = engine.run("unlimited", &traffic(8)).unwrap();
    assert_eq!(unlimited.report.per_replica[0].kv_hwm_frac, 0.0);
    let capped = engine
        .with_kv_budget(KvBudget::Bytes(Bytes::from_kib(128)))
        .run("capped", &traffic(8))
        .unwrap();
    assert_eq!(capped.report.completed, 8);
    for row in &capped.report.per_replica {
        assert!(row.kv_hwm_frac > 0.0, "{} saw no KV pressure", row.name);
    }
}

#[test]
fn disaggregation_rejects_incoherent_pools() {
    // Different models across pools.
    let other = ServingModel::Llm(TransformerConfig::new("Other", 2, 4, 128, 512).unwrap());
    let err = ClusterEngine::disaggregated(
        vec![replica("p")],
        vec![ReplicaSpec::new("d", TpuConfig::tpuv4i(), other)],
        RouterPolicy::PassThrough,
        RouterPolicy::PassThrough,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .run("bad", &traffic(4));
    assert!(err.is_err());
    // Chunked prefill in a pool.
    let err = ClusterEngine::disaggregated(
        vec![replica("p").with_memory(MemoryConfig::unlimited().with_chunked_prefill(16))],
        vec![replica("d")],
        RouterPolicy::PassThrough,
        RouterPolicy::PassThrough,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .run("bad", &traffic(4));
    assert!(err.is_err());
    // Empty pools are rejected at construction.
    assert!(ClusterEngine::disaggregated(
        vec![],
        vec![replica("d")],
        RouterPolicy::PassThrough,
        RouterPolicy::PassThrough,
        InterconnectSpec::ici(),
    )
    .is_err());
}
