//! Autoscaling control-plane invariants, end to end:
//!
//! 1. **Pinned bit-identity.** A pinned policy (every band `min == max`,
//!    no swaps) must dispatch to the plain fleet drivers: completions and
//!    report equal a manually-expanded static fleet bit-for-bit — across
//!    router policies, both topologies, and fault plans. The strongest
//!    check that installing the control plane changes nothing until a
//!    band actually opens.
//! 2. **Replay determinism.** The same seed replays the same elastic
//!    run, down to the full scaling-action log (serialized bytes).
//! 3. **Typed rejections.** Elastic + faults, elastic + disaggregated,
//!    and group-count mismatches are configuration errors, not silent
//!    fallbacks.
//! 4. **Swap under skew.** With swaps allowed, a starved group at its
//!    max borrows a machine from an idle one (`swap-out`/`swap-in`).

use cimtpu_autoscale::{action, AutoscalePolicy, GroupPolicy};
use cimtpu_cluster::{
    ChaosSpec, ClusterEngine, ClusterRun, FaultEvent, FaultPlan, InterconnectSpec, ReplicaSpec,
    RouterPolicy,
};
use cimtpu_core::TpuConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic, ServingModel, TrafficSpec,
};
use cimtpu_units::Seconds;
use proptest::prelude::*;

fn tiny() -> ServingModel {
    ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
}

fn spec(name: &str) -> ReplicaSpec {
    ReplicaSpec::new(name, TpuConfig::tpuv4i(), tiny())
        .with_policy(BatchPolicy::Continuous { max_batch: 4 })
}

fn pinned(n: u64) -> GroupPolicy {
    GroupPolicy { min: n, max: n, initial: n, ..GroupPolicy::default() }
}

fn traffics(seed: u64) -> [TrafficSpec; 2] {
    let base = TrafficSpec {
        requests: 16,
        arrival: ArrivalPattern::OpenLoopSessions { rate_rps: 4_000.0, sessions: 5 },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 12 },
        prefix: PrefixTraffic::None,
        seed,
    };
    [
        base.clone(),
        TrafficSpec { arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 1.0 }, ..base },
    ]
}

/// A 2-group colocated fleet, pinned at sizes (2, 1) via the policy, vs
/// the same fleet expanded by hand to the plain driver's three replicas.
fn pinned_colocated(policy: RouterPolicy, faults: FaultPlan) -> (ClusterEngine, ClusterEngine) {
    let auto = ClusterEngine::colocated(vec![spec("f-0"), spec("f-1")], policy)
        .unwrap()
        .with_faults(faults.clone())
        .with_autoscale(AutoscalePolicy::new(vec![pinned(2), pinned(1)]));
    let plain =
        ClusterEngine::colocated(vec![spec("f-0-0"), spec("f-0-1"), spec("f-1-0")], policy)
            .unwrap()
            .with_faults(faults);
    (auto, plain)
}

/// The disaggregated counterpart: 1 prefill group pinned at 1, one
/// decode group pinned at 2.
fn pinned_disagg(faults: FaultPlan) -> (ClusterEngine, ClusterEngine) {
    let disagg = |prefill: Vec<ReplicaSpec>, decode: Vec<ReplicaSpec>| {
        ClusterEngine::disaggregated(
            prefill,
            decode,
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastKv,
            InterconnectSpec::ici(),
        )
        .unwrap()
        .with_faults(faults.clone())
    };
    let auto = disagg(vec![spec("p")], vec![spec("d")])
        .with_autoscale(AutoscalePolicy::new(vec![pinned(1), pinned(2)]));
    let plain = disagg(vec![spec("p-0")], vec![spec("d-0"), spec("d-1")]);
    (auto, plain)
}

/// Asserts the pinned-policy run equals the plain expanded run
/// bit-for-bit, modulo the `scaling` section only the pinned run carries.
fn assert_pinned_equal(auto: &ClusterRun, plain: &ClusterRun, label: &str) {
    assert_eq!(auto.completions, plain.completions, "{label}: completions diverged");
    let scaling = auto.report.scaling.as_ref().expect(label);
    assert_eq!(scaling.reconciles, 0, "{label}: pinned fleets never reconcile");
    assert_eq!(scaling.scale_ups + scaling.scale_downs + scaling.swaps, 0, "{label}");
    assert!(scaling.actions.is_empty(), "{label}");
    assert_eq!(scaling.peak_replicas, plain.report.replicas, "{label}");
    assert!(scaling.chip_seconds > 0.0, "{label}");
    let mut stripped = auto.report.clone();
    stripped.scaling = None;
    assert_eq!(&stripped, &plain.report, "{label}: report diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pinned-policy bit-identity across router policies, open/closed
    /// loop, and colocated fault plans (none, a straggler window, seeded
    /// chaos crashes).
    #[test]
    fn pinned_policy_matches_plain_colocated(seed in 0u64..500) {
        let policies = [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::LeastKv,
            RouterPolicy::SessionAffinity,
            RouterPolicy::PrefixAffinity,
        ];
        let plans = [
            FaultPlan::none(),
            FaultPlan::none().with_event(FaultEvent::Straggler {
                replica: 0,
                from: Seconds::new(0.000_5),
                until: Seconds::new(0.005),
                slowdown: 3.0,
            }),
            FaultPlan::seeded(seed).with_chaos(ChaosSpec {
                crashes: 1,
                window: (Seconds::new(0.000_2), Seconds::new(0.003)),
                repair: Seconds::new(0.002),
            }),
        ];
        for policy in policies {
            for plan in &plans {
                for traffic in traffics(seed) {
                    let (auto, plain) = pinned_colocated(policy, plan.clone());
                    let a = auto.run("pinned", &traffic).unwrap();
                    let p = plain.run("pinned", &traffic).unwrap();
                    assert_pinned_equal(&a, &p, policy.name());
                }
            }
        }
    }

    /// The disaggregated counterpart: pinned pools match the hand-sized
    /// fleet with and without a degraded handoff link.
    #[test]
    fn pinned_policy_matches_plain_disagg(seed in 0u64..500) {
        let plans = [
            FaultPlan::none(),
            FaultPlan::none().with_event(FaultEvent::DegradedLink {
                from: Seconds::ZERO,
                until: Seconds::new(10.0),
                bandwidth_factor: 0.25,
                energy_factor: 2.0,
            }),
        ];
        for plan in plans {
            for traffic in traffics(seed) {
                let (auto, plain) = pinned_disagg(plan.clone());
                let a = auto.run("pinned", &traffic).unwrap();
                let p = plain.run("pinned", &traffic).unwrap();
                assert_pinned_equal(&a, &p, "disagg");
            }
        }
    }
}

/// An elastic single-group fleet under a bursty compressed day — the
/// replay-determinism workload.
fn elastic_fleet() -> (ClusterEngine, TrafficSpec) {
    let policy = AutoscalePolicy {
        interval: Seconds::new(0.001),
        provision: Seconds::new(0.001),
        warmup: Seconds::new(0.000_5),
        ..AutoscalePolicy::new(vec![GroupPolicy {
            min: 0,
            max: 3,
            initial: 1,
            concurrency: 4,
            up_cooldown: Seconds::new(0.001),
            down_cooldown: Seconds::new(0.002),
            ..GroupPolicy::default()
        }])
    };
    let engine = ClusterEngine::colocated(vec![spec("e")], RouterPolicy::LeastOutstanding)
        .unwrap()
        .with_slo_ms(2.0)
        .with_autoscale(policy);
    let traffic = TrafficSpec {
        requests: 1_500,
        arrival: ArrivalPattern::Diurnal {
            peak_rps: 30_000.0,
            day_s: 0.24,
            burst_x: 2.0,
            bursts: 2,
        },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 12 },
        prefix: PrefixTraffic::None,
        seed: 0xD1E5,
    };
    (engine, traffic)
}

/// Same seed, same run: the report — including the *full* scaling-action
/// log — replays byte-for-byte.
#[test]
fn same_seed_replays_the_full_scaling_action_log() {
    let (engine, traffic) = elastic_fleet();
    let a = engine.run("replay", &traffic).unwrap();
    let b = engine.run("replay", &traffic).unwrap();
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.report, b.report);
    let (sa, sb) = (a.report.scaling.unwrap(), b.report.scaling.unwrap());
    assert!(!sa.actions.is_empty(), "the burst day must move the fleet");
    assert_eq!(sa.actions, sb.actions);
    // Byte-for-byte: the serialized logs are identical, and every entry
    // names a real kind at a non-decreasing simulated time.
    assert_eq!(
        serde_json::to_string(&sa.actions).unwrap(),
        serde_json::to_string(&sb.actions).unwrap()
    );
    let kinds = [
        action::SCALE_UP,
        action::SCALE_DOWN,
        action::SCALE_TO_ZERO,
        action::SWAP_OUT,
        action::SWAP_IN,
        action::UP,
        action::RETIRED,
    ];
    let mut last = 0.0f64;
    for entry in &sa.actions {
        assert!(kinds.contains(&entry.kind.as_str()), "unknown kind {}", entry.kind);
        assert!(entry.at_s >= last, "action log out of order at {}", entry.at_s);
        last = entry.at_s;
    }
    // A different seed moves the fleet differently.
    let c = engine.run("replay", &TrafficSpec { seed: 7, ..traffic }).unwrap();
    assert_ne!(sa.actions, c.report.scaling.unwrap().actions);
}

/// Under two-model skew with swaps allowed, the starved group at its max
/// borrows the idle group's machine instead of shedding load.
#[test]
fn skewed_traffic_swaps_a_replica_between_groups() {
    let groups = vec![
        GroupPolicy {
            min: 0,
            max: 1,
            initial: 1,
            concurrency: 4,
            down_cooldown: Seconds::new(0.002),
            ..GroupPolicy::default()
        };
        2
    ];
    let policy = AutoscalePolicy {
        interval: Seconds::new(0.001),
        provision: Seconds::new(0.001),
        warmup: Seconds::new(0.000_5),
        swap: true,
        ..AutoscalePolicy::new(groups)
    };
    let engine =
        ClusterEngine::colocated(vec![spec("hot"), spec("cold")], RouterPolicy::RoundRobin)
            .unwrap()
            .with_autoscale(policy);
    // Single-session open-loop traffic hashes every request onto one
    // group: the other group idles and donates.
    let traffic = TrafficSpec {
        requests: 600,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 30_000.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 12 },
        prefix: PrefixTraffic::None,
        seed: 0x5A5A,
    };
    let run = engine.run("swap", &traffic).unwrap();
    assert_eq!(run.report.completed, run.report.offered);
    let s = run.report.scaling.unwrap();
    assert!(s.swaps >= 1, "scaling: {s:?}");
    let kinds: Vec<&str> = s.actions.iter().map(|a| a.kind.as_str()).collect();
    assert!(kinds.contains(&action::SWAP_OUT) && kinds.contains(&action::SWAP_IN));
}

#[test]
fn elastic_restrictions_are_typed_errors() {
    let traffic = traffics(1)[0].clone();
    let elastic = AutoscalePolicy::new(vec![GroupPolicy::default()]);

    // Elastic + fault plan: rejected.
    let err = ClusterEngine::colocated(vec![spec("x")], RouterPolicy::RoundRobin)
        .unwrap()
        .with_faults(FaultPlan::none().with_event(FaultEvent::Straggler {
            replica: 0,
            from: Seconds::ZERO,
            until: Seconds::new(1.0),
            slowdown: 2.0,
        }))
        .with_autoscale(elastic.clone())
        .run("bad", &traffic)
        .unwrap_err();
    assert!(err.to_string().contains("fault plan"), "{err}");

    // Elastic + disaggregated: rejected.
    let err = ClusterEngine::disaggregated(
        vec![spec("p")],
        vec![spec("d")],
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastKv,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .with_autoscale(AutoscalePolicy::new(vec![GroupPolicy::default(); 2]))
    .run("bad", &traffic)
    .unwrap_err();
    assert!(err.to_string().contains("disaggregated"), "{err}");

    // One policy group per replica group, or it's a config error.
    let err = ClusterEngine::colocated(vec![spec("x"), spec("y")], RouterPolicy::RoundRobin)
        .unwrap()
        .with_autoscale(elastic)
        .run("bad", &traffic)
        .unwrap_err();
    assert!(err.to_string().contains("group"), "{err}");
}
