//! The cluster bit-exactness anchor: a 1-replica colocated cluster with
//! the pass-through router must reproduce the corresponding single-engine
//! `ServingReport` **field-by-field** (and the completion records
//! bit-for-bit) — for all three batching policies and for both open- and
//! closed-loop traffic. This is what certifies that the fleet layer adds
//! routing and aggregation, not new scheduling semantics.

use cimtpu_cluster::{ClusterEngine, ReplicaSpec, RouterPolicy};
use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, Parallelism, PrefixTraffic,
    ServingEngine, ServingModel,
    TrafficSpec,
};
use cimtpu_units::Bytes;

fn tiny() -> ServingModel {
    ServingModel::Llm(TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap())
}

fn policies() -> [BatchPolicy; 3] {
    [
        BatchPolicy::Static { batch: 2 },
        BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 2.0 },
        BatchPolicy::Continuous { max_batch: 4 },
    ]
}

fn traffics() -> [TrafficSpec; 2] {
    let base = TrafficSpec {
        requests: 10,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 400.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 2, hi: 8 },
        prefix: PrefixTraffic::None,
        seed: 0xA11C,
    };
    [
        base.clone(),
        TrafficSpec {
            arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 5.0 },
            ..base
        },
    ]
}

fn assert_anchor(policy: BatchPolicy, traffic: &TrafficSpec, memory: MemoryConfig) {
    let label = format!(
        "anchor-{}-{}",
        policy.name(),
        match traffic.arrival {
            ArrivalPattern::ClosedLoop { .. } => "closed",
            _ => "open",
        }
    );
    let single = ServingEngine::new(
        TpuConfig::tpuv4i(),
        tiny(),
        Parallelism::Replicated { chips: 1 },
        policy,
    )
    .unwrap()
    .with_memory(memory)
    .run(&label, traffic)
    .unwrap();

    let cluster = ClusterEngine::colocated(
        vec![ReplicaSpec::new(label.clone(), TpuConfig::tpuv4i(), tiny())
            .with_policy(policy)
            .with_memory(memory)],
        RouterPolicy::PassThrough,
    )
    .unwrap()
    .run(&label, traffic)
    .unwrap();

    // Field-by-field: the derived PartialEq covers every ServingReport
    // field, including the f64 percentiles (bit-equality on floats).
    assert_eq!(cluster.replica_reports.len(), 1, "{label}");
    assert_eq!(cluster.replica_reports[0], single.report, "{label}");
    assert_eq!(cluster.completions, single.completions, "{label}");
    // The fleet aggregate agrees on the shared quantities.
    assert_eq!(cluster.report.completed, single.report.completed, "{label}");
    assert_eq!(
        cluster.report.makespan_s.to_bits(),
        single.report.makespan_s.to_bits(),
        "{label}"
    );
    assert_eq!(
        cluster.report.latency.p99_ms.to_bits(),
        single.report.latency.p99_ms.to_bits(),
        "{label}"
    );
    assert_eq!(
        cluster.report.ttft.p50_ms.to_bits(),
        single.report.ttft.p50_ms.to_bits(),
        "{label}"
    );
    assert_eq!(
        cluster.report.total_energy_j.to_bits(),
        single.report.total_energy_j.to_bits(),
        "{label}"
    );
    assert_eq!(cluster.report.kv_transfers, 0, "{label}");
}

#[test]
fn one_replica_pass_through_reproduces_serving_bit_exactly() {
    for policy in policies() {
        for traffic in traffics() {
            assert_anchor(policy, &traffic, MemoryConfig::unlimited());
        }
    }
}

#[test]
fn anchor_holds_under_kv_pressure() {
    // A tight paged budget exercises admission control (and preemption
    // under continuous batching) on both sides of the anchor.
    let memory = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(64))
        .with_block_tokens(16);
    for policy in policies() {
        for traffic in traffics() {
            assert_anchor(policy, &traffic, memory);
        }
    }
}

#[test]
fn anchor_holds_for_multi_executor_replicas() {
    // A replica with two replicated executors behind pass-through equals
    // the 2-chip single engine.
    let traffic = traffics()[0].clone();
    let policy = BatchPolicy::Continuous { max_batch: 2 };
    let single = ServingEngine::new(
        TpuConfig::tpuv4i(),
        tiny(),
        Parallelism::Replicated { chips: 2 },
        policy,
    )
    .unwrap()
    .run("anchor-2chip", &traffic)
    .unwrap();
    let cluster = ClusterEngine::colocated(
        vec![ReplicaSpec::new("anchor-2chip", TpuConfig::tpuv4i(), tiny())
            .with_policy(policy)
            .with_parallelism(Parallelism::Replicated { chips: 2 })],
        RouterPolicy::PassThrough,
    )
    .unwrap()
    .run("anchor-2chip", &traffic)
    .unwrap();
    assert_eq!(cluster.replica_reports[0], single.report);
    assert_eq!(cluster.completions, single.completions);
}
