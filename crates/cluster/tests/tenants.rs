//! Fleet-level multi-tenancy invariants:
//!
//! 1. **Single-tenant anchor.** A 1-tenant set dispatches to the same
//!    drivers as the plain run and reproduces its report bit-for-bit —
//!    on colocated and disaggregated topologies alike — with only the
//!    tenants section added.
//! 2. **Conservation.** The per-tenant ledger partitions the fleet
//!    totals exactly: `offered == completed + shed + timed_out` per
//!    tenant, and the sums match the report (and its availability
//!    section) — across router policies, chaos fault plans, both
//!    topologies, and an elastic autoscaled fleet.
//! 3. **Tenant-tagged traces.** Flight-recorder lifecycle events carry a
//!    tenant tag exactly when the run is multi-tenant; single-tenant
//!    traces stay byte-compatible with pre-tenancy ones.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use cimtpu_autoscale::{AutoscalePolicy, GroupPolicy};
use cimtpu_cluster::{
    ChaosSpec, ClusterEngine, ClusterRun, EventKind, FaultPlan, InterconnectSpec, Recorder,
    ReplicaSpec, RouterPolicy, SharedRecorder, SloClass, TenantSet, TenantSpec,
};
use cimtpu_core::TpuConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic, ServingModel, TrafficSpec,
};
use cimtpu_units::Seconds;

fn tiny() -> ServingModel {
    ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
}

fn spec(name: &str) -> ReplicaSpec {
    ReplicaSpec::new(name, TpuConfig::tpuv4i(), tiny())
        .with_policy(BatchPolicy::Continuous { max_batch: 4 })
}

fn colocated(policy: RouterPolicy, faults: FaultPlan) -> ClusterEngine {
    ClusterEngine::colocated(vec![spec("t-0"), spec("t-1")], policy).unwrap().with_faults(faults)
}

fn disagg(faults: FaultPlan) -> ClusterEngine {
    ClusterEngine::disaggregated(
        vec![spec("p-0")],
        vec![spec("d-0"), spec("d-1")],
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastKv,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .with_faults(faults)
}

fn open(requests: u64, rate_rps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        requests,
        arrival: ArrivalPattern::OpenLoop { rate_rps },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 12 },
        prefix: PrefixTraffic::None,
        seed,
    }
}

fn three_tenants(seed: u64, rate: f64) -> TenantSet {
    TenantSet::new(vec![
        TenantSpec::new("chat", SloClass::Interactive, 2.0, open(8, rate, seed)),
        TenantSpec::new("api", SloClass::Standard, 1.0, open(8, rate, seed + 1)),
        TenantSpec::new("bulk", SloClass::Batch, 1.0, open(8, rate / 2.0, seed + 2)),
    ])
    .unwrap()
}

fn chaos(fault_seed: u64) -> FaultPlan {
    FaultPlan::seeded(fault_seed).with_chaos(ChaosSpec {
        crashes: 2,
        window: (Seconds::new(0.000_2), Seconds::new(0.003)),
        repair: Seconds::new(0.002),
    })
}

/// The ledger partitions the fleet totals exactly — including shed and
/// timed-out work under faults.
fn assert_tenant_conservation(run: &ClusterRun) {
    let t = run.report.tenants.as_ref().expect("multi-tenant run reports tenants");
    let (mut offered, mut completed, mut shed, mut timed_out) = (0, 0, 0, 0);
    for u in &t.tenants {
        assert_eq!(
            u.offered,
            u.completed + u.shed + u.timed_out,
            "tenant {} leaks requests: {u:?}",
            u.name
        );
        offered += u.offered;
        completed += u.completed;
        shed += u.shed;
        timed_out += u.timed_out;
    }
    assert_eq!(offered, run.report.offered);
    assert_eq!(completed, run.report.completed);
    match run.report.availability.as_ref() {
        Some(a) => {
            assert_eq!(shed, a.shed, "ledger and availability disagree on shed work");
            assert_eq!(timed_out, a.timed_out);
        }
        None => assert_eq!(shed + timed_out, 0, "zero-fault run lost work"),
    }
    assert!(t.fairness > 0.0 && t.fairness <= 1.0 + 1e-12, "fairness {}", t.fairness);
}

#[test]
fn single_tenant_set_matches_plain_run_bit_for_bit() {
    let traffic = open(16, 4_000.0, 0xA11);
    let solo = |traffic: &TrafficSpec| {
        TenantSet::new(vec![TenantSpec::new(
            "only",
            SloClass::Standard,
            1.0,
            traffic.clone(),
        )])
        .unwrap()
    };
    let fleets = [
        colocated(RouterPolicy::RoundRobin, FaultPlan::none()),
        colocated(RouterPolicy::LeastOutstanding, FaultPlan::none()),
        colocated(RouterPolicy::SloAware, FaultPlan::none()),
        colocated(RouterPolicy::LeastOutstanding, chaos(7)),
        disagg(FaultPlan::none()),
        disagg(chaos(7)),
    ];
    for fleet in fleets {
        let plain = fleet.run("anchor", &traffic).unwrap();
        let tenanted = fleet.run_tenants("anchor", &solo(&traffic)).unwrap();
        assert_eq!(tenanted.completions, plain.completions);
        let mut stripped = tenanted.report.clone();
        let t = stripped.tenants.take().expect("tenanted run reports tenants");
        assert_eq!(stripped, plain.report);
        assert_eq!(t.tenants.len(), 1);
        assert_eq!(t.fairness, 1.0);
    }
}

#[test]
fn autoscaled_tenants_conserve_and_replay() {
    let policy = AutoscalePolicy {
        interval: Seconds::new(0.001),
        provision: Seconds::new(0.001),
        warmup: Seconds::new(0.000_5),
        ..AutoscalePolicy::new(vec![GroupPolicy {
            min: 0,
            max: 3,
            initial: 1,
            concurrency: 4,
            up_cooldown: Seconds::new(0.001),
            down_cooldown: Seconds::new(0.002),
            ..GroupPolicy::default()
        }])
    };
    let engine = ClusterEngine::colocated(vec![spec("e")], RouterPolicy::LeastOutstanding)
        .unwrap()
        .with_slo_ms(2.0)
        .with_autoscale(policy);
    let set = three_tenants(0xE1A, 8_000.0);
    let run = engine.run_tenants("elastic", &set).unwrap();
    assert_tenant_conservation(&run);
    assert_eq!(run.report.completed, run.report.offered, "scale-to-zero parks, never drops");
    assert!(run.report.scaling.is_some(), "elastic run reports scaling");
    let again = engine.run_tenants("elastic", &set).unwrap();
    assert_eq!(run.report, again.report);
    assert_eq!(run.completions, again.completions);
}

/// Lifecycle events carry a tenant tag exactly when the run is
/// multi-tenant, and the tags are valid tenant indices.
#[test]
fn trace_events_are_tenant_tagged_iff_multi_tenant() {
    let fresh = || -> SharedRecorder { Rc::new(RefCell::new(Recorder::new())) };
    for fleet in [colocated(RouterPolicy::SloAware, FaultPlan::none()), disagg(chaos(3))] {
        let multi = three_tenants(0x7A6, 6_000.0);
        let rec = fresh();
        let observed = fleet.run_tenants_observed("tagged", &multi, Some(&rec)).unwrap();
        let rec = rec.borrow();
        let lifecycle: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Arrival || e.kind.is_terminal())
            .collect();
        assert!(!lifecycle.is_empty());
        for e in &lifecycle {
            let tag = e.tenant.unwrap_or_else(|| panic!("untagged {:?} in multi-tenant", e.kind));
            assert!((tag as usize) < 3, "tenant tag {tag} out of range");
        }
        // Zero observer effect: the recorder changes no scheduling.
        let blind = fleet.run_tenants("tagged", &multi).unwrap();
        assert_eq!(observed.report, blind.report);

        // A single-tenant run stays tag-free everywhere.
        let solo = TenantSet::new(vec![TenantSpec::new(
            "only",
            SloClass::Standard,
            1.0,
            open(12, 6_000.0, 0x7A7),
        )])
        .unwrap();
        let rec2 = fresh();
        fleet.run_tenants_observed("untagged", &solo, Some(&rec2)).unwrap();
        assert!(rec2.borrow().events().iter().all(|e| e.tenant.is_none()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation survives chaos on both topologies and every router
    /// policy, and each drawn timeline replays deterministically.
    #[test]
    fn conservation_under_chaos_randomized(seed in 0u64..500, fault_seed in 0u64..500) {
        let set = three_tenants(seed, 6_000.0);
        let policies =
            [RouterPolicy::RoundRobin, RouterPolicy::LeastOutstanding, RouterPolicy::SloAware];
        for policy in policies {
            let fleet = colocated(policy, chaos(fault_seed));
            let run = fleet.run_tenants("chaos", &set).unwrap();
            assert_tenant_conservation(&run);
            let again = fleet.run_tenants("chaos", &set).unwrap();
            prop_assert_eq!(&run.report, &again.report);
        }
        let fleet = disagg(chaos(fault_seed));
        let run = fleet.run_tenants("chaos", &set).unwrap();
        assert_tenant_conservation(&run);
        let again = fleet.run_tenants("chaos", &set).unwrap();
        prop_assert_eq!(&run.report, &again.report);
    }
}
