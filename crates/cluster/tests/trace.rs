//! Flight-recorder invariants across every driver: event conservation,
//! well-formed spans, zero observer effect (recorder-on reports equal
//! recorder-off), and byte-identical same-seed trace exports.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use proptest::prelude::*;

use cimtpu_cluster::scenario::by_name;
use cimtpu_cluster::{
    ChaosSpec, ClusterEngine, ClusterRun, EventKind, FaultEvent, FaultPlan, Recorder,
    ReplicaSpec, RouterPolicy, SharedRecorder, TraceFilter,
};
use cimtpu_core::TpuConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic, ServingModel, TrafficSpec,
};
use cimtpu_units::Seconds;

fn fresh() -> SharedRecorder {
    Rc::new(RefCell::new(Recorder::new()))
}

fn record(name: &str, seed: Option<u64>) -> (ClusterRun, SharedRecorder) {
    let rec = fresh();
    let run = by_name(name).unwrap().run_observed(seed, Some(&rec)).unwrap();
    (run, rec)
}

/// Conservation: every offered request has exactly one `Arrival` and
/// exactly one terminal event (`Complete` / `Shed` / `Timeout`), and the
/// two id sets coincide. Fleet events (crash, reconcile, ...) reuse the
/// id field for slot indices, so only lifecycle kinds are counted.
fn assert_conservation(run: &ClusterRun, rec: &SharedRecorder) {
    let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new();
    let mut terminals: BTreeMap<u64, u64> = BTreeMap::new();
    for e in rec.borrow().events() {
        if e.kind == EventKind::Arrival {
            *arrivals.entry(e.id).or_default() += 1;
        }
        if e.kind.is_terminal() {
            *terminals.entry(e.id).or_default() += 1;
        }
    }
    assert_eq!(
        arrivals.len() as u64,
        run.report.offered,
        "every offered request must arrive exactly once"
    );
    assert!(arrivals.values().all(|&n| n == 1), "duplicate arrival: {arrivals:?}");
    assert!(terminals.values().all(|&n| n == 1), "duplicate terminal: {terminals:?}");
    assert_eq!(
        arrivals.keys().collect::<Vec<_>>(),
        terminals.keys().collect::<Vec<_>>(),
        "arrival and terminal id sets must coincide"
    );
    let completes = rec
        .borrow()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Complete)
        .count() as u64;
    assert_eq!(completes, run.report.completed, "one Complete per delivered completion");
}

/// Spans carry non-negative durations; instants carry none. Timestamps
/// are finite simulated seconds.
fn assert_well_formed(rec: &SharedRecorder) {
    for e in rec.borrow().events() {
        assert!(e.ts_s.is_finite(), "non-finite timestamp: {e:?}");
        if e.kind.is_span() {
            assert!(e.dur_s >= 0.0, "negative span duration: {e:?}");
        } else {
            assert_eq!(e.dur_s, 0.0, "instant with a duration: {e:?}");
        }
    }
}

/// Two same-seed recorded runs must export byte-identical traces and
/// gauge CSVs — the determinism contract Perfetto diffs rely on.
fn assert_trace_deterministic(name: &str) {
    let (run_a, rec_a) = record(name, None);
    let (run_b, rec_b) = record(name, None);
    assert_eq!(run_a.report, run_b.report);
    assert_eq!(
        rec_a.borrow().to_chrome_json(&TraceFilter::default()),
        rec_b.borrow().to_chrome_json(&TraceFilter::default()),
        "{name}: same-seed traces must be byte-identical"
    );
    assert_eq!(
        rec_a.borrow().metrics_csv(name),
        rec_b.borrow().metrics_csv(name),
        "{name}: same-seed gauge CSVs must be byte-identical"
    );
}

/// Attaching the recorder must not change the simulation: recorder-on
/// and recorder-off runs report identically.
fn assert_no_observer_effect(name: &str) {
    let (observed, _rec) = record(name, None);
    let plain = by_name(name).unwrap().run(None).unwrap();
    assert_eq!(observed.report, plain.report, "{name}: recorder changed the report");
    assert_eq!(observed.completions, plain.completions);
}

/// The scenario set covering all four drivers: colocated plain
/// (hetero-fleet), colocated faulty (cluster-chaos-crash,
/// cluster-straggler), disaggregated plain (smoke-cluster),
/// disaggregated faulty (cluster-degraded-link), and elastic
/// (smoke-autoscale).
const DRIVER_SCENARIOS: [&str; 6] = [
    "hetero-fleet",
    "cluster-chaos-crash",
    "cluster-straggler",
    "smoke-cluster",
    "cluster-degraded-link",
    "smoke-autoscale",
];

#[test]
fn every_driver_conserves_requests_and_emits_well_formed_spans() {
    for name in DRIVER_SCENARIOS {
        let (run, rec) = record(name, None);
        assert_conservation(&run, &rec);
        assert_well_formed(&rec);
    }
}

#[test]
fn recorder_is_invisible_to_the_simulation() {
    for name in DRIVER_SCENARIOS {
        assert_no_observer_effect(name);
    }
}

#[test]
fn same_seed_traces_are_byte_identical() {
    for name in DRIVER_SCENARIOS {
        assert_trace_deterministic(name);
    }
}

#[test]
fn chaos_trace_shows_crash_and_retry() {
    let (_run, rec) = record("cluster-chaos-crash", None);
    let json = rec.borrow().to_chrome_json(&TraceFilter::default());
    // The exact patterns the CI traced-chaos smoke greps.
    assert!(json.contains("\"name\":\"crash\",\"ph\":\"i\""), "{json}");
    assert!(json.contains("\"name\":\"retry\",\"ph\":\"X\""), "{json}");
    let events = rec.borrow().events().to_vec();
    assert!(events.iter().any(|e| e.kind == EventKind::Repair));
    // The filter drops everything else.
    let only = rec.borrow().to_chrome_json(&TraceFilter::parse("crash").unwrap());
    assert!(only.contains("\"name\":\"crash\""));
    assert!(!only.contains("\"name\":\"retry\""), "{only}");
    assert!(!only.contains("\"name\":\"complete\""), "{only}");
}

#[test]
fn autoscale_trace_shows_scaling_lifecycle() {
    let (run, rec) = record("smoke-autoscale", None);
    let events = rec.borrow().events().to_vec();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    let s = run.report.scaling.as_ref().expect("elastic run reports scaling");
    assert_eq!(count(EventKind::ScaleUp) + count(EventKind::SwapIn), s.scale_ups);
    assert_eq!(
        count(EventKind::ScaleDown) + count(EventKind::ScaleToZero) + count(EventKind::SwapOut),
        s.scale_downs
    );
    assert_eq!(count(EventKind::ScaleToZero), s.scale_to_zero);
    assert_eq!(count(EventKind::Reconcile), s.reconciles);
    assert!(count(EventKind::Up) >= 1, "provisioned slots must turn up");
    assert!(count(EventKind::Retired) >= 1, "drained slots must retire");
    assert!(count(EventKind::Park) >= 1, "scale-to-zero must park arrivals");
}

#[test]
fn traced_gauges_sample_every_replica() {
    let (_run, rec) = record("hetero-fleet", None);
    let ts = rec.borrow().timeseries();
    let names: Vec<&str> = ts.gauges.iter().map(|g| g.name.as_str()).collect();
    assert!(names.contains(&"tpuv4i/queued"), "{names:?}");
    assert!(names.contains(&"design-a/kv_frac"), "{names:?}");
    assert!(ts.latency_ms.count > 0);
    for g in &ts.gauges {
        assert_eq!(g.t_s.len(), g.values.len());
        assert!(g.t_s.windows(2).all(|w| w[0] <= w[1]), "gauge times must be sorted");
    }
}

/// The chaos testbed from the scenario set, parameterized over router
/// policy and fault plan for the property tests.
fn chaos_engine(router: RouterPolicy, faults: FaultPlan) -> ClusterEngine {
    let tiny = || ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer());
    ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("chaos-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
            ReplicaSpec::new("chaos-1", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
        ],
        router,
    )
    .expect("static fleet is valid")
    .with_faults(faults)
}

fn chaos_traffic(seed: u64) -> TrafficSpec {
    TrafficSpec {
        requests: 32,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 64 },
        steps: LenDist::Uniform { lo: 8, hi: 16 },
        prefix: PrefixTraffic::None,
        seed,
    }
}

fn router_strategy() -> impl Strategy<Value = RouterPolicy> {
    (0u64..3).prop_map(|i| match i {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::LeastOutstanding,
        _ => RouterPolicy::SessionAffinity,
    })
}

fn fault_strategy() -> impl Strategy<Value = FaultPlan> {
    (0u32..3, any::<u64>(), any::<bool>()).prop_map(|(crashes, seed, straggle)| {
        let mut plan = if crashes == 0 {
            FaultPlan::seeded(seed)
        } else {
            FaultPlan::seeded(seed).with_chaos(ChaosSpec {
                crashes,
                window: (Seconds::new(0.000_5), Seconds::new(0.002)),
                repair: Seconds::new(0.002),
            })
        };
        if straggle {
            plan = plan.with_event(FaultEvent::Straggler {
                replica: 0,
                from: Seconds::new(0.000_5),
                until: Seconds::new(0.005),
                slowdown: 4.0,
            });
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across router policies × fault plans × traffic seeds: requests
    /// are conserved, spans are well-formed, the recorder is invisible,
    /// and same-seed traces replay byte-for-byte.
    #[test]
    fn faulty_traces_hold_invariants(
        router in router_strategy(),
        faults in fault_strategy(),
        seed in 0u64..1_000,
    ) {
        let engine = chaos_engine(router, faults);
        let traffic = chaos_traffic(seed);
        let rec = fresh();
        let run = engine.run_observed("prop", &traffic, Some(&rec)).unwrap();
        assert_conservation(&run, &rec);
        assert_well_formed(&rec);
        let plain = engine.run("prop", &traffic).unwrap();
        prop_assert_eq!(&run.report, &plain.report);
        let rec2 = fresh();
        let run2 = engine.run_observed("prop", &traffic, Some(&rec2)).unwrap();
        prop_assert_eq!(&run.report, &run2.report);
        prop_assert_eq!(
            rec.borrow().to_chrome_json(&TraceFilter::default()),
            rec2.borrow().to_chrome_json(&TraceFilter::default())
        );
    }

    /// The elastic driver under varied seeds: parked wake-ups and drains
    /// still deliver every request exactly once, traced or not.
    #[test]
    fn autoscale_traces_hold_invariants(seed in 0u64..1_000) {
        let scenario = by_name("smoke-autoscale").unwrap();
        let rec = fresh();
        let run = scenario.run_observed(Some(seed), Some(&rec)).unwrap();
        assert_conservation(&run, &rec);
        assert_well_formed(&rec);
        let plain = scenario.run(Some(seed)).unwrap();
        prop_assert_eq!(&run.report, &plain.report);
    }
}
