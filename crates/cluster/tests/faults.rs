//! Fault-injection invariants, end to end:
//!
//! 1. **Zero-fault bit-identity.** An empty `FaultPlan` takes the exact
//!    zero-fault code path; a *benign* non-empty plan (a 1.0× straggler
//!    window, a 1.0× link window) forces the fault-aware drivers and
//!    must still reproduce the plain drivers' completions bit-for-bit —
//!    the strongest check that the new event loops add accounting, not
//!    new scheduling semantics.
//! 2. **Determinism.** The same fault seed replays the same chaos run;
//!    fault draws come from their own RNG stream, so they never perturb
//!    the traffic.
//! 3. **Crash accounting.** A crash loses exactly the in-flight work,
//!    retries recover it, and every offered request is conserved:
//!    `arrived == completed + shed + timed_out`.

use cimtpu_cluster::{
    ChaosSpec, ClusterEngine, ClusterRun, FaultEvent, FaultPlan, InterconnectSpec,
    RecoveryPolicy, ReplicaSpec, RouterPolicy,
};
use cimtpu_core::TpuConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic, ServingModel, TrafficSpec,
};
use cimtpu_units::Seconds;
use proptest::prelude::*;

fn tiny() -> ServingModel {
    ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
}

fn fleet(policy: RouterPolicy, faults: FaultPlan) -> ClusterEngine {
    ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("f-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
            ReplicaSpec::new("f-1", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
        ],
        policy,
    )
    .unwrap()
    .with_faults(faults)
}

fn disagg_fleet(faults: FaultPlan) -> ClusterEngine {
    ClusterEngine::disaggregated(
        vec![ReplicaSpec::new("p-0", TpuConfig::tpuv4i(), tiny())
            .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
        vec![
            ReplicaSpec::new("d-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
            ReplicaSpec::new("d-1", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
        ],
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastKv,
        InterconnectSpec::ici(),
    )
    .unwrap()
    .with_faults(faults)
}

fn traffics(seed: u64) -> [TrafficSpec; 2] {
    let base = TrafficSpec {
        requests: 16,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 4_000.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 4, hi: 12 },
        prefix: PrefixTraffic::None,
        seed,
    };
    [
        base.clone(),
        TrafficSpec { arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 1.0 }, ..base },
    ]
}

/// A non-empty plan that injects nothing observable: a 1.0× straggler
/// window. It forces the fault-aware colocated driver, so comparing
/// against the plain run validates the new event loop wholesale.
fn benign_colocated_plan() -> FaultPlan {
    FaultPlan::none().with_event(FaultEvent::Straggler {
        replica: 0,
        from: Seconds::new(0.001),
        until: Seconds::new(0.010),
        slowdown: 1.0,
    })
}

/// The disaggregated counterpart: a 1.0×/1.0× link window.
fn benign_disagg_plan() -> FaultPlan {
    FaultPlan::none().with_event(FaultEvent::DegradedLink {
        from: Seconds::ZERO,
        until: Seconds::new(10.0),
        bandwidth_factor: 1.0,
        energy_factor: 1.0,
    })
}

/// Asserts the faulty run equals the plain run bit-for-bit, modulo the
/// availability section (present, all-zero) that only fault runs carry.
fn assert_benign_equal(plain: &ClusterRun, faulty: &ClusterRun, label: &str) {
    assert_eq!(plain.completions, faulty.completions, "{label}: completions diverged");
    let avail = faulty.report.availability.as_ref().expect(label);
    assert_eq!(avail.crashes, 0, "{label}");
    assert_eq!(avail.availability, 1.0, "{label}");
    assert_eq!(avail.retries + avail.shed + avail.timed_out, 0, "{label}");
    let mut stripped = faulty.report.clone();
    stripped.availability = None;
    assert_eq!(&stripped, &plain.report, "{label}: report diverged");
}

#[test]
fn empty_plan_is_the_zero_fault_path() {
    for traffic in traffics(0xFA) {
        let bare = fleet(RouterPolicy::LeastOutstanding, FaultPlan::none());
        let plain = bare.run("zero", &traffic).unwrap();
        let explicit = fleet(RouterPolicy::LeastOutstanding, FaultPlan::none())
            .run("zero", &traffic)
            .unwrap();
        assert_eq!(plain.report, explicit.report);
        assert_eq!(plain.completions, explicit.completions);
        assert!(plain.report.availability.is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Benign-plan equivalence across router policies and open/closed
    /// loop: the fault-aware colocated driver is the plain driver plus
    /// bookkeeping.
    #[test]
    fn benign_plan_matches_plain_colocated(seed in 0u64..500) {
        let policies = [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::LeastKv,
            RouterPolicy::SessionAffinity,
            RouterPolicy::PrefixAffinity,
        ];
        for policy in policies {
            for traffic in traffics(seed) {
                let plain = fleet(policy, FaultPlan::none()).run("benign", &traffic).unwrap();
                let faulty =
                    fleet(policy, benign_colocated_plan()).run("benign", &traffic).unwrap();
                assert_benign_equal(&plain, &faulty, policy.name());
            }
        }
    }

    /// The disaggregated counterpart of the benign-plan equivalence.
    #[test]
    fn benign_plan_matches_plain_disagg(seed in 0u64..500) {
        for traffic in traffics(seed) {
            let plain = disagg_fleet(FaultPlan::none()).run("benign", &traffic).unwrap();
            let faulty = disagg_fleet(benign_disagg_plan()).run("benign", &traffic).unwrap();
            assert_benign_equal(&plain, &faulty, "disagg");
        }
    }

    /// The same fault seed replays the same chaos run, completions and
    /// report bit-for-bit.
    #[test]
    fn same_fault_seed_replays_bit_for_bit(fault_seed in 0u64..10_000) {
        let chaos = FaultPlan::seeded(fault_seed).with_chaos(ChaosSpec {
            crashes: 2,
            window: (Seconds::new(0.000_2), Seconds::new(0.003)),
            repair: Seconds::new(0.002),
        });
        let traffic = traffics(0xBEEF)[0].clone();
        let a = fleet(RouterPolicy::LeastOutstanding, chaos.clone())
            .run("chaos", &traffic)
            .unwrap();
        let b = fleet(RouterPolicy::LeastOutstanding, chaos).run("chaos", &traffic).unwrap();
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.completions, b.completions);
        // Conservation holds for every drawn timeline.
        let avail = a.report.availability.unwrap();
        prop_assert_eq!(
            a.report.completed + avail.shed + avail.timed_out,
            a.report.offered
        );
    }
}

/// One request, one replica, one crash mid-decode: the crash loses
/// exactly that in-flight request, the retry lands after restart, and
/// the completion is accounted against the *original* arrival.
#[test]
fn crash_mid_decode_loses_exactly_the_in_flight_work() {
    let traffic = TrafficSpec {
        requests: 1,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 1_000_000.0 },
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(100),
        prefix: PrefixTraffic::None,
        seed: 7,
    };
    let crash_at = Seconds::new(0.000_2);
    let plan = FaultPlan::none().with_event(FaultEvent::Crash {
        at: crash_at,
        replica: 0,
        repair: Seconds::new(0.001),
    });
    let run = ClusterEngine::colocated(
        vec![ReplicaSpec::new("solo", TpuConfig::tpuv4i(), tiny())
            .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
        RouterPolicy::PassThrough,
    )
    .unwrap()
    .with_faults(plan)
    .run("crash-mid-decode", &traffic)
    .unwrap();

    let avail = run.report.availability.as_ref().unwrap();
    assert_eq!(avail.crashes, 1);
    assert_eq!(avail.retries, 1, "the lone in-flight request retries once");
    assert_eq!(avail.retried_ok, 1, "and completes after the restart");
    assert_eq!(run.report.completed, 1);
    assert_eq!(avail.shed + avail.timed_out, 0);
    assert!(avail.availability < 1.0);
    assert_eq!(avail.time_to_recover_s.len(), 1);
    let c = &run.completions[0];
    // Latency spans the crash: original arrival stands, the finish is
    // after restart + recompute.
    assert_eq!(c.arrival, Seconds::ZERO);
    assert!(c.finish > crash_at + Seconds::new(0.001), "finish {} not after repair", c.finish);
}

/// With a zero retry budget the lost work is shed — and still conserved.
#[test]
fn exhausted_retry_budget_sheds_and_conserves() {
    let traffic = TrafficSpec {
        requests: 4,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 1_000_000.0 },
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(100),
        prefix: PrefixTraffic::None,
        seed: 7,
    };
    let plan = FaultPlan::none()
        .with_event(FaultEvent::Crash {
            at: Seconds::new(0.000_5),
            replica: 0,
            repair: Seconds::new(0.001),
        })
        .with_recovery(RecoveryPolicy { max_attempts: 0, ..RecoveryPolicy::default() });
    let run = ClusterEngine::colocated(
        vec![ReplicaSpec::new("solo", TpuConfig::tpuv4i(), tiny())
            .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
        RouterPolicy::PassThrough,
    )
    .unwrap()
    .with_faults(plan)
    .run("shed", &traffic)
    .unwrap();

    let avail = run.report.availability.as_ref().unwrap();
    assert_eq!(avail.crashes, 1);
    assert_eq!(avail.retries, 0, "no budget, no retries");
    assert!(avail.shed >= 1, "in-flight work at the crash instant is shed");
    assert_eq!(run.report.completed + avail.shed + avail.timed_out, run.report.offered);
}

/// A decode-pool crash in a disaggregated fleet: lost decodes come back
/// (re-handoff or recompute) and the run conserves every request.
#[test]
fn disagg_decode_crash_recovers_and_conserves() {
    let traffic = TrafficSpec {
        requests: 12,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 50_000.0 },
        prompt: LenDist::Fixed(48),
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::None,
        seed: 7,
    };
    let plan = FaultPlan::none().with_event(FaultEvent::Crash {
        at: Seconds::new(0.000_4),
        replica: 0, // decode-pool index
        repair: Seconds::new(0.001),
    });
    let run = disagg_fleet(plan).run("disagg-crash", &traffic).unwrap();
    let avail = run.report.availability.as_ref().unwrap();
    assert_eq!(avail.crashes, 1);
    assert_eq!(
        run.report.completed + avail.shed + avail.timed_out,
        run.report.offered,
        "report: {}",
        run.report
    );
    assert!(avail.availability < 1.0);
    // Deterministic replay.
    let again = disagg_fleet(FaultPlan::none().with_event(FaultEvent::Crash {
        at: Seconds::new(0.000_4),
        replica: 0,
        repair: Seconds::new(0.001),
    }))
    .run("disagg-crash", &traffic)
    .unwrap();
    assert_eq!(run.report, again.report);
}

/// Straggler faults don't apply to disaggregated pools, degraded-link
/// faults don't apply to colocated fleets — both are configuration
/// errors, not silent no-ops.
#[test]
fn cross_topology_faults_are_rejected() {
    let traffic = traffics(1)[0].clone();
    let err = disagg_fleet(benign_colocated_plan()).run("bad", &traffic).unwrap_err();
    assert!(err.to_string().contains("straggler"), "{err}");
    let err = fleet(RouterPolicy::RoundRobin, benign_disagg_plan())
        .run("bad", &traffic)
        .unwrap_err();
    assert!(err.to_string().contains("link"), "{err}");
}
