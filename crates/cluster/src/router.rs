//! Request routing: which replica group an arriving request lands on.
//!
//! # Router contract
//!
//! A [`Router`] is consulted exactly once per request, at its arrival
//! instant, with a [`ReplicaSnapshot`] per replica describing what the
//! fleet knows *at that moment* (outstanding work, queue depth, live KV
//! occupancy, cumulative assignments). It returns the index of the chosen
//! replica; out-of-range indices are clamped by the driver. Routers may
//! keep internal state (round-robin cursors) but must be deterministic —
//! equal snapshot sequences must produce equal choices — because every
//! cluster run is replayed bit-for-bit in CI. Routing is *not* revisited:
//! once pushed, a request stays on its replica (no work stealing).
//!
//! # Affinity routing
//!
//! Two policies route by request *identity* instead of replica load, so
//! that cache state accumulated on a replica gets re-used:
//!
//! - [`RouterPolicy::SessionAffinity`] hashes [`Request::session`] — a
//!   session's requests land together (multi-turn conversations).
//! - [`RouterPolicy::PrefixAffinity`] hashes the request's prompt-prefix
//!   identity ([`Request::prefix`] — the shared-head seed and length), so
//!   every request carrying the same shared system prompt lands on the
//!   replica whose [prefix index](cimtpu_kv::PrefixIndex) already holds
//!   those KV blocks. Pair it with
//!   [`MemoryConfig::with_prefix_sharing`](cimtpu_serving::MemoryConfig::with_prefix_sharing)
//!   on the replicas: affinity concentrates the hits that sharing makes
//!   cheap, where load-oriented routing would scatter each head across
//!   the fleet and re-prefill it once per replica. Requests with no
//!   shared head (`head_len == 0`) fall back to the session hash, so
//!   mixed traffic still spreads.
//!
//! Both hash with a fixed 64-bit finalizer — no RNG, no load feedback —
//! so placement is reproducible whatever the interleaving.
//!
//! # Health view (failure-aware runs)
//!
//! Under a fault plan the driver keeps a [`HealthView`] — one
//! [`ReplicaHealth`] per replica — and consults the router with
//! snapshots of the **healthy subset only**, re-indexed `0..k` (the
//! driver maps the choice back to real replica indices). Re-indexing
//! keeps every policy's contract intact whether it returns a snapshot's
//! `index` or a position: the two coincide. A crashed replica is
//! [`Down`](ReplicaHealth::Down) (drained — it takes no traffic), then
//! [`Warming`](ReplicaHealth::Warming) for the recovery policy's warmup
//! after its restart, and only then [`Up`](ReplicaHealth::Up) and
//! routable again. Affinity hashes mod the healthy count, so sessions
//! fail over while a replica is out and may re-home when it returns.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cimtpu_serving::{Completion, EngineCore, Request};
use cimtpu_units::Seconds;

/// What a router sees about one replica at a routing instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSnapshot {
    /// Replica index (what [`Router::route`] returns).
    pub index: usize,
    /// Requests in flight at this instant: queued, resident, or already
    /// scheduled to complete in the future.
    pub outstanding: u64,
    /// Requests pushed but not yet scheduled.
    pub queued: u64,
    /// Live KV occupancy as a fraction of capacity (0 for unlimited
    /// budgets, and between run-to-completion batches).
    pub kv_frac: f64,
    /// Requests ever assigned to this replica.
    pub assigned: u64,
    /// Outstanding requests split by SLO class rank (interactive,
    /// standard, batch) at this instant. Maintained only when a run is
    /// multi-tenant — single-tenant drivers leave the zeros, and every
    /// policy except [`RouterPolicy::SloAware`] ignores the field.
    pub class_outstanding: [u64; 3],
}

/// A routing strategy (see the [module docs](self) for the contract).
pub trait Router {
    /// The router's display name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Picks the replica for `request` given the fleet state.
    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize;
}

/// The built-in routing strategies, as a configuration value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Everything to replica 0 — the degenerate router that makes a
    /// 1-replica cluster reproduce its single engine bit-for-bit (the
    /// equivalence anchor).
    PassThrough,
    /// Cycle through replicas in index order.
    RoundRobin,
    /// The replica with the fewest outstanding requests (ties pick the
    /// lowest index) — the classic least-loaded policy.
    LeastOutstanding,
    /// The replica with the lowest live KV occupancy, breaking ties by
    /// outstanding requests then index — memory-pressure-aware routing.
    LeastKv,
    /// Hash the request's session onto a replica, so a session's requests
    /// always land together (a session's later requests re-use cache
    /// state where the first one ran).
    SessionAffinity,
    /// Hash the request's prompt-prefix identity onto a replica, so
    /// requests sharing a system-prompt head land where its KV blocks are
    /// already resident (falls back to the session hash for requests with
    /// no shared head). See the [module docs](self) on affinity routing.
    PrefixAffinity,
    /// Tier-aware least-loaded routing for multi-tenant fleets: each
    /// request goes to the replica with the fewest in-flight requests of
    /// its *own* SLO class (ties break by total outstanding, then index),
    /// so interactive traffic lands on the healthy replica least busy
    /// with interactive work instead of queueing behind another tenant's
    /// batch backlog. In a single-tenant run every
    /// [`ReplicaSnapshot::class_outstanding`] is zero and the policy
    /// degenerates to [`RouterPolicy::LeastOutstanding`].
    SloAware,
}

impl RouterPolicy {
    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::PassThrough => "pass-through",
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::LeastKv => "least-kv",
            RouterPolicy::SessionAffinity => "session-affinity",
            RouterPolicy::PrefixAffinity => "prefix-affinity",
            RouterPolicy::SloAware => "slo-aware",
        }
    }

    /// Instantiates the router.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterPolicy::PassThrough => Box::new(PassThrough),
            RouterPolicy::RoundRobin => Box::new(RoundRobin { next: 0 }),
            RouterPolicy::LeastOutstanding => Box::new(LeastOutstanding),
            RouterPolicy::LeastKv => Box::new(LeastKv),
            RouterPolicy::SessionAffinity => Box::new(SessionAffinity),
            RouterPolicy::PrefixAffinity => Box::new(PrefixAffinity),
            RouterPolicy::SloAware => Box::new(SloAware),
        }
    }

    /// Looks a policy up by its display name.
    ///
    /// # Errors
    ///
    /// Returns [`cimtpu_units::Error::UnknownPreset`] for anything else.
    pub fn by_name(name: &str) -> cimtpu_units::Result<Self> {
        [
            RouterPolicy::PassThrough,
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::LeastKv,
            RouterPolicy::SessionAffinity,
            RouterPolicy::PrefixAffinity,
            RouterPolicy::SloAware,
        ]
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| cimtpu_units::Error::unknown_preset(format!("router '{name}'")))
    }
}

struct PassThrough;

impl Router for PassThrough {
    fn name(&self) -> &'static str {
        RouterPolicy::PassThrough.name()
    }

    fn route(&mut self, _request: &Request, _replicas: &[ReplicaSnapshot]) -> usize {
        0
    }
}

struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        RouterPolicy::RoundRobin.name()
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let pick = self.next % replicas.len().max(1);
        self.next = self.next.wrapping_add(1);
        pick
    }
}

struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> &'static str {
        RouterPolicy::LeastOutstanding.name()
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .min_by_key(|r| (r.outstanding, r.index))
            .map_or(0, |r| r.index)
    }
}

struct LeastKv;

impl Router for LeastKv {
    fn name(&self) -> &'static str {
        RouterPolicy::LeastKv.name()
    }

    fn route(&mut self, _request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        // total_cmp instead of partial_cmp: occupancy fractions are never
        // NaN today, but a router consulted mid-fault must not be able to
        // panic the simulator on one.
        replicas
            .iter()
            .min_by(|a, b| {
                a.kv_frac
                    .total_cmp(&b.kv_frac)
                    .then(a.outstanding.cmp(&b.outstanding))
                    .then(a.index.cmp(&b.index))
            })
            .map_or(0, |r| r.index)
    }
}

struct SessionAffinity;

impl Router for SessionAffinity {
    fn name(&self) -> &'static str {
        RouterPolicy::SessionAffinity.name()
    }

    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        (splitmix64(request.session) % replicas.len().max(1) as u64) as usize
    }
}

struct PrefixAffinity;

impl Router for PrefixAffinity {
    fn name(&self) -> &'static str {
        RouterPolicy::PrefixAffinity.name()
    }

    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let key = if request.prefix.head_len > 0 {
            // Mix length into the seed so distinct heads that happen to
            // share a seed prefix still spread.
            request.prefix.head_seed ^ request.prefix.head_len.rotate_left(32)
        } else {
            request.session
        };
        (splitmix64(key) % replicas.len().max(1) as u64) as usize
    }
}

struct SloAware;

impl Router for SloAware {
    fn name(&self) -> &'static str {
        RouterPolicy::SloAware.name()
    }

    fn route(&mut self, request: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let rank = request.class.rank();
        replicas
            .iter()
            .min_by_key(|r| (r.class_outstanding[rank], r.outstanding, r.index))
            .map_or(0, |r| r.index)
    }
}

/// One replica's place in the failure lifecycle (see the
/// [module docs](self) on the health view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicaHealth {
    /// Serving normally; routable.
    Up,
    /// Crashed and drained; restarts (enters warmup) at `until`.
    Down {
        /// When the repair completes.
        until: Seconds,
    },
    /// Restarted with cold caches; routable again at `until`.
    Warming {
        /// When warmup ends.
        until: Seconds,
    },
}

/// The driver's view of which replicas can take traffic — a tiny
/// deterministic state machine: `Up → Down → Warming → Up`. Transitions
/// happen only in [`advance`](HealthView::advance), at times the driver
/// controls, so two runs with the same fault timeline see identical
/// health histories.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthView {
    states: Vec<ReplicaHealth>,
    /// Maintained min over every non-`Up` replica's `until` — a function
    /// of `states`, updated on [`mark_down`](HealthView::mark_down) and
    /// recomputed on [`advance`](HealthView::advance), so
    /// [`next_transition`](HealthView::next_transition) is `O(1)` on the
    /// fault-aware drivers' per-event path.
    next: Option<Seconds>,
}

impl HealthView {
    /// Every replica up.
    pub fn all_up(replicas: usize) -> Self {
        HealthView { states: vec![ReplicaHealth::Up; replicas], next: None }
    }

    /// The replica's current state.
    pub fn state(&self, replica: usize) -> ReplicaHealth {
        self.states[replica]
    }

    /// Whether the replica is routable.
    pub fn is_up(&self, replica: usize) -> bool {
        matches!(self.states[replica], ReplicaHealth::Up)
    }

    /// Marks a replica down (crashed); it restarts at `restart_at`.
    pub fn mark_down(&mut self, replica: usize, restart_at: Seconds) {
        self.states[replica] = ReplicaHealth::Down { until: restart_at };
        self.next = Some(self.next.map_or(restart_at, |t| t.min(restart_at)));
    }

    /// The earliest pending transition (a restart or a warmup end), if
    /// any replica is not up — the driver schedules a timeline event
    /// there.
    pub fn next_transition(&self) -> Option<Seconds> {
        self.next
    }

    /// Recomputes the maintained transition min from scratch (after
    /// `advance` moved states around).
    fn recompute_next(&mut self) {
        self.next = self
            .states
            .iter()
            .filter_map(|s| match s {
                ReplicaHealth::Up => None,
                ReplicaHealth::Down { until } | ReplicaHealth::Warming { until } => Some(*until),
            })
            .reduce(Seconds::min);
    }

    /// Applies every transition due at or before `now` (in replica-index
    /// order): a `Down` replica whose repair completed enters `Warming`
    /// for `warmup`, and a warmed replica comes back `Up`. Returns the
    /// replicas that restarted in this call — the driver rebuilds those
    /// as fresh cores (empty allocator, cold caches).
    pub fn advance(&mut self, now: Seconds, warmup: Seconds) -> Vec<usize> {
        let mut restarted = Vec::new();
        for (i, state) in self.states.iter_mut().enumerate() {
            if let ReplicaHealth::Down { until } = *state {
                if now >= until {
                    *state = ReplicaHealth::Warming { until: until + warmup };
                    restarted.push(i);
                }
            }
            if let ReplicaHealth::Warming { until } = *state {
                if now >= until {
                    *state = ReplicaHealth::Up;
                }
            }
        }
        self.recompute_next();
        restarted
    }

    /// Indices of routable replicas, ascending.
    pub fn up_replicas(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&i| self.is_up(i)).collect()
    }
}

/// A completion's finish time ordered by `total_cmp` (times are never NaN
/// in a healthy run, but an ordering that cannot panic keeps the expiry
/// heap total).
#[derive(Debug, Clone, Copy)]
struct FinishKey(f64);

impl PartialEq for FinishKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for FinishKey {}
impl PartialOrd for FinishKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incrementally-maintained router snapshots for the zero-fault colocated
/// driver: the `O(1)`-per-event replacement for rebuilding a
/// [`ReplicaSnapshot`] vector (with an `O(completions)`
/// `outstanding_at` scan per replica) at every arrival.
///
/// The tracker exploits the identity `outstanding_at(t) = pushed −
/// #{completions with finish ≤ t}`: it counts pushes up and expires
/// scheduled completions through a global `(finish, replica)` min-heap as
/// routing time advances. Routing instants are nondecreasing in the
/// discrete-event loop (each arrival is the earliest pending event when
/// it routes), so expiry is a forward-only sweep — with one exception: a
/// stall flush launches a static batch *in the past* (its start is the
/// batch's own arrival window, which can predate already-routed
/// arrivals), and the flushed completions can re-arm closed-loop clients
/// below the tracker's clock. The driver handles that rare case by
/// [`resync`](SnapshotTracker::resync)ing from the cores' completion
/// ledgers instead of advancing. `queued` and `kv_frac` are refreshed
/// from the replica's own `O(1)`/`O(chips)` getters after each event
/// that can move them.
#[derive(Debug)]
pub struct SnapshotTracker {
    snaps: Vec<ReplicaSnapshot>,
    /// Scheduled completions not yet counted out of `outstanding`.
    expiry: BinaryHeap<Reverse<(FinishKey, usize)>>,
    /// The last routing instant (monotone; debug-asserted).
    now: Seconds,
}

impl SnapshotTracker {
    /// A tracker over `replicas` idle replicas.
    pub fn new(replicas: usize) -> Self {
        SnapshotTracker {
            snaps: (0..replicas)
                .map(|index| ReplicaSnapshot {
                    index,
                    outstanding: 0,
                    queued: 0,
                    kv_frac: 0.0,
                    assigned: 0,
                    class_outstanding: [0; 3],
                })
                .collect(),
            expiry: BinaryHeap::new(),
            now: Seconds::ZERO,
        }
    }

    /// The last routing instant.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Moves routing time forward to `t`: completions with `finish <= t`
    /// stop counting as outstanding, matching
    /// [`outstanding_at`](cimtpu_serving::EngineCore::outstanding_at)'s
    /// strict `finish > t` rule. `t` must not precede
    /// [`now`](SnapshotTracker::now) — rewind with
    /// [`resync`](SnapshotTracker::resync) instead.
    pub fn advance_to(&mut self, t: Seconds) {
        debug_assert!(t >= self.now, "routing instants regressed: {t:?} < {:?}", self.now);
        self.now = t;
        while let Some(&Reverse((FinishKey(finish), k))) = self.expiry.peek() {
            if finish > t.get() {
                break;
            }
            self.expiry.pop();
            self.snaps[k].outstanding -= 1;
        }
    }

    /// The current per-replica snapshots (valid for the instant last
    /// passed to [`advance_to`](SnapshotTracker::advance_to)).
    pub fn snapshots(&self) -> &[ReplicaSnapshot] {
        &self.snaps
    }

    /// Rewinds routing time to `t < now` by rebuilding the outstanding
    /// sets from the cores' completion ledgers — the slow exact path for
    /// the one event that moves routing instants backwards (a stall
    /// flush, see the type docs). `O(total completions)`, paid only when
    /// a regression actually happens; `assigned` counts are preserved
    /// (they are cumulative, not time-indexed).
    pub fn resync(&mut self, t: Seconds, cores: &[EngineCore<'_>]) {
        self.now = t;
        self.expiry.clear();
        for (k, core) in cores.iter().enumerate() {
            let s = &mut self.snaps[k];
            s.outstanding = core.outstanding_at(t);
            s.queued = core.queued();
            s.kv_frac = core.kv_frac();
            for c in core.completions() {
                if c.finish > t {
                    self.expiry.push(Reverse((FinishKey(c.finish.get()), k)));
                }
            }
        }
    }

    /// Refreshes every snapshot's per-class outstanding split from the
    /// cores' ledgers at the current routing instant. Multi-tenant
    /// drivers call this before consulting a router; single-tenant runs
    /// skip it (the zeros stand, and no policy reads them), keeping the
    /// tracker's `O(1)`-per-event path intact. `O(replicas × residents +
    /// future completions)` per call — paid only when tenancy is armed.
    pub fn refresh_classes(&mut self, cores: &[EngineCore<'_>]) {
        for (k, core) in cores.iter().enumerate() {
            self.snaps[k].class_outstanding = core.outstanding_by_class_at(self.now);
        }
    }

    /// Records a request pushed into replica `k` (whose queue depth is
    /// now `queued`).
    pub fn on_push(&mut self, k: usize, queued: u64) {
        let s = &mut self.snaps[k];
        s.assigned += 1;
        s.outstanding += 1;
        s.queued = queued;
    }

    /// Records a scheduling step on replica `k`: refreshed queue depth
    /// and KV occupancy, plus the completions the step scheduled (each
    /// stays outstanding until routing time passes its finish).
    pub fn on_step(&mut self, k: usize, queued: u64, kv_frac: f64, new: &[Completion]) {
        let s = &mut self.snaps[k];
        s.queued = queued;
        s.kv_frac = kv_frac;
        for c in new {
            if c.finish.get() > self.now.get() {
                self.expiry.push(Reverse((FinishKey(c.finish.get()), k)));
            } else {
                // Already in the past at the current routing instant:
                // it would expire on the next advance anyway.
                s.outstanding -= 1;
            }
        }
    }
}

/// A stable 64-bit finalizer (splitmix64), so nearby session ids spread
/// across replicas while every run hashes identically.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(index: usize, outstanding: u64, kv_frac: f64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            index,
            outstanding,
            queued: 0,
            kv_frac,
            assigned: 0,
            class_outstanding: [0; 3],
        }
    }

    fn req(id: u64, session: u64) -> Request {
        Request {
            id,
            arrival_s: 0.0,
            prompt_len: 8,
            steps: 4,
            session,
            tenant: 0,
            class: cimtpu_serving::SloClass::Standard,
            prefix: cimtpu_serving::PromptPrefix::UNIQUE,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = RouterPolicy::RoundRobin.build();
        let snaps = [snap(0, 0, 0.0), snap(1, 0, 0.0), snap(2, 0, 0.0)];
        let picks: Vec<usize> = (0..6).map(|i| r.route(&req(i, i), &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn pass_through_always_zero() {
        let mut r = RouterPolicy::PassThrough.build();
        let snaps = [snap(0, 9, 0.9), snap(1, 0, 0.0)];
        assert_eq!(r.route(&req(0, 0), &snaps), 0);
    }

    #[test]
    fn least_outstanding_picks_min_with_index_ties() {
        let mut r = RouterPolicy::LeastOutstanding.build();
        assert_eq!(r.route(&req(0, 0), &[snap(0, 3, 0.0), snap(1, 1, 0.0), snap(2, 1, 0.0)]), 1);
        assert_eq!(r.route(&req(0, 0), &[snap(0, 0, 0.0), snap(1, 0, 0.0)]), 0);
    }

    #[test]
    fn least_kv_breaks_ties_by_outstanding() {
        let mut r = RouterPolicy::LeastKv.build();
        assert_eq!(r.route(&req(0, 0), &[snap(0, 1, 0.8), snap(1, 5, 0.2)]), 1);
        assert_eq!(r.route(&req(0, 0), &[snap(0, 5, 0.5), snap(1, 1, 0.5)]), 1);
        assert_eq!(r.route(&req(0, 0), &[snap(0, 1, 0.5), snap(1, 1, 0.5)]), 0);
    }

    #[test]
    fn session_affinity_is_sticky_and_spreads() {
        let mut r = RouterPolicy::SessionAffinity.build();
        let snaps = [snap(0, 0, 0.0), snap(1, 0, 0.0), snap(2, 0, 0.0), snap(3, 0, 0.0)];
        // Same session always lands on the same replica, whatever the id.
        for session in 0..16 {
            let first = r.route(&req(0, session), &snaps);
            for id in 1..4 {
                assert_eq!(r.route(&req(id, session), &snaps), first);
            }
        }
        // Different sessions cover more than one replica.
        let covered: std::collections::HashSet<usize> =
            (0..16).map(|s| r.route(&req(0, s), &snaps)).collect();
        assert!(covered.len() > 1, "16 sessions all hashed to one replica");
    }

    #[test]
    fn prefix_affinity_is_sticky_per_head_and_falls_back_to_session() {
        let mut r = RouterPolicy::PrefixAffinity.build();
        let snaps = [snap(0, 0, 0.0), snap(1, 0, 0.0), snap(2, 0, 0.0), snap(3, 0, 0.0)];
        let headed = |id: u64, seed: u64| Request {
            prefix: cimtpu_serving::PromptPrefix { head_seed: seed, head_len: 64 },
            ..req(id, id)
        };
        // Same head always lands together, whatever the id/session; load
        // never enters the decision.
        for seed in 0..16 {
            let first = r.route(&headed(0, seed), &snaps);
            let busy = [snap(0, 99, 0.9), snap(1, 99, 0.9), snap(2, 99, 0.9), snap(3, 99, 0.9)];
            for id in 1..4 {
                assert_eq!(r.route(&headed(id, seed), &busy), first);
            }
        }
        // Distinct heads cover more than one replica.
        let covered: std::collections::HashSet<usize> =
            (0..16).map(|s| r.route(&headed(0, s), &snaps)).collect();
        assert!(covered.len() > 1, "16 heads all hashed to one replica");
        // No shared head: behaves exactly like session affinity.
        let mut sa = RouterPolicy::SessionAffinity.build();
        for session in 0..8 {
            assert_eq!(
                r.route(&req(0, session), &snaps),
                sa.route(&req(0, session), &snaps),
            );
        }
    }

    #[test]
    fn slo_aware_routes_by_own_class_then_total_load() {
        use cimtpu_serving::SloClass;
        let mut r = RouterPolicy::SloAware.build();
        let classed = |index: usize, outstanding: u64, split: [u64; 3]| ReplicaSnapshot {
            class_outstanding: split,
            ..snap(index, outstanding, 0.0)
        };
        let by_class = |class: SloClass| Request { class, ..req(0, 0) };
        // Replica 0 is drowning in batch work but idle on interactive;
        // interactive traffic still lands there, batch traffic avoids it.
        let snaps = [classed(0, 9, [0, 0, 9]), classed(1, 3, [2, 0, 1])];
        assert_eq!(r.route(&by_class(SloClass::Interactive), &snaps), 0);
        assert_eq!(r.route(&by_class(SloClass::Batch), &snaps), 1);
        // Equal own-class load: total outstanding breaks the tie.
        let snaps = [classed(0, 9, [1, 0, 8]), classed(1, 3, [1, 0, 2])];
        assert_eq!(r.route(&by_class(SloClass::Interactive), &snaps), 1);
        // All-zero splits (a single-tenant run): degenerates to
        // least-outstanding.
        let snaps = [snap(0, 3, 0.0), snap(1, 1, 0.0), snap(2, 1, 0.0)];
        let mut lo = RouterPolicy::LeastOutstanding.build();
        assert_eq!(r.route(&req(0, 0), &snaps), lo.route(&req(0, 0), &snaps));
    }

    #[test]
    fn health_view_walks_down_warming_up() {
        let mut h = HealthView::all_up(3);
        assert!(h.is_up(1));
        assert_eq!(h.next_transition(), None);
        h.mark_down(1, Seconds::new(5.0));
        assert!(!h.is_up(1));
        assert_eq!(h.up_replicas(), vec![0, 2]);
        assert_eq!(h.next_transition(), Some(Seconds::new(5.0)));
        // Too early: nothing moves.
        assert!(h.advance(Seconds::new(4.0), Seconds::new(1.0)).is_empty());
        // Repair completes: the replica restarts but warms up first.
        assert_eq!(h.advance(Seconds::new(5.0), Seconds::new(1.0)), vec![1]);
        assert_eq!(h.state(1), ReplicaHealth::Warming { until: Seconds::new(6.0) });
        assert!(!h.is_up(1), "warming replicas take no traffic");
        assert_eq!(h.next_transition(), Some(Seconds::new(6.0)));
        // Warmup ends: routable again; no second "restart" is reported.
        assert!(h.advance(Seconds::new(6.0), Seconds::new(1.0)).is_empty());
        assert!(h.is_up(1));
        assert_eq!(h.up_replicas(), vec![0, 1, 2]);
        // A zero warmup goes Down → Up in one call, still reporting the
        // restart.
        h.mark_down(0, Seconds::new(7.0));
        assert_eq!(h.advance(Seconds::new(7.0), Seconds::ZERO), vec![0]);
        assert!(h.is_up(0));
    }

    #[test]
    fn least_kv_survives_nan_occupancy() {
        // A NaN must not panic routing mid-fault; the exact pick is
        // unimportant, determinism and in-range are.
        let mut r = RouterPolicy::LeastKv.build();
        let snaps = [snap(0, 1, f64::NAN), snap(1, 1, 0.5)];
        let pick = r.route(&req(0, 0), &snaps);
        assert!(pick < 2);
        assert_eq!(pick, r.route(&req(1, 1), &snaps));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            RouterPolicy::PassThrough,
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::LeastKv,
            RouterPolicy::SessionAffinity,
            RouterPolicy::PrefixAffinity,
            RouterPolicy::SloAware,
        ] {
            assert_eq!(RouterPolicy::by_name(p.name()).unwrap(), p);
            assert_eq!(p.build().name(), p.name());
        }
        assert!(RouterPolicy::by_name("nope").is_err());
    }
}
