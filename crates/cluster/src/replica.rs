//! Replica groups: one serving engine's worth of hardware and policy,
//! named so fleet reports can attribute work.

use cimtpu_core::TpuConfig;
use cimtpu_serving::{BatchPolicy, MemoryConfig, Parallelism, ServingEngine, ServingModel};
use cimtpu_units::Result;

/// One replica group of the fleet: a [`ServingEngine`] configuration
/// (chip, model, chip organization, batching policy, KV budget) plus a
/// display name. Heterogeneity is the point — every replica may use a
/// different chip *and* a different model, and the router balances across
/// them.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Display name (report rows, per-replica `ServingReport` labels).
    pub name: String,
    /// Chip configuration.
    pub chip: TpuConfig,
    /// Hosted model.
    pub model: ServingModel,
    /// Chip organization within the replica (replicated executors or one
    /// tensor-parallel ring).
    pub parallelism: Parallelism,
    /// Batching policy (for disaggregated pools, its
    /// [`max_concurrency`](BatchPolicy::max_concurrency) caps the pool's
    /// batch size).
    pub policy: BatchPolicy,
    /// KV-cache budget / paging / chunked-prefill configuration.
    pub memory: MemoryConfig,
}

impl ReplicaSpec {
    /// A replica named `name` serving `model` on `chip` with the
    /// defaults: one chip, continuous batching up to 8 requests,
    /// unlimited KV.
    pub fn new(name: impl Into<String>, chip: TpuConfig, model: ServingModel) -> Self {
        ReplicaSpec {
            name: name.into(),
            chip,
            model,
            parallelism: Parallelism::Replicated { chips: 1 },
            policy: BatchPolicy::Continuous { max_batch: 8 },
            memory: MemoryConfig::unlimited(),
        }
    }

    /// Replaces the batching policy.
    #[must_use]
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the chip organization.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Replaces the memory configuration.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Physical chips this replica occupies.
    pub fn chips(&self) -> u64 {
        self.parallelism.chips()
    }

    /// Builds the serving-engine configuration this replica runs.
    ///
    /// # Errors
    ///
    /// Returns an error for zero chips.
    pub fn engine(&self) -> Result<ServingEngine> {
        Ok(ServingEngine::new(
            self.chip.clone(),
            self.model.clone(),
            self.parallelism,
            self.policy,
        )?
        .with_memory(self.memory))
    }
}
