//! Disaggregated prefill/decode serving (DistServe/Splitwise-style).
//!
//! # Cost model
//!
//! Requests route (via the cluster's router) to a **prefill pool**
//! replica, which batches queued prompts FCFS — up to the replica
//! policy's [`max_concurrency`](cimtpu_serving::BatchPolicy::max_concurrency),
//! padded to the longest member — and prices the grouped prefill through
//! the replica's [`PhasePricer`]. The prompt's KV blocks are reserved in
//! the prefill replica's paged allocator for the whole residency:
//! ingestion *and* the outbound transfer (a prompt that does not fit
//! waits for earlier caches to finish migrating).
//!
//! When a prefill finishes (producing the request's first token — TTFT in
//! a disaggregated fleet is prefill completion, before any transfer), the
//! KV cache migrates to a **decode pool** replica chosen by the decode
//! router. The transfer moves whole paged blocks —
//! [`KvFootprint::handoff_bytes`] of the *unsharded* cache — over the
//! [`InterconnectSpec`]: each prefill replica owns one egress link, so
//! its transfers serialize (`start = max(prefill end, link free)`), and
//! every byte pays the link's bandwidth, hop latency, and pJ/byte energy.
//!
//! Decode admission is gated by the target replica's paged allocator:
//! the handed-off cache plus the request's worst-case decode growth
//! (`prompt + steps` tokens) must fit before the request joins the
//! decode batch, so the decode pool never preempts; arrivals that do not
//! fit wait in the replica's pending queue (charged to the queue-full
//! clock). Decode then proceeds continuous-batching style: one step per
//! round at the live batch size and the longest member context.
//!
//! # Faults
//!
//! A non-empty [`FaultPlan`] switches to the
//! failure-aware driver. Two fault kinds apply here:
//!
//! - **Decode-replica crashes.** Everything resident on or inbound to
//!   the replica is lost and its paged allocator is emptied; the replica
//!   is marked down, repaired, and warmed up before the decode router
//!   sees it again. Faults land on scheduling-round boundaries: a decode
//!   round that started before the crash completes atomically and its
//!   completions stand. Each lost request retries under the plan's
//!   [`RecoveryPolicy`](crate::fault::RecoveryPolicy): if the source
//!   prefill replica still holds the cache (its post-transfer release
//!   has not fired), the retry **re-hands-off** — a second transfer,
//!   always cheaper than recomputing the prefill *and* transferring —
//!   otherwise the request **recomputes** through the prefill pool.
//!   Prefill replicas cannot crash (a crash event indexes the decode
//!   pool), and stragglers are a colocated-fleet fault.
//! - **Degraded links.** While a window is open, a transfer started
//!   inside it pays `wire / bandwidth_factor` (hop latency unchanged)
//!   and `energy × energy_factor` — retransmission-style degradation.

use std::collections::HashMap;
use std::rc::Rc;

use cimtpu_kv::{KvFootprint, PagedKvAllocator};
use cimtpu_obs::{EventKind, SharedRecorder, TraceSink as _};
use cimtpu_multi::RingTopology;
use cimtpu_serving::{
    ActionHeap, ArrivalStream, Completion, EngineSession, Parallelism, PhasePricer, Request,
    ServingModel, TrafficSpec,
};
use cimtpu_units::{Bandwidth, Bytes, Error, Joules, Result, Seconds};

use crate::engine::{release_client, tenant_tag, Tenancy};
use crate::fault::{AvailabilityStats, FaultEvent, FaultPlan};
use crate::replica::ReplicaSpec;
use crate::report::{ClusterReport, KvTransferStats, ReplicaUtilization};
use crate::router::{HealthView, ReplicaHealth, ReplicaSnapshot, RouterPolicy};
use crate::ClusterRun;

/// The link KV caches migrate over between prefill and decode replicas:
/// bandwidth + per-transfer hop latency from the `cimtpu-multi` link
/// model, plus a serdes energy cost per byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// Link bandwidth.
    pub link_bandwidth: Bandwidth,
    /// Software/serialization latency per transfer.
    pub hop_latency: Seconds,
    /// Link energy per byte moved, in picojoules (serdes + switching;
    /// a few pJ/byte is typical of short-reach chip-to-chip links).
    pub energy_pj_per_byte: f64,
}

impl InterconnectSpec {
    /// An ICI-class link: 100 GB/s, 1 µs hop latency, 5 pJ/byte.
    pub fn ici() -> Self {
        InterconnectSpec {
            link_bandwidth: Bandwidth::from_gb_per_s(100.0),
            hop_latency: Seconds::from_micros(1.0),
            energy_pj_per_byte: 5.0,
        }
    }

    /// Derives the link parameters from a `cimtpu-multi` ring topology
    /// (one link's bandwidth, the ring's hop latency).
    pub fn from_ring(ring: &RingTopology, energy_pj_per_byte: f64) -> Self {
        InterconnectSpec {
            link_bandwidth: ring.link_bandwidth(),
            // One neighbour hop minus the pure wire time = the ring's
            // per-hop latency constant.
            hop_latency: ring.p2p_time(Bytes::ZERO),
            energy_pj_per_byte,
        }
    }

    /// Time to move `bytes` over the link.
    pub fn transfer_time(&self, bytes: Bytes) -> Seconds {
        self.link_bandwidth.transfer_time(bytes) + self.hop_latency
    }

    /// Energy to move `bytes` over the link.
    pub fn transfer_energy(&self, bytes: Bytes) -> Joules {
        Joules::new(bytes.get() as f64 * self.energy_pj_per_byte * 1e-12)
    }
}

/// One prefill-pool replica: an FCFS prompt-ingestion engine.
struct PrefillUnit<'a> {
    pricer: PhasePricer<'a>,
    alloc: PagedKvAllocator,
    cap: usize,
    free_at: Seconds,
    queue: std::collections::VecDeque<Request>,
    /// KV holdings awaiting their outbound transfer, sorted by release
    /// time (ties by request id — transfer scheduling order).
    pending_release: Vec<(Seconds, u64)>,
    /// When this replica's egress link frees.
    link_free: Seconds,
    busy: Seconds,
    energy: Joules,
    prefills: u64,
}

/// A finished prefill group: members (in admission order) whose caches
/// are ready to migrate at `end`; the batch occupied the executor from
/// `start` (the flight recorder's prefill span).
struct PrefillBatch {
    members: Vec<Request>,
    start: Seconds,
    end: Seconds,
}

impl<'a> PrefillUnit<'a> {
    /// When this unit can start its next prefill batch: the head of the
    /// queue has arrived, the executor is free, and — under a bounded KV
    /// budget — enough earlier caches have migrated out for the head
    /// prompt to fit.
    fn candidate(&self) -> Option<Seconds> {
        let head = self.queue.front()?;
        let base = self.free_at.max(head.arrival());
        let Some(_) = self.alloc.capacity_blocks() else { return Some(base) };
        let need = self.alloc.blocks_for(head.prompt_len);
        let mut free = self.alloc.free_blocks().unwrap_or(u64::MAX);
        let mut start = base;
        for &(t, id) in &self.pending_release {
            if free >= need {
                break;
            }
            free += self.alloc.held_blocks(id);
            start = start.max(t);
        }
        Some(start)
    }

    /// Releases holdings whose transfer finished by `now`.
    fn apply_releases(&mut self, now: Seconds) {
        let alloc = &mut self.alloc;
        self.pending_release.retain(|&(t, id)| {
            if t <= now {
                alloc.release(id);
                false
            } else {
                true
            }
        });
    }

    /// Runs one FCFS prefill batch at the candidate time.
    fn step(&mut self) -> Result<PrefillBatch> {
        // A missing candidate is a driver bug, but under injected faults
        // a typed error beats taking the whole simulator down.
        let start = self
            .candidate()
            .ok_or_else(|| Error::internal("prefill step with an empty queue"))?;
        if let Some(cap) = self.alloc.capacity_blocks() {
            let head = self
                .queue
                .front()
                .ok_or_else(|| Error::internal("prefill candidate with an empty queue"))?;
            if self.alloc.blocks_for(head.prompt_len) > cap {
                return Err(Error::invalid_config(format!(
                    "prefill KV budget too small: request {} needs {} blocks but capacity \
                     is {cap}",
                    head.id,
                    self.alloc.blocks_for(head.prompt_len),
                )));
            }
        }
        self.apply_releases(start);
        let mut members = Vec::new();
        while members.len() < self.cap {
            let Some(r) = self.queue.front() else { break };
            if r.arrival() > start || !self.alloc.try_grow(r.id, r.prompt_len) {
                break;
            }
            members.push(
                self.queue
                    .pop_front()
                    .ok_or_else(|| Error::internal("prefill queue emptied mid-batch"))?,
            );
        }
        let b = members.len() as u64;
        let padded = members
            .iter()
            .map(|r| r.prompt_len)
            .max()
            .ok_or_else(|| Error::internal("the candidate start admits the queue head"))?;
        let cost = self.pricer.prefill(b, padded)?;
        let end = start + cost.latency;
        self.busy += cost.latency;
        self.energy += cost.total_energy();
        self.prefills += b;
        self.free_at = end;
        Ok(PrefillBatch { members, start, end })
    }

    fn snapshot(&self, index: usize, assigned: u64, classed: bool) -> ReplicaSnapshot {
        let mut class_outstanding = [0u64; 3];
        if classed {
            for r in &self.queue {
                class_outstanding[r.class.rank()] += 1;
            }
        }
        ReplicaSnapshot {
            index,
            outstanding: self.queue.len() as u64,
            queued: self.queue.len() as u64,
            kv_frac: kv_frac(&self.alloc),
            assigned,
            class_outstanding,
        }
    }
}

/// A request whose cache is migrating to (or queued at) a decode replica.
struct PendingDecode {
    req: Request,
    first_token: Seconds,
    ready: Seconds,
}

/// A request decoding on a decode replica.
struct DecodeSlot {
    req: Request,
    first_token: Seconds,
    done: u64,
}

/// One decode-pool replica: continuous-batching decode over handed-off
/// caches, admission gated by the paged allocator (worst-case
/// reservation, so the pool never preempts).
struct DecodeUnit<'a> {
    pricer: PhasePricer<'a>,
    alloc: PagedKvAllocator,
    cap: usize,
    t: Seconds,
    pending: Vec<PendingDecode>,
    active: Vec<DecodeSlot>,
    busy: Seconds,
    energy: Joules,
    queue_full: Seconds,
    completed: u64,
}

impl<'a> DecodeUnit<'a> {
    fn candidate(&self) -> Option<Seconds> {
        if !self.active.is_empty() {
            return Some(self.t);
        }
        self.pending
            .iter()
            .map(|p| p.ready)
            .min_by(|a, b| a.get().total_cmp(&b.get()))
            .map(|ready| self.t.max(ready))
    }

    /// One decode round: admit ready transfers (KV permitting), then one
    /// generation step for the whole batch.
    fn step(&mut self) -> Result<Vec<Completion>> {
        let start = self
            .candidate()
            .ok_or_else(|| Error::internal("decode step with nothing pending"))?;
        self.t = start;
        let round_start = self.t;
        let mut blocked = false;
        while self.active.len() < self.cap {
            // The ready transfer with the earliest arrival (ties by id).
            let Some(pos) = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.ready <= self.t)
                .min_by(|a, b| {
                    a.1.ready
                        .get()
                        .total_cmp(&b.1.ready.get())
                        .then(a.1.req.id.cmp(&b.1.req.id))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            // Worst-case reservation: the handed-off prompt cache plus
            // every token the request will generate.
            let p = &self.pending[pos];
            if self.alloc.try_grow(p.req.id, p.req.prompt_len + p.req.steps) {
                let p = self.pending.remove(pos);
                self.active.push(DecodeSlot { req: p.req, first_token: p.first_token, done: 0 });
            } else {
                blocked = true;
                break;
            }
        }
        if self.active.is_empty() {
            debug_assert!(blocked, "the candidate time has a ready transfer");
            return Err(Error::invalid_config(format!(
                "decode KV budget too small: a request's worst case needs more than the {} \
                 block(s) of {} tokens available",
                self.alloc.capacity_blocks().unwrap_or(0),
                self.alloc.block_tokens(),
            )));
        }
        let b = self.active.len() as u64;
        let ctx = self
            .active
            .iter()
            .map(|s| s.req.prompt_len + s.done)
            .max()
            .ok_or_else(|| Error::internal("decode round with an empty batch"))?
            + 1;
        let cost = self.pricer.step(b, ctx)?;
        self.t += cost.latency;
        self.busy += cost.latency;
        self.energy += cost.total_energy();
        let now = self.t;
        for slot in &mut self.active {
            slot.done += 1;
        }
        let mut finished = Vec::new();
        let alloc = &mut self.alloc;
        self.active.retain(|slot| {
            if slot.done >= slot.req.steps {
                alloc.release(slot.req.id);
                finished.push(Completion {
                    id: slot.req.id,
                    arrival: slot.req.arrival(),
                    first_token: slot.first_token,
                    finish: now,
                    steps: slot.req.steps,
                });
                false
            } else {
                true
            }
        });
        self.completed += finished.len() as u64;
        if blocked {
            self.queue_full += self.t - round_start;
        }
        Ok(finished)
    }

    fn snapshot(&self, index: usize, assigned: u64, classed: bool) -> ReplicaSnapshot {
        let mut class_outstanding = [0u64; 3];
        if classed {
            for p in &self.pending {
                class_outstanding[p.req.class.rank()] += 1;
            }
            for s in &self.active {
                class_outstanding[s.req.class.rank()] += 1;
            }
        }
        ReplicaSnapshot {
            index,
            outstanding: (self.pending.len() + self.active.len()) as u64,
            queued: self.pending.len() as u64,
            kv_frac: kv_frac(&self.alloc),
            assigned,
            class_outstanding,
        }
    }
}

fn kv_frac(alloc: &PagedKvAllocator) -> f64 {
    match alloc.capacity_blocks() {
        Some(c) if c > 0 => alloc.used_blocks() as f64 / c as f64,
        _ => 0.0,
    }
}

/// Checks a pool replica is usable in a disaggregated fleet and returns
/// its transformer config.
fn validate_pool_replica<'a>(
    spec: &'a ReplicaSpec,
    role: &str,
) -> Result<&'a cimtpu_models::TransformerConfig> {
    let ServingModel::Llm(model) = &spec.model else {
        return Err(Error::invalid_config(format!(
            "disaggregated serving needs an LLM (a prefill phase); {role} replica '{}' \
             hosts a DiT",
            spec.name
        )));
    };
    if spec.memory.chunk_tokens.is_some() {
        return Err(Error::invalid_config(format!(
            "chunked prefill is not supported in disaggregated pools ({role} replica '{}')",
            spec.name
        )));
    }
    if spec.memory.prefix_sharing {
        return Err(Error::invalid_config(format!(
            "prefix sharing is not supported in disaggregated pools ({role} replica '{}'); \
             use a colocated fleet with RouterPolicy::PrefixAffinity",
            spec.name
        )));
    }
    if matches!(spec.parallelism, Parallelism::Replicated { chips } if chips != 1) {
        return Err(Error::invalid_config(format!(
            "{role} replica '{}' uses {} replicated chips: give the pool more replicas \
             instead (tensor-parallel rings are fine)",
            spec.name,
            spec.chips()
        )));
    }
    Ok(model)
}

/// Tracks and gauge series for both pools: one track per replica (the
/// prefill pool first, then the decode pool), `[queued, kv_frac]` gauges
/// per unit, and a control track for fleet-level events.
struct PoolTrace {
    rec: SharedRecorder,
    ptracks: Vec<u32>,
    dtracks: Vec<u32>,
    pseries: Vec<[usize; 2]>,
    dseries: Vec<[usize; 2]>,
    control: u32,
}

impl PoolTrace {
    fn attach(rec: &SharedRecorder, prefill: &[ReplicaSpec], decode: &[ReplicaSpec]) -> PoolTrace {
        let mut r = rec.borrow_mut();
        let series = |specs: &[ReplicaSpec], r: &mut cimtpu_obs::Recorder| {
            specs
                .iter()
                .map(|s| {
                    [
                        r.gauge_series(&format!("{}/queued", s.name)),
                        r.gauge_series(&format!("{}/kv_frac", s.name)),
                    ]
                })
                .collect()
        };
        let ptracks = prefill.iter().map(|s| r.track(&s.name)).collect();
        let dtracks = decode.iter().map(|s| r.track(&s.name)).collect();
        let pseries = series(prefill, &mut r);
        let dseries = series(decode, &mut r);
        let control = r.track("control");
        drop(r);
        PoolTrace { rec: Rc::clone(rec), ptracks, dtracks, pseries, dseries, control }
    }

    /// Samples a decode unit's queue depth and KV occupancy at `t`.
    fn sample_decode(&self, j: usize, t: Seconds, unit: &DecodeUnit<'_>) {
        let mut rec = self.rec.borrow_mut();
        rec.sample(self.dseries[j][0], t.get(), (unit.pending.len() + unit.active.len()) as f64);
        rec.sample(self.dseries[j][1], t.get(), kv_frac(&unit.alloc));
    }

    /// Samples a prefill unit's queue depth and KV occupancy at `t`.
    fn sample_prefill(&self, i: usize, t: Seconds, unit: &PrefillUnit<'_>) {
        let mut rec = self.rec.borrow_mut();
        rec.sample(self.pseries[i][0], t.get(), unit.queue.len() as f64);
        rec.sample(self.pseries[i][1], t.get(), kv_frac(&unit.alloc));
    }
}

#[allow(clippy::too_many_arguments)] // one call site, from the engine dispatch
pub(crate) fn run_disaggregated(
    prefill: &[ReplicaSpec],
    decode: &[ReplicaSpec],
    router: RouterPolicy,
    decode_router: RouterPolicy,
    interconnect: InterconnectSpec,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    plan: &FaultPlan,
    tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    if plan.is_empty() {
        // Zero-fault runs take the untouched driver, bit-for-bit.
        run_disaggregated_plain(
            prefill, decode, router, decode_router, interconnect, label, traffic, slo_ms, tenancy,
            recorder,
        )
    } else {
        run_disaggregated_faulty(
            prefill, decode, router, decode_router, interconnect, label, traffic, slo_ms, plan,
            tenancy, recorder,
        )
    }
}

#[allow(clippy::too_many_arguments)] // one call site, from the dispatch above
fn run_disaggregated_plain(
    prefill: &[ReplicaSpec],
    decode: &[ReplicaSpec],
    router: RouterPolicy,
    decode_router: RouterPolicy,
    interconnect: InterconnectSpec,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    // The pools run FCFS/continuous-batching queues, not `EngineCore`, so
    // a multi-tenant run keeps tenant identity at the traffic and report
    // level: classed router snapshots, tagged trace events, and the
    // per-tenant ledger — no WFQ inside the pools.
    let classed = tenancy.as_ref().is_some_and(Tenancy::multi);
    let trace = recorder.map(|rec| PoolTrace::attach(rec, prefill, decode));
    let reference = validate_pool_replica(&prefill[0], "prefill")?.clone();
    let pool_members = prefill
        .iter()
        .map(|s| (s, "prefill"))
        .chain(decode.iter().map(|s| (s, "decode")));
    for (spec, role) in pool_members {
        let model = validate_pool_replica(spec, role)?;
        if *model != reference {
            return Err(Error::invalid_config(format!(
                "disaggregated pools must host one common model: '{}' hosts {}, \
                 expected {}",
                spec.name,
                model.name(),
                reference.name()
            )));
        }
    }
    // The cache that crosses the wire is the full (unsharded) footprint,
    // whatever the pool sharding.
    let full_fp = KvFootprint::of(&reference);

    let p_sessions: Vec<EngineSession> = prefill
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let d_sessions: Vec<EngineSession> = decode
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let mut punits: Vec<PrefillUnit<'_>> = p_sessions
        .iter()
        .zip(prefill)
        .map(|(s, spec)| {
            Ok(PrefillUnit {
                pricer: s.pricer(),
                alloc: s.allocator()?,
                cap: spec.policy.max_concurrency() as usize,
                free_at: Seconds::ZERO,
                queue: std::collections::VecDeque::new(),
                pending_release: Vec::new(),
                link_free: Seconds::ZERO,
                busy: Seconds::ZERO,
                energy: Joules::ZERO,
                prefills: 0,
            })
        })
        .collect::<Result<_>>()?;
    let mut dunits: Vec<DecodeUnit<'_>> = d_sessions
        .iter()
        .zip(decode)
        .map(|(s, spec)| {
            Ok(DecodeUnit {
                pricer: s.pricer(),
                alloc: s.allocator()?,
                cap: spec.policy.max_concurrency() as usize,
                t: Seconds::ZERO,
                pending: Vec::new(),
                active: Vec::new(),
                busy: Seconds::ZERO,
                energy: Joules::ZERO,
                queue_full: Seconds::ZERO,
                completed: 0,
            })
        })
        .collect::<Result<_>>()?;

    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let mut arouter = router.build();
    let mut drouter = decode_router.build();
    let mut p_assigned = vec![0u64; prefill.len()];
    let mut d_assigned = vec![0u64; decode.len()];
    let mut transfers = KvTransferStats::default();
    let mut completions: Vec<Completion> = Vec::new();

    // One event queue spans both pools: prefill unit `i` owns slot `i`,
    // decode unit `j` slot `prefill.len() + j`, so the heap's
    // (time, lowest-slot) order reproduces the old scan's
    // arrival → prefill → decode, lowest-index tie-break exactly.
    // Arrivals are compared outside the heap and win ties.
    let pn = punits.len();
    let mut heap = ActionHeap::new(pn + dunits.len());
    for (i, u) in punits.iter().enumerate() {
        heap.set(i, u.candidate());
    }
    for (j, u) in dunits.iter().enumerate() {
        heap.set(pn + j, u.candidate());
    }
    // Router-view scratch, reused across events instead of collected anew.
    let mut psnaps: Vec<ReplicaSnapshot> = Vec::with_capacity(punits.len());
    let mut dsnaps: Vec<ReplicaSnapshot> = Vec::with_capacity(dunits.len());

    loop {
        let unit_at = heap.peek();
        let chosen: Option<(u8, usize)> = match (stream.peek(), unit_at) {
            (Some(ta), act) if act.is_none_or(|(_, t)| ta <= t) => Some((0, 0)),
            (_, Some((slot, _))) => {
                Some(if slot < pn { (1, slot) } else { (2, slot - pn) })
            }
            (_, None) => None,
        };
        let Some((class, idx)) = chosen else {
            if stream.exhausted() {
                break;
            }
            return Err(Error::invalid_config(
                "disaggregated driver stalled: requests pending but no unit can act",
            ));
        };
        match class {
            0 => {
                let request = stream.pop();
                psnaps.clear();
                psnaps.extend(
                    punits.iter().enumerate().map(|(i, u)| u.snapshot(i, p_assigned[i], classed)),
                );
                let k = arouter.route(&request, &psnaps).min(punits.len() - 1);
                p_assigned[k] += 1;
                if let Some(tr) = &trace {
                    tr.rec.borrow_mut().request_arrival_for(
                        tr.ptracks[k],
                        request.id,
                        request.arrival_s,
                        tenant_tag(&tenancy, request.id),
                    );
                }
                punits[k].queue.push_back(request);
                if let Some(tr) = &trace {
                    tr.sample_prefill(k, request.arrival(), &punits[k]);
                }
                heap.set(k, punits[k].candidate());
            }
            1 => {
                let batch = punits[idx].step()?;
                for req in batch.members {
                    // Route the handoff, serialize it on this replica's
                    // egress link, and gate the decode admission on the
                    // target's allocator (via its pending queue).
                    dsnaps.clear();
                    dsnaps.extend(
                        dunits
                            .iter()
                            .enumerate()
                            .map(|(i, u)| u.snapshot(i, d_assigned[i], classed)),
                    );
                    let k = drouter.route(&req, &dsnaps).min(dunits.len() - 1);
                    d_assigned[k] += 1;
                    let bytes =
                        full_fp.handoff_bytes(req.prompt_len, punits[idx].alloc.block_tokens());
                    let duration = interconnect.transfer_time(bytes);
                    let t_start = batch.end.max(punits[idx].link_free);
                    let t_end = t_start + duration;
                    punits[idx].link_free = t_end;
                    punits[idx].pending_release.push((t_end, req.id));
                    transfers.record(bytes.get(), duration, interconnect.transfer_energy(bytes));
                    if let Some(tr) = &trace {
                        let mut rec = tr.rec.borrow_mut();
                        rec.span(
                            tr.ptracks[idx],
                            EventKind::Prefill,
                            req.id,
                            batch.start.get(),
                            batch.end.get(),
                        );
                        rec.span(
                            tr.ptracks[idx],
                            EventKind::KvHandoff,
                            req.id,
                            t_start.get(),
                            t_end.get(),
                        );
                    }
                    dunits[k].pending.push(PendingDecode {
                        req,
                        first_token: batch.end,
                        ready: t_end,
                    });
                    heap.set(pn + k, dunits[k].candidate());
                }
                if let Some(tr) = &trace {
                    tr.sample_prefill(idx, batch.end, &punits[idx]);
                }
                heap.set(idx, punits[idx].candidate());
            }
            _ => {
                let finished = dunits[idx].step()?;
                heap.set(pn + idx, dunits[idx].candidate());
                for c in &finished {
                    stream.on_complete(c);
                }
                if let Some(tr) = &trace {
                    {
                        let mut rec = tr.rec.borrow_mut();
                        for c in &finished {
                            rec.complete_for(
                                tr.dtracks[idx],
                                c.id,
                                c.finish.get(),
                                c.latency().as_millis(),
                                c.ttft().as_millis(),
                                tenant_tag(&tenancy, c.id),
                            );
                        }
                    }
                    tr.sample_decode(idx, dunits[idx].t, &dunits[idx]);
                }
                completions.extend(finished);
            }
        }
    }

    completions.sort_by_key(|c| c.id);
    let mut rows = Vec::with_capacity(prefill.len() + decode.len());
    let mut chip_energy = Joules::ZERO;
    let mut queue_full_s = 0.0;
    for (spec, unit) in prefill.iter().zip(&punits) {
        chip_energy += unit.energy;
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "prefill".to_owned(),
            chips: spec.chips(),
            requests: unit.prefills,
            busy_s: unit.busy.get(),
            utilization: 0.0,
            energy_j: unit.energy.get(),
            kv_hwm_frac: unit.alloc.high_water_frac(),
        });
    }
    for (spec, unit) in decode.iter().zip(&dunits) {
        chip_energy += unit.energy;
        queue_full_s += unit.queue_full.get();
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "decode".to_owned(),
            chips: spec.chips(),
            requests: unit.completed,
            busy_s: unit.busy.get(),
            utilization: 0.0,
            energy_j: unit.energy.get(),
            kv_hwm_frac: unit.alloc.high_water_frac(),
        });
    }
    let mut report = ClusterReport::build(
        label,
        "disaggregated",
        format!("{}\u{2192}{}", router.name(), decode_router.name()),
        offered,
        &completions,
        chip_energy,
        0, // worst-case decode reservation: the pools never preempt
        queue_full_s,
        transfers,
        rows,
        slo_ms,
        None,
    );
    if let Some(t) = tenancy {
        report.tenants = Some(t.ledger.report(&completions, report.makespan_s));
    }
    for session in p_sessions.iter().chain(&d_sessions) {
        session.persist_cache();
    }
    Ok(ClusterRun {
        report,
        replica_reports: Vec::new(),
        completions,
        prefix: cimtpu_serving::PrefixStats::default(),
    })
}

/// A request waiting to re-enter the disaggregated pipeline after a
/// decode crash (or parked because the whole decode pool is down).
struct DisaggRetry {
    /// When the retry fires.
    fire: Seconds,
    request: Request,
    /// Retries already charged against the request's budget.
    attempts: u32,
    /// Prefill unit still holding the cache (re-handoff), or `None` to
    /// recompute the prompt from scratch.
    source: Option<usize>,
    /// The TTFT the original prefill produced; a re-handoff keeps it.
    first_token: Option<Seconds>,
}

/// One decode-replica crash on the books.
struct DisaggCrash {
    replica: usize,
    at: Seconds,
    up_again: Option<Seconds>,
    first_completion: Option<Seconds>,
}

#[allow(clippy::too_many_arguments)] // one call site, from the dispatch above
fn run_disaggregated_faulty(
    prefill: &[ReplicaSpec],
    decode: &[ReplicaSpec],
    router: RouterPolicy,
    decode_router: RouterPolicy,
    interconnect: InterconnectSpec,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    plan: &FaultPlan,
    mut tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    let classed = tenancy.as_ref().is_some_and(Tenancy::multi);
    let trace = recorder.map(|rec| PoolTrace::attach(rec, prefill, decode));
    let recovery = *plan.recovery();
    // Crash events index the DECODE pool; prefill replicas are the
    // stateless front of the pipeline here and cannot crash.
    let mut crash_timeline: Vec<(Seconds, usize, Seconds)> = Vec::new();
    let mut windows: Vec<(Seconds, Seconds, f64, f64)> = Vec::new();
    for event in plan.resolve(decode.len())? {
        match event {
            FaultEvent::Crash { at, replica, repair } => crash_timeline.push((at, replica, repair)),
            FaultEvent::DegradedLink { from, until, bandwidth_factor, energy_factor } => {
                windows.push((from, until, bandwidth_factor, energy_factor));
            }
            FaultEvent::Straggler { .. } => {
                return Err(Error::invalid_config(
                    "straggler faults apply to colocated replicas; disaggregated pools price \
                     whole phases — degrade the link instead",
                ));
            }
        }
    }
    crash_timeline.sort_by(|a, b| a.0.get().total_cmp(&b.0.get()));
    let mut next_crash = 0usize;

    let reference = validate_pool_replica(&prefill[0], "prefill")?.clone();
    let pool_members = prefill
        .iter()
        .map(|s| (s, "prefill"))
        .chain(decode.iter().map(|s| (s, "decode")));
    for (spec, role) in pool_members {
        let model = validate_pool_replica(spec, role)?;
        if *model != reference {
            return Err(Error::invalid_config(format!(
                "disaggregated pools must host one common model: '{}' hosts {}, \
                 expected {}",
                spec.name,
                model.name(),
                reference.name()
            )));
        }
    }
    let full_fp = KvFootprint::of(&reference);

    let p_sessions: Vec<EngineSession> = prefill
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let d_sessions: Vec<EngineSession> = decode
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let mut punits: Vec<PrefillUnit<'_>> = p_sessions
        .iter()
        .zip(prefill)
        .map(|(s, spec)| {
            Ok(PrefillUnit {
                pricer: s.pricer(),
                alloc: s.allocator()?,
                cap: spec.policy.max_concurrency() as usize,
                free_at: Seconds::ZERO,
                queue: std::collections::VecDeque::new(),
                pending_release: Vec::new(),
                link_free: Seconds::ZERO,
                busy: Seconds::ZERO,
                energy: Joules::ZERO,
                prefills: 0,
            })
        })
        .collect::<Result<_>>()?;
    let mut dunits: Vec<DecodeUnit<'_>> = d_sessions
        .iter()
        .zip(decode)
        .map(|(s, spec)| {
            Ok(DecodeUnit {
                pricer: s.pricer(),
                alloc: s.allocator()?,
                cap: spec.policy.max_concurrency() as usize,
                t: Seconds::ZERO,
                pending: Vec::new(),
                active: Vec::new(),
                busy: Seconds::ZERO,
                energy: Joules::ZERO,
                queue_full: Seconds::ZERO,
                completed: 0,
            })
        })
        .collect::<Result<_>>()?;

    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let mut arouter = router.build();
    let mut drouter = decode_router.build();
    let mut p_assigned = vec![0u64; prefill.len()];
    let mut d_assigned = vec![0u64; decode.len()];
    let mut transfers = KvTransferStats::default();
    let mut completions: Vec<Completion> = Vec::new();
    let mut dhealth = HealthView::all_up(decode.len());
    let mut waiting: Vec<DisaggRetry> = Vec::new();
    let mut origin: HashMap<u64, f64> = HashMap::new();
    let mut attempts_of: HashMap<u64, u32> = HashMap::new();
    let mut avail = AvailabilityStats::zero();
    let mut crash_log: Vec<DisaggCrash> = Vec::new();

    // Transfer cost at `t_start`, with every open degraded-link window
    // applied: wire time divided by the bandwidth factor (the hop stands),
    // energy multiplied by the energy factor.
    let priced_transfer = |t_start: Seconds, bytes: Bytes| -> (Seconds, Joules) {
        let base = interconnect.transfer_time(bytes);
        let mut bw = 1.0;
        let mut en = 1.0;
        for &(from, until, b, e) in &windows {
            if t_start >= from && t_start < until {
                bw *= b;
                en *= e;
            }
        }
        let duration = if bw == 1.0 {
            base
        } else {
            interconnect.hop_latency
                + Seconds::new((base - interconnect.hop_latency).get() / bw)
        };
        (duration, Joules::new(interconnect.transfer_energy(bytes).get() * en))
    };

    // Hands one finished-prefill request off to a decode replica (a fresh
    // handoff or a re-handoff): serializes on the source's egress link,
    // holds the source cache until the transfer ends, and enqueues on the
    // routed target. Returns the ready time.
    // (Written as a macro-free block at both call sites below: the borrow
    // sets differ.)

    // One event queue spans both pools (prefill `i` → slot `i`, decode
    // `j` → slot `pn + j`): its (time, lowest-slot) order reproduces the
    // old scan's prefill → decode, lowest-index tie-break; the fault /
    // arrival / retry classes are compared outside and win ties.
    let pn = punits.len();
    let mut unit_heap = ActionHeap::new(pn + dunits.len());
    for (i, u) in punits.iter().enumerate() {
        unit_heap.set(i, u.candidate());
    }
    for (j, u) in dunits.iter().enumerate() {
        unit_heap.set(pn + j, u.candidate());
    }

    loop {
        // The run is over when nothing can produce or receive work;
        // trailing fault events on an idle fleet are dropped.
        let unit_at = unit_heap.peek();
        if stream.exhausted() && waiting.is_empty() && unit_at.is_none() {
            break;
        }

        // Earliest event wins; ties resolve fault → arrival → retry →
        // prefill → decode, then lowest index.
        let mut best: Option<(Seconds, u8, usize)> = None;
        let mut offer = |t: Seconds, class: u8, idx: usize| {
            if best.is_none_or(|(bt, bc, bi)| t < bt || (t == bt && (class, idx) < (bc, bi))) {
                best = Some((t, class, idx));
            }
        };
        let scripted = (next_crash < crash_timeline.len()).then(|| crash_timeline[next_crash].0);
        match (scripted, dhealth.next_transition()) {
            (Some(a), Some(b)) => offer(a.min(b), 0, 0),
            (Some(a), None) => offer(a, 0, 0),
            (None, Some(b)) => offer(b, 0, 0),
            (None, None) => {}
        }
        if let Some(ta) = stream.peek() {
            offer(ta, 1, 0);
        }
        if let Some((i, w)) = waiting
            .iter()
            .enumerate()
            .min_by(|(ai, a), (bi, b)| {
                (a.fire.get(), a.request.id, *ai)
                    .partial_cmp(&(b.fire.get(), b.request.id, *bi))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        {
            offer(w.fire, 2, i);
        }
        if let Some((slot, t)) = unit_at {
            if slot < pn {
                offer(t, 3, slot);
            } else {
                offer(t, 4, slot - pn);
            }
        }
        let Some((now, class, idx)) = best else {
            if stream.exhausted() {
                break;
            }
            return Err(Error::invalid_config(
                "disaggregated driver stalled: requests pending but no unit can act",
            ));
        };
        match class {
            // Faults: restores first, then crashes due now.
            0 => {
                for k in dhealth.advance(now, recovery.warmup) {
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant(tr.dtracks[k], EventKind::Repair, 0, now.get());
                    }
                }
                for rec in crash_log.iter_mut() {
                    if rec.up_again.is_none() && dhealth.is_up(rec.replica) {
                        rec.up_again = Some(now);
                    }
                }
                while next_crash < crash_timeline.len() && crash_timeline[next_crash].0 <= now {
                    let (_, replica, repair) = crash_timeline[next_crash];
                    next_crash += 1;
                    if matches!(dhealth.state(replica), ReplicaHealth::Down { .. }) {
                        continue; // already down: nothing left to kill
                    }
                    // Everything resident on or inbound to the replica is
                    // lost; the allocator empties (high-water survives).
                    let mut lost: Vec<(Request, Seconds)> = Vec::new();
                    for p in dunits[replica].pending.drain(..) {
                        lost.push((p.req, p.first_token));
                    }
                    for s in dunits[replica].active.drain(..) {
                        lost.push((s.req, s.first_token));
                    }
                    dunits[replica].alloc.release_all();
                    dhealth.mark_down(replica, now + repair);
                    avail.crashes += 1;
                    crash_log.push(DisaggCrash {
                        replica,
                        at: now,
                        up_again: None,
                        first_completion: None,
                    });
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant(
                            tr.dtracks[replica],
                            EventKind::Crash,
                            0,
                            now.get(),
                        );
                    }
                    for (r, ft) in lost {
                        // Where is the cache now? If the source prefill
                        // replica has not released the blocks yet, pin
                        // them and re-handoff (transfer-only — always
                        // cheaper than recompute + transfer); otherwise
                        // the prompt recomputes through the prefill pool.
                        let mut source = None;
                        for (pi, pu) in punits.iter_mut().enumerate() {
                            if let Some(pos) = pu
                                .pending_release
                                .iter()
                                .position(|&(t, id)| id == r.id && t > now)
                            {
                                pu.pending_release.remove(pos);
                                source = Some(pi);
                                break;
                            }
                        }
                        let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                        let attempts = attempts_of.get(&r.id).copied().unwrap_or(0) + 1;
                        let drop_blocks =
                            |punits: &mut Vec<PrefillUnit<'_>>, source: Option<usize>| {
                                if let Some(p) = source {
                                    punits[p].alloc.release(r.id);
                                }
                            };
                        if attempts > recovery.max_attempts {
                            avail.shed += 1;
                            if let Some(t) = tenancy.as_mut() {
                                t.ledger.on_shed(r.id);
                            }
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant_for(
                                    tr.control,
                                    EventKind::Shed,
                                    r.id,
                                    now.get(),
                                    tenant_tag(&tenancy, r.id),
                                );
                            }
                            drop_blocks(&mut punits, source);
                            release_client(&mut stream, r.id, orig, now);
                            continue;
                        }
                        let fire = now + recovery.backoff_for(attempts);
                        if fire.get() > orig + recovery.deadline.get() {
                            avail.timed_out += 1;
                            if let Some(t) = tenancy.as_mut() {
                                t.ledger.on_timeout(r.id);
                            }
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant_for(
                                    tr.control,
                                    EventKind::Timeout,
                                    r.id,
                                    now.get(),
                                    tenant_tag(&tenancy, r.id),
                                );
                            }
                            drop_blocks(&mut punits, source);
                            release_client(&mut stream, r.id, orig, now);
                            continue;
                        }
                        if let Some(tr) = &trace {
                            tr.rec.borrow_mut().span_for(
                                tr.control,
                                EventKind::Retry,
                                r.id,
                                now.get(),
                                fire.get(),
                                tenant_tag(&tenancy, r.id),
                            );
                        }
                        attempts_of.insert(r.id, attempts);
                        waiting.push(DisaggRetry {
                            fire,
                            request: r,
                            attempts,
                            source,
                            first_token: source.is_some().then_some(ft),
                        });
                    }
                }
                // A crash empties a decode unit and can unpin caches on
                // any prefill unit (releases change their admission
                // starts): refresh every slot. Fault events are rare, so
                // the `O(fleet)` refresh is off the hot path.
                for (i, u) in punits.iter().enumerate() {
                    unit_heap.set(i, u.candidate());
                }
                for (j, u) in dunits.iter().enumerate() {
                    unit_heap.set(pn + j, u.candidate());
                }
            }
            // Arrival: routes across the (always-healthy) prefill pool.
            1 => {
                let request = stream.pop();
                origin.insert(request.id, request.arrival_s);
                let snaps: Vec<ReplicaSnapshot> = punits
                    .iter()
                    .enumerate()
                    .map(|(i, u)| u.snapshot(i, p_assigned[i], classed))
                    .collect();
                let k = arouter.route(&request, &snaps).min(punits.len() - 1);
                p_assigned[k] += 1;
                if let Some(tr) = &trace {
                    tr.rec.borrow_mut().request_arrival_for(
                        tr.ptracks[k],
                        request.id,
                        request.arrival_s,
                        tenant_tag(&tenancy, request.id),
                    );
                }
                punits[k].queue.push_back(request);
                if let Some(tr) = &trace {
                    tr.sample_prefill(k, request.arrival(), &punits[k]);
                }
                unit_heap.set(k, punits[k].candidate());
            }
            // Retry fire: re-handoff, recompute, or repark.
            2 => {
                let item = waiting.remove(idx);
                let r = item.request;
                let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                if now.get() > orig + recovery.deadline.get() {
                    avail.timed_out += 1;
                    if let Some(t) = tenancy.as_mut() {
                        t.ledger.on_timeout(r.id);
                    }
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant_for(
                            tr.control,
                            EventKind::Timeout,
                            r.id,
                            now.get(),
                            tenant_tag(&tenancy, r.id),
                        );
                    }
                    if let Some(p) = item.source {
                        punits[p].alloc.release(r.id);
                        unit_heap.set(p, punits[p].candidate());
                    }
                    release_client(&mut stream, r.id, orig, now);
                    continue;
                }
                match item.source {
                    Some(p) => {
                        let up = dhealth.up_replicas();
                        if up.is_empty() {
                            // Whole decode pool down: park until the next
                            // repair finishes (no retry charged).
                            let fire = dhealth.next_transition().ok_or_else(|| {
                                Error::internal(
                                    "every decode replica is down and none is scheduled to \
                                     restart",
                                )
                            })?;
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant_for(
                                    tr.control,
                                    EventKind::Park,
                                    r.id,
                                    now.get(),
                                    tenant_tag(&tenancy, r.id),
                                );
                            }
                            waiting.push(DisaggRetry { fire, ..item });
                            continue;
                        }
                        let snaps: Vec<ReplicaSnapshot> = up
                            .iter()
                            .enumerate()
                            .map(|(pos, &k)| dunits[k].snapshot(pos, d_assigned[k], classed))
                            .collect();
                        let pos = drouter.route(&r, &snaps).min(up.len() - 1);
                        let k = up[pos];
                        d_assigned[k] += 1;
                        if item.attempts > 0 {
                            avail.retries += 1;
                        }
                        let bytes =
                            full_fp.handoff_bytes(r.prompt_len, punits[p].alloc.block_tokens());
                        let t_start = now.max(punits[p].link_free);
                        let (duration, energy) = priced_transfer(t_start, bytes);
                        let t_end = t_start + duration;
                        punits[p].link_free = t_end;
                        // The source cache is held until the re-transfer
                        // lands, then released as usual.
                        punits[p].pending_release.push((t_end, r.id));
                        punits[p].pending_release.sort_by(|a, b| {
                            a.0.get().total_cmp(&b.0.get()).then(a.1.cmp(&b.1))
                        });
                        transfers.record(bytes.get(), duration, energy);
                        if let Some(tr) = &trace {
                            tr.rec.borrow_mut().span(
                                tr.ptracks[p],
                                EventKind::KvHandoff,
                                r.id,
                                t_start.get(),
                                t_end.get(),
                            );
                        }
                        dunits[k].pending.push(PendingDecode {
                            req: r,
                            first_token: item.first_token.unwrap_or(t_end),
                            ready: t_end,
                        });
                        unit_heap.set(p, punits[p].candidate());
                        unit_heap.set(pn + k, dunits[k].candidate());
                    }
                    None => {
                        // Recompute: the cache is gone — back through the
                        // prefill pool; admission restarts at the fire
                        // time, TTFT is re-earned.
                        let snaps: Vec<ReplicaSnapshot> = punits
                            .iter()
                            .enumerate()
                            .map(|(i, u)| u.snapshot(i, p_assigned[i], classed))
                            .collect();
                        let mut rr = r;
                        rr.arrival_s = now.get();
                        let k = arouter.route(&rr, &snaps).min(punits.len() - 1);
                        p_assigned[k] += 1;
                        if item.attempts > 0 {
                            avail.retries += 1;
                        }
                        punits[k].queue.push_back(rr);
                        unit_heap.set(k, punits[k].candidate());
                    }
                }
            }
            // Prefill batch: hand each member off (or park it if the
            // whole decode pool is down).
            3 => {
                let batch = punits[idx].step()?;
                for req in batch.members {
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().span(
                            tr.ptracks[idx],
                            EventKind::Prefill,
                            req.id,
                            batch.start.get(),
                            batch.end.get(),
                        );
                    }
                    let up = dhealth.up_replicas();
                    if up.is_empty() {
                        let fire = dhealth.next_transition().ok_or_else(|| {
                            Error::internal(
                                "every decode replica is down and none is scheduled to restart",
                            )
                        })?;
                        if let Some(tr) = &trace {
                            tr.rec.borrow_mut().instant_for(
                                tr.control,
                                EventKind::Park,
                                req.id,
                                now.get(),
                                tenant_tag(&tenancy, req.id),
                            );
                        }
                        // The cache stays resident at the source (no
                        // release is scheduled until a transfer is).
                        waiting.push(DisaggRetry {
                            fire,
                            request: req,
                            attempts: attempts_of.get(&req.id).copied().unwrap_or(0),
                            source: Some(idx),
                            first_token: Some(batch.end),
                        });
                        continue;
                    }
                    let snaps: Vec<ReplicaSnapshot> = up
                        .iter()
                        .enumerate()
                        .map(|(pos, &k)| dunits[k].snapshot(pos, d_assigned[k], classed))
                        .collect();
                    let pos = drouter.route(&req, &snaps).min(up.len() - 1);
                    let k = up[pos];
                    d_assigned[k] += 1;
                    let bytes =
                        full_fp.handoff_bytes(req.prompt_len, punits[idx].alloc.block_tokens());
                    let t_start = batch.end.max(punits[idx].link_free);
                    let (duration, energy) = priced_transfer(t_start, bytes);
                    let t_end = t_start + duration;
                    punits[idx].link_free = t_end;
                    punits[idx].pending_release.push((t_end, req.id));
                    transfers.record(bytes.get(), duration, energy);
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().span(
                            tr.ptracks[idx],
                            EventKind::KvHandoff,
                            req.id,
                            t_start.get(),
                            t_end.get(),
                        );
                    }
                    dunits[k].pending.push(PendingDecode {
                        req,
                        first_token: batch.end,
                        ready: t_end,
                    });
                    unit_heap.set(pn + k, dunits[k].candidate());
                }
                if let Some(tr) = &trace {
                    tr.sample_prefill(idx, batch.end, &punits[idx]);
                }
                unit_heap.set(idx, punits[idx].candidate());
            }
            // Decode round (atomic: a crash never lands mid-round).
            _ => {
                let finished = dunits[idx].step()?;
                unit_heap.set(pn + idx, dunits[idx].candidate());
                for c in &finished {
                    if attempts_of.get(&c.id).copied().unwrap_or(0) > 0 {
                        avail.retried_ok += 1;
                    }
                    for rec in crash_log.iter_mut() {
                        if rec.replica == idx
                            && rec.first_completion.is_none()
                            && c.finish > rec.at
                        {
                            rec.first_completion = Some(c.finish);
                        }
                    }
                    stream.on_complete(c);
                }
                if let Some(tr) = &trace {
                    {
                        let mut rec = tr.rec.borrow_mut();
                        for c in &finished {
                            // The loop restores original arrivals only
                            // after the run; the recorder needs the
                            // restored latency now.
                            let mut cc = *c;
                            if let Some(orig) = origin.get(&cc.id) {
                                cc.arrival = Seconds::new(*orig);
                            }
                            rec.complete_for(
                                tr.dtracks[idx],
                                cc.id,
                                cc.finish.get(),
                                cc.latency().as_millis(),
                                cc.ttft().as_millis(),
                                tenant_tag(&tenancy, cc.id),
                            );
                        }
                    }
                    tr.sample_decode(idx, dunits[idx].t, &dunits[idx]);
                }
                completions.extend(finished);
            }
        }
    }

    // Recomputed requests were re-admitted at their retry fire time;
    // report latency against the original arrival.
    for c in &mut completions {
        if let Some(orig) = origin.get(&c.id) {
            c.arrival = Seconds::new(*orig);
        }
    }
    completions.sort_by_key(|c| c.id);
    debug_assert_eq!(
        completions.len() as u64 + avail.shed + avail.timed_out,
        offered,
        "request conservation: arrived == completed + shed + timed out"
    );

    let finish = completions.iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
    let first_arrival = completions.iter().map(|c| c.arrival).fold(finish, Seconds::min);
    let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
    let fleet = (prefill.len() + decode.len()) as f64;
    let mut downtime = 0.0;
    for rec in &crash_log {
        let clip = |t: f64| t.clamp(first_arrival.get(), finish.get());
        let start = clip(rec.at.get());
        let end = clip(rec.up_again.map_or(finish.get(), |u| u.get()));
        downtime += (end - start).max(0.0);
        avail
            .time_to_recover_s
            .push((rec.first_completion.unwrap_or(finish).get() - rec.at.get()).max(0.0));
    }
    avail.downtime_s = downtime;
    avail.availability = (1.0 - downtime / (fleet * makespan)).clamp(0.0, 1.0);

    let mut rows = Vec::with_capacity(prefill.len() + decode.len());
    let mut chip_energy = Joules::ZERO;
    let mut queue_full_s = 0.0;
    for (spec, unit) in prefill.iter().zip(&punits) {
        chip_energy += unit.energy;
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "prefill".to_owned(),
            chips: spec.chips(),
            requests: unit.prefills,
            busy_s: unit.busy.get(),
            utilization: 0.0,
            energy_j: unit.energy.get(),
            kv_hwm_frac: unit.alloc.high_water_frac(),
        });
    }
    for (spec, unit) in decode.iter().zip(&dunits) {
        chip_energy += unit.energy;
        queue_full_s += unit.queue_full.get();
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "decode".to_owned(),
            chips: spec.chips(),
            requests: unit.completed,
            busy_s: unit.busy.get(),
            utilization: 0.0,
            energy_j: unit.energy.get(),
            kv_hwm_frac: unit.alloc.high_water_frac(),
        });
    }
    let mut report = ClusterReport::build(
        label,
        "disaggregated",
        format!("{}\u{2192}{}", router.name(), decode_router.name()),
        offered,
        &completions,
        chip_energy,
        0, // worst-case decode reservation: the pools never preempt
        queue_full_s,
        transfers,
        rows,
        slo_ms,
        Some(avail),
    );
    if let Some(t) = tenancy {
        report.tenants = Some(t.ledger.report(&completions, report.makespan_s));
    }
    for session in p_sessions.iter().chain(&d_sessions) {
        session.persist_cache();
    }
    Ok(ClusterRun {
        report,
        replica_reports: Vec::new(),
        completions,
        prefix: cimtpu_serving::PrefixStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use cimtpu_core::TpuConfig;
    use cimtpu_serving::{ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic};
    use proptest::prelude::*;

    use super::*;
    use crate::fault::ChaosSpec;

    #[test]
    fn interconnect_prices_time_and_energy() {
        let link = InterconnectSpec::ici();
        let mib = Bytes::from_mib(1);
        // 1 MiB at 100 GB/s + 1 µs hop.
        let expected = 1024.0 * 1024.0 / 100e9 + 1e-6;
        assert!((link.transfer_time(mib).get() - expected).abs() < 1e-15);
        // 5 pJ/byte.
        let ej = link.transfer_energy(mib).get();
        assert!((ej - 1024.0 * 1024.0 * 5e-12).abs() < 1e-18);
        // Zero bytes still pay the hop, but no energy.
        assert_eq!(link.transfer_time(Bytes::ZERO), Seconds::from_micros(1.0));
        assert_eq!(link.transfer_energy(Bytes::ZERO), Joules::ZERO);
    }

    #[test]
    fn interconnect_from_ring_matches_link_parameters() {
        let ring = RingTopology::new(4, 2, Bandwidth::from_gb_per_s(100.0)).unwrap();
        let link = InterconnectSpec::from_ring(&ring, 5.0);
        assert_eq!(link.link_bandwidth, ring.link_bandwidth());
        // A transfer over this spec equals the ring's neighbour p2p time.
        let bytes = Bytes::from_mib(8);
        assert_eq!(link.transfer_time(bytes), ring.p2p_time(bytes));
    }

    // ------------------------------------------------------------------
    // Scan oracles: the pre-heap pipeline drivers, kept verbatim so
    // proptests can pin the heap-scheduled drivers bit-for-bit against
    // them.
    // ------------------------------------------------------------------

    /// The zero-fault pipeline as it was before the [`ActionHeap`] port:
    /// a full scan over every unit's candidate per event, with fresh
    /// snapshot collects per routing decision.
    #[allow(clippy::too_many_arguments)] // mirrors the driver it pins
    fn run_disaggregated_plain_oracle(
        prefill: &[ReplicaSpec],
        decode: &[ReplicaSpec],
        router: RouterPolicy,
        decode_router: RouterPolicy,
        interconnect: InterconnectSpec,
        label: &str,
        traffic: &TrafficSpec,
        slo_ms: Option<f64>,
    ) -> Result<ClusterRun> {
        let reference = validate_pool_replica(&prefill[0], "prefill")?.clone();
        let pool_members = prefill
            .iter()
            .map(|s| (s, "prefill"))
            .chain(decode.iter().map(|s| (s, "decode")));
        for (spec, role) in pool_members {
            let model = validate_pool_replica(spec, role)?;
            if *model != reference {
                return Err(Error::invalid_config(format!(
                    "disaggregated pools must host one common model: '{}' hosts {}, \
                     expected {}",
                    spec.name,
                    model.name(),
                    reference.name()
                )));
            }
        }
        // The cache that crosses the wire is the full (unsharded) footprint,
        // whatever the pool sharding.
        let full_fp = KvFootprint::of(&reference);

        let p_sessions: Vec<EngineSession> = prefill
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let d_sessions: Vec<EngineSession> = decode
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let mut punits: Vec<PrefillUnit<'_>> = p_sessions
            .iter()
            .zip(prefill)
            .map(|(s, spec)| {
                Ok(PrefillUnit {
                    pricer: s.pricer(),
                    alloc: s.allocator()?,
                    cap: spec.policy.max_concurrency() as usize,
                    free_at: Seconds::ZERO,
                    queue: std::collections::VecDeque::new(),
                    pending_release: Vec::new(),
                    link_free: Seconds::ZERO,
                    busy: Seconds::ZERO,
                    energy: Joules::ZERO,
                    prefills: 0,
                })
            })
            .collect::<Result<_>>()?;
        let mut dunits: Vec<DecodeUnit<'_>> = d_sessions
            .iter()
            .zip(decode)
            .map(|(s, spec)| {
                Ok(DecodeUnit {
                    pricer: s.pricer(),
                    alloc: s.allocator()?,
                    cap: spec.policy.max_concurrency() as usize,
                    t: Seconds::ZERO,
                    pending: Vec::new(),
                    active: Vec::new(),
                    busy: Seconds::ZERO,
                    energy: Joules::ZERO,
                    queue_full: Seconds::ZERO,
                    completed: 0,
                })
            })
            .collect::<Result<_>>()?;

        let mut stream = ArrivalStream::new(traffic)?;
        let offered = stream.total();
        let mut arouter = router.build();
        let mut drouter = decode_router.build();
        let mut p_assigned = vec![0u64; prefill.len()];
        let mut d_assigned = vec![0u64; decode.len()];
        let mut transfers = KvTransferStats::default();
        let mut completions: Vec<Completion> = Vec::new();

        loop {
            // The earliest event wins; ties go arrival → prefill → decode,
            // then lowest index — a fixed order, so runs replay exactly.
            let mut best: Option<(Seconds, u8, usize)> = None;
            let mut offer = |t: Seconds, class: u8, idx: usize| {
                if best.is_none_or(|(bt, bc, bi)| {
                    t < bt || (t == bt && (class, idx) < (bc, bi))
                }) {
                    best = Some((t, class, idx));
                }
            };
            if let Some(ta) = stream.peek() {
                offer(ta, 0, 0);
            }
            for (i, u) in punits.iter().enumerate() {
                if let Some(t) = u.candidate() {
                    offer(t, 1, i);
                }
            }
            for (i, u) in dunits.iter().enumerate() {
                if let Some(t) = u.candidate() {
                    offer(t, 2, i);
                }
            }
            let Some((_, class, idx)) = best else {
                if stream.exhausted() {
                    break;
                }
                return Err(Error::invalid_config(
                    "disaggregated driver stalled: requests pending but no unit can act",
                ));
            };
            match class {
                0 => {
                    let request = stream.pop();
                    let snaps: Vec<ReplicaSnapshot> = punits
                        .iter()
                        .enumerate()
                        .map(|(i, u)| u.snapshot(i, p_assigned[i], false))
                        .collect();
                    let k = arouter.route(&request, &snaps).min(punits.len() - 1);
                    p_assigned[k] += 1;
                    punits[k].queue.push_back(request);
                }
                1 => {
                    let batch = punits[idx].step()?;
                    for req in batch.members {
                        // Route the handoff, serialize it on this replica's
                        // egress link, and gate the decode admission on the
                        // target's allocator (via its pending queue).
                        let snaps: Vec<ReplicaSnapshot> = dunits
                            .iter()
                            .enumerate()
                            .map(|(i, u)| u.snapshot(i, d_assigned[i], false))
                            .collect();
                        let k = drouter.route(&req, &snaps).min(dunits.len() - 1);
                        d_assigned[k] += 1;
                        let bytes =
                            full_fp.handoff_bytes(req.prompt_len, punits[idx].alloc.block_tokens());
                        let duration = interconnect.transfer_time(bytes);
                        let t_start = batch.end.max(punits[idx].link_free);
                        let t_end = t_start + duration;
                        punits[idx].link_free = t_end;
                        punits[idx].pending_release.push((t_end, req.id));
                        transfers.record(bytes.get(), duration, interconnect.transfer_energy(bytes));
                        dunits[k].pending.push(PendingDecode {
                            req,
                            first_token: batch.end,
                            ready: t_end,
                        });
                    }
                }
                _ => {
                    let finished = dunits[idx].step()?;
                    for c in &finished {
                        stream.on_complete(c);
                    }
                    completions.extend(finished);
                }
            }
        }

        completions.sort_by_key(|c| c.id);
        let mut rows = Vec::with_capacity(prefill.len() + decode.len());
        let mut chip_energy = Joules::ZERO;
        let mut queue_full_s = 0.0;
        for (spec, unit) in prefill.iter().zip(&punits) {
            chip_energy += unit.energy;
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "prefill".to_owned(),
                chips: spec.chips(),
                requests: unit.prefills,
                busy_s: unit.busy.get(),
                utilization: 0.0,
                energy_j: unit.energy.get(),
                kv_hwm_frac: unit.alloc.high_water_frac(),
            });
        }
        for (spec, unit) in decode.iter().zip(&dunits) {
            chip_energy += unit.energy;
            queue_full_s += unit.queue_full.get();
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "decode".to_owned(),
                chips: spec.chips(),
                requests: unit.completed,
                busy_s: unit.busy.get(),
                utilization: 0.0,
                energy_j: unit.energy.get(),
                kv_hwm_frac: unit.alloc.high_water_frac(),
            });
        }
        let report = ClusterReport::build(
            label,
            "disaggregated",
            format!("{}\u{2192}{}", router.name(), decode_router.name()),
            offered,
            &completions,
            chip_energy,
            0, // worst-case decode reservation: the pools never preempt
            queue_full_s,
            transfers,
            rows,
            slo_ms,
            None,
        );
        for session in p_sessions.iter().chain(&d_sessions) {
            session.persist_cache();
        }
        Ok(ClusterRun {
            report,
            replica_reports: Vec::new(),
            completions,
            prefix: cimtpu_serving::PrefixStats::default(),
        })
    }

    /// The failure-aware pipeline as it was before the [`ActionHeap`]
    /// port, scan loop and all.
    #[allow(clippy::too_many_arguments)] // mirrors the driver it pins
    #[allow(clippy::too_many_lines)] // verbatim copy of the old driver
    fn run_disaggregated_faulty_oracle(
        prefill: &[ReplicaSpec],
        decode: &[ReplicaSpec],
        router: RouterPolicy,
        decode_router: RouterPolicy,
        interconnect: InterconnectSpec,
        label: &str,
        traffic: &TrafficSpec,
        slo_ms: Option<f64>,
        plan: &FaultPlan,
    ) -> Result<ClusterRun> {
        let recovery = *plan.recovery();
        // Crash events index the DECODE pool; prefill replicas are the
        // stateless front of the pipeline here and cannot crash.
        let mut crash_timeline: Vec<(Seconds, usize, Seconds)> = Vec::new();
        let mut windows: Vec<(Seconds, Seconds, f64, f64)> = Vec::new();
        for event in plan.resolve(decode.len())? {
            match event {
                FaultEvent::Crash { at, replica, repair } => crash_timeline.push((at, replica, repair)),
                FaultEvent::DegradedLink { from, until, bandwidth_factor, energy_factor } => {
                    windows.push((from, until, bandwidth_factor, energy_factor));
                }
                FaultEvent::Straggler { .. } => {
                    return Err(Error::invalid_config(
                        "straggler faults apply to colocated replicas; disaggregated pools price \
                         whole phases — degrade the link instead",
                    ));
                }
            }
        }
        crash_timeline.sort_by(|a, b| a.0.get().total_cmp(&b.0.get()));
        let mut next_crash = 0usize;

        let reference = validate_pool_replica(&prefill[0], "prefill")?.clone();
        let pool_members = prefill
            .iter()
            .map(|s| (s, "prefill"))
            .chain(decode.iter().map(|s| (s, "decode")));
        for (spec, role) in pool_members {
            let model = validate_pool_replica(spec, role)?;
            if *model != reference {
                return Err(Error::invalid_config(format!(
                    "disaggregated pools must host one common model: '{}' hosts {}, \
                     expected {}",
                    spec.name,
                    model.name(),
                    reference.name()
                )));
            }
        }
        let full_fp = KvFootprint::of(&reference);

        let p_sessions: Vec<EngineSession> = prefill
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let d_sessions: Vec<EngineSession> = decode
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let mut punits: Vec<PrefillUnit<'_>> = p_sessions
            .iter()
            .zip(prefill)
            .map(|(s, spec)| {
                Ok(PrefillUnit {
                    pricer: s.pricer(),
                    alloc: s.allocator()?,
                    cap: spec.policy.max_concurrency() as usize,
                    free_at: Seconds::ZERO,
                    queue: std::collections::VecDeque::new(),
                    pending_release: Vec::new(),
                    link_free: Seconds::ZERO,
                    busy: Seconds::ZERO,
                    energy: Joules::ZERO,
                    prefills: 0,
                })
            })
            .collect::<Result<_>>()?;
        let mut dunits: Vec<DecodeUnit<'_>> = d_sessions
            .iter()
            .zip(decode)
            .map(|(s, spec)| {
                Ok(DecodeUnit {
                    pricer: s.pricer(),
                    alloc: s.allocator()?,
                    cap: spec.policy.max_concurrency() as usize,
                    t: Seconds::ZERO,
                    pending: Vec::new(),
                    active: Vec::new(),
                    busy: Seconds::ZERO,
                    energy: Joules::ZERO,
                    queue_full: Seconds::ZERO,
                    completed: 0,
                })
            })
            .collect::<Result<_>>()?;

        let mut stream = ArrivalStream::new(traffic)?;
        let offered = stream.total();
        let mut arouter = router.build();
        let mut drouter = decode_router.build();
        let mut p_assigned = vec![0u64; prefill.len()];
        let mut d_assigned = vec![0u64; decode.len()];
        let mut transfers = KvTransferStats::default();
        let mut completions: Vec<Completion> = Vec::new();
        let mut dhealth = HealthView::all_up(decode.len());
        let mut waiting: Vec<DisaggRetry> = Vec::new();
        let mut origin: HashMap<u64, f64> = HashMap::new();
        let mut attempts_of: HashMap<u64, u32> = HashMap::new();
        let mut avail = AvailabilityStats::zero();
        let mut crash_log: Vec<DisaggCrash> = Vec::new();

        // Transfer cost at `t_start`, with every open degraded-link window
        // applied: wire time divided by the bandwidth factor (the hop stands),
        // energy multiplied by the energy factor.
        let priced_transfer = |t_start: Seconds, bytes: Bytes| -> (Seconds, Joules) {
            let base = interconnect.transfer_time(bytes);
            let mut bw = 1.0;
            let mut en = 1.0;
            for &(from, until, b, e) in &windows {
                if t_start >= from && t_start < until {
                    bw *= b;
                    en *= e;
                }
            }
            let duration = if bw == 1.0 {
                base
            } else {
                interconnect.hop_latency
                    + Seconds::new((base - interconnect.hop_latency).get() / bw)
            };
            (duration, Joules::new(interconnect.transfer_energy(bytes).get() * en))
        };

        // Hands one finished-prefill request off to a decode replica (a fresh
        // handoff or a re-handoff): serializes on the source's egress link,
        // holds the source cache until the transfer ends, and enqueues on the
        // routed target. Returns the ready time.
        // (Written as a macro-free block at both call sites below: the borrow
        // sets differ.)

        loop {
            // The run is over when nothing can produce or receive work;
            // trailing fault events on an idle fleet are dropped.
            let punit_candidates: Vec<Option<Seconds>> =
                punits.iter().map(PrefillUnit::candidate).collect();
            let dunit_candidates: Vec<Option<Seconds>> =
                dunits.iter().map(DecodeUnit::candidate).collect();
            let any_unit = punit_candidates.iter().chain(&dunit_candidates).any(Option::is_some);
            if stream.exhausted() && waiting.is_empty() && !any_unit {
                break;
            }

            // Earliest event wins; ties resolve fault → arrival → retry →
            // prefill → decode, then lowest index.
            let mut best: Option<(Seconds, u8, usize)> = None;
            let mut offer = |t: Seconds, class: u8, idx: usize| {
                if best.is_none_or(|(bt, bc, bi)| t < bt || (t == bt && (class, idx) < (bc, bi))) {
                    best = Some((t, class, idx));
                }
            };
            let scripted = (next_crash < crash_timeline.len()).then(|| crash_timeline[next_crash].0);
            match (scripted, dhealth.next_transition()) {
                (Some(a), Some(b)) => offer(a.min(b), 0, 0),
                (Some(a), None) => offer(a, 0, 0),
                (None, Some(b)) => offer(b, 0, 0),
                (None, None) => {}
            }
            if let Some(ta) = stream.peek() {
                offer(ta, 1, 0);
            }
            if let Some((i, w)) = waiting
                .iter()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| {
                    (a.fire.get(), a.request.id, *ai)
                        .partial_cmp(&(b.fire.get(), b.request.id, *bi))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            {
                offer(w.fire, 2, i);
            }
            for (i, t) in punit_candidates.iter().enumerate() {
                if let Some(t) = t {
                    offer(*t, 3, i);
                }
            }
            for (i, t) in dunit_candidates.iter().enumerate() {
                if let Some(t) = t {
                    offer(*t, 4, i);
                }
            }
            let Some((now, class, idx)) = best else {
                if stream.exhausted() {
                    break;
                }
                return Err(Error::invalid_config(
                    "disaggregated driver stalled: requests pending but no unit can act",
                ));
            };
            match class {
                // Faults: restores first, then crashes due now.
                0 => {
                    dhealth.advance(now, recovery.warmup);
                    for rec in crash_log.iter_mut() {
                        if rec.up_again.is_none() && dhealth.is_up(rec.replica) {
                            rec.up_again = Some(now);
                        }
                    }
                    while next_crash < crash_timeline.len() && crash_timeline[next_crash].0 <= now {
                        let (_, replica, repair) = crash_timeline[next_crash];
                        next_crash += 1;
                        if matches!(dhealth.state(replica), ReplicaHealth::Down { .. }) {
                            continue; // already down: nothing left to kill
                        }
                        // Everything resident on or inbound to the replica is
                        // lost; the allocator empties (high-water survives).
                        let mut lost: Vec<(Request, Seconds)> = Vec::new();
                        for p in dunits[replica].pending.drain(..) {
                            lost.push((p.req, p.first_token));
                        }
                        for s in dunits[replica].active.drain(..) {
                            lost.push((s.req, s.first_token));
                        }
                        dunits[replica].alloc.release_all();
                        dhealth.mark_down(replica, now + repair);
                        avail.crashes += 1;
                        crash_log.push(DisaggCrash {
                            replica,
                            at: now,
                            up_again: None,
                            first_completion: None,
                        });
                        for (r, ft) in lost {
                            // Where is the cache now? If the source prefill
                            // replica has not released the blocks yet, pin
                            // them and re-handoff (transfer-only — always
                            // cheaper than recompute + transfer); otherwise
                            // the prompt recomputes through the prefill pool.
                            let mut source = None;
                            for (pi, pu) in punits.iter_mut().enumerate() {
                                if let Some(pos) = pu
                                    .pending_release
                                    .iter()
                                    .position(|&(t, id)| id == r.id && t > now)
                                {
                                    pu.pending_release.remove(pos);
                                    source = Some(pi);
                                    break;
                                }
                            }
                            let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                            let attempts = attempts_of.get(&r.id).copied().unwrap_or(0) + 1;
                            let drop_blocks =
                                |punits: &mut Vec<PrefillUnit<'_>>, source: Option<usize>| {
                                    if let Some(p) = source {
                                        punits[p].alloc.release(r.id);
                                    }
                                };
                            if attempts > recovery.max_attempts {
                                avail.shed += 1;
                                drop_blocks(&mut punits, source);
                                release_client(&mut stream, r.id, orig, now);
                                continue;
                            }
                            let fire = now + recovery.backoff_for(attempts);
                            if fire.get() > orig + recovery.deadline.get() {
                                avail.timed_out += 1;
                                drop_blocks(&mut punits, source);
                                release_client(&mut stream, r.id, orig, now);
                                continue;
                            }
                            attempts_of.insert(r.id, attempts);
                            waiting.push(DisaggRetry {
                                fire,
                                request: r,
                                attempts,
                                source,
                                first_token: source.is_some().then_some(ft),
                            });
                        }
                    }
                }
                // Arrival: routes across the (always-healthy) prefill pool.
                1 => {
                    let request = stream.pop();
                    origin.insert(request.id, request.arrival_s);
                    let snaps: Vec<ReplicaSnapshot> = punits
                        .iter()
                        .enumerate()
                        .map(|(i, u)| u.snapshot(i, p_assigned[i], false))
                        .collect();
                    let k = arouter.route(&request, &snaps).min(punits.len() - 1);
                    p_assigned[k] += 1;
                    punits[k].queue.push_back(request);
                }
                // Retry fire: re-handoff, recompute, or repark.
                2 => {
                    let item = waiting.remove(idx);
                    let r = item.request;
                    let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                    if now.get() > orig + recovery.deadline.get() {
                        avail.timed_out += 1;
                        if let Some(p) = item.source {
                            punits[p].alloc.release(r.id);
                        }
                        release_client(&mut stream, r.id, orig, now);
                        continue;
                    }
                    match item.source {
                        Some(p) => {
                            let up = dhealth.up_replicas();
                            if up.is_empty() {
                                // Whole decode pool down: park until the next
                                // repair finishes (no retry charged).
                                let fire = dhealth.next_transition().ok_or_else(|| {
                                    Error::internal(
                                        "every decode replica is down and none is scheduled to \
                                         restart",
                                    )
                                })?;
                                waiting.push(DisaggRetry { fire, ..item });
                                continue;
                            }
                            let snaps: Vec<ReplicaSnapshot> = up
                                .iter()
                                .enumerate()
                                .map(|(pos, &k)| dunits[k].snapshot(pos, d_assigned[k], false))
                                .collect();
                            let pos = drouter.route(&r, &snaps).min(up.len() - 1);
                            let k = up[pos];
                            d_assigned[k] += 1;
                            if item.attempts > 0 {
                                avail.retries += 1;
                            }
                            let bytes =
                                full_fp.handoff_bytes(r.prompt_len, punits[p].alloc.block_tokens());
                            let t_start = now.max(punits[p].link_free);
                            let (duration, energy) = priced_transfer(t_start, bytes);
                            let t_end = t_start + duration;
                            punits[p].link_free = t_end;
                            // The source cache is held until the re-transfer
                            // lands, then released as usual.
                            punits[p].pending_release.push((t_end, r.id));
                            punits[p].pending_release.sort_by(|a, b| {
                                a.0.get().total_cmp(&b.0.get()).then(a.1.cmp(&b.1))
                            });
                            transfers.record(bytes.get(), duration, energy);
                            dunits[k].pending.push(PendingDecode {
                                req: r,
                                first_token: item.first_token.unwrap_or(t_end),
                                ready: t_end,
                            });
                        }
                        None => {
                            // Recompute: the cache is gone — back through the
                            // prefill pool; admission restarts at the fire
                            // time, TTFT is re-earned.
                            let snaps: Vec<ReplicaSnapshot> = punits
                                .iter()
                                .enumerate()
                                .map(|(i, u)| u.snapshot(i, p_assigned[i], false))
                                .collect();
                            let mut rr = r;
                            rr.arrival_s = now.get();
                            let k = arouter.route(&rr, &snaps).min(punits.len() - 1);
                            p_assigned[k] += 1;
                            if item.attempts > 0 {
                                avail.retries += 1;
                            }
                            punits[k].queue.push_back(rr);
                        }
                    }
                }
                // Prefill batch: hand each member off (or park it if the
                // whole decode pool is down).
                3 => {
                    let batch = punits[idx].step()?;
                    for req in batch.members {
                        let up = dhealth.up_replicas();
                        if up.is_empty() {
                            let fire = dhealth.next_transition().ok_or_else(|| {
                                Error::internal(
                                    "every decode replica is down and none is scheduled to restart",
                                )
                            })?;
                            // The cache stays resident at the source (no
                            // release is scheduled until a transfer is).
                            waiting.push(DisaggRetry {
                                fire,
                                request: req,
                                attempts: attempts_of.get(&req.id).copied().unwrap_or(0),
                                source: Some(idx),
                                first_token: Some(batch.end),
                            });
                            continue;
                        }
                        let snaps: Vec<ReplicaSnapshot> = up
                            .iter()
                            .enumerate()
                            .map(|(pos, &k)| dunits[k].snapshot(pos, d_assigned[k], false))
                            .collect();
                        let pos = drouter.route(&req, &snaps).min(up.len() - 1);
                        let k = up[pos];
                        d_assigned[k] += 1;
                        let bytes =
                            full_fp.handoff_bytes(req.prompt_len, punits[idx].alloc.block_tokens());
                        let t_start = batch.end.max(punits[idx].link_free);
                        let (duration, energy) = priced_transfer(t_start, bytes);
                        let t_end = t_start + duration;
                        punits[idx].link_free = t_end;
                        punits[idx].pending_release.push((t_end, req.id));
                        transfers.record(bytes.get(), duration, energy);
                        dunits[k].pending.push(PendingDecode {
                            req,
                            first_token: batch.end,
                            ready: t_end,
                        });
                    }
                }
                // Decode round (atomic: a crash never lands mid-round).
                _ => {
                    let finished = dunits[idx].step()?;
                    for c in &finished {
                        if attempts_of.get(&c.id).copied().unwrap_or(0) > 0 {
                            avail.retried_ok += 1;
                        }
                        for rec in crash_log.iter_mut() {
                            if rec.replica == idx
                                && rec.first_completion.is_none()
                                && c.finish > rec.at
                            {
                                rec.first_completion = Some(c.finish);
                            }
                        }
                        stream.on_complete(c);
                    }
                    completions.extend(finished);
                }
            }
        }

        // Recomputed requests were re-admitted at their retry fire time;
        // report latency against the original arrival.
        for c in &mut completions {
            if let Some(orig) = origin.get(&c.id) {
                c.arrival = Seconds::new(*orig);
            }
        }
        completions.sort_by_key(|c| c.id);
        debug_assert_eq!(
            completions.len() as u64 + avail.shed + avail.timed_out,
            offered,
            "request conservation: arrived == completed + shed + timed out"
        );

        let finish = completions.iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
        let first_arrival = completions.iter().map(|c| c.arrival).fold(finish, Seconds::min);
        let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
        let fleet = (prefill.len() + decode.len()) as f64;
        let mut downtime = 0.0;
        for rec in &crash_log {
            let clip = |t: f64| t.clamp(first_arrival.get(), finish.get());
            let start = clip(rec.at.get());
            let end = clip(rec.up_again.map_or(finish.get(), |u| u.get()));
            downtime += (end - start).max(0.0);
            avail
                .time_to_recover_s
                .push((rec.first_completion.unwrap_or(finish).get() - rec.at.get()).max(0.0));
        }
        avail.downtime_s = downtime;
        avail.availability = (1.0 - downtime / (fleet * makespan)).clamp(0.0, 1.0);

        let mut rows = Vec::with_capacity(prefill.len() + decode.len());
        let mut chip_energy = Joules::ZERO;
        let mut queue_full_s = 0.0;
        for (spec, unit) in prefill.iter().zip(&punits) {
            chip_energy += unit.energy;
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "prefill".to_owned(),
                chips: spec.chips(),
                requests: unit.prefills,
                busy_s: unit.busy.get(),
                utilization: 0.0,
                energy_j: unit.energy.get(),
                kv_hwm_frac: unit.alloc.high_water_frac(),
            });
        }
        for (spec, unit) in decode.iter().zip(&dunits) {
            chip_energy += unit.energy;
            queue_full_s += unit.queue_full.get();
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "decode".to_owned(),
                chips: spec.chips(),
                requests: unit.completed,
                busy_s: unit.busy.get(),
                utilization: 0.0,
                energy_j: unit.energy.get(),
                kv_hwm_frac: unit.alloc.high_water_frac(),
            });
        }
        let report = ClusterReport::build(
            label,
            "disaggregated",
            format!("{}\u{2192}{}", router.name(), decode_router.name()),
            offered,
            &completions,
            chip_energy,
            0, // worst-case decode reservation: the pools never preempt
            queue_full_s,
            transfers,
            rows,
            slo_ms,
            Some(avail),
        );
        for session in p_sessions.iter().chain(&d_sessions) {
            session.persist_cache();
        }
        Ok(ClusterRun {
            report,
            replica_reports: Vec::new(),
            completions,
            prefix: cimtpu_serving::PrefixStats::default(),
        })
    }

    fn tiny() -> ServingModel {
        ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
    }

    /// A small heterogeneous pool: two prefill replicas with different
    /// admission caps feeding two decode replicas.
    fn pools() -> (Vec<ReplicaSpec>, Vec<ReplicaSpec>) {
        (
            vec![
                ReplicaSpec::new("p-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
                ReplicaSpec::new("p-1", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 2 }),
            ],
            vec![
                ReplicaSpec::new("d-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
                ReplicaSpec::new("d-1", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
            ],
        )
    }

    fn traffics(seed: u64) -> [TrafficSpec; 2] {
        let base = TrafficSpec {
            requests: 16,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 4_000.0 },
            prompt: LenDist::Uniform { lo: 16, hi: 48 },
            steps: LenDist::Uniform { lo: 4, hi: 12 },
            prefix: PrefixTraffic::None,
            seed,
        };
        [
            base.clone(),
            TrafficSpec {
                arrival: ArrivalPattern::ClosedLoop { clients: 3, think_ms: 1.0 },
                ..base
            },
        ]
    }

    /// Arrival-router → decode-router pairings under test.
    const PAIRS: [(RouterPolicy, RouterPolicy); 4] = [
        (RouterPolicy::RoundRobin, RouterPolicy::LeastKv),
        (RouterPolicy::LeastOutstanding, RouterPolicy::LeastOutstanding),
        (RouterPolicy::PassThrough, RouterPolicy::RoundRobin),
        (RouterPolicy::SessionAffinity, RouterPolicy::LeastOutstanding),
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// The heap-scheduled zero-fault pipeline replays the scan
        /// oracle bit-for-bit for every router pairing, in open and
        /// closed loop.
        #[test]
        fn heap_plain_matches_scan_oracle(seed in 0u64..1_000) {
            let (prefill, decode) = pools();
            for traffic in traffics(seed) {
                for (ap, dp) in PAIRS {
                    let fast = run_disaggregated_plain(
                        &prefill, &decode, ap, dp, InterconnectSpec::ici(), "eq", &traffic,
                        Some(50.0), None, None,
                    )
                    .unwrap();
                    let slow = run_disaggregated_plain_oracle(
                        &prefill, &decode, ap, dp, InterconnectSpec::ici(), "eq", &traffic,
                        Some(50.0),
                    )
                    .unwrap();
                    prop_assert_eq!(&fast, &slow, "{}→{}", ap.name(), dp.name());
                }
            }
        }

        /// The heap-scheduled failure-aware pipeline replays the scan
        /// oracle bit-for-bit under a scripted decode crash + degraded
        /// link window and under seeded chaos.
        #[test]
        fn heap_faulty_matches_scan_oracle(seed in 0u64..1_000) {
            let (prefill, decode) = pools();
            let scripted = FaultPlan::none()
                .with_event(FaultEvent::Crash {
                    at: Seconds::new(0.000_4),
                    replica: 0,
                    repair: Seconds::new(0.002),
                })
                .with_event(FaultEvent::DegradedLink {
                    from: Seconds::new(0.000_2),
                    until: Seconds::new(0.003),
                    bandwidth_factor: 0.5,
                    energy_factor: 1.5,
                });
            let chaos = FaultPlan::seeded(seed ^ 0xD15A6).with_chaos(ChaosSpec {
                crashes: 2,
                window: (Seconds::new(0.000_2), Seconds::new(0.003)),
                repair: Seconds::new(0.002),
            });
            for traffic in traffics(seed) {
                for plan in [&scripted, &chaos] {
                    for (ap, dp) in PAIRS {
                        let fast = run_disaggregated_faulty(
                            &prefill, &decode, ap, dp, InterconnectSpec::ici(), "eq",
                            &traffic, None, plan, None, None,
                        )
                        .unwrap();
                        let slow = run_disaggregated_faulty_oracle(
                            &prefill, &decode, ap, dp, InterconnectSpec::ici(), "eq",
                            &traffic, None, plan,
                        )
                        .unwrap();
                        prop_assert_eq!(&fast, &slow, "{}→{}", ap.name(), dp.name());
                    }
                }
            }
        }
    }
}
