//! The fleet engine: topology + router + traffic → [`ClusterRun`].

use cimtpu_serving::{
    drive, ArrivalStream, Completion, EngineCore, EngineSession, ServingReport, TrafficSpec,
};
use cimtpu_units::{Error, Joules, Result};

use crate::disagg::{run_disaggregated, InterconnectSpec};
use crate::replica::ReplicaSpec;
use crate::report::{ClusterReport, KvTransferStats, ReplicaUtilization};
use crate::router::{ReplicaSnapshot, RouterPolicy};

/// How the fleet's replicas divide the serving pipeline.
#[derive(Debug, Clone)]
pub enum ClusterTopology {
    /// Every replica runs whole requests (prefill + decode on the same
    /// chips); the router spreads arrivals across them.
    Colocated {
        /// The replica groups.
        replicas: Vec<ReplicaSpec>,
        /// Arrival routing policy.
        router: RouterPolicy,
    },
    /// DistServe/Splitwise-style disaggregation: a prefill pool ingests
    /// prompts, hands the KV cache over the interconnect to a decode pool,
    /// and decode admission is gated by the target replica's paged
    /// allocator.
    Disaggregated {
        /// Prefill-pool replicas.
        prefill: Vec<ReplicaSpec>,
        /// Decode-pool replicas.
        decode: Vec<ReplicaSpec>,
        /// Arrival routing policy (across the prefill pool).
        router: RouterPolicy,
        /// KV-handoff routing policy (across the decode pool).
        decode_router: RouterPolicy,
        /// The link KV caches migrate over.
        interconnect: InterconnectSpec,
    },
}

/// A complete fleet-simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    topology: ClusterTopology,
    slo_ms: Option<f64>,
}

/// Everything a cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRun {
    /// The fleet aggregate.
    pub report: ClusterReport,
    /// Per-replica `ServingReport`s (colocated fleets only — one per
    /// replica that completed at least one request, labelled with the
    /// replica name; empty for disaggregated fleets, whose pools don't
    /// run the single-engine scheduler).
    pub replica_reports: Vec<ServingReport>,
    /// Per-request lifecycle records, in request-id order.
    pub completions: Vec<Completion>,
    /// Fleet-wide prefix-sharing counters, summed over replicas (all
    /// zero when no replica enables sharing; disaggregated pools do not
    /// run the prefix cache).
    pub prefix: cimtpu_serving::PrefixStats,
}

impl ClusterEngine {
    /// A colocated fleet.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty replica list.
    pub fn colocated(replicas: Vec<ReplicaSpec>, router: RouterPolicy) -> Result<Self> {
        if replicas.is_empty() {
            return Err(Error::invalid_config("a cluster needs at least one replica"));
        }
        Ok(ClusterEngine {
            topology: ClusterTopology::Colocated { replicas, router },
            slo_ms: None,
        })
    }

    /// A disaggregated prefill/decode fleet.
    ///
    /// # Errors
    ///
    /// Returns an error if either pool is empty.
    pub fn disaggregated(
        prefill: Vec<ReplicaSpec>,
        decode: Vec<ReplicaSpec>,
        router: RouterPolicy,
        decode_router: RouterPolicy,
        interconnect: InterconnectSpec,
    ) -> Result<Self> {
        if prefill.is_empty() || decode.is_empty() {
            return Err(Error::invalid_config(
                "a disaggregated cluster needs at least one prefill and one decode replica",
            ));
        }
        Ok(ClusterEngine {
            topology: ClusterTopology::Disaggregated {
                prefill,
                decode,
                router,
                decode_router,
                interconnect,
            },
            slo_ms: None,
        })
    }

    /// Sets the latency SLO the report's goodput is computed against.
    #[must_use]
    pub fn with_slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ms = Some(slo_ms);
        self
    }

    /// Overrides every replica's KV budget (both pools of a disaggregated
    /// fleet) — what the `cluster_sim --kv-budget` flag applies.
    #[must_use]
    pub fn with_kv_budget(mut self, budget: cimtpu_serving::KvBudget) -> Self {
        let apply = |replicas: &mut Vec<ReplicaSpec>| {
            for r in replicas {
                r.memory.budget = budget;
            }
        };
        match &mut self.topology {
            ClusterTopology::Colocated { replicas, .. } => apply(replicas),
            ClusterTopology::Disaggregated { prefill, decode, .. } => {
                apply(prefill);
                apply(decode);
            }
        }
        self
    }

    /// The fleet topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Simulates `traffic` across the fleet. Deterministic: identical
    /// inputs give identical reports (CI replays seeded runs and diffs).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid traffic spec or replica
    /// configuration, an unmappable operator, or a KV budget too small to
    /// hold a single request.
    pub fn run(&self, label: &str, traffic: &TrafficSpec) -> Result<ClusterRun> {
        match &self.topology {
            ClusterTopology::Colocated { replicas, router } => {
                run_colocated(replicas, *router, label, traffic, self.slo_ms)
            }
            ClusterTopology::Disaggregated {
                prefill,
                decode,
                router,
                decode_router,
                interconnect,
            } => run_disaggregated(
                prefill,
                decode,
                *router,
                *decode_router,
                *interconnect,
                label,
                traffic,
                self.slo_ms,
            ),
        }
    }
}

/// Builds router snapshots of every core at arrival instant `t`.
fn snapshots(cores: &[EngineCore<'_>], t: cimtpu_units::Seconds, assigned: &[u64]) -> Vec<ReplicaSnapshot> {
    cores
        .iter()
        .enumerate()
        .map(|(index, core)| ReplicaSnapshot {
            index,
            outstanding: core.outstanding_at(t),
            queued: core.queued(),
            kv_frac: core.kv_frac(),
            assigned: assigned[index],
        })
        .collect()
}

fn run_colocated(
    replicas: &[ReplicaSpec],
    policy: RouterPolicy,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
) -> Result<ClusterRun> {
    let sessions: Vec<EngineSession> = replicas
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let mut cores: Vec<EngineCore<'_>> =
        sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let mut router = policy.build();
    let mut assigned = vec![0u64; replicas.len()];

    drive(&mut cores, &mut stream, |request, cores| {
        let snaps = snapshots(cores, request.arrival(), &assigned);
        let k = router.route(request, &snaps).min(cores.len() - 1);
        assigned[k] += 1;
        k
    })?;

    let mut completions: Vec<Completion> = Vec::new();
    let mut chip_energy = Joules::ZERO;
    let mut preemptions = 0;
    let mut queue_full_s = 0.0;
    let mut prefix = cimtpu_serving::PrefixStats::default();
    let mut rows = Vec::with_capacity(replicas.len());
    let mut replica_reports = Vec::new();
    for (spec, core) in replicas.iter().zip(&cores) {
        let memory = core.memory_stats();
        preemptions += memory.preemptions;
        queue_full_s += memory.queue_full_s;
        prefix.absorb(&core.prefix_stats());
        chip_energy += core.energy();
        completions.extend_from_slice(core.completions());
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "serve".to_owned(),
            chips: spec.chips(),
            requests: core.completions().len() as u64,
            busy_s: core.busy().get(),
            utilization: 0.0, // filled against the fleet makespan
            energy_j: core.energy().get(),
            kv_hwm_frac: memory.kv_hwm_frac,
        });
        if !core.completions().is_empty() {
            replica_reports.push(core.finish(&spec.name).report);
        }
    }
    completions.sort_by_key(|c| c.id);
    let report = ClusterReport::build(
        label,
        "colocated",
        policy.name().to_owned(),
        offered,
        &completions,
        chip_energy,
        preemptions,
        queue_full_s,
        KvTransferStats::default(),
        rows,
        slo_ms,
    );
    for session in &sessions {
        session.persist_cache();
    }
    Ok(ClusterRun { report, replica_reports, completions, prefix })
}
