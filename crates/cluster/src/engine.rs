//! The fleet engine: topology + router + traffic → [`ClusterRun`].

use std::collections::HashMap;
use std::rc::Rc;

use cimtpu_obs::{EventKind, SharedRecorder, TraceHandle, TraceSink as _};
use cimtpu_serving::{
    drive_with, ActionHeap, ArrivalStream, Completion, DriveHooks, EngineCore, EngineSession,
    PrefixStats, Request, ServingReport, TenantLedger, TenantSched, TenantSet, TrafficSpec,
};
use cimtpu_autoscale::{AutoscalePolicy, ScalingStats};
use cimtpu_units::{Error, Joules, Result, Seconds};

use crate::disagg::{run_disaggregated, InterconnectSpec};
use crate::elastic::run_colocated_elastic;
use crate::fault::{AvailabilityStats, FaultEvent, FaultPlan};
use crate::replica::ReplicaSpec;
use crate::report::{ClusterReport, KvTransferStats, ReplicaUtilization};
use crate::router::{
    HealthView, ReplicaHealth, ReplicaSnapshot, Router, RouterPolicy, SnapshotTracker,
};

/// How the fleet's replicas divide the serving pipeline.
#[derive(Debug, Clone)]
pub enum ClusterTopology {
    /// Every replica runs whole requests (prefill + decode on the same
    /// chips); the router spreads arrivals across them.
    Colocated {
        /// The replica groups.
        replicas: Vec<ReplicaSpec>,
        /// Arrival routing policy.
        router: RouterPolicy,
    },
    /// DistServe/Splitwise-style disaggregation: a prefill pool ingests
    /// prompts, hands the KV cache over the interconnect to a decode pool,
    /// and decode admission is gated by the target replica's paged
    /// allocator.
    Disaggregated {
        /// Prefill-pool replicas.
        prefill: Vec<ReplicaSpec>,
        /// Decode-pool replicas.
        decode: Vec<ReplicaSpec>,
        /// Arrival routing policy (across the prefill pool).
        router: RouterPolicy,
        /// KV-handoff routing policy (across the decode pool).
        decode_router: RouterPolicy,
        /// The link KV caches migrate over.
        interconnect: InterconnectSpec,
    },
}

/// Tenancy wiring threaded through the fleet drivers: the weighted-fair
/// schedule armed on every engine core plus the driver-side ledger that
/// attributes sheds, timeouts, and preemptions back to tenants.
pub(crate) struct Tenancy<'a> {
    pub(crate) sched: &'a TenantSched,
    pub(crate) ledger: &'a mut TenantLedger,
}

impl Tenancy<'_> {
    /// Whether the run has more than one tenant — the gate for class-split
    /// snapshot maintenance and tenant-tagged trace events (single-tenant
    /// runs stay bit-identical to runs without tenancy).
    pub(crate) fn multi(&self) -> bool {
        self.sched.classes.len() > 1
    }
}

/// The tenant tag for request `id`'s flight-recorder events: present only
/// for multi-tenant runs, so single-tenant traces stay byte-identical.
pub(crate) fn tenant_tag(tenancy: &Option<Tenancy<'_>>, id: u64) -> Option<u32> {
    tenancy
        .as_ref()
        .and_then(|t| t.multi().then(|| t.ledger.tenant_of(id) as u32))
}

/// A complete fleet-simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    topology: ClusterTopology,
    slo_ms: Option<f64>,
    faults: FaultPlan,
    autoscale: Option<AutoscalePolicy>,
}

/// Everything a cluster run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRun {
    /// The fleet aggregate.
    pub report: ClusterReport,
    /// Per-replica `ServingReport`s (colocated fleets only — one per
    /// replica that completed at least one request, labelled with the
    /// replica name; empty for disaggregated fleets, whose pools don't
    /// run the single-engine scheduler).
    pub replica_reports: Vec<ServingReport>,
    /// Per-request lifecycle records, in request-id order.
    pub completions: Vec<Completion>,
    /// Fleet-wide prefix-sharing counters, summed over replicas (all
    /// zero when no replica enables sharing; disaggregated pools do not
    /// run the prefix cache).
    pub prefix: cimtpu_serving::PrefixStats,
}

impl ClusterEngine {
    /// A colocated fleet.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty replica list.
    pub fn colocated(replicas: Vec<ReplicaSpec>, router: RouterPolicy) -> Result<Self> {
        if replicas.is_empty() {
            return Err(Error::invalid_config("a cluster needs at least one replica"));
        }
        Ok(ClusterEngine {
            topology: ClusterTopology::Colocated { replicas, router },
            slo_ms: None,
            faults: FaultPlan::none(),
            autoscale: None,
        })
    }

    /// A disaggregated prefill/decode fleet.
    ///
    /// # Errors
    ///
    /// Returns an error if either pool is empty.
    pub fn disaggregated(
        prefill: Vec<ReplicaSpec>,
        decode: Vec<ReplicaSpec>,
        router: RouterPolicy,
        decode_router: RouterPolicy,
        interconnect: InterconnectSpec,
    ) -> Result<Self> {
        if prefill.is_empty() || decode.is_empty() {
            return Err(Error::invalid_config(
                "a disaggregated cluster needs at least one prefill and one decode replica",
            ));
        }
        Ok(ClusterEngine {
            topology: ClusterTopology::Disaggregated {
                prefill,
                decode,
                router,
                decode_router,
                interconnect,
            },
            slo_ms: None,
            faults: FaultPlan::none(),
            autoscale: None,
        })
    }

    /// Sets the latency SLO the report's goodput is computed against.
    #[must_use]
    pub fn with_slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ms = Some(slo_ms);
        self
    }

    /// Overrides every replica's KV budget (both pools of a disaggregated
    /// fleet) — what the `cluster_sim --kv-budget` flag applies.
    #[must_use]
    pub fn with_kv_budget(mut self, budget: cimtpu_serving::KvBudget) -> Self {
        let apply = |replicas: &mut Vec<ReplicaSpec>| {
            for r in replicas {
                r.memory.budget = budget;
            }
        };
        match &mut self.topology {
            ClusterTopology::Colocated { replicas, .. } => apply(replicas),
            ClusterTopology::Disaggregated { prefill, decode, .. } => {
                apply(prefill);
                apply(decode);
            }
        }
        self
    }

    /// Installs a fault plan. An **empty** plan (the default) takes the
    /// exact zero-fault code path — runs stay bit-identical to an engine
    /// without any plan; a non-empty plan switches to the failure-aware
    /// driver (replica health view, retries, shedding) and the report
    /// grows an availability section.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The installed fault plan (empty by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Installs an autoscale policy: one [`GroupPolicy`] per replica
    /// group, making each group an elastic pool of up to `max` slots
    /// named `{name}-{slot}` that a reconcile loop grows and shrinks
    /// against the policy's utilization band.
    ///
    /// A **pinned** policy (every band `min == max`, no swaps) keeps the
    /// plain fleet code paths: the fleet is expanded to its pinned sizes
    /// and dispatched to the non-elastic drivers bit-identically — the
    /// report just gains a `scaling` section pricing the static fleet.
    /// An *elastic* policy switches a colocated fleet to the autoscaled
    /// driver; elastic disaggregated fleets and elastic runs under a
    /// fault plan are rejected by [`run`](ClusterEngine::run).
    ///
    /// [`GroupPolicy`]: cimtpu_autoscale::GroupPolicy
    #[must_use]
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// The installed autoscale policy, if any.
    pub fn autoscale(&self) -> Option<&AutoscalePolicy> {
        self.autoscale.as_ref()
    }

    /// The fleet topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Simulates `traffic` across the fleet. Deterministic: identical
    /// inputs give identical reports (CI replays seeded runs and diffs).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid traffic spec or replica
    /// configuration, an unmappable operator, or a KV budget too small to
    /// hold a single request.
    pub fn run(&self, label: &str, traffic: &TrafficSpec) -> Result<ClusterRun> {
        self.run_observed(label, traffic, None)
    }

    /// [`run`](Self::run) with an optional flight recorder threaded
    /// through whichever driver the topology dispatches to: replicas get
    /// one track each, control-plane events (crashes, retries, scaling
    /// actions, reconcile ticks) land on a control track, and queue/KV
    /// gauges stream into the recorder's timeseries. `None` is exactly
    /// [`run`](Self::run) — the recorder-off paths stay bit-identical.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_observed(
        &self,
        label: &str,
        traffic: &TrafficSpec,
        recorder: Option<&SharedRecorder>,
    ) -> Result<ClusterRun> {
        self.dispatch(label, traffic, None, recorder)
    }

    /// Simulates a multi-tenant [`TenantSet`] across the fleet: merges the
    /// per-tenant traffics into one trace, arms weighted-fair scheduling
    /// on every replica's engine core, and fills the report's per-tenant
    /// section (goodput, SLO attainment, Jain's fairness). A
    /// single-tenant set produces a report bit-identical to
    /// [`run`](Self::run) on that tenant's traffic, plus the tenant
    /// section.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run), plus invalid tenant sets.
    pub fn run_tenants(&self, label: &str, tenants: &TenantSet) -> Result<ClusterRun> {
        self.run_tenants_observed(label, tenants, None)
    }

    /// [`run_tenants`](Self::run_tenants) with an optional flight
    /// recorder; multi-tenant runs tag every request-lifecycle event
    /// (arrival, retry, shed, timeout, park, complete) with its tenant
    /// index.
    ///
    /// # Errors
    ///
    /// As for [`run_tenants`](Self::run_tenants).
    pub fn run_tenants_observed(
        &self,
        label: &str,
        tenants: &TenantSet,
        recorder: Option<&SharedRecorder>,
    ) -> Result<ClusterRun> {
        let merged = tenants.merged_spec()?;
        let sched = tenants.sched();
        let mut ledger = TenantLedger::new(tenants, &merged);
        self.dispatch(
            label,
            &merged,
            Some(Tenancy { sched: &sched, ledger: &mut ledger }),
            recorder,
        )
    }

    fn dispatch(
        &self,
        label: &str,
        traffic: &TrafficSpec,
        tenancy: Option<Tenancy<'_>>,
        recorder: Option<&SharedRecorder>,
    ) -> Result<ClusterRun> {
        if let Some(policy) = &self.autoscale {
            return self.run_autoscaled(policy, label, traffic, tenancy, recorder);
        }
        match &self.topology {
            ClusterTopology::Colocated { replicas, router } => {
                if self.faults.is_empty() {
                    run_colocated(replicas, *router, label, traffic, self.slo_ms, tenancy, recorder)
                } else {
                    run_colocated_faulty(
                        replicas,
                        *router,
                        label,
                        traffic,
                        self.slo_ms,
                        &self.faults,
                        tenancy,
                        recorder,
                    )
                }
            }
            ClusterTopology::Disaggregated {
                prefill,
                decode,
                router,
                decode_router,
                interconnect,
            } => run_disaggregated(
                prefill,
                decode,
                *router,
                *decode_router,
                *interconnect,
                label,
                traffic,
                self.slo_ms,
                &self.faults,
                tenancy,
                recorder,
            ),
        }
    }

    /// Dispatch under an autoscale policy: pinned policies expand the
    /// fleet and reuse the plain drivers unchanged (bit-identity is
    /// proptested); elastic policies take the reconcile-loop driver.
    fn run_autoscaled(
        &self,
        policy: &AutoscalePolicy,
        label: &str,
        traffic: &TrafficSpec,
        tenancy: Option<Tenancy<'_>>,
        recorder: Option<&SharedRecorder>,
    ) -> Result<ClusterRun> {
        policy.validate()?;
        let ngroups = match &self.topology {
            ClusterTopology::Colocated { replicas, .. } => replicas.len(),
            ClusterTopology::Disaggregated { prefill, decode, .. } => {
                prefill.len() + decode.len()
            }
        };
        if policy.groups.len() != ngroups {
            return Err(Error::invalid_config(format!(
                "the autoscale policy covers {} group(s) but the fleet has {ngroups}",
                policy.groups.len()
            )));
        }
        if policy.is_pinned() {
            // Expand every group to its pinned size and run the plain
            // (non-elastic) drivers unchanged; the report just gains a
            // `scaling` section pricing the static fleet.
            let expand = |specs: &[ReplicaSpec], offset: usize| -> Vec<ReplicaSpec> {
                specs
                    .iter()
                    .enumerate()
                    .flat_map(|(g, base)| {
                        (0..policy.groups[offset + g].min).map(move |j| {
                            let mut spec = base.clone();
                            spec.name = format!("{}-{j}", base.name);
                            spec
                        })
                    })
                    .collect()
            };
            let topology = match &self.topology {
                ClusterTopology::Colocated { replicas, router } => ClusterTopology::Colocated {
                    replicas: expand(replicas, 0),
                    router: *router,
                },
                ClusterTopology::Disaggregated {
                    prefill,
                    decode,
                    router,
                    decode_router,
                    interconnect,
                } => ClusterTopology::Disaggregated {
                    prefill: expand(prefill, 0),
                    decode: expand(decode, prefill.len()),
                    router: *router,
                    decode_router: *decode_router,
                    interconnect: *interconnect,
                },
            };
            let pinned = ClusterEngine {
                topology,
                slo_ms: self.slo_ms,
                faults: self.faults.clone(),
                autoscale: None,
            };
            let mut run = pinned.dispatch(label, traffic, tenancy, recorder)?;
            let chip_seconds = run.report.chips as f64 * run.report.makespan_s;
            let busy_chip_s: f64 = run
                .report
                .per_replica
                .iter()
                .map(|r| r.busy_s * r.chips as f64)
                .sum();
            run.report.scaling = Some(ScalingStats::static_fleet(
                run.report.replicas,
                chip_seconds,
                busy_chip_s,
                run.report.total_energy_j,
                policy.idle_watts,
            ));
            return Ok(run);
        }
        match &self.topology {
            ClusterTopology::Colocated { replicas, router } if self.faults.is_empty() => {
                run_colocated_elastic(
                    replicas, *router, label, traffic, self.slo_ms, policy, tenancy, recorder,
                )
            }
            ClusterTopology::Colocated { .. } => Err(Error::invalid_config(
                "an elastic autoscale policy cannot run under a fault plan; pin the \
                 policy (min == max, no swap) or drop the faults",
            )),
            ClusterTopology::Disaggregated { .. } => Err(Error::invalid_config(
                "autoscaling a disaggregated fleet is not supported; pin the policy \
                 (min == max, no swap) to size the pools statically",
            )),
        }
    }
}

/// [`DriveHooks`] for the zero-fault colocated fleet: routes each
/// arrival over a [`SnapshotTracker`]'s incrementally-maintained fleet
/// view instead of rebuilding every [`ReplicaSnapshot`] — with its
/// `O(completions)` `outstanding_at` scan per replica — at every
/// arrival. The tracker-vs-rebuild equivalence is proptested in this
/// module's tests.
struct ColocatedHooks {
    router: Box<dyn Router>,
    tracker: SnapshotTracker,
    /// Multi-tenant run: refresh per-class outstanding splits before every
    /// routing decision (the `SloAware` policy reads them). Off for
    /// single-tenant runs, preserving the tracker's `O(1)`-per-event path.
    classed: bool,
    /// Recorder + per-replica `[queued, kv_frac]` gauge series, when the
    /// run is observed.
    gauges: Option<(SharedRecorder, Vec<[usize; 2]>)>,
}

impl DriveHooks for ColocatedHooks {
    fn route(&mut self, request: &Request, cores: &[EngineCore<'_>]) -> usize {
        let t = request.arrival();
        if t < self.tracker.now() {
            // A stall flush launched work in the past and re-armed a
            // closed-loop client below the tracker's clock: rebuild.
            self.tracker.resync(t, cores);
        } else {
            self.tracker.advance_to(t);
        }
        if self.classed {
            self.tracker.refresh_classes(cores);
        }
        self.router.route(request, self.tracker.snapshots())
    }

    fn on_push(&mut self, k: usize, cores: &[EngineCore<'_>]) {
        self.tracker.on_push(k, cores[k].queued());
    }

    fn on_step(&mut self, k: usize, cores: &[EngineCore<'_>], new: &[Completion]) {
        self.tracker.on_step(k, cores[k].queued(), cores[k].kv_frac(), new);
        if let Some((rec, series)) = &self.gauges {
            let t = new
                .iter()
                .map(|c| c.finish.get())
                .fold(self.tracker.now().get(), f64::max);
            let mut rec = rec.borrow_mut();
            rec.sample(series[k][0], t, cores[k].queued() as f64);
            rec.sample(series[k][1], t, cores[k].kv_frac());
        }
    }
}

/// Registers one track per replica (named after the spec), attaches a
/// [`TraceHandle`] to each core, and returns the track ids plus one
/// `[queued, kv_frac]` gauge-series pair per replica.
fn attach_replica_tracks(
    rec: &SharedRecorder,
    specs: &[ReplicaSpec],
    cores: &mut [EngineCore<'_>],
) -> (Vec<u32>, Vec<[usize; 2]>) {
    let mut tracks = Vec::with_capacity(specs.len());
    let mut series = Vec::with_capacity(specs.len());
    {
        let mut r = rec.borrow_mut();
        for spec in specs {
            tracks.push(r.track(&spec.name));
            series.push([
                r.gauge_series(&format!("{}/queued", spec.name)),
                r.gauge_series(&format!("{}/kv_frac", spec.name)),
            ]);
        }
    }
    for (core, &track) in cores.iter_mut().zip(&tracks) {
        core.attach_trace(TraceHandle::new(Rc::clone(rec), track));
    }
    (tracks, series)
}

/// Everything the failure-aware drivers need to emit: the shared
/// recorder, one track and one `[queued, kv_frac]` gauge pair per
/// replica, and a control track for fleet-level events (arrivals,
/// retries, sheds, reconcile ticks).
struct FleetTrace {
    rec: SharedRecorder,
    tracks: Vec<u32>,
    series: Vec<[usize; 2]>,
    control: u32,
}

impl FleetTrace {
    fn attach(
        rec: &SharedRecorder,
        specs: &[ReplicaSpec],
        cores: &mut [EngineCore<'_>],
    ) -> FleetTrace {
        let (tracks, series) = attach_replica_tracks(rec, specs, cores);
        let control = rec.borrow_mut().track("control");
        FleetTrace { rec: Rc::clone(rec), tracks, series, control }
    }
}

fn run_colocated(
    replicas: &[ReplicaSpec],
    policy: RouterPolicy,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    mut tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    let sessions: Vec<EngineSession> = replicas
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let mut cores: Vec<EngineCore<'_>> =
        sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
    if let Some(t) = &tenancy {
        for core in &mut cores {
            core.set_tenancy(t.sched);
        }
    }
    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let gauges = recorder.map(|rec| {
        let (_, series) = attach_replica_tracks(rec, replicas, &mut cores);
        (Rc::clone(rec), series)
    });

    drive_with(
        &mut cores,
        &mut stream,
        ColocatedHooks {
            router: policy.build(),
            tracker: SnapshotTracker::new(replicas.len()),
            classed: tenancy.as_ref().is_some_and(Tenancy::multi),
            gauges,
        },
    )?;

    let mut completions: Vec<Completion> = Vec::new();
    let mut chip_energy = Joules::ZERO;
    let mut preemptions = 0;
    let mut queue_full_s = 0.0;
    let mut prefix = cimtpu_serving::PrefixStats::default();
    let mut rows = Vec::with_capacity(replicas.len());
    let mut replica_reports = Vec::new();
    for (spec, core) in replicas.iter().zip(&cores) {
        let memory = core.memory_stats();
        preemptions += memory.preemptions;
        queue_full_s += memory.queue_full_s;
        prefix.absorb(&core.prefix_stats());
        chip_energy += core.energy();
        completions.extend_from_slice(core.completions());
        if let Some(t) = tenancy.as_mut() {
            if let Some(per_tenant) = core.tenant_preemptions() {
                t.ledger.absorb_preemptions(per_tenant);
            }
        }
        if let Some(rec) = recorder {
            let track = core.trace_track().expect("recorder attached above");
            let mut rec = rec.borrow_mut();
            for c in core.completions() {
                rec.complete_for(
                    track,
                    c.id,
                    c.finish.get(),
                    c.latency().as_millis(),
                    c.ttft().as_millis(),
                    tenant_tag(&tenancy, c.id),
                );
            }
        }
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "serve".to_owned(),
            chips: spec.chips(),
            requests: core.completions().len() as u64,
            busy_s: core.busy().get(),
            utilization: 0.0, // filled against the fleet makespan
            energy_j: core.energy().get(),
            kv_hwm_frac: memory.kv_hwm_frac,
        });
        if !core.completions().is_empty() {
            replica_reports.push(core.finish(&spec.name).report);
        }
    }
    completions.sort_by_key(|c| c.id);
    let mut report = ClusterReport::build(
        label,
        "colocated",
        policy.name().to_owned(),
        offered,
        &completions,
        chip_energy,
        preemptions,
        queue_full_s,
        KvTransferStats::default(),
        rows,
        slo_ms,
        None,
    );
    if let Some(t) = tenancy {
        report.tenants = Some(t.ledger.report(&completions, report.makespan_s));
    }
    for session in &sessions {
        session.persist_cache();
    }
    Ok(ClusterRun { report, replica_reports, completions, prefix })
}

/// A point action on the fault timeline (a [`FaultEvent`] window expands
/// into a start and an end action).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash { replica: usize, repair: Seconds },
    SlowStart { replica: usize, factor: f64 },
    SlowEnd { replica: usize },
}

/// A request waiting to (re-)enter the fleet: a fresh arrival queued for
/// admission, a crash-lost request backing off before its retry, or a
/// request parked until some replica restarts.
#[derive(Debug, Clone, Copy)]
struct WaitingRetry {
    /// When the request (re-)enters admission.
    fire: Seconds,
    /// The request (for retries, `arrival_s` is rewritten to the fire
    /// time at push; the original arrival lives in the driver's origin
    /// map and is restored on the delivered completion).
    request: Request,
    /// Retries already charged against the request's budget (0 for a
    /// fresh arrival).
    attempts: u32,
}

/// One crash on the books, for downtime and time-to-recover accounting.
struct CrashRecord {
    replica: usize,
    at: Seconds,
    /// When the replica came back `Up` (end of warmup).
    up_again: Option<Seconds>,
    /// Finish time of the replica's first completion after restart.
    first_completion: Option<Seconds>,
}

/// Per-replica counters accumulated across incarnations: a crash replaces
/// the replica's core, so its energy/busy/KV history is harvested at the
/// crash instant and the restarted core starts a new ledger.
#[derive(Default)]
pub(crate) struct ReplicaAccum {
    pub(crate) busy_s: f64,
    pub(crate) energy_j: f64,
    pub(crate) preemptions: u64,
    pub(crate) queue_full_s: f64,
    pub(crate) kv_hwm: f64,
    pub(crate) prefix: PrefixStats,
}

impl ReplicaAccum {
    pub(crate) fn harvest(&mut self, core: &EngineCore<'_>) {
        let memory = core.memory_stats();
        self.busy_s += core.busy().get();
        self.energy_j += core.energy().get();
        self.preemptions += memory.preemptions;
        self.queue_full_s += memory.queue_full_s;
        self.kv_hwm = self.kv_hwm.max(memory.kv_hwm_frac);
        self.prefix.absorb(&core.prefix_stats());
    }
}

/// Router snapshots over the healthy subset, re-indexed `0..up.len()` so
/// index-returning and positional routers agree (see the health-view
/// section of the [`router`](crate::router) module docs); the driver maps
/// the routed position back through `up`.
fn healthy_snapshots(
    cores: &[EngineCore<'_>],
    up: &[usize],
    t: Seconds,
    assigned: &[u64],
    classed: bool,
) -> Vec<ReplicaSnapshot> {
    up.iter()
        .enumerate()
        .map(|(pos, &k)| ReplicaSnapshot {
            index: pos,
            outstanding: cores[k].outstanding_at(t),
            queued: cores[k].queued(),
            kv_frac: cores[k].kv_frac(),
            assigned: assigned[k],
            class_outstanding: if classed {
                cores[k].outstanding_by_class_at(t)
            } else {
                [0; 3]
            },
        })
        .collect()
}

/// Releases a shed or timed-out request's closed-loop client: the client
/// observes the failure at `at` and thinks before reissuing, so dropping
/// a request never deadlocks a closed loop. Open-loop and burst streams
/// ignore the synthetic completion.
pub(crate) fn release_client(stream: &mut ArrivalStream, id: u64, orig_arrival: f64, at: Seconds) {
    stream.on_complete(&Completion {
        id,
        arrival: Seconds::new(orig_arrival),
        first_token: at,
        finish: at,
        steps: 0,
    });
}

/// The failure-aware colocated driver: `drive` re-derived as an explicit
/// event loop so fault events, deferred completion delivery, and retry
/// timers can interleave with arrivals and engine steps.
///
/// Event classes at one instant resolve in a fixed order — faults/health
/// transitions, then arrivals, then completion deliveries, then retry
/// fires (admission), then engine steps — chosen so a run whose faults
/// are all benign (e.g. a ×1 straggler window) replays the plain driver
/// bit-for-bit. Completions are *delivered* (fed to closed-loop clients,
/// added to the run ledger) at their finish time rather than inside the
/// step that produced them, which is what lets a crash revoke
/// in-flight-but-undelivered completions.
#[allow(clippy::too_many_arguments)] // one call site, in `dispatch`
fn run_colocated_faulty(
    replicas: &[ReplicaSpec],
    policy: RouterPolicy,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    plan: &FaultPlan,
    mut tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    let recovery = *plan.recovery();
    let mut timeline: Vec<(Seconds, FaultAction)> = Vec::new();
    for event in plan.resolve(replicas.len())? {
        match event {
            FaultEvent::Crash { at, replica, repair } => {
                timeline.push((at, FaultAction::Crash { replica, repair }));
            }
            FaultEvent::Straggler { replica, from, until, slowdown } => {
                timeline.push((from, FaultAction::SlowStart { replica, factor: slowdown }));
                timeline.push((until, FaultAction::SlowEnd { replica }));
            }
            FaultEvent::DegradedLink { .. } => {
                return Err(Error::invalid_config(
                    "degraded-link faults apply to the disaggregated interconnect; \
                     a colocated fleet has no handoff link",
                ));
            }
        }
    }
    timeline.sort_by(|a, b| a.0.get().total_cmp(&b.0.get()));
    let mut next_fault = 0usize;

    let sessions: Vec<EngineSession> = replicas
        .iter()
        .map(|r| EngineSession::new(&r.engine()?))
        .collect::<Result<_>>()?;
    let mut cores: Vec<EngineCore<'_>> =
        sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
    if let Some(t) = &tenancy {
        for core in &mut cores {
            core.set_tenancy(t.sched);
        }
    }
    let classed = tenancy.as_ref().is_some_and(Tenancy::multi);
    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let mut router = policy.build();
    let n = replicas.len();
    let trace = recorder.map(|rec| FleetTrace::attach(rec, replicas, &mut cores));
    // Start of the straggler window in flight per replica (NaN = none);
    // the Straggler span is emitted when the window closes.
    let mut slow_since = vec![f64::NAN; n];
    let mut assigned = vec![0u64; n];
    let mut health = HealthView::all_up(n);
    // Core liveness: a crashed core stays in `cores` (stale) until its
    // replica restarts and a fresh core replaces it.
    let mut stale = vec![false; n];
    let mut slowdown = vec![1.0f64; n];
    let mut last_push = vec![f64::NEG_INFINITY; n];
    let mut exhausted_closed = false;

    // The run ledger lives in the driver, not the cores: cores are
    // replaced on restart, and a completion only counts once delivered.
    let mut delivered: Vec<Completion> = Vec::new();
    let mut deliveries: Vec<(usize, Completion)> = Vec::new();
    let mut delivered_by = vec![0u64; n];
    let mut waiting: Vec<WaitingRetry> = Vec::new();
    let mut origin: HashMap<u64, f64> = HashMap::new();
    let mut attempts_of: HashMap<u64, u32> = HashMap::new();
    let mut avail = AvailabilityStats::zero();
    let mut crash_log: Vec<CrashRecord> = Vec::new();
    let mut accum: Vec<ReplicaAccum> = (0..n).map(|_| ReplicaAccum::default()).collect();

    // The step-event queue: one slot per replica, keyed by the core's
    // next-action time (`None` while the replica is down). Every
    // core-mutating event below refreshes the owning slot, so the heap
    // minimum always matches what a fresh `O(replicas)` scan over the
    // non-stale cores would pick — same time, same lowest-index
    // tie-break (pinned against the scan oracle by this module's
    // proptests).
    let mut step_heap = ActionHeap::new(n);
    for (i, core) in cores.iter().enumerate() {
        step_heap.set(i, core.next_action());
    }

    loop {
        // Candidate events, classes in tie-break order.
        let step_at = step_heap.peek();
        let delivery_at: Option<(usize, Seconds)> = deliveries
            .iter()
            .enumerate()
            .min_by(|(ai, a), (bi, b)| {
                a.1.finish.get().total_cmp(&b.1.finish.get()).then(ai.cmp(bi))
            })
            .map(|(i, d)| (i, d.1.finish));
        let retry_at: Option<usize> = waiting
            .iter()
            .enumerate()
            .min_by(|(ai, a), (bi, b)| {
                let ka = (a.fire.get(), a.request.arrival_s, a.request.id);
                let kb = (b.fire.get(), b.request.arrival_s, b.request.id);
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(ai.cmp(bi))
            })
            .map(|(i, _)| i);
        let fault_at: Option<Seconds> = {
            let scripted = (next_fault < timeline.len()).then(|| timeline[next_fault].0);
            match (scripted, health.next_transition()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let arrival_at = stream.peek();

        // The run is over when nothing can produce or receive work —
        // trailing fault events on an idle fleet are dropped.
        if stream.exhausted() && waiting.is_empty() && deliveries.is_empty() && step_at.is_none()
        {
            break;
        }

        let candidates = [
            (fault_at, 0u8),
            (arrival_at, 1),
            (delivery_at.map(|(_, t)| t), 2),
            (retry_at.map(|i| waiting[i].fire), 3),
            (step_at.map(|(_, t)| t), 4),
        ];
        let mut chosen: Option<(Seconds, u8)> = None;
        for (t, class) in candidates {
            if let Some(t) = t {
                // Iteration order is ascending class: strict `<` keeps
                // the earlier class on ties.
                if chosen.is_none_or(|(bt, _)| t < bt) {
                    chosen = Some((t, class));
                }
            }
        }
        let Some((now, class)) = chosen else {
            // Closed-loop stall: clients wait on completions held in
            // partial batches. Flush the lowest stalled core (mirrors
            // `drive`); its completions become deliveries.
            let mut progressed = false;
            for (i, core) in cores.iter_mut().enumerate() {
                if stale[i] {
                    continue;
                }
                if core.flush_stalled()? {
                    step_heap.set(i, core.next_action());
                    for &c in core.drain_new() {
                        deliveries.push((i, c));
                    }
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return Err(Error::invalid_config(
                    "serving driver stalled: closed-loop clients wait on completions \
                     no engine can produce",
                ));
            }
            continue;
        };

        match class {
            // Faults and health transitions.
            0 => {
                // Restores first: a replica back up at `now` can take a
                // crash scripted for the same instant.
                for k in health.advance(now, recovery.warmup) {
                    cores[k] = sessions[k].core()?;
                    if let Some(t) = &tenancy {
                        cores[k].set_tenancy(t.sched);
                    }
                    stale[k] = false;
                    last_push[k] = f64::NEG_INFINITY;
                    if let Some(tr) = &trace {
                        cores[k].attach_trace(TraceHandle::new(Rc::clone(&tr.rec), tr.tracks[k]));
                        tr.rec.borrow_mut().instant(tr.tracks[k], EventKind::Repair, 0, now.get());
                    }
                    if slowdown[k] != 1.0 {
                        cores[k].set_slowdown(slowdown[k]);
                    }
                    if exhausted_closed {
                        cores[k].close();
                    }
                    step_heap.set(k, cores[k].next_action());
                }
                for rec in crash_log.iter_mut() {
                    if rec.up_again.is_none() && health.is_up(rec.replica) {
                        rec.up_again = Some(now);
                    }
                }
                while next_fault < timeline.len() && timeline[next_fault].0 <= now {
                    let (_, action) = timeline[next_fault];
                    next_fault += 1;
                    match action {
                        FaultAction::Crash { replica, repair } => {
                            if matches!(health.state(replica), ReplicaHealth::Down { .. }) {
                                // Already down: nothing left to kill.
                                continue;
                            }
                            let lost = cores[replica].crash(now);
                            accum[replica].harvest(&cores[replica]);
                            if let Some(t) = tenancy.as_mut() {
                                if let Some(p) = cores[replica].tenant_preemptions() {
                                    t.ledger.absorb_preemptions(p);
                                }
                            }
                            stale[replica] = true;
                            step_heap.set(replica, None);
                            health.mark_down(replica, now + repair);
                            avail.crashes += 1;
                            crash_log.push(CrashRecord {
                                replica,
                                at: now,
                                up_again: None,
                                first_completion: None,
                            });
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant(
                                    tr.tracks[replica],
                                    EventKind::Crash,
                                    0,
                                    now.get(),
                                );
                            }
                            // Revoke the dead incarnation's undelivered
                            // completions — their requests are in `lost`.
                            let lost_ids: Vec<u64> = lost.iter().map(|r| r.id).collect();
                            deliveries
                                .retain(|(k, c)| *k != replica || !lost_ids.contains(&c.id));
                            for r in lost {
                                let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                                let attempts = attempts_of.get(&r.id).copied().unwrap_or(0) + 1;
                                if attempts > recovery.max_attempts {
                                    avail.shed += 1;
                                    if let Some(t) = tenancy.as_mut() {
                                        t.ledger.on_shed(r.id);
                                    }
                                    if let Some(tr) = &trace {
                                        tr.rec.borrow_mut().instant_for(
                                            tr.control,
                                            EventKind::Shed,
                                            r.id,
                                            now.get(),
                                            tenant_tag(&tenancy, r.id),
                                        );
                                    }
                                    release_client(&mut stream, r.id, orig, now);
                                    continue;
                                }
                                let fire = now + recovery.backoff_for(attempts);
                                if fire.get() > orig + recovery.deadline.get() {
                                    avail.timed_out += 1;
                                    if let Some(t) = tenancy.as_mut() {
                                        t.ledger.on_timeout(r.id);
                                    }
                                    if let Some(tr) = &trace {
                                        tr.rec.borrow_mut().instant_for(
                                            tr.control,
                                            EventKind::Timeout,
                                            r.id,
                                            now.get(),
                                            tenant_tag(&tenancy, r.id),
                                        );
                                    }
                                    release_client(&mut stream, r.id, orig, now);
                                    continue;
                                }
                                if let Some(tr) = &trace {
                                    tr.rec.borrow_mut().span_for(
                                        tr.control,
                                        EventKind::Retry,
                                        r.id,
                                        now.get(),
                                        fire.get(),
                                        tenant_tag(&tenancy, r.id),
                                    );
                                }
                                attempts_of.insert(r.id, attempts);
                                waiting.push(WaitingRetry { fire, request: r, attempts });
                            }
                        }
                        FaultAction::SlowStart { replica, factor } => {
                            slowdown[replica] = factor;
                            slow_since[replica] = now.get();
                            if !stale[replica] {
                                cores[replica].set_slowdown(factor);
                                step_heap.set(replica, cores[replica].next_action());
                            }
                        }
                        FaultAction::SlowEnd { replica } => {
                            slowdown[replica] = 1.0;
                            if let Some(tr) = &trace {
                                if slow_since[replica].is_finite() {
                                    tr.rec.borrow_mut().span(
                                        tr.tracks[replica],
                                        EventKind::Straggler,
                                        0,
                                        slow_since[replica],
                                        now.get(),
                                    );
                                }
                            }
                            slow_since[replica] = f64::NAN;
                            if !stale[replica] {
                                cores[replica].set_slowdown(1.0);
                                step_heap.set(replica, cores[replica].next_action());
                            }
                        }
                    }
                }
            }
            // Arrival: enters the admission queue (fires this instant;
            // admission is the retry class so arrivals and retries share
            // one code path).
            1 => {
                let request = stream.pop();
                origin.insert(request.id, request.arrival_s);
                if let Some(tr) = &trace {
                    // Emitted by the driver, not the core: a request can
                    // be shed or time out before ever reaching a core.
                    tr.rec.borrow_mut().request_arrival_for(
                        tr.control,
                        request.id,
                        request.arrival_s,
                        tenant_tag(&tenancy, request.id),
                    );
                }
                waiting.push(WaitingRetry { fire: now, request, attempts: 0 });
                if stream.exhausted() {
                    exhausted_closed = true;
                    for (i, core) in cores.iter_mut().enumerate() {
                        if !stale[i] {
                            core.close();
                            step_heap.set(i, core.next_action());
                        }
                    }
                }
            }
            // Completion delivery.
            2 => {
                let (idx, _) = delivery_at
                    .ok_or_else(|| Error::internal("class 2 implies a pending delivery"))?;
                let (k, mut c) = deliveries.remove(idx);
                if let Some(orig) = origin.get(&c.id) {
                    c.arrival = Seconds::new(*orig);
                }
                if attempts_of.get(&c.id).copied().unwrap_or(0) > 0 {
                    avail.retried_ok += 1;
                }
                stream.on_complete(&c);
                delivered_by[k] += 1;
                for rec in crash_log.iter_mut() {
                    if rec.replica == k && rec.first_completion.is_none() && c.finish > rec.at {
                        rec.first_completion = Some(c.finish);
                    }
                }
                if let Some(tr) = &trace {
                    tr.rec.borrow_mut().complete_for(
                        tr.tracks[k],
                        c.id,
                        c.finish.get(),
                        c.latency().as_millis(),
                        c.ttft().as_millis(),
                        tenant_tag(&tenancy, c.id),
                    );
                }
                delivered.push(c);
            }
            // Admission (fresh arrivals and retries).
            3 => {
                let idx = retry_at
                    .ok_or_else(|| Error::internal("class 3 implies a waiting request"))?;
                let item = waiting.remove(idx);
                let r = item.request;
                let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                if now.get() > orig + recovery.deadline.get() {
                    avail.timed_out += 1;
                    if let Some(t) = tenancy.as_mut() {
                        t.ledger.on_timeout(r.id);
                    }
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant_for(
                            tr.control,
                            EventKind::Timeout,
                            r.id,
                            now.get(),
                            tenant_tag(&tenancy, r.id),
                        );
                    }
                    release_client(&mut stream, r.id, orig, now);
                    continue;
                }
                let up = health.up_replicas();
                if up.is_empty() {
                    // Nowhere to go: park until the next repair finishes
                    // (no retry charged — the request was never placed).
                    let fire = health.next_transition().ok_or_else(|| {
                        Error::internal(
                            "every replica is down and none is scheduled to restart",
                        )
                    })?;
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant_for(
                            tr.control,
                            EventKind::Park,
                            r.id,
                            now.get(),
                            tenant_tag(&tenancy, r.id),
                        );
                    }
                    waiting.push(WaitingRetry { fire, ..item });
                    continue;
                }
                if let Some(threshold) = recovery.shed_outstanding {
                    if up.iter().all(|&k| cores[k].outstanding_at(now) >= threshold) {
                        // Surviving capacity is saturated: shed oldest
                        // first — this request and every waiting request
                        // older than it (closest to their deadlines).
                        let key = (orig, r.id);
                        let mut doomed = vec![(r.id, orig)];
                        waiting.retain(|w| {
                            let worig =
                                *origin.get(&w.request.id).unwrap_or(&w.request.arrival_s);
                            if (worig, w.request.id) <= key {
                                doomed.push((w.request.id, worig));
                                false
                            } else {
                                true
                            }
                        });
                        for (id, worig) in doomed {
                            avail.shed += 1;
                            if let Some(t) = tenancy.as_mut() {
                                t.ledger.on_shed(id);
                            }
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant_for(
                                    tr.control,
                                    EventKind::Shed,
                                    id,
                                    now.get(),
                                    tenant_tag(&tenancy, id),
                                );
                            }
                            release_client(&mut stream, id, worig, now);
                        }
                        continue;
                    }
                }
                let snaps = healthy_snapshots(&cores, &up, now, &assigned, classed);
                let pos = router.route(&r, &snaps).min(up.len() - 1);
                let k = up[pos];
                assigned[k] += 1;
                if item.attempts > 0 {
                    avail.retries += 1;
                }
                let mut pushed = r;
                pushed.arrival_s = if item.attempts > 0 { now.get() } else { r.arrival_s };
                // A replica cannot see work arrive before its queue tail
                // (a parked request can land on a replica that has taken
                // later work meanwhile).
                pushed.arrival_s = pushed.arrival_s.max(last_push[k]);
                last_push[k] = pushed.arrival_s;
                if exhausted_closed {
                    cores[k].reopen();
                    cores[k].push(pushed);
                    cores[k].close();
                } else {
                    cores[k].push(pushed);
                }
                step_heap.set(k, cores[k].next_action());
            }
            // Engine step; completions become pending deliveries.
            _ => {
                let (i, _) =
                    step_at.ok_or_else(|| Error::internal("class 4 implies a steppable core"))?;
                cores[i].step()?;
                step_heap.set(i, cores[i].next_action());
                for &c in cores[i].drain_new() {
                    deliveries.push((i, c));
                }
                if let Some(tr) = &trace {
                    let mut rec = tr.rec.borrow_mut();
                    rec.sample(tr.series[i][0], now.get(), cores[i].queued() as f64);
                    rec.sample(tr.series[i][1], now.get(), cores[i].kv_frac());
                }
            }
        }
    }

    // Harvest the surviving incarnations (crashed ones were harvested at
    // their crash instant).
    for (k, core) in cores.iter().enumerate() {
        if !stale[k] {
            accum[k].harvest(core);
            if let Some(t) = tenancy.as_mut() {
                if let Some(p) = core.tenant_preemptions() {
                    t.ledger.absorb_preemptions(p);
                }
            }
        }
    }
    delivered.sort_by_key(|c| c.id);
    debug_assert_eq!(
        delivered.len() as u64 + avail.shed + avail.timed_out,
        offered,
        "request conservation: arrived == completed + shed + timed out"
    );

    let finish = delivered.iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
    let first_arrival = delivered.iter().map(|c| c.arrival).fold(finish, Seconds::min);
    let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
    let mut downtime = 0.0;
    for rec in &crash_log {
        let clip = |t: f64| t.clamp(first_arrival.get(), finish.get());
        let start = clip(rec.at.get());
        let end = clip(rec.up_again.map_or(finish.get(), |u| u.get()));
        downtime += (end - start).max(0.0);
        avail
            .time_to_recover_s
            .push((rec.first_completion.unwrap_or(finish).get() - rec.at.get()).max(0.0));
    }
    avail.downtime_s = downtime;
    avail.availability = (1.0 - downtime / (n as f64 * makespan)).clamp(0.0, 1.0);

    let mut chip_energy = Joules::ZERO;
    let mut preemptions = 0;
    let mut queue_full_s = 0.0;
    let mut prefix = PrefixStats::default();
    let mut rows = Vec::with_capacity(n);
    for (k, spec) in replicas.iter().enumerate() {
        let a = &accum[k];
        chip_energy += Joules::new(a.energy_j);
        preemptions += a.preemptions;
        queue_full_s += a.queue_full_s;
        prefix.absorb(&a.prefix);
        rows.push(ReplicaUtilization {
            name: spec.name.clone(),
            model: spec.model.name().to_owned(),
            role: "serve".to_owned(),
            chips: spec.chips(),
            requests: delivered_by[k],
            busy_s: a.busy_s,
            utilization: 0.0, // filled against the fleet makespan
            energy_j: a.energy_j,
            kv_hwm_frac: a.kv_hwm,
        });
    }
    let mut report = ClusterReport::build(
        label,
        "colocated",
        policy.name().to_owned(),
        offered,
        &delivered,
        chip_energy,
        preemptions,
        queue_full_s,
        KvTransferStats::default(),
        rows,
        slo_ms,
        Some(avail),
    );
    if let Some(t) = tenancy {
        report.tenants = Some(t.ledger.report(&delivered, report.makespan_s));
    }
    for session in &sessions {
        session.persist_cache();
    }
    // Per-incarnation ServingReports are not meaningful across crashes:
    // fault runs report the fleet aggregate only.
    Ok(ClusterRun { report, replica_reports: Vec::new(), completions: delivered, prefix })
}

#[cfg(test)]
mod tests {
    use cimtpu_core::TpuConfig;
    use cimtpu_serving::{
        drive, ArrivalPattern, BatchPolicy, LenDist, PrefixTraffic, ServingModel,
    };
    use proptest::prelude::*;

    use super::*;
    use crate::fault::ChaosSpec;

    // ------------------------------------------------------------------
    // Scan oracles: the pre-heap drivers, kept verbatim so proptests can
    // pin the heap-scheduled drivers bit-for-bit against them.
    // ------------------------------------------------------------------

    /// Pre-refactor router view: rebuilds every replica's snapshot (with
    /// an `O(completions)` `outstanding_at` scan each) at instant `t`.
    fn snapshots(cores: &[EngineCore<'_>], t: Seconds, assigned: &[u64]) -> Vec<ReplicaSnapshot> {
        cores
            .iter()
            .enumerate()
            .map(|(index, core)| ReplicaSnapshot {
                index,
                outstanding: core.outstanding_at(t),
                queued: core.queued(),
                kv_frac: core.kv_frac(),
                assigned: assigned[index],
                class_outstanding: [0; 3],
            })
            .collect()
    }

    /// The zero-fault colocated driver as it was before the
    /// [`SnapshotTracker`] port: per-arrival snapshot rebuilds over the
    /// (already heap-scheduled) [`drive`] loop.
    fn run_colocated_oracle(
        replicas: &[ReplicaSpec],
        policy: RouterPolicy,
        label: &str,
        traffic: &TrafficSpec,
        slo_ms: Option<f64>,
    ) -> Result<ClusterRun> {
        let sessions: Vec<EngineSession> = replicas
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let mut cores: Vec<EngineCore<'_>> =
            sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
        let mut stream = ArrivalStream::new(traffic)?;
        let offered = stream.total();
        let mut router = policy.build();
        let mut assigned = vec![0u64; replicas.len()];

        drive(&mut cores, &mut stream, |request, cores| {
            let snaps = snapshots(cores, request.arrival(), &assigned);
            let k = router.route(request, &snaps).min(cores.len() - 1);
            assigned[k] += 1;
            k
        })?;

        let mut completions: Vec<Completion> = Vec::new();
        let mut chip_energy = Joules::ZERO;
        let mut preemptions = 0;
        let mut queue_full_s = 0.0;
        let mut prefix = cimtpu_serving::PrefixStats::default();
        let mut rows = Vec::with_capacity(replicas.len());
        let mut replica_reports = Vec::new();
        for (spec, core) in replicas.iter().zip(&cores) {
            let memory = core.memory_stats();
            preemptions += memory.preemptions;
            queue_full_s += memory.queue_full_s;
            prefix.absorb(&core.prefix_stats());
            chip_energy += core.energy();
            completions.extend_from_slice(core.completions());
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "serve".to_owned(),
                chips: spec.chips(),
                requests: core.completions().len() as u64,
                busy_s: core.busy().get(),
                utilization: 0.0, // filled against the fleet makespan
                energy_j: core.energy().get(),
                kv_hwm_frac: memory.kv_hwm_frac,
            });
            if !core.completions().is_empty() {
                replica_reports.push(core.finish(&spec.name).report);
            }
        }
        completions.sort_by_key(|c| c.id);
        let report = ClusterReport::build(
            label,
            "colocated",
            policy.name().to_owned(),
            offered,
            &completions,
            chip_energy,
            preemptions,
            queue_full_s,
            KvTransferStats::default(),
            rows,
            slo_ms,
            None,
        );
        for session in &sessions {
            session.persist_cache();
        }
        Ok(ClusterRun { report, replica_reports, completions, prefix })
    }

    /// The failure-aware colocated driver as it was before the
    /// [`ActionHeap`] port: the step event re-derived by an `O(replicas)`
    /// scan over the non-stale cores at every loop iteration.
    #[allow(clippy::too_many_lines)]
    fn run_colocated_faulty_oracle(
        replicas: &[ReplicaSpec],
        policy: RouterPolicy,
        label: &str,
        traffic: &TrafficSpec,
        slo_ms: Option<f64>,
        plan: &FaultPlan,
    ) -> Result<ClusterRun> {
        let recovery = *plan.recovery();
        let mut timeline: Vec<(Seconds, FaultAction)> = Vec::new();
        for event in plan.resolve(replicas.len())? {
            match event {
                FaultEvent::Crash { at, replica, repair } => {
                    timeline.push((at, FaultAction::Crash { replica, repair }));
                }
                FaultEvent::Straggler { replica, from, until, slowdown } => {
                    timeline.push((from, FaultAction::SlowStart { replica, factor: slowdown }));
                    timeline.push((until, FaultAction::SlowEnd { replica }));
                }
                FaultEvent::DegradedLink { .. } => {
                    return Err(Error::invalid_config(
                        "degraded-link faults apply to the disaggregated interconnect; \
                         a colocated fleet has no handoff link",
                    ));
                }
            }
        }
        timeline.sort_by(|a, b| a.0.get().total_cmp(&b.0.get()));
        let mut next_fault = 0usize;

        let sessions: Vec<EngineSession> = replicas
            .iter()
            .map(|r| EngineSession::new(&r.engine()?))
            .collect::<Result<_>>()?;
        let mut cores: Vec<EngineCore<'_>> =
            sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
        let mut stream = ArrivalStream::new(traffic)?;
        let offered = stream.total();
        let mut router = policy.build();
        let n = replicas.len();
        let mut assigned = vec![0u64; n];
        let mut health = HealthView::all_up(n);
        let mut stale = vec![false; n];
        let mut slowdown = vec![1.0f64; n];
        let mut last_push = vec![f64::NEG_INFINITY; n];
        let mut exhausted_closed = false;

        let mut delivered: Vec<Completion> = Vec::new();
        let mut deliveries: Vec<(usize, Completion)> = Vec::new();
        let mut delivered_by = vec![0u64; n];
        let mut waiting: Vec<WaitingRetry> = Vec::new();
        let mut origin: HashMap<u64, f64> = HashMap::new();
        let mut attempts_of: HashMap<u64, u32> = HashMap::new();
        let mut avail = AvailabilityStats::zero();
        let mut crash_log: Vec<CrashRecord> = Vec::new();
        let mut accum: Vec<ReplicaAccum> = (0..n).map(|_| ReplicaAccum::default()).collect();

        loop {
            let mut step_at: Option<(usize, Seconds)> = None;
            for (i, core) in cores.iter().enumerate() {
                if stale[i] {
                    continue;
                }
                if let Some(t) = core.next_action() {
                    if step_at.is_none_or(|(_, best)| t < best) {
                        step_at = Some((i, t));
                    }
                }
            }
            let delivery_at: Option<(usize, Seconds)> = deliveries
                .iter()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| {
                    a.1.finish.get().total_cmp(&b.1.finish.get()).then(ai.cmp(bi))
                })
                .map(|(i, d)| (i, d.1.finish));
            let retry_at: Option<usize> = waiting
                .iter()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| {
                    let ka = (a.fire.get(), a.request.arrival_s, a.request.id);
                    let kb = (b.fire.get(), b.request.arrival_s, b.request.id);
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(ai.cmp(bi))
                })
                .map(|(i, _)| i);
            let fault_at: Option<Seconds> = {
                let scripted = (next_fault < timeline.len()).then(|| timeline[next_fault].0);
                match (scripted, health.next_transition()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            };
            let arrival_at = stream.peek();

            if stream.exhausted()
                && waiting.is_empty()
                && deliveries.is_empty()
                && step_at.is_none()
            {
                break;
            }

            let candidates = [
                (fault_at, 0u8),
                (arrival_at, 1),
                (delivery_at.map(|(_, t)| t), 2),
                (retry_at.map(|i| waiting[i].fire), 3),
                (step_at.map(|(_, t)| t), 4),
            ];
            let mut chosen: Option<(Seconds, u8)> = None;
            for (t, class) in candidates {
                if let Some(t) = t {
                    if chosen.is_none_or(|(bt, _)| t < bt) {
                        chosen = Some((t, class));
                    }
                }
            }
            let Some((now, class)) = chosen else {
                let mut progressed = false;
                for (i, core) in cores.iter_mut().enumerate() {
                    if stale[i] {
                        continue;
                    }
                    if core.flush_stalled()? {
                        for c in core.drain_new().to_vec() {
                            deliveries.push((i, c));
                        }
                        progressed = true;
                        break;
                    }
                }
                if !progressed {
                    return Err(Error::invalid_config(
                        "serving driver stalled: closed-loop clients wait on completions \
                         no engine can produce",
                    ));
                }
                continue;
            };

            match class {
                0 => {
                    for k in health.advance(now, recovery.warmup) {
                        cores[k] = sessions[k].core()?;
                        stale[k] = false;
                        last_push[k] = f64::NEG_INFINITY;
                        if slowdown[k] != 1.0 {
                            cores[k].set_slowdown(slowdown[k]);
                        }
                        if exhausted_closed {
                            cores[k].close();
                        }
                    }
                    for rec in crash_log.iter_mut() {
                        if rec.up_again.is_none() && health.is_up(rec.replica) {
                            rec.up_again = Some(now);
                        }
                    }
                    while next_fault < timeline.len() && timeline[next_fault].0 <= now {
                        let (_, action) = timeline[next_fault];
                        next_fault += 1;
                        match action {
                            FaultAction::Crash { replica, repair } => {
                                if matches!(health.state(replica), ReplicaHealth::Down { .. }) {
                                    continue;
                                }
                                let lost = cores[replica].crash(now);
                                accum[replica].harvest(&cores[replica]);
                                stale[replica] = true;
                                health.mark_down(replica, now + repair);
                                avail.crashes += 1;
                                crash_log.push(CrashRecord {
                                    replica,
                                    at: now,
                                    up_again: None,
                                    first_completion: None,
                                });
                                let lost_ids: Vec<u64> = lost.iter().map(|r| r.id).collect();
                                deliveries
                                    .retain(|(k, c)| *k != replica || !lost_ids.contains(&c.id));
                                for r in lost {
                                    let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                                    let attempts =
                                        attempts_of.get(&r.id).copied().unwrap_or(0) + 1;
                                    if attempts > recovery.max_attempts {
                                        avail.shed += 1;
                                        release_client(&mut stream, r.id, orig, now);
                                        continue;
                                    }
                                    let fire = now + recovery.backoff_for(attempts);
                                    if fire.get() > orig + recovery.deadline.get() {
                                        avail.timed_out += 1;
                                        release_client(&mut stream, r.id, orig, now);
                                        continue;
                                    }
                                    attempts_of.insert(r.id, attempts);
                                    waiting.push(WaitingRetry { fire, request: r, attempts });
                                }
                            }
                            FaultAction::SlowStart { replica, factor } => {
                                slowdown[replica] = factor;
                                if !stale[replica] {
                                    cores[replica].set_slowdown(factor);
                                }
                            }
                            FaultAction::SlowEnd { replica } => {
                                slowdown[replica] = 1.0;
                                if !stale[replica] {
                                    cores[replica].set_slowdown(1.0);
                                }
                            }
                        }
                    }
                }
                1 => {
                    let request = stream.pop();
                    origin.insert(request.id, request.arrival_s);
                    waiting.push(WaitingRetry { fire: now, request, attempts: 0 });
                    if stream.exhausted() {
                        exhausted_closed = true;
                        for (i, core) in cores.iter_mut().enumerate() {
                            if !stale[i] {
                                core.close();
                            }
                        }
                    }
                }
                2 => {
                    let (idx, _) = delivery_at
                        .ok_or_else(|| Error::internal("class 2 implies a pending delivery"))?;
                    let (k, mut c) = deliveries.remove(idx);
                    if let Some(orig) = origin.get(&c.id) {
                        c.arrival = Seconds::new(*orig);
                    }
                    if attempts_of.get(&c.id).copied().unwrap_or(0) > 0 {
                        avail.retried_ok += 1;
                    }
                    stream.on_complete(&c);
                    delivered_by[k] += 1;
                    for rec in crash_log.iter_mut() {
                        if rec.replica == k && rec.first_completion.is_none() && c.finish > rec.at
                        {
                            rec.first_completion = Some(c.finish);
                        }
                    }
                    delivered.push(c);
                }
                3 => {
                    let idx = retry_at
                        .ok_or_else(|| Error::internal("class 3 implies a waiting request"))?;
                    let item = waiting.remove(idx);
                    let r = item.request;
                    let orig = *origin.get(&r.id).unwrap_or(&r.arrival_s);
                    if now.get() > orig + recovery.deadline.get() {
                        avail.timed_out += 1;
                        release_client(&mut stream, r.id, orig, now);
                        continue;
                    }
                    let up = health.up_replicas();
                    if up.is_empty() {
                        let fire = health.next_transition().ok_or_else(|| {
                            Error::internal(
                                "every replica is down and none is scheduled to restart",
                            )
                        })?;
                        waiting.push(WaitingRetry { fire, ..item });
                        continue;
                    }
                    if let Some(threshold) = recovery.shed_outstanding {
                        if up.iter().all(|&k| cores[k].outstanding_at(now) >= threshold) {
                            let key = (orig, r.id);
                            let mut doomed = vec![(r.id, orig)];
                            waiting.retain(|w| {
                                let worig =
                                    *origin.get(&w.request.id).unwrap_or(&w.request.arrival_s);
                                if (worig, w.request.id) <= key {
                                    doomed.push((w.request.id, worig));
                                    false
                                } else {
                                    true
                                }
                            });
                            for (id, worig) in doomed {
                                avail.shed += 1;
                                release_client(&mut stream, id, worig, now);
                            }
                            continue;
                        }
                    }
                    let snaps = healthy_snapshots(&cores, &up, now, &assigned, false);
                    let pos = router.route(&r, &snaps).min(up.len() - 1);
                    let k = up[pos];
                    assigned[k] += 1;
                    if item.attempts > 0 {
                        avail.retries += 1;
                    }
                    let mut pushed = r;
                    pushed.arrival_s = if item.attempts > 0 { now.get() } else { r.arrival_s };
                    pushed.arrival_s = pushed.arrival_s.max(last_push[k]);
                    last_push[k] = pushed.arrival_s;
                    if exhausted_closed {
                        cores[k].reopen();
                        cores[k].push(pushed);
                        cores[k].close();
                    } else {
                        cores[k].push(pushed);
                    }
                }
                _ => {
                    let (i, _) = step_at
                        .ok_or_else(|| Error::internal("class 4 implies a steppable core"))?;
                    cores[i].step()?;
                    for c in cores[i].drain_new().to_vec() {
                        deliveries.push((i, c));
                    }
                }
            }
        }

        for (k, core) in cores.iter().enumerate() {
            if !stale[k] {
                accum[k].harvest(core);
            }
        }
        delivered.sort_by_key(|c| c.id);
        debug_assert_eq!(
            delivered.len() as u64 + avail.shed + avail.timed_out,
            offered,
            "request conservation: arrived == completed + shed + timed out"
        );

        let finish = delivered.iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
        let first_arrival = delivered.iter().map(|c| c.arrival).fold(finish, Seconds::min);
        let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
        let mut downtime = 0.0;
        for rec in &crash_log {
            let clip = |t: f64| t.clamp(first_arrival.get(), finish.get());
            let start = clip(rec.at.get());
            let end = clip(rec.up_again.map_or(finish.get(), |u| u.get()));
            downtime += (end - start).max(0.0);
            avail
                .time_to_recover_s
                .push((rec.first_completion.unwrap_or(finish).get() - rec.at.get()).max(0.0));
        }
        avail.downtime_s = downtime;
        avail.availability = (1.0 - downtime / (n as f64 * makespan)).clamp(0.0, 1.0);

        let mut chip_energy = Joules::ZERO;
        let mut preemptions = 0;
        let mut queue_full_s = 0.0;
        let mut prefix = PrefixStats::default();
        let mut rows = Vec::with_capacity(n);
        for (k, spec) in replicas.iter().enumerate() {
            let a = &accum[k];
            chip_energy += Joules::new(a.energy_j);
            preemptions += a.preemptions;
            queue_full_s += a.queue_full_s;
            prefix.absorb(&a.prefix);
            rows.push(ReplicaUtilization {
                name: spec.name.clone(),
                model: spec.model.name().to_owned(),
                role: "serve".to_owned(),
                chips: spec.chips(),
                requests: delivered_by[k],
                busy_s: a.busy_s,
                utilization: 0.0, // filled against the fleet makespan
                energy_j: a.energy_j,
                kv_hwm_frac: a.kv_hwm,
            });
        }
        let report = ClusterReport::build(
            label,
            "colocated",
            policy.name().to_owned(),
            offered,
            &delivered,
            chip_energy,
            preemptions,
            queue_full_s,
            KvTransferStats::default(),
            rows,
            slo_ms,
            Some(avail),
        );
        for session in &sessions {
            session.persist_cache();
        }
        Ok(ClusterRun { report, replica_reports: Vec::new(), completions: delivered, prefix })
    }

    // ------------------------------------------------------------------
    // Equivalence proptests: heap-scheduled drivers == scan oracles.
    // ------------------------------------------------------------------

    fn tiny() -> ServingModel {
        ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
    }

    /// A three-replica fleet mixing batching policies (continuous,
    /// static, dynamic) so the equivalence runs cross every scheduler
    /// state machine, including the static stall-flush path.
    fn mixed_fleet() -> Vec<ReplicaSpec> {
        vec![
            ReplicaSpec::new("cont", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 }),
            ReplicaSpec::new("stat", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Static { batch: 2 }),
            ReplicaSpec::new("dyn", TpuConfig::design_a(), tiny())
                .with_policy(BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 0.5 }),
        ]
    }

    fn traffics(seed: u64) -> [TrafficSpec; 2] {
        let base = TrafficSpec {
            requests: 24,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 4_000.0 },
            prompt: LenDist::Uniform { lo: 8, hi: 48 },
            steps: LenDist::Uniform { lo: 2, hi: 10 },
            prefix: PrefixTraffic::None,
            seed,
        };
        let closed = TrafficSpec {
            arrival: ArrivalPattern::ClosedLoop { clients: 5, think_ms: 0.2 },
            ..base
        };
        [base, closed]
    }

    const POLICIES: [RouterPolicy; 6] = [
        RouterPolicy::PassThrough,
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::LeastKv,
        RouterPolicy::SessionAffinity,
        RouterPolicy::PrefixAffinity,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// The tracker-routed zero-fault driver replays the per-arrival
        /// snapshot rebuild bit-for-bit, for every router policy and
        /// both open- and closed-loop traffic.
        #[test]
        fn tracked_colocated_matches_rebuild_oracle(seed in 0u64..1_000) {
            let fleet = mixed_fleet();
            for traffic in traffics(seed) {
                for policy in POLICIES {
                    let fast =
                        run_colocated(&fleet, policy, "eq", &traffic, Some(50.0), None, None).unwrap();
                    let slow =
                        run_colocated_oracle(&fleet, policy, "eq", &traffic, Some(50.0)).unwrap();
                    prop_assert_eq!(&fast, &slow, "policy {}", policy.name());
                }
            }
        }

        /// The heap-scheduled failure-aware driver replays the scan
        /// oracle bit-for-bit under scripted crashes + a straggler
        /// window and under seeded chaos, for every router policy.
        #[test]
        fn heap_faulty_matches_scan_oracle(seed in 0u64..1_000) {
            let fleet = mixed_fleet();
            let scripted = FaultPlan::none()
                .with_event(FaultEvent::Crash {
                    at: Seconds::new(0.000_4),
                    replica: 0,
                    repair: Seconds::new(0.001),
                })
                .with_event(FaultEvent::Straggler {
                    replica: 2,
                    from: Seconds::new(0.000_2),
                    until: Seconds::new(0.002),
                    slowdown: 3.0,
                });
            let chaos = FaultPlan::seeded(seed ^ 0xFA417).with_chaos(ChaosSpec {
                crashes: 2,
                window: (Seconds::new(0.000_2), Seconds::new(0.003)),
                repair: Seconds::new(0.002),
            });
            for traffic in traffics(seed) {
                for plan in [&scripted, &chaos] {
                    for policy in POLICIES {
                        let fast =
                            run_colocated_faulty(&fleet, policy, "eq", &traffic, None, plan, None, None)
                                .unwrap();
                        let slow =
                            run_colocated_faulty_oracle(&fleet, policy, "eq", &traffic, None, plan)
                                .unwrap();
                        prop_assert_eq!(&fast, &slow, "policy {}", policy.name());
                    }
                }
            }
        }
    }
}
