//! Fleet-level metrics: per-replica utilization and the aggregate
//! [`ClusterReport`].

use serde::{Deserialize, Serialize, Value};

use cimtpu_autoscale::ScalingStats;
use cimtpu_serving::{Completion, LatencyStats, TenantReport};
use cimtpu_units::{Joules, Seconds};

use crate::fault::AvailabilityStats;

/// KV-cache handoff traffic over the cluster interconnect (disaggregated
/// prefill→decode transfers; all-zero for colocated fleets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct KvTransferStats {
    /// Completed handoffs.
    pub transfers: u64,
    /// Total bytes moved (block-aligned paged footprints).
    pub bytes: u64,
    /// Total link-busy time, in seconds.
    pub seconds: f64,
    /// Total link energy, in joules.
    pub energy_j: f64,
}

impl KvTransferStats {
    /// Records one handoff.
    pub fn record(&mut self, bytes: u64, duration: Seconds, energy: Joules) {
        self.transfers += 1;
        self.bytes += bytes;
        self.seconds += duration.get();
        self.energy_j += energy.get();
    }
}

/// Wall-clock driver-throughput record for one scenario run — the
/// `--perf-json` sidecar the perf-smoke CI check reads.
///
/// Everything here is measured against the **host clock**, not simulated
/// time: `requests_per_second` is how fast the discrete-event driver
/// chews through offered requests on this machine. Wall times vary
/// across machines, so these records live in their own file
/// (`BENCH_cluster_perf.json`) and are never part of the byte-diffed
/// `BENCH_cluster.json` baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Scenario / run label.
    pub label: String,
    /// Requests offered by the traffic spec.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Generation steps simulated.
    pub steps: u64,
    /// Host wall-clock time the run took, in seconds.
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_second: f64,
    /// Generation steps per wall-clock second.
    pub steps_per_second: f64,
}

impl PerfRecord {
    /// Builds the record from a finished run's completions and the
    /// driver's measured wall time.
    pub fn measure(label: &str, offered: u64, completions: &[Completion], wall_s: f64) -> Self {
        let wall = wall_s.max(f64::MIN_POSITIVE);
        let steps: u64 = completions.iter().map(|c| c.steps).sum();
        PerfRecord {
            label: label.to_owned(),
            offered,
            completed: completions.len() as u64,
            steps,
            wall_s,
            requests_per_second: completions.len() as f64 / wall,
            steps_per_second: steps as f64 / wall,
        }
    }
}

/// One replica's row in the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaUtilization {
    /// Replica name.
    pub name: String,
    /// Hosted model name.
    pub model: String,
    /// Role in the topology: `serve` (colocated), `prefill`, or `decode`.
    pub role: String,
    /// Physical chips.
    pub chips: u64,
    /// Requests this replica served (prefills for a prefill replica,
    /// completions otherwise).
    pub requests: u64,
    /// Time spent computing (priced segment latency), in seconds.
    pub busy_s: f64,
    /// `busy_s` over the fleet makespan.
    pub utilization: f64,
    /// Chip energy, in joules.
    pub energy_j: f64,
    /// KV occupancy high-water mark (fraction of capacity; 0 unlimited).
    pub kv_hwm_frac: f64,
}

/// Aggregate outcome of one cluster simulation.
///
/// # JSON stability
///
/// Like `ServingReport`, serialization follows struct declaration order —
/// the committed `BENCH_cluster.json` baseline is diffed byte-for-byte in
/// CI, so field changes require regenerating the baseline in the same
/// commit (a unit test pins the key order). Serialization is a manual
/// impl (not derived) for one reason: the `availability` and `scaling`
/// sections must be **omitted entirely** when absent — a derived `Option`
/// would emit `"availability": null` / `"scaling": null` into every
/// pre-existing baseline entry.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ClusterReport {
    /// Scenario / run label.
    pub label: String,
    /// Topology kind: `colocated` or `disaggregated`.
    pub topology: String,
    /// Router name (for disaggregated fleets, `prefill→decode` pair).
    pub router: String,
    /// Replica groups in the fleet.
    pub replicas: u64,
    /// Physical chips across all replicas.
    pub chips: u64,
    /// Requests offered by the traffic spec.
    pub offered: u64,
    /// Requests completed (always equals `offered`: the trace is finite).
    pub completed: u64,
    /// Time from the first arrival to the last completion, in seconds.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// Completed requests meeting the latency SLO per second of makespan
    /// (equals `throughput_rps` when no SLO is set).
    pub goodput_rps: f64,
    /// The latency SLO `goodput_rps` was computed against (0 = none).
    pub slo_ms: f64,
    /// Generation steps (tokens / diffusion steps) per second of makespan.
    pub steps_per_second: f64,
    /// End-to-end request latency distribution across the fleet.
    pub latency: LatencyStats,
    /// Time-to-first-token distribution across the fleet.
    pub ttft: LatencyStats,
    /// Total energy: every replica's chips plus interconnect transfers.
    pub total_energy_j: f64,
    /// Mean energy per completed request.
    pub energy_per_request_j: f64,
    /// Requests evicted to free KV blocks, summed over replicas.
    pub preemptions: u64,
    /// Time ready requests spent blocked on KV capacity, summed, seconds.
    pub queue_full_s: f64,
    /// KV-cache handoffs over the interconnect.
    pub kv_transfers: u64,
    /// Bytes of KV cache moved over the interconnect.
    pub kv_transfer_bytes: u64,
    /// Interconnect link-busy time, in seconds.
    pub kv_transfer_s: f64,
    /// Interconnect transfer energy, in joules.
    pub kv_transfer_energy_j: f64,
    /// Busiest replica's busy time over the mean busy time (1.0 =
    /// perfectly balanced; 0 if nothing ran).
    pub imbalance: f64,
    /// Per-replica utilization rows, in replica order.
    pub per_replica: Vec<ReplicaUtilization>,
    /// Availability/robustness section — present only for runs under a
    /// non-empty fault plan (zero-fault baselines omit the key).
    pub availability: Option<AvailabilityStats>,
    /// Scaling section — present only for runs under an autoscale policy
    /// (plain fleet runs omit the key, keeping old baselines byte-stable).
    pub scaling: Option<ScalingStats>,
    /// Streaming-telemetry section — present only for traced runs (a
    /// recorder was attached); recorder-off runs omit the key so every
    /// pre-existing baseline entry stays byte-identical.
    pub timeseries: Option<cimtpu_obs::TimeseriesStats>,
    /// Per-tenant section — present only for multi-tenant runs
    /// ([`ClusterEngine::run_tenants`](crate::ClusterEngine::run_tenants));
    /// single-tenant runs omit the key so every pre-existing baseline
    /// entry stays byte-identical.
    pub tenants: Option<TenantReport>,
}

impl Serialize for ClusterReport {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("label".to_owned(), self.label.to_value()),
            ("topology".to_owned(), self.topology.to_value()),
            ("router".to_owned(), self.router.to_value()),
            ("replicas".to_owned(), self.replicas.to_value()),
            ("chips".to_owned(), self.chips.to_value()),
            ("offered".to_owned(), self.offered.to_value()),
            ("completed".to_owned(), self.completed.to_value()),
            ("makespan_s".to_owned(), self.makespan_s.to_value()),
            ("throughput_rps".to_owned(), self.throughput_rps.to_value()),
            ("goodput_rps".to_owned(), self.goodput_rps.to_value()),
            ("slo_ms".to_owned(), self.slo_ms.to_value()),
            ("steps_per_second".to_owned(), self.steps_per_second.to_value()),
            ("latency".to_owned(), self.latency.to_value()),
            ("ttft".to_owned(), self.ttft.to_value()),
            ("total_energy_j".to_owned(), self.total_energy_j.to_value()),
            ("energy_per_request_j".to_owned(), self.energy_per_request_j.to_value()),
            ("preemptions".to_owned(), self.preemptions.to_value()),
            ("queue_full_s".to_owned(), self.queue_full_s.to_value()),
            ("kv_transfers".to_owned(), self.kv_transfers.to_value()),
            ("kv_transfer_bytes".to_owned(), self.kv_transfer_bytes.to_value()),
            ("kv_transfer_s".to_owned(), self.kv_transfer_s.to_value()),
            ("kv_transfer_energy_j".to_owned(), self.kv_transfer_energy_j.to_value()),
            ("imbalance".to_owned(), self.imbalance.to_value()),
            ("per_replica".to_owned(), self.per_replica.to_value()),
        ];
        if let Some(availability) = &self.availability {
            map.push(("availability".to_owned(), availability.to_value()));
        }
        if let Some(scaling) = &self.scaling {
            map.push(("scaling".to_owned(), scaling.to_value()));
        }
        if let Some(timeseries) = &self.timeseries {
            map.push(("timeseries".to_owned(), timeseries.to_value()));
        }
        if let Some(tenants) = &self.tenants {
            map.push(("tenants".to_owned(), tenants.to_value()));
        }
        Value::Map(map)
    }
}

impl ClusterReport {
    /// Builds the fleet aggregate from completed requests and per-replica
    /// rows (whose `utilization` is filled in here, against the fleet
    /// makespan).
    ///
    /// `completions` may be empty under a fault plan (every request shed
    /// or timed out): latency sections report zeros and the rate fields
    /// fall back to a degenerate makespan.
    #[allow(clippy::too_many_arguments)] // one construction site per topology
    pub(crate) fn build(
        label: &str,
        topology: &str,
        router: String,
        offered: u64,
        completions: &[Completion],
        chip_energy: Joules,
        preemptions: u64,
        queue_full_s: f64,
        transfers: KvTransferStats,
        mut per_replica: Vec<ReplicaUtilization>,
        slo_ms: Option<f64>,
        availability: Option<AvailabilityStats>,
    ) -> Self {
        let finish = completions
            .iter()
            .map(|c| c.finish)
            .fold(Seconds::ZERO, Seconds::max);
        let first_arrival = completions
            .iter()
            .map(|c| c.arrival)
            .fold(finish, Seconds::min);
        let makespan = (finish - first_arrival).get().max(f64::MIN_POSITIVE);
        let steps: u64 = completions.iter().map(|c| c.steps).sum();
        let latencies: Vec<Seconds> = completions.iter().map(Completion::latency).collect();
        let ttfts: Vec<Seconds> = completions.iter().map(Completion::ttft).collect();
        let good = match slo_ms {
            None => completions.len(),
            Some(slo) => latencies.iter().filter(|l| l.as_millis() <= slo).count(),
        };
        for row in &mut per_replica {
            row.utilization = row.busy_s / makespan;
        }
        let busy: Vec<f64> = per_replica.iter().map(|r| r.busy_s).collect();
        let mean_busy = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        let imbalance = if mean_busy > 0.0 {
            busy.iter().copied().fold(0.0, f64::max) / mean_busy
        } else {
            0.0
        };
        let total_energy = chip_energy.get() + transfers.energy_j;
        ClusterReport {
            label: label.to_owned(),
            topology: topology.to_owned(),
            router,
            replicas: per_replica.len() as u64,
            chips: per_replica.iter().map(|r| r.chips).sum(),
            offered,
            completed: completions.len() as u64,
            makespan_s: makespan,
            throughput_rps: completions.len() as f64 / makespan,
            goodput_rps: good as f64 / makespan,
            slo_ms: slo_ms.unwrap_or(0.0),
            steps_per_second: steps as f64 / makespan,
            latency: LatencyStats::from_samples_or_zero(&latencies),
            ttft: LatencyStats::from_samples_or_zero(&ttfts),
            total_energy_j: total_energy,
            energy_per_request_j: if completions.is_empty() {
                0.0
            } else {
                total_energy / completions.len() as f64
            },
            preemptions,
            queue_full_s,
            kv_transfers: transfers.transfers,
            kv_transfer_bytes: transfers.bytes,
            kv_transfer_s: transfers.seconds,
            kv_transfer_energy_j: transfers.energy_j,
            imbalance,
            per_replica,
            availability,
            scaling: None,
            timeseries: None,
            tenants: None,
        }
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== {} [{} fleet, {} replica(s) / {} chip(s), {} router] ==",
            self.label, self.topology, self.replicas, self.chips, self.router
        )?;
        writeln!(
            f,
            "completed {}/{} in {:.3} s  ({:.2} req/s, {:.2} good req/s, {:.1} steps/s)",
            self.completed,
            self.offered,
            self.makespan_s,
            self.throughput_rps,
            self.goodput_rps,
            self.steps_per_second
        )?;
        writeln!(
            f,
            "latency ms  p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}  max {:.3}",
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.mean_ms,
            self.latency.max_ms
        )?;
        writeln!(
            f,
            "ttft ms     p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}  max {:.3}",
            self.ttft.p50_ms, self.ttft.p95_ms, self.ttft.p99_ms, self.ttft.mean_ms,
            self.ttft.max_ms
        )?;
        writeln!(
            f,
            "energy      {:.4} J total, {:.4} J/request  |  kv {} preemption(s), {:.4} s queue-full",
            self.total_energy_j, self.energy_per_request_j, self.preemptions, self.queue_full_s
        )?;
        writeln!(
            f,
            "kv handoff  {} transfer(s), {} bytes, {:.6} s on the wire, {:.6} J  |  imbalance {:.3}",
            self.kv_transfers,
            self.kv_transfer_bytes,
            self.kv_transfer_s,
            self.kv_transfer_energy_j,
            self.imbalance
        )?;
        if let Some(a) = &self.availability {
            writeln!(
                f,
                "faults      {} crash(es), availability {:.4}, {:.3} s down  |  \
                 {} retry(ies) ({} ok), {} shed, {} timed out",
                a.crashes, a.availability, a.downtime_s, a.retries, a.retried_ok, a.shed,
                a.timed_out
            )?;
        }
        if let Some(s) = &self.scaling {
            writeln!(
                f,
                "scaling     {} reconcile(s): {} scale-up, {} scale-down ({} to zero), \
                 {} swap(s)  |  peak {} replica(s), {:.3} chip-s, cost {:.4} J \
                 ({:.4} J idle), {} ramp SLO miss(es)",
                s.reconciles,
                s.scale_ups,
                s.scale_downs,
                s.scale_to_zero,
                s.swaps,
                s.peak_replicas,
                s.chip_seconds,
                s.total_cost_j,
                s.idle_energy_j,
                s.slo_violations_ramp
            )?;
        }
        if let Some(ts) = &self.timeseries {
            writeln!(
                f,
                "telemetry   latency p50 {:.3} / p99 {:.3} ms (~{} sample(s), {} bucket(s))  |  \
                 {} gauge series @ {:.4} s",
                ts.latency_ms.p50,
                ts.latency_ms.p99,
                ts.latency_ms.count,
                ts.latency_ms.buckets,
                ts.gauges.len(),
                ts.interval_s
            )?;
        }
        if let Some(tenants) = &self.tenants {
            write!(f, "{tenants}")?;
        }
        for r in &self.per_replica {
            writeln!(
                f,
                "  {:<16} {:<8} {:<18} {} chip(s)  {:>5} req  busy {:.3} s  util {:.1}%  \
                 {:.4} J  kv hwm {:.1}%",
                r.name,
                r.role,
                r.model,
                r.chips,
                r.requests,
                r.busy_s,
                r.utilization * 100.0,
                r.energy_j,
                r.kv_hwm_frac * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64, arrival: f64, first: f64, finish: f64) -> Completion {
        Completion {
            id,
            arrival: Seconds::new(arrival),
            first_token: Seconds::new(first),
            finish: Seconds::new(finish),
            steps: 10,
        }
    }

    fn row(name: &str, busy_s: f64) -> ReplicaUtilization {
        ReplicaUtilization {
            name: name.to_owned(),
            model: "m".to_owned(),
            role: "serve".to_owned(),
            chips: 1,
            requests: 1,
            busy_s,
            utilization: 0.0,
            energy_j: 1.0,
            kv_hwm_frac: 0.0,
        }
    }

    fn build(slo_ms: Option<f64>) -> ClusterReport {
        ClusterReport::build(
            "t",
            "colocated",
            "round-robin".to_owned(),
            2,
            &[c(0, 0.0, 0.5, 1.0), c(1, 0.0, 1.5, 4.0)],
            Joules::new(8.0),
            1,
            0.25,
            KvTransferStats::default(),
            vec![row("a", 3.0), row("b", 1.0)],
            slo_ms,
            None,
        )
    }

    #[test]
    fn aggregates_and_utilization() {
        let rep = build(None);
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.chips, 2);
        assert_eq!(rep.makespan_s, 4.0);
        assert_eq!(rep.goodput_rps, rep.throughput_rps);
        assert_eq!(rep.slo_ms, 0.0);
        assert!((rep.per_replica[0].utilization - 0.75).abs() < 1e-12);
        // max busy 3.0 over mean 2.0.
        assert!((rep.imbalance - 1.5).abs() < 1e-12);
        assert_eq!(rep.total_energy_j, 8.0);
        let text = rep.to_string();
        assert!(text.contains("kv handoff"), "{text}");
        assert!(text.contains("imbalance"), "{text}");
    }

    #[test]
    fn slo_splits_goodput_from_throughput() {
        // Request 1's latency is 4 s: a 2000 ms SLO drops it.
        let rep = build(Some(2000.0));
        assert_eq!(rep.slo_ms, 2000.0);
        assert!((rep.goodput_rps - 0.25).abs() < 1e-12, "{}", rep.goodput_rps);
        assert!((rep.throughput_rps - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_stats_accumulate() {
        let mut t = KvTransferStats::default();
        t.record(100, Seconds::new(0.5), Joules::new(0.1));
        t.record(50, Seconds::new(0.25), Joules::new(0.05));
        assert_eq!(t.transfers, 2);
        assert_eq!(t.bytes, 150);
        assert!((t.seconds - 0.75).abs() < 1e-12);
        assert!((t.energy_j - 0.15).abs() < 1e-12);
    }

    #[test]
    fn json_field_order_is_declaration_order() {
        // BENCH_cluster.json is diffed byte-for-byte in CI: serialization
        // must follow struct declaration order. A failure here means the
        // baseline format changed — regenerate it deliberately.
        let json = serde_json::to_string(&build(None)).unwrap();
        let keys = [
            "\"label\"",
            "\"topology\"",
            "\"router\"",
            "\"replicas\"",
            "\"chips\"",
            "\"offered\"",
            "\"completed\"",
            "\"makespan_s\"",
            "\"throughput_rps\"",
            "\"goodput_rps\"",
            "\"slo_ms\"",
            "\"steps_per_second\"",
            "\"latency\"",
            "\"ttft\"",
            "\"total_energy_j\"",
            "\"energy_per_request_j\"",
            "\"preemptions\"",
            "\"queue_full_s\"",
            "\"kv_transfers\"",
            "\"kv_transfer_bytes\"",
            "\"kv_transfer_s\"",
            "\"kv_transfer_energy_j\"",
            "\"imbalance\"",
            "\"per_replica\"",
        ];
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| json.find(k).unwrap_or_else(|| panic!("{k} missing from {json}")))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "field order drifted: {json}"
        );
    }

    #[test]
    fn availability_key_is_omitted_without_a_fault_plan() {
        // Pre-existing BENCH entries must stay byte-identical: a zero-fault
        // report must not even mention availability (no `null`).
        let json = serde_json::to_string(&build(None)).unwrap();
        assert!(!json.contains("availability"), "{json}");
    }

    #[test]
    fn scaling_key_is_omitted_without_an_autoscale_policy() {
        // Same byte-stability contract as availability: a plain fleet run
        // must not even mention scaling (no `null`).
        let json = serde_json::to_string(&build(None)).unwrap();
        assert!(!json.contains("scaling"), "{json}");
    }

    #[test]
    fn scaling_section_serializes_after_availability_and_round_trips() {
        let mut rep = build(None);
        rep.scaling = Some(ScalingStats {
            reconciles: 10,
            scale_ups: 3,
            scale_downs: 2,
            scale_to_zero: 1,
            ..ScalingStats::default()
        });
        let json = serde_json::to_string(&rep).unwrap();
        let scaling = json.find("\"scaling\"").expect("scaling key");
        let per_replica = json.find("\"per_replica\"").expect("per_replica key");
        assert!(scaling > per_replica, "scaling must trail per_replica: {json}");
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        // Both trailing optionals together: availability first, then scaling.
        rep.availability = Some(AvailabilityStats {
            crashes: 0,
            downtime_s: 0.0,
            availability: 1.0,
            retries: 0,
            retried_ok: 0,
            shed: 0,
            timed_out: 0,
            time_to_recover_s: vec![],
        });
        let json = serde_json::to_string(&rep).unwrap();
        let avail = json.find("\"availability\"").expect("availability key");
        let scaling = json.find("\"scaling\"").expect("scaling key");
        assert!(avail < scaling, "{json}");
        let text = rep.to_string();
        assert!(text.contains("3 scale-up, 2 scale-down (1 to zero)"), "{text}");
    }

    #[test]
    fn timeseries_key_is_omitted_without_a_recorder() {
        // Recorder-off runs must leave every BENCH entry byte-identical:
        // no `"timeseries": null`.
        let json = serde_json::to_string(&build(None)).unwrap();
        assert!(!json.contains("timeseries"), "{json}");
    }

    #[test]
    fn timeseries_section_serializes_last_and_round_trips() {
        let mut rep = build(None);
        rep.scaling = Some(ScalingStats::default());
        rep.timeseries = Some(cimtpu_obs::Recorder::new().timeseries());
        let json = serde_json::to_string(&rep).unwrap();
        let scaling = json.find("\"scaling\"").expect("scaling key");
        let ts = json.find("\"timeseries\"").expect("timeseries key");
        assert!(scaling < ts, "timeseries must be the last key: {json}");
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        let text = rep.to_string();
        assert!(text.contains("telemetry"), "{text}");
    }

    #[test]
    fn availability_section_serializes_last_and_round_trips() {
        let mut rep = build(None);
        rep.availability = Some(AvailabilityStats {
            crashes: 1,
            downtime_s: 0.5,
            availability: 0.875,
            retries: 2,
            retried_ok: 2,
            shed: 0,
            timed_out: 0,
            time_to_recover_s: vec![0.5],
        });
        let json = serde_json::to_string(&rep).unwrap();
        let avail = json.find("\"availability\"").expect("availability key");
        let per_replica = json.find("\"per_replica\"").expect("per_replica key");
        assert!(avail > per_replica, "availability must be the last key: {json}");
        let text = rep.to_string();
        assert!(text.contains("1 crash(es)"), "{text}");
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn tenants_key_is_omitted_for_single_tenant_runs() {
        // Same byte-stability contract as availability/scaling: a run
        // without tenancy must not even mention tenants (no `null`).
        let json = serde_json::to_string(&build(None)).unwrap();
        assert!(!json.contains("tenants"), "{json}");
    }

    #[test]
    fn tenants_section_serializes_last_and_round_trips() {
        use cimtpu_serving::{SloClass, TenantUsage};
        let mut rep = build(None);
        rep.timeseries = Some(cimtpu_obs::Recorder::new().timeseries());
        rep.tenants = Some(TenantReport {
            fairness: 0.975,
            tenants: vec![TenantUsage {
                name: "chat".to_owned(),
                class: SloClass::Interactive,
                weight: 2.0,
                offered: 4,
                completed: 3,
                shed: 1,
                timed_out: 0,
                preemptions: 2,
                goodput_rps: 1.5,
                slo_attainment: 1.0,
                service_share: 0.5,
            }],
        });
        let json = serde_json::to_string(&rep).unwrap();
        let ts = json.find("\"timeseries\"").expect("timeseries key");
        let tenants = json.find("\"tenants\"").expect("tenants key");
        assert!(ts < tenants, "tenants must be the last key: {json}");
        let back: ClusterReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        let text = rep.to_string();
        assert!(text.contains("fairness (Jain)"), "{text}");
        assert!(text.contains("chat"), "{text}");
    }

    #[test]
    fn perf_record_measures_wall_rates() {
        let rec = PerfRecord::measure("t", 3, &[c(0, 0.0, 0.5, 1.0), c(1, 0.0, 1.5, 4.0)], 0.5);
        assert_eq!(rec.offered, 3);
        assert_eq!(rec.completed, 2);
        assert_eq!(rec.steps, 20);
        assert!((rec.requests_per_second - 4.0).abs() < 1e-12);
        assert!((rec.steps_per_second - 40.0).abs() < 1e-12);
        // Degenerate wall times stay finite.
        assert!(PerfRecord::measure("t", 0, &[], 0.0).requests_per_second.is_finite());
        let json = serde_json::to_string(&rec).unwrap();
        let back: PerfRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_completions_yield_a_zeroed_report() {
        // Under a fault plan every request can be shed: the report must
        // still build (zero latency sections, no NaN rates).
        let rep = ClusterReport::build(
            "t",
            "colocated",
            "round-robin".to_owned(),
            2,
            &[],
            Joules::new(8.0),
            0,
            0.0,
            KvTransferStats::default(),
            vec![row("a", 0.0)],
            None,
            None,
        );
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.latency, LatencyStats::ZERO);
        assert_eq!(rep.energy_per_request_j, 0.0);
        assert!(rep.throughput_rps.is_finite());
    }
}
