//! Seeded, deterministic fault injection for the fleet simulator.
//!
//! A [`FaultPlan`] holds the failures one run will suffer: explicit
//! [`FaultEvent`]s (a crash at 2 s, a straggler window, a degraded
//! interconnect) plus an optional seeded [`ChaosSpec`] whose events are
//! drawn from an RNG stream keyed only by the plan's seed — **separate
//! from the traffic seed**, so a zero-fault plan replays today's runs
//! bit-for-bit and re-seeding the faults never perturbs the arrivals.
//!
//! The plan also carries the [`RecoveryPolicy`] the failure-aware driver
//! serves under: how often a lost request retries (capped exponential
//! backoff), when it times out (a deadline from its *original* arrival),
//! how long a restarted replica warms up before taking traffic again,
//! and when admission sheds load instead of queueing unboundedly.
//!
//! What a run suffered is summarized in [`AvailabilityStats`], the
//! availability section of the fleet report.

use cimtpu_units::{Error, Result, Seconds};
use serde::{Deserialize, Serialize};

/// One injected failure, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The replica dies at `at`: every in-flight request and all of its
    /// KV/prefix blocks are lost. It restarts `repair` later with an
    /// empty allocator and cold caches, then warms up for the recovery
    /// policy's warmup before taking traffic again.
    Crash {
        /// When the replica dies.
        at: Seconds,
        /// Which replica (decode-pool index for disaggregated fleets).
        replica: usize,
        /// How long the restart takes.
        repair: Seconds,
    },
    /// The replica's priced step latency is multiplied by `slowdown` for
    /// the window (energy is unchanged: a slow chip computes the same
    /// FLOPs, only later).
    Straggler {
        /// Which replica.
        replica: usize,
        /// Window start.
        from: Seconds,
        /// Window end.
        until: Seconds,
        /// Latency multiplier (> 1 slows the replica down).
        slowdown: f64,
    },
    /// The disaggregated handoff interconnect degrades for the window:
    /// effective bandwidth is multiplied by `bandwidth_factor` (< 1 slows
    /// transfers; hop latency is unaffected) and transfer energy by
    /// `energy_factor` (retransmissions burn extra joules).
    DegradedLink {
        /// Window start.
        from: Seconds,
        /// Window end.
        until: Seconds,
        /// Bandwidth multiplier in (0, ∞); < 1 degrades.
        bandwidth_factor: f64,
        /// Transfer-energy multiplier in (0, ∞).
        energy_factor: f64,
    },
}

impl FaultEvent {
    /// When the event takes effect (crash instant or window start) —
    /// the timeline sort key.
    pub fn at(&self) -> Seconds {
        match *self {
            FaultEvent::Crash { at, .. } => at,
            FaultEvent::Straggler { from, .. } | FaultEvent::DegradedLink { from, .. } => from,
        }
    }

    /// Validates the event against a fleet of `replicas` replicas.
    fn validate(&self, replicas: usize) -> Result<()> {
        let finite_positive = |what: &str, x: f64| {
            if x.is_finite() && x > 0.0 {
                Ok(())
            } else {
                Err(Error::invalid_config(format!("{what} must be a positive finite factor")))
            }
        };
        let in_range = |replica: usize| {
            if replica < replicas {
                Ok(())
            } else {
                Err(Error::invalid_config(format!(
                    "fault targets replica {replica} but the fleet has {replicas} replica(s)"
                )))
            }
        };
        match *self {
            FaultEvent::Crash { at, replica, repair } => {
                in_range(replica)?;
                if at < Seconds::ZERO || repair < Seconds::ZERO {
                    return Err(Error::invalid_config("crash times must be non-negative"));
                }
                Ok(())
            }
            FaultEvent::Straggler { replica, from, until, slowdown } => {
                in_range(replica)?;
                finite_positive("straggler slowdown", slowdown)?;
                if from < Seconds::ZERO || until <= from {
                    return Err(Error::invalid_config(
                        "straggler window must be non-negative and non-empty",
                    ));
                }
                Ok(())
            }
            FaultEvent::DegradedLink { from, until, bandwidth_factor, energy_factor } => {
                finite_positive("link bandwidth factor", bandwidth_factor)?;
                finite_positive("link energy factor", energy_factor)?;
                if from < Seconds::ZERO || until <= from {
                    return Err(Error::invalid_config(
                        "degraded-link window must be non-negative and non-empty",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// How the failure-aware driver recovers lost work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retry budget per request: how many times a lost request may be
    /// re-injected before it is accounted as shed.
    pub max_attempts: u32,
    /// Base retry backoff; attempt `n` waits `backoff * 2^(n-1)`.
    pub backoff: Seconds,
    /// Cap on the exponential backoff.
    pub max_backoff: Seconds,
    /// Deadline from a request's *original* arrival; a retry that cannot
    /// fire (or land) before it is accounted as timed out.
    pub deadline: Seconds,
    /// How long a restarted replica warms up (re-loading weights,
    /// re-JITting) before the router re-admits it.
    pub warmup: Seconds,
    /// Admission sheds load when every healthy replica already has at
    /// least this many requests outstanding (`None` = never shed). The
    /// oldest waiting request (original arrival, then id) is dropped —
    /// oldest-first, so a burst degrades to fresh work instead of
    /// head-of-line retries.
    pub shed_outstanding: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff: Seconds::new(0.002),
            max_backoff: Seconds::new(1.0),
            deadline: Seconds::new(60.0),
            warmup: Seconds::new(0.001),
            shed_outstanding: None,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff before retry attempt `attempt` (1-based), capped.
    pub fn backoff_for(&self, attempt: u32) -> Seconds {
        let factor = 2.0f64.powi(attempt.saturating_sub(1).min(62) as i32);
        Seconds::new((self.backoff.get() * factor).min(self.max_backoff.get()))
    }
}

/// A seeded crash generator: `crashes` crash events drawn uniformly from
/// `window`, each targeting a replica drawn from the same stream, all
/// repaired after `repair`. Re-seeding the owning [`FaultPlan`] redraws
/// the events; the traffic stream never sees these RNG draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// How many crashes to draw.
    pub crashes: u32,
    /// The window crash instants are drawn from.
    pub window: (Seconds, Seconds),
    /// Repair delay for every drawn crash.
    pub repair: Seconds,
}

/// The complete fault configuration of one run. An empty plan (no
/// events, no chaos spec) makes the engine take the exact zero-fault
/// code path, bit-for-bit identical to a run without any plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    chaos: Option<ChaosSpec>,
    recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, today's behaviour.
    pub fn none() -> Self {
        FaultPlan { seed: 0, events: Vec::new(), chaos: None, recovery: RecoveryPolicy::default() }
    }

    /// An empty plan carrying `seed` for chaos draws added later.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..Self::none() }
    }

    /// Adds one explicit event.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds explicit events (e.g. from [`parse_faults`]).
    #[must_use]
    pub fn with_events(mut self, events: impl IntoIterator<Item = FaultEvent>) -> Self {
        self.events.extend(events);
        self
    }

    /// Sets the seeded chaos generator.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Replaces the fault seed (what `cluster_sim --fault-seed` applies):
    /// chaos-generated events are redrawn, explicit events stand.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The recovery policy.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// Whether the plan injects nothing (the zero-fault fast path).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.chaos.is_none()
    }

    /// Materializes the timeline for a fleet of `replicas` replicas:
    /// explicit events plus chaos draws, validated, sorted by effect time
    /// (ties keep insertion order, chaos draws after explicit events).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an event targeting a replica
    /// outside the fleet, an empty/negative window, or a non-positive
    /// factor.
    pub fn resolve(&self, replicas: usize) -> Result<Vec<FaultEvent>> {
        if replicas == 0 {
            return Err(Error::invalid_config("cannot inject faults into an empty fleet"));
        }
        let mut events = self.events.clone();
        if let Some(chaos) = &self.chaos {
            let (from, until) = chaos.window;
            if until < from {
                return Err(Error::invalid_config("chaos window must not be reversed"));
            }
            let mut rng = FaultRng::new(self.seed);
            for _ in 0..chaos.crashes {
                let at = Seconds::new(
                    from.get() + rng.next_f64() * (until.get() - from.get()),
                );
                let replica = (rng.next_u64() % replicas as u64) as usize;
                events.push(FaultEvent::Crash { at, replica, repair: chaos.repair });
            }
        }
        for event in &events {
            event.validate(replicas)?;
        }
        events.sort_by(|a, b| a.at().get().total_cmp(&b.at().get()));
        Ok(events)
    }
}

/// The availability/robustness section of a fleet report — what the run
/// suffered and how serving degraded. Present only for runs with a
/// non-empty [`FaultPlan`]; zero-fault reports omit it so the committed
/// baselines stay byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Replica crashes suffered.
    pub crashes: u64,
    /// Total replica downtime (crash to end of warmup), clipped to the
    /// run's makespan, summed over crashes, in seconds.
    pub downtime_s: f64,
    /// Fraction of fleet capacity that was up: `1 - downtime / (replicas
    /// × makespan)`.
    pub availability: f64,
    /// Retry attempts fired (re-injections of lost requests).
    pub retries: u64,
    /// Requests that completed after at least one retry — the measure of
    /// the recovery path actually working.
    pub retried_ok: u64,
    /// Requests dropped by admission when surviving capacity was
    /// insufficient or the retry budget ran out.
    pub shed: u64,
    /// Requests that missed their deadline before a retry could land.
    pub timed_out: u64,
    /// Per-crash recovery time: crash instant to the replica's first
    /// completion after restart (end of run if it never completed
    /// another request), in timeline order, seconds.
    pub time_to_recover_s: Vec<f64>,
}

impl AvailabilityStats {
    /// The all-zero section (a plan with only benign events, e.g. a
    /// straggler window, reports full availability).
    pub fn zero() -> Self {
        AvailabilityStats {
            crashes: 0,
            downtime_s: 0.0,
            availability: 1.0,
            retries: 0,
            retried_ok: 0,
            shed: 0,
            timed_out: 0,
            time_to_recover_s: Vec::new(),
        }
    }
}

/// A splitmix64 stream for fault draws — deliberately distinct from the
/// traffic RNG so fault seeds never perturb arrivals.
struct FaultRng(u64);

impl FaultRng {
    fn new(seed: u64) -> Self {
        // Offset the state so seed 0 still produces a lively stream.
        FaultRng(seed ^ 0xFA17_FA17_FA17_FA17)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parses a `--faults` spec: comma-separated events.
///
/// Grammar (case-insensitive, whitespace-free):
///
/// - `crash@<time>:<replica>[:repair=<time>]` — e.g.
///   `crash@2s:replica1:repair=5s` (repair defaults to `1s`)
/// - `straggler@<from>-<until>:<replica>:x<factor>` — e.g.
///   `straggler@1s-3s:r0:x4`
/// - `link@<from>-<until>:x<factor>[:energy=x<factor>]` — e.g.
///   `link@0s-2s:x0.1` (energy factor defaults to 1)
///
/// `<time>` is a number with an optional `s` (default) or `ms` suffix;
/// `<replica>` is an index, optionally prefixed `replica` or `r`.
/// Events are validated against the fleet size at
/// [`FaultPlan::resolve`] time, not here.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] naming the malformed event.
///
/// # Examples
///
/// ```
/// use cimtpu_cluster::fault::{parse_faults, FaultEvent};
/// let events = parse_faults("crash@2s:replica1:repair=5s,link@1s-2s:x0.1").unwrap();
/// assert_eq!(events.len(), 2);
/// assert!(matches!(events[0], FaultEvent::Crash { replica: 1, .. }));
/// ```
pub fn parse_faults(spec: &str) -> Result<Vec<FaultEvent>> {
    let bad = |part: &str, why: &str| {
        Error::invalid_config(format!(
            "invalid fault spec '{part}': {why} (expected e.g. 'crash@2s:replica1:repair=5s', \
             'straggler@1s-3s:r0:x4', or 'link@0s-2s:x0.1')"
        ))
    };
    let mut events = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let lower = part.to_ascii_lowercase();
        let (kind, rest) = lower
            .split_once('@')
            .ok_or_else(|| bad(part, "missing '@<time>'"))?;
        let mut fields = rest.split(':');
        let when = fields.next().ok_or_else(|| bad(part, "missing time"))?;
        let event = match kind {
            "crash" => {
                let at = parse_time(when).ok_or_else(|| bad(part, "bad crash time"))?;
                let replica = fields
                    .next()
                    .and_then(parse_replica)
                    .ok_or_else(|| bad(part, "missing or bad replica"))?;
                let repair = match fields.next() {
                    None => Seconds::new(1.0),
                    Some(f) => f
                        .strip_prefix("repair=")
                        .and_then(parse_time)
                        .ok_or_else(|| bad(part, "bad repair delay"))?,
                };
                FaultEvent::Crash { at, replica, repair }
            }
            "straggler" => {
                let (from, until) =
                    parse_window(when).ok_or_else(|| bad(part, "bad straggler window"))?;
                let replica = fields
                    .next()
                    .and_then(parse_replica)
                    .ok_or_else(|| bad(part, "missing or bad replica"))?;
                let slowdown = fields
                    .next()
                    .and_then(|f| f.strip_prefix('x'))
                    .and_then(|f| f.parse::<f64>().ok())
                    .ok_or_else(|| bad(part, "missing or bad ':x<factor>'"))?;
                FaultEvent::Straggler { replica, from, until, slowdown }
            }
            "link" => {
                let (from, until) =
                    parse_window(when).ok_or_else(|| bad(part, "bad link window"))?;
                let bandwidth_factor = fields
                    .next()
                    .and_then(|f| f.strip_prefix('x'))
                    .and_then(|f| f.parse::<f64>().ok())
                    .ok_or_else(|| bad(part, "missing or bad ':x<factor>'"))?;
                let energy_factor = match fields.next() {
                    None => 1.0,
                    Some(f) => f
                        .strip_prefix("energy=x")
                        .and_then(|f| f.parse::<f64>().ok())
                        .ok_or_else(|| bad(part, "bad ':energy=x<factor>'"))?,
                };
                FaultEvent::DegradedLink { from, until, bandwidth_factor, energy_factor }
            }
            other => return Err(bad(part, &format!("unknown fault kind '{other}'"))),
        };
        if let Some(extra) = fields.next() {
            return Err(bad(part, &format!("trailing field '{extra}'")));
        }
        events.push(event);
    }
    if events.is_empty() {
        return Err(Error::invalid_config("fault spec contains no events"));
    }
    Ok(events)
}

/// Parses `2s`, `150ms`, or a bare seconds number. `None` on any error.
fn parse_time(s: &str) -> Option<Seconds> {
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1.0)
    };
    let x: f64 = num.parse().ok()?;
    (x.is_finite() && x >= 0.0).then(|| Seconds::new(x * scale))
}

/// Parses `<from>-<until>` as a time window.
fn parse_window(s: &str) -> Option<(Seconds, Seconds)> {
    let (a, b) = s.split_once('-')?;
    Some((parse_time(a)?, parse_time(b)?))
}

/// Parses `replica3`, `r3`, or `3` as a replica index.
fn parse_replica(s: &str) -> Option<usize> {
    let digits = s.strip_prefix("replica").or_else(|| s.strip_prefix('r')).unwrap_or(s);
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.resolve(2).unwrap().is_empty());
        assert!(!plan.clone().with_chaos(ChaosSpec {
            crashes: 1,
            window: (Seconds::ZERO, Seconds::new(1.0)),
            repair: Seconds::new(0.5),
        })
        .is_empty());
    }

    #[test]
    fn chaos_draws_are_seed_deterministic() {
        let plan = |seed| {
            FaultPlan::seeded(seed).with_chaos(ChaosSpec {
                crashes: 3,
                window: (Seconds::new(1.0), Seconds::new(2.0)),
                repair: Seconds::new(0.25),
            })
        };
        let a = plan(7).resolve(4).unwrap();
        let b = plan(7).resolve(4).unwrap();
        assert_eq!(a, b, "same seed, same timeline");
        let c = plan(8).resolve(4).unwrap();
        assert_ne!(a, c, "a different seed redraws the crashes");
        for e in &a {
            let FaultEvent::Crash { at, replica, repair } = *e else {
                panic!("chaos draws crashes only")
            };
            assert!(at >= Seconds::new(1.0) && at < Seconds::new(2.0));
            assert!(replica < 4);
            assert_eq!(repair, Seconds::new(0.25));
        }
    }

    #[test]
    fn resolve_sorts_and_validates() {
        let plan = FaultPlan::none()
            .with_event(FaultEvent::Crash {
                at: Seconds::new(3.0),
                replica: 0,
                repair: Seconds::new(1.0),
            })
            .with_event(FaultEvent::Straggler {
                replica: 1,
                from: Seconds::new(1.0),
                until: Seconds::new(2.0),
                slowdown: 4.0,
            });
        let events = plan.resolve(2).unwrap();
        assert!(matches!(events[0], FaultEvent::Straggler { .. }), "sorted by effect time");
        assert!(plan.resolve(1).is_err(), "replica 1 out of range");
        assert!(FaultPlan::none()
            .with_event(FaultEvent::Straggler {
                replica: 0,
                from: Seconds::new(2.0),
                until: Seconds::new(1.0),
                slowdown: 4.0,
            })
            .resolve(1)
            .is_err());
        assert!(FaultPlan::none()
            .with_event(FaultEvent::DegradedLink {
                from: Seconds::ZERO,
                until: Seconds::new(1.0),
                bandwidth_factor: 0.0,
                energy_factor: 1.0,
            })
            .resolve(1)
            .is_err());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RecoveryPolicy {
            backoff: Seconds::new(0.010),
            max_backoff: Seconds::new(0.050),
            ..RecoveryPolicy::default()
        };
        assert_eq!(policy.backoff_for(1), Seconds::new(0.010));
        assert_eq!(policy.backoff_for(2), Seconds::new(0.020));
        assert_eq!(policy.backoff_for(3), Seconds::new(0.040));
        assert_eq!(policy.backoff_for(4), Seconds::new(0.050), "capped");
        assert_eq!(policy.backoff_for(100), Seconds::new(0.050), "no overflow");
    }

    #[test]
    fn fault_parsing() {
        let events = parse_faults("crash@2s:replica1:repair=5s").unwrap();
        assert_eq!(
            events,
            vec![FaultEvent::Crash {
                at: Seconds::new(2.0),
                replica: 1,
                repair: Seconds::new(5.0),
            }]
        );
        // Default repair, bare replica index, ms times, case folding.
        assert_eq!(
            parse_faults("CRASH@150ms:0").unwrap(),
            vec![FaultEvent::Crash {
                at: Seconds::new(0.150),
                replica: 0,
                repair: Seconds::new(1.0),
            }]
        );
        assert_eq!(
            parse_faults("straggler@1s-3s:r0:x4").unwrap(),
            vec![FaultEvent::Straggler {
                replica: 0,
                from: Seconds::new(1.0),
                until: Seconds::new(3.0),
                slowdown: 4.0,
            }]
        );
        assert_eq!(
            parse_faults("link@0s-2s:x0.1").unwrap(),
            vec![FaultEvent::DegradedLink {
                from: Seconds::ZERO,
                until: Seconds::new(2.0),
                bandwidth_factor: 0.1,
                energy_factor: 1.0,
            }]
        );
        assert_eq!(
            parse_faults("link@0-2:x0.5:energy=x2").unwrap(),
            vec![FaultEvent::DegradedLink {
                from: Seconds::ZERO,
                until: Seconds::new(2.0),
                bandwidth_factor: 0.5,
                energy_factor: 2.0,
            }]
        );
        // Multiple events, whitespace tolerated around commas.
        let multi = parse_faults("crash@2s:r1, link@1s-2s:x0.1").unwrap();
        assert_eq!(multi.len(), 2);

        for bad in [
            "",
            "crash",
            "crash@",
            "crash@two:r0",
            "crash@2s",
            "crash@2s:rx",
            "crash@2s:r0:repair=",
            "crash@2s:r0:mend=1s",
            "crash@2s:r0:repair=1s:extra",
            "crash@-1s:r0",
            "straggler@1s:r0:x4",
            "straggler@1s-3s:r0",
            "straggler@1s-3s:r0:4",
            "link@1s-2s",
            "link@1s-2s:0.1",
            "link@1s-2s:x0.1:energy=2",
            "flood@1s-2s:x0.1",
        ] {
            assert!(parse_faults(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn availability_serializes_in_declaration_order() {
        let stats = AvailabilityStats { crashes: 1, ..AvailabilityStats::zero() };
        let json = serde_json::to_string(&stats).unwrap();
        let keys = [
            "\"crashes\"",
            "\"downtime_s\"",
            "\"availability\"",
            "\"retries\"",
            "\"retried_ok\"",
            "\"shed\"",
            "\"timed_out\"",
            "\"time_to_recover_s\"",
        ];
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| json.find(k).unwrap_or_else(|| panic!("{k} missing from {json}")))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "field order drifted: {json}");
    }
}
