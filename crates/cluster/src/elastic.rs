//! The autoscaled colocated driver: the discrete-event loop of
//! [`run_colocated_faulty`](crate::engine) re-derived around a reconcile
//! loop instead of a fault timeline.
//!
//! Each [`ReplicaSpec`] of the fleet becomes one elastic *group* of up to
//! `max` identically-configured slots named `{name}-{slot}`. A
//! [`Reconciler`] observes per-group telemetry on a fixed interval of the
//! simulated clock and decides; this driver applies:
//!
//! * **scale-up** — the lowest offline slot starts provisioning
//!   (`provision` delay), then warms (`warmup`: weight load plus a cold
//!   `MappingCache` — the slot gets a *fresh* core at warmup start), then
//!   turns `Up` and routable. The slot is *held* — and paid for in
//!   chip-seconds — from the decision instant.
//! * **scale-down / scale-to-zero** — the highest routable slot stops
//!   taking arrivals and drains: its core is closed so in-flight work
//!   runs to completion, then the slot retires and stops costing.
//! * **swap** — under skewed two-model traffic, a donor group's slot
//!   drains (`swap-out`) while the starved group boots one (`swap-in`)
//!   that skips provisioning and pays only warmup. A swap recipient is
//!   by definition at its `max`, so the donated machine carries it past
//!   the band — the only way a group exceeds `max`; plain scale-downs
//!   bring it back.
//!
//! Arrivals are hashed by session onto a group (a session is sticky to
//! one model) and routed across the group's routable slots; a group
//! scaled to zero parks arrivals until the reconciler wakes it, and the
//! parked wait is charged to the request's latency. Event classes at one
//! instant resolve in a fixed order — lifecycle transitions, the
//! reconcile tick, arrivals, engine steps — so a seeded run replays
//! bit-for-bit (the scaling-action log is pinned by a replay test).

use std::collections::HashMap;
use std::rc::Rc;

use cimtpu_obs::{EventKind, SharedRecorder, TraceHandle, TraceSink as _};
use cimtpu_autoscale::{action, AutoscalePolicy, GroupObservation, Reconciler, ScalingAction, ScalingDecision, ScalingStats};
use cimtpu_serving::{
    ActionHeap, ArrivalStream, Completion, EngineCore, EngineSession, PrefixStats, Request,
    TrafficSpec,
};
use cimtpu_units::{Error, Joules, Result, Seconds};

use crate::engine::{tenant_tag, ClusterRun, ReplicaAccum, Tenancy};
use crate::replica::ReplicaSpec;
use crate::report::{ClusterReport, KvTransferStats, ReplicaUtilization};
use crate::router::{splitmix64, HealthView, ReplicaHealth, ReplicaSnapshot, Router, RouterPolicy};

/// One held-slot interval, for chip-seconds accounting: a slot costs from
/// the scale-up decision (or t = 0 for an initial slot) until retirement
/// (or the end of the run).
struct HeldInterval {
    start: f64,
    end: Option<f64>,
}

/// One group's capacity ramp: from a scale-up decision until the slot
/// turns `Up`. Completions of the group that miss the SLO inside an open
/// ramp are the reactive-scaling latency price the report surfaces.
struct RampWindow {
    group: usize,
    start: f64,
    end: Option<f64>,
}

/// Static per-slot wiring: which group a slot belongs to and its
/// concrete spec (`{group}-{slot}` clone of the group's base spec).
struct Slot {
    group: usize,
    spec: ReplicaSpec,
}

/// Recorder wiring for the elastic driver: one track per slot, a
/// `"reconciler"` control track for fleet-level events, and per-group
/// `[queued, outstanding]` gauges sampled at each reconcile tick.
struct ElasticTrace {
    rec: SharedRecorder,
    tracks: Vec<u32>,
    control: u32,
    gseries: Vec<[usize; 2]>,
}

#[allow(clippy::too_many_arguments)] // one call site, in the engine's dispatch
pub(crate) fn run_colocated_elastic(
    replicas: &[ReplicaSpec],
    policy: RouterPolicy,
    label: &str,
    traffic: &TrafficSpec,
    slo_ms: Option<f64>,
    autoscale: &AutoscalePolicy,
    mut tenancy: Option<Tenancy<'_>>,
    recorder: Option<&SharedRecorder>,
) -> Result<ClusterRun> {
    // ---- static wiring ------------------------------------------------
    let ngroups = replicas.len();
    let mut slots: Vec<Slot> = Vec::new();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let total_max: u64 = autoscale.groups.iter().map(|g| g.max).sum();
    for (g, base) in replicas.iter().enumerate() {
        // A swap recipient is by definition *at* its max, so the donated
        // machine carries the group past it: with swaps on, each group
        // gets spare slots for every machine the rest of the fleet could
        // donate. The scale-up rule still caps plain growth at `max`.
        let swap_spares =
            if autoscale.swap { total_max - autoscale.groups[g].max } else { 0 };
        for j in 0..autoscale.groups[g].max + swap_spares {
            let mut spec = base.clone();
            spec.name = format!("{}-{j}", base.name);
            members[g].push(slots.len());
            slots.push(Slot { group: g, spec });
        }
    }
    let n = slots.len();
    let sessions: Vec<EngineSession> = slots
        .iter()
        .map(|s| EngineSession::new(&s.spec.engine()?))
        .collect::<Result<_>>()?;
    let mut cores: Vec<EngineCore<'_>> =
        sessions.iter().map(EngineSession::core).collect::<Result<_>>()?;
    if let Some(t) = &tenancy {
        for core in &mut cores {
            core.set_tenancy(t.sched);
        }
    }
    let classed = tenancy.as_ref().is_some_and(Tenancy::multi);
    let trace = recorder.map(|rec| {
        let mut r = rec.borrow_mut();
        let tracks: Vec<u32> = slots.iter().map(|s| r.track(&s.spec.name)).collect();
        let control = r.track("reconciler");
        let gseries: Vec<[usize; 2]> = replicas
            .iter()
            .map(|g| {
                [
                    r.gauge_series(&format!("{}/queued", g.name)),
                    r.gauge_series(&format!("{}/outstanding", g.name)),
                ]
            })
            .collect();
        drop(r);
        ElasticTrace { rec: Rc::clone(rec), tracks, control, gseries }
    });
    if let Some(tr) = &trace {
        for (k, core) in cores.iter_mut().enumerate() {
            core.attach_trace(TraceHandle::new(Rc::clone(&tr.rec), tr.tracks[k]));
        }
    }
    let mut stream = ArrivalStream::new(traffic)?;
    let offered = stream.total();
    let mut routers: Vec<Box<dyn Router>> = (0..ngroups).map(|_| policy.build()).collect();
    let mut reconciler = Reconciler::new(autoscale.clone());
    let interval = autoscale.interval;

    // ---- mutable fleet state ------------------------------------------
    let mut health = HealthView::all_up(n);
    // `live[k]`: the slot has an active core (initial or booted, not yet
    // retired). Offline slots keep their pre-created core but it is never
    // stepped; a boot replaces it with a fresh one (cold caches).
    let mut live = vec![false; n];
    let mut draining = vec![false; n];
    // Slots booting (provisioning or warming) — waiting to turn `Up`.
    let mut booting = vec![false; n];
    let mut held: Vec<Vec<HeldInterval>> = (0..n).map(|_| Vec::new()).collect();
    let mut assigned = vec![0u64; n];
    let mut last_push = vec![f64::NEG_INFINITY; n];
    let mut accum: Vec<ReplicaAccum> = (0..n).map(|_| ReplicaAccum::default()).collect();
    let mut delivered_by = vec![0u64; n];
    let offline_until = Seconds::new(f64::INFINITY);
    for (g, group_members) in members.iter().enumerate() {
        for (j, &k) in group_members.iter().enumerate() {
            if (j as u64) < autoscale.groups[g].initial {
                live[k] = true;
                held[k].push(HeldInterval { start: 0.0, end: None });
            } else {
                health.mark_down(k, offline_until);
            }
        }
    }

    // ---- run ledger and scaling telemetry ------------------------------
    let mut delivered: Vec<Completion> = Vec::new();
    let mut origin: HashMap<u64, f64> = HashMap::new();
    let mut parked: Vec<Vec<Request>> = vec![Vec::new(); ngroups];
    let mut since_tick: Vec<(u64, u64)> = vec![(0, 0); ngroups]; // (delivered, slo_ok)
    let mut ramps: Vec<RampWindow> = Vec::new();
    let mut stats = ScalingStats {
        peak_replicas: held.iter().filter(|h| !h.is_empty()).count() as u64,
        ..ScalingStats::default()
    };
    let mut held_now = stats.peak_replicas;
    let mut next_tick = interval;
    let mut exhausted_closed = false;

    let mut step_heap = ActionHeap::new(n);
    for (k, core) in cores.iter().enumerate() {
        if live[k] {
            step_heap.set(k, core.next_action());
        }
    }

    // Routable slots of a group, ascending.
    let routable = |health: &HealthView, draining: &[bool], g: usize| -> Vec<usize> {
        members[g].iter().copied().filter(|&k| health.is_up(k) && !draining[k]).collect()
    };
    // Pushes a request onto slot `k`, preserving the per-replica
    // queue-tail monotonicity the engine requires (a parked request can
    // land on a slot that booted after it arrived).
    macro_rules! push_to {
        ($k:expr, $r:expr) => {{
            let (k, mut r): (usize, Request) = ($k, $r);
            r.arrival_s = r.arrival_s.max(last_push[k]);
            last_push[k] = r.arrival_s;
            assigned[k] += 1;
            if exhausted_closed {
                cores[k].reopen();
                cores[k].push(r);
                cores[k].close();
            } else {
                cores[k].push(r);
            }
            step_heap.set(k, cores[k].next_action());
        }};
    }

    loop {
        let step_at = step_heap.peek();
        let lifecycle_at =
            health.next_transition().filter(|t| t.get().is_finite());
        let arrival_at = stream.peek();
        let parked_total: usize = parked.iter().map(Vec::len).sum();

        // The run is over when nothing can produce or receive work:
        // trailing reconcile ticks and in-flight boots are dropped.
        if stream.exhausted() && parked_total == 0 && step_at.is_none() {
            break;
        }
        // Closed-loop stall: clients wait on completions held in partial
        // batches, which neither a tick nor a lifecycle transition can
        // produce. Flush the lowest stalled live core (mirrors `drive`).
        if arrival_at.is_none() && !stream.exhausted() && step_at.is_none() && parked_total == 0
        {
            let mut progressed = false;
            for k in 0..n {
                if live[k] && cores[k].flush_stalled()? {
                    step_heap.set(k, cores[k].next_action());
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                return Err(Error::invalid_config(
                    "elastic driver stalled: closed-loop clients wait on completions \
                     no engine can produce",
                ));
            }
            continue;
        }

        // Candidate events; ascending class with strict `<` keeps the
        // earlier class on time ties.
        let candidates = [
            (lifecycle_at, 0u8),
            (Some(next_tick), 1),
            (arrival_at, 2),
            (step_at.map(|(_, t)| t), 3),
        ];
        let mut chosen: Option<(Seconds, u8)> = None;
        for (t, class) in candidates {
            if let Some(t) = t {
                if chosen.is_none_or(|(bt, _)| t < bt) {
                    chosen = Some((t, class));
                }
            }
        }
        let Some((now, class)) = chosen else {
            return Err(Error::internal("the reconcile tick is always schedulable"));
        };

        match class {
            // Lifecycle: provisioning ends (fresh core, warmup starts) and
            // warmups end (slot turns Up, parked work flushes).
            0 => {
                for k in health.advance(now, autoscale.warmup) {
                    // Warmup starts on a fresh core: empty allocator, cold
                    // mapping cache — the boot pays real warm-up work.
                    cores[k] = sessions[k].core()?;
                    if let Some(t) = &tenancy {
                        cores[k].set_tenancy(t.sched);
                    }
                    if let Some(tr) = &trace {
                        cores[k].attach_trace(TraceHandle::new(Rc::clone(&tr.rec), tr.tracks[k]));
                    }
                    live[k] = true;
                    last_push[k] = f64::NEG_INFINITY;
                    if exhausted_closed {
                        cores[k].close();
                    }
                    step_heap.set(k, cores[k].next_action());
                }
                for g in 0..ngroups {
                    let mut woke = false;
                    for &k in &members[g] {
                        if booting[k] && health.is_up(k) {
                            booting[k] = false;
                            woke = true;
                            // Service cannot start before the slot exists.
                            last_push[k] = now.get();
                            stats.actions.push(ScalingAction::new(
                                now.get(),
                                action::UP,
                                &replicas[g].name,
                                slots[k].spec.name.clone(),
                            ));
                            if let Some(tr) = &trace {
                                tr.rec.borrow_mut().instant(
                                    tr.tracks[k],
                                    EventKind::Up,
                                    0,
                                    now.get(),
                                );
                            }
                            for ramp in ramps.iter_mut() {
                                if ramp.group == g && ramp.end.is_none() {
                                    ramp.end = Some(now.get());
                                    break;
                                }
                            }
                        }
                    }
                    if woke && !parked[g].is_empty() {
                        let up = routable(&health, &draining, g);
                        for r in std::mem::take(&mut parked[g]) {
                            let snaps = group_snapshots(&cores, &up, now, &assigned, classed);
                            let pos = routers[g].route(&r, &snaps).min(up.len() - 1);
                            push_to!(up[pos], r);
                        }
                    }
                }
            }
            // Reconcile tick: observe, decide, apply.
            1 => {
                next_tick += interval;
                stats.reconciles += 1;
                if let Some(tr) = &trace {
                    tr.rec.borrow_mut().instant(
                        tr.control,
                        EventKind::Reconcile,
                        stats.reconciles,
                        now.get(),
                    );
                }
                let obs: Vec<GroupObservation> = (0..ngroups)
                    .map(|g| {
                        let up = routable(&health, &draining, g);
                        let mut queued = parked[g].len() as u64;
                        let mut outstanding = 0;
                        let mut kv_frac = 0.0f64;
                        for &k in &up {
                            queued += cores[k].queued();
                            outstanding += cores[k].outstanding_at(now);
                            kv_frac = kv_frac.max(cores[k].kv_frac());
                        }
                        let pending =
                            members[g].iter().filter(|&&k| booting[k]).count() as u64;
                        let drains =
                            members[g].iter().filter(|&&k| draining[k] && live[k]).count();
                        let (delivered, slo_ok) = since_tick[g];
                        GroupObservation {
                            up: up.len() as u64,
                            pending,
                            draining: drains as u64,
                            queued,
                            outstanding,
                            kv_frac,
                            delivered,
                            slo_ok,
                        }
                    })
                    .collect();
                since_tick = vec![(0, 0); ngroups];
                if let Some(tr) = &trace {
                    let mut rec = tr.rec.borrow_mut();
                    for (g, o) in obs.iter().enumerate() {
                        rec.sample(tr.gseries[g][0], now.get(), o.queued as f64);
                        rec.sample(tr.gseries[g][1], now.get(), o.outstanding as f64);
                    }
                }
                for decision in reconciler.reconcile(now, &obs) {
                    match decision {
                        ScalingDecision::Add { group } => {
                            if let Some(k) = boot_slot(&members, &health, &draining, group) {
                                apply_boot(
                                    k, group, now, action::SCALE_UP, &mut health,
                                    now + autoscale.provision, &mut booting, &mut held,
                                    &mut ramps, &mut stats, &replicas[group].name,
                                    &slots[k].spec.name,
                                );
                                stats.scale_ups += 1;
                                held_now += 1;
                                if let Some(tr) = &trace {
                                    tr.rec.borrow_mut().instant(
                                        tr.tracks[k],
                                        EventKind::ScaleUp,
                                        0,
                                        now.get(),
                                    );
                                }
                            }
                        }
                        ScalingDecision::Drain { group } => {
                            if let Some(k) = drain_victim(&health, &draining, &members, group) {
                                let emptied = routable(&health, &draining, group).len() == 1;
                                let kind = if emptied {
                                    stats.scale_to_zero += 1;
                                    action::SCALE_TO_ZERO
                                } else {
                                    action::SCALE_DOWN
                                };
                                stats.scale_downs += 1;
                                stats.actions.push(ScalingAction::new(
                                    now.get(),
                                    kind,
                                    &replicas[group].name,
                                    slots[k].spec.name.clone(),
                                ));
                                if let Some(tr) = &trace {
                                    let ek = if emptied {
                                        EventKind::ScaleToZero
                                    } else {
                                        EventKind::ScaleDown
                                    };
                                    tr.rec.borrow_mut().instant(tr.tracks[k], ek, 0, now.get());
                                }
                                begin_drain(k, &mut cores, &mut draining, &mut step_heap);
                            }
                        }
                        ScalingDecision::Swap { from, to } => {
                            let victim = drain_victim(&health, &draining, &members, from);
                            let target = boot_slot(&members, &health, &draining, to);
                            if let (Some(v), Some(t)) = (victim, target) {
                                stats.swaps += 1;
                                stats.actions.push(ScalingAction::new(
                                    now.get(),
                                    action::SWAP_OUT,
                                    &replicas[from].name,
                                    slots[v].spec.name.clone(),
                                ));
                                begin_drain(v, &mut cores, &mut draining, &mut step_heap);
                                // The swapped-in slot skips provisioning
                                // (the machine is already racked) and pays
                                // only warmup.
                                apply_boot(
                                    t, to, now, action::SWAP_IN, &mut health, now,
                                    &mut booting, &mut held, &mut ramps, &mut stats,
                                    &replicas[to].name, &slots[t].spec.name,
                                );
                                held_now += 1;
                                if let Some(tr) = &trace {
                                    let mut rec = tr.rec.borrow_mut();
                                    rec.instant(tr.tracks[v], EventKind::SwapOut, 0, now.get());
                                    rec.instant(tr.tracks[t], EventKind::SwapIn, 0, now.get());
                                }
                            }
                        }
                    }
                }
                stats.peak_replicas = stats.peak_replicas.max(held_now);
                // A drained core with no in-flight work retires at once.
                held_now -= retire_idle(
                    now, &mut cores, &mut health, &mut live, &mut draining, &mut held,
                    &mut accum, &mut step_heap, &slots, replicas, &mut stats, offline_until,
                    tenancy.as_mut(), trace.as_ref(),
                );
            }
            // Arrival: hash the session onto its group, route or park.
            2 => {
                let r = stream.pop();
                origin.insert(r.id, r.arrival_s);
                if let Some(tr) = &trace {
                    // Emitted by the driver: a parked arrival may wait a
                    // long time before any core sees it.
                    tr.rec.borrow_mut().request_arrival_for(
                        tr.control,
                        r.id,
                        r.arrival_s,
                        tenant_tag(&tenancy, r.id),
                    );
                }
                if stream.exhausted() {
                    exhausted_closed = true;
                    for (k, core) in cores.iter_mut().enumerate() {
                        if live[k] {
                            core.close();
                            step_heap.set(k, core.next_action());
                        }
                    }
                }
                let g = (splitmix64(r.session) % ngroups as u64) as usize;
                let up = routable(&health, &draining, g);
                if up.is_empty() {
                    // Scaled to zero (or drained dry): park until the
                    // reconciler wakes the group. The original arrival is
                    // preserved, so the wake-up wait lands in the
                    // request's latency.
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().instant_for(
                            tr.control,
                            EventKind::Park,
                            r.id,
                            now.get(),
                            tenant_tag(&tenancy, r.id),
                        );
                    }
                    parked[g].push(r);
                } else {
                    let snaps = group_snapshots(&cores, &up, now, &assigned, classed);
                    let pos = routers[g].route(&r, &snaps).min(up.len() - 1);
                    push_to!(up[pos], r);
                }
            }
            // Engine step: completions deliver immediately (no crashes can
            // revoke them), and a dry draining slot retires.
            _ => {
                let (k, _) = step_at
                    .ok_or_else(|| Error::internal("class 3 implies a steppable core"))?;
                cores[k].step()?;
                step_heap.set(k, cores[k].next_action());
                let g = slots[k].group;
                for &c in cores[k].drain_new() {
                    let mut c = c;
                    if let Some(orig) = origin.get(&c.id) {
                        c.arrival = Seconds::new(*orig);
                    }
                    stream.on_complete(&c);
                    delivered_by[k] += 1;
                    since_tick[g].0 += 1;
                    let ok = slo_ms.is_none_or(|slo| c.latency().as_millis() <= slo);
                    if ok {
                        since_tick[g].1 += 1;
                    } else if in_ramp(&ramps, g, c.finish.get()) {
                        stats.slo_violations_ramp += 1;
                    }
                    if let Some(tr) = &trace {
                        tr.rec.borrow_mut().complete_for(
                            tr.tracks[k],
                            c.id,
                            c.finish.get(),
                            c.latency().as_millis(),
                            c.ttft().as_millis(),
                            tenant_tag(&tenancy, c.id),
                        );
                    }
                    delivered.push(c);
                }
                if draining[k] {
                    held_now -= retire_idle(
                        now, &mut cores, &mut health, &mut live, &mut draining, &mut held,
                        &mut accum, &mut step_heap, &slots, replicas, &mut stats,
                        offline_until, tenancy.as_mut(), trace.as_ref(),
                    );
                }
            }
        }
    }

    // ---- harvest and report -------------------------------------------
    for (k, core) in cores.iter().enumerate() {
        if live[k] {
            accum[k].harvest(core);
            if let Some(t) = tenancy.as_mut() {
                if let Some(p) = core.tenant_preemptions() {
                    t.ledger.absorb_preemptions(p);
                }
            }
        }
    }
    delivered.sort_by_key(|c| c.id);
    debug_assert_eq!(delivered.len() as u64, offered, "elastic runs never shed");

    let finish = delivered.iter().map(|c| c.finish).fold(Seconds::ZERO, Seconds::max);
    let first_arrival = delivered.iter().map(|c| c.arrival).fold(finish, Seconds::min);
    let mut chip_energy = Joules::ZERO;
    let mut preemptions = 0;
    let mut queue_full_s = 0.0;
    let mut prefix = PrefixStats::default();
    let mut rows = Vec::new();
    let mut busy_chip_s = 0.0;
    for (k, slot) in slots.iter().enumerate() {
        // Chip-seconds: held intervals clipped to the makespan, so the
        // elastic number is directly comparable with a static fleet's
        // `chips × makespan`.
        let clip = |t: f64| t.clamp(first_arrival.get(), finish.get());
        for iv in &held[k] {
            let end = clip(iv.end.unwrap_or(finish.get()));
            stats.chip_seconds += slot.spec.chips() as f64 * (end - clip(iv.start)).max(0.0);
        }
        if held[k].is_empty() {
            continue; // the slot never ran: no report row
        }
        let a = &accum[k];
        chip_energy += Joules::new(a.energy_j);
        preemptions += a.preemptions;
        queue_full_s += a.queue_full_s;
        prefix.absorb(&a.prefix);
        busy_chip_s += a.busy_s * slot.spec.chips() as f64;
        rows.push(ReplicaUtilization {
            name: slot.spec.name.clone(),
            model: slot.spec.model.name().to_owned(),
            role: "serve".to_owned(),
            chips: slot.spec.chips(),
            requests: delivered_by[k],
            busy_s: a.busy_s,
            utilization: 0.0, // filled against the fleet makespan
            energy_j: a.energy_j,
            kv_hwm_frac: a.kv_hwm,
        });
    }
    stats.idle_energy_j = autoscale.idle_watts * (stats.chip_seconds - busy_chip_s).max(0.0);
    stats.total_cost_j = chip_energy.get() + stats.idle_energy_j;

    let mut report = ClusterReport::build(
        label,
        "colocated",
        policy.name().to_owned(),
        offered,
        &delivered,
        chip_energy,
        preemptions,
        queue_full_s,
        KvTransferStats::default(),
        rows,
        slo_ms,
        None,
    );
    report.scaling = Some(stats);
    if let Some(t) = tenancy {
        report.tenants = Some(t.ledger.report(&delivered, report.makespan_s));
    }
    for session in &sessions {
        session.persist_cache();
    }
    // Per-slot ServingReports are not meaningful across boots/retires:
    // elastic runs report the fleet aggregate only.
    Ok(ClusterRun { report, replica_reports: Vec::new(), completions: delivered, prefix })
}

/// Router snapshots over one group's routable slots, re-indexed
/// `0..up.len()` so index-returning and positional routers agree.
fn group_snapshots(
    cores: &[EngineCore<'_>],
    up: &[usize],
    t: Seconds,
    assigned: &[u64],
    classed: bool,
) -> Vec<ReplicaSnapshot> {
    up.iter()
        .enumerate()
        .map(|(pos, &k)| ReplicaSnapshot {
            index: pos,
            outstanding: cores[k].outstanding_at(t),
            queued: cores[k].queued(),
            kv_frac: cores[k].kv_frac(),
            assigned: assigned[k],
            class_outstanding: if classed {
                cores[k].outstanding_by_class_at(t)
            } else {
                [0; 3]
            },
        })
        .collect()
}

/// The lowest offline slot of `group` (free to boot), if any: a group at
/// its physical slot limit (every slot up, booting, or still draining)
/// skips the decision until a drain finishes.
fn boot_slot(
    members: &[Vec<usize>],
    health: &HealthView,
    draining: &[bool],
    group: usize,
) -> Option<usize> {
    members[group]
        .iter()
        .copied()
        .find(|&k| !draining[k] && matches!(health.state(k), ReplicaHealth::Down { until } if !until.get().is_finite()))
}

/// Marks slot `k` booting: provisioning completes at `ready` (equal to
/// `now` for a swap-in, which skips the provisioning delay), warmup
/// follows, and the slot is held — costing chip-seconds — from this
/// instant.
#[allow(clippy::too_many_arguments)] // one call site per decision kind
fn apply_boot(
    k: usize,
    group: usize,
    now: Seconds,
    kind: &str,
    health: &mut HealthView,
    ready: Seconds,
    booting: &mut [bool],
    held: &mut [Vec<HeldInterval>],
    ramps: &mut Vec<RampWindow>,
    stats: &mut ScalingStats,
    group_name: &str,
    slot_name: &str,
) {
    health.mark_down(k, ready);
    booting[k] = true;
    held[k].push(HeldInterval { start: now.get(), end: None });
    ramps.push(RampWindow { group, start: now.get(), end: None });
    stats.actions.push(ScalingAction::new(now.get(), kind, group_name, slot_name.to_owned()));
}

/// The drain victim for `group`: its highest routable slot (retire the
/// newest capacity first).
fn drain_victim(
    health: &HealthView,
    draining: &[bool],
    members: &[Vec<usize>],
    group: usize,
) -> Option<usize> {
    members[group].iter().rev().copied().find(|&k| health.is_up(k) && !draining[k])
}

/// Closes slot `k`'s core so it stops taking work and runs its in-flight
/// requests to completion.
fn begin_drain(
    k: usize,
    cores: &mut [EngineCore<'_>],
    draining: &mut [bool],
    step_heap: &mut ActionHeap,
) {
    draining[k] = true;
    cores[k].close();
    step_heap.set(k, cores[k].next_action());
}

/// Retires every draining slot whose core has gone dry (no scheduled
/// action, nothing queued): harvests its counters, ends its held
/// interval, and takes it offline. Returns how many slots retired.
#[allow(clippy::too_many_arguments)] // the whole driver state participates
fn retire_idle(
    now: Seconds,
    cores: &mut [EngineCore<'_>],
    health: &mut HealthView,
    live: &mut [bool],
    draining: &mut [bool],
    held: &mut [Vec<HeldInterval>],
    accum: &mut [ReplicaAccum],
    step_heap: &mut ActionHeap,
    slots: &[Slot],
    replicas: &[ReplicaSpec],
    stats: &mut ScalingStats,
    offline_until: Seconds,
    mut tenancy: Option<&mut Tenancy<'_>>,
    trace: Option<&ElasticTrace>,
) -> u64 {
    let mut retired = 0;
    for k in 0..cores.len() {
        if !(draining[k] && live[k]) {
            continue;
        }
        if cores[k].next_action().is_some() || cores[k].queued() > 0 {
            continue;
        }
        // Harvested now: a later boot replaces this core, so its ledgers
        // (including per-tenant preemption counters) are read here or lost.
        accum[k].harvest(&cores[k]);
        if let Some(t) = tenancy.as_deref_mut() {
            if let Some(p) = cores[k].tenant_preemptions() {
                t.ledger.absorb_preemptions(p);
            }
        }
        live[k] = false;
        draining[k] = false;
        health.mark_down(k, offline_until);
        step_heap.set(k, None);
        if let Some(iv) = held[k].last_mut() {
            iv.end = Some(now.get());
        }
        stats.actions.push(ScalingAction::new(
            now.get(),
            action::RETIRED,
            &replicas[slots[k].group].name,
            slots[k].spec.name.clone(),
        ));
        if let Some(tr) = trace {
            tr.rec.borrow_mut().instant(tr.tracks[k], EventKind::Retired, 0, now.get());
        }
        retired += 1;
    }
    retired
}

/// Whether `finish` lands inside any capacity ramp of `group` (an open
/// ramp extends to the end of the run).
fn in_ramp(ramps: &[RampWindow], group: usize, finish: f64) -> bool {
    ramps.iter().any(|w| {
        w.group == group && finish >= w.start && w.end.is_none_or(|e| finish <= e)
    })
}
