//! Named cluster scenarios: the reference fleets the `cluster_sim`
//! binary and the CI smoke/baseline checks run.

use cimtpu_autoscale::{AutoscalePolicy, GroupPolicy};
use cimtpu_core::TpuConfig;
use cimtpu_models::presets;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, PrefixTraffic, ServingModel, SloClass,
    TenantPart, TenantSet, TenantSpec, TrafficSpec,
};
use cimtpu_units::{Bytes, Error, Result, Seconds};

use crate::disagg::InterconnectSpec;
use crate::engine::{ClusterEngine, ClusterRun};
use crate::fault::{ChaosSpec, FaultEvent, FaultPlan};
use crate::replica::ReplicaSpec;
use crate::router::RouterPolicy;

/// A named, fully specified cluster experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (CLI argument).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The fleet.
    pub engine: ClusterEngine,
    /// Traffic to offer.
    pub traffic: TrafficSpec,
    /// Multi-tenant scenarios carry their tenant set here; when present
    /// it supersedes `traffic` (which then only anchors the base shape
    /// `--tenants` overlays would split).
    pub tenants: Option<TenantSet>,
}

impl Scenario {
    /// Runs the scenario (optionally overriding the traffic seed).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run(&self, seed: Option<u64>) -> Result<ClusterRun> {
        self.run_observed(seed, None)
    }

    /// Runs the scenario with an optional flight recorder attached (see
    /// [`ClusterEngine::run_observed`]); `run` is the `None` shorthand.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_observed(
        &self,
        seed: Option<u64>,
        recorder: Option<&cimtpu_obs::SharedRecorder>,
    ) -> Result<ClusterRun> {
        if let Some(set) = &self.tenants {
            let set = match seed {
                Some(seed) => set.with_seed(seed),
                None => set.clone(),
            };
            return self.engine.run_tenants_observed(self.name, &set, recorder);
        }
        let mut traffic = self.traffic.clone();
        if let Some(seed) = seed {
            traffic.seed = seed;
        }
        self.engine.run_observed(self.name, &traffic, recorder)
    }

    /// Runs the scenario with its base traffic split across `parts`
    /// tenants ([`TenantSet::overlay`]) under tenant-aware scheduling.
    /// The seed override reseeds every tenant's stream.
    ///
    /// # Errors
    ///
    /// Propagates engine errors and invalid tenant overlays (closed-loop
    /// or prefix base traffic, fewer requests than tenants).
    pub fn run_tenants(&self, seed: Option<u64>, parts: &[TenantPart]) -> Result<ClusterRun> {
        let mut traffic = self.traffic.clone();
        if let Some(seed) = seed {
            traffic.seed = seed;
        }
        let tenants = TenantSet::overlay(&traffic, parts)?;
        self.engine.run_tenants(self.name, &tenants)
    }
}

/// A deliberately tiny Transformer for smoke tests (the serving smoke
/// model): two layers priced in milliseconds of wall clock.
fn tiny() -> ServingModel {
    ServingModel::Llm(cimtpu_serving::scenario::tiny_transformer())
}

fn llm_6_7b() -> ServingModel {
    ServingModel::Llm(presets::gpt3_6_7b())
}

/// A tiny closed-loop fleet at a given client count — the saturation
/// sweep's design points.
fn closed_loop_point(
    name: &'static str,
    description: &'static str,
    clients: u64,
) -> Scenario {
    Scenario {
        name,
        tenants: None,
        description,
        engine: ClusterEngine::colocated(
            vec![
                ReplicaSpec::new("tiny-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ReplicaSpec::new("tiny-1", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
            ],
            RouterPolicy::LeastOutstanding,
        )
        .expect("static fleet is valid"),
        traffic: TrafficSpec {
            requests: 48,
            arrival: ArrivalPattern::ClosedLoop { clients, think_ms: 5.0 },
            prompt: LenDist::Uniform { lo: 16, hi: 64 },
            steps: LenDist::Uniform { lo: 4, hi: 12 },
            prefix: PrefixTraffic::None,
            seed: 0xC1A0,
        },
    }
}

/// The headline scenarios: a heterogeneous small+large-chip fleet, a
/// two-model fleet under session-skewed traffic, disaggregated
/// prefill/decode versus colocated at matched hardware, a closed-loop
/// saturation sweep (2 → 8 → 32 clients on one tiny fleet), the
/// chaos set (seeded crashes, a straggler window, a degraded handoff
/// link) exercising the failure-aware drivers, the `cluster-day`
/// scale point (10M requests over 100 replicas) exercising the
/// heap-scheduled event core, and the multi-tenant pair
/// (`cluster-noisy-neighbor`, `cluster-launch-spike`) exercising SLO
/// tiers under weighted-fair scheduling.
pub fn headline() -> Vec<Scenario> {
    let disagg_traffic = TrafficSpec {
        requests: 24,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 5.0 },
        prompt: LenDist::Uniform { lo: 512, hi: 1024 },
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::None,
        seed: 0xC1A0,
    };
    vec![
        Scenario {
            name: "hetero-fleet",
            tenants: None,
            description: "GPT-3 6.7B on one baseline TPUv4i + one CIM Design A chip, \
                          least-outstanding routing",
            engine: ClusterEngine::colocated(
                vec![
                    ReplicaSpec::new("tpuv4i", TpuConfig::tpuv4i(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new("design-a", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ],
                RouterPolicy::LeastOutstanding,
            )
            .expect("static fleet is valid"),
            traffic: TrafficSpec {
                requests: 24,
                arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
                prompt: LenDist::Uniform { lo: 128, hi: 512 },
                steps: LenDist::Uniform { lo: 16, hi: 64 },
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "two-model-skew",
            tenants: None,
            description: "a 6.7B and a 13B replica behind session-affinity routing under \
                          a 6-session pool (skew shows up as imbalance)",
            engine: ClusterEngine::colocated(
                vec![
                    ReplicaSpec::new("gpt3-6.7b", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new(
                        "llama2-13b",
                        TpuConfig::design_a(),
                        ServingModel::Llm(presets::llama2_13b()),
                    )
                    .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ],
                RouterPolicy::SessionAffinity,
            )
            .expect("static fleet is valid"),
            traffic: TrafficSpec {
                requests: 24,
                arrival: ArrivalPattern::OpenLoopSessions { rate_rps: 6.0, sessions: 6 },
                prompt: LenDist::Uniform { lo: 128, hi: 512 },
                steps: LenDist::Fixed(32),
                prefix: PrefixTraffic::None,
                seed: 0xC1A0,
            },
        },
        Scenario {
            name: "disagg-prefill-decode",
            tenants: None,
            description: "1 prefill + 2 decode Design A chips with paged KV handoff over \
                          an ICI-class link, least-KV decode placement",
            engine: ClusterEngine::disaggregated(
                vec![ReplicaSpec::new("prefill-0", TpuConfig::design_a(), llm_6_7b())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
                vec![
                    ReplicaSpec::new("decode-0", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new("decode-1", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ],
                RouterPolicy::RoundRobin,
                RouterPolicy::LeastKv,
                InterconnectSpec::ici(),
            )
            .expect("static fleet is valid"),
            traffic: disagg_traffic.clone(),
        },
        Scenario {
            name: "colo-matched",
            tenants: None,
            description: "the disagg-prefill-decode hardware (3 Design A chips) serving \
                          the same traffic colocated — the comparison baseline",
            engine: ClusterEngine::colocated(
                vec![
                    ReplicaSpec::new("colo-0", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new("colo-1", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new("colo-2", TpuConfig::design_a(), llm_6_7b())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ],
                RouterPolicy::LeastOutstanding,
            )
            .expect("static fleet is valid"),
            traffic: disagg_traffic,
        },
        closed_loop_point(
            "closed-loop-c2",
            "saturation sweep, 2 closed-loop clients on a 2-replica tiny fleet",
            2,
        ),
        closed_loop_point(
            "closed-loop-c8",
            "saturation sweep, 8 closed-loop clients on a 2-replica tiny fleet",
            8,
        ),
        closed_loop_point(
            "closed-loop-c32",
            "saturation sweep, 32 closed-loop clients on a 2-replica tiny fleet",
            32,
        ),
        Scenario {
            name: "cluster-shared-prefix",
            tenants: None,
            description: "4 shared system prompts over a 2-replica Design A fleet with \
                          prefix sharing + prefix-affinity routing",
            engine: prefix_fleet(true),
            traffic: cluster_prefix_traffic(),
        },
        Scenario {
            name: "cluster-cold-prefix",
            tenants: None,
            description: "the cluster-shared-prefix fleet and traffic with sharing \
                          disabled — the matched-hardware control",
            engine: prefix_fleet(false),
            traffic: cluster_prefix_traffic(),
        },
        Scenario {
            name: "cluster-chaos-crash",
            tenants: None,
            description: "2 seeded replica crashes (cold restart) under open-loop load \
                          on a 2-replica tiny fleet; lost work retries with backoff",
            engine: chaos_fleet(FaultPlan::seeded(0xFA17).with_chaos(ChaosSpec {
                crashes: 2,
                window: (Seconds::new(0.000_5), Seconds::new(0.002)),
                repair: Seconds::new(0.002),
            })),
            traffic: chaos_traffic(),
        },
        Scenario {
            name: "cluster-straggler",
            tenants: None,
            description: "replica 0 runs 4x slow for a mid-run window; least-outstanding \
                          routing shifts load to the healthy replica",
            engine: chaos_fleet(FaultPlan::none().with_event(FaultEvent::Straggler {
                replica: 0,
                from: Seconds::new(0.000_5),
                until: Seconds::new(0.005),
                slowdown: 4.0,
            })),
            traffic: chaos_traffic(),
        },
        Scenario {
            name: "cluster-degraded-link",
            tenants: None,
            description: "tiny 1-prefill + 2-decode fleet with the handoff interconnect \
                          at one-tenth bandwidth (and double energy) all run",
            engine: ClusterEngine::disaggregated(
                vec![ReplicaSpec::new("prefill-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
                vec![
                    ReplicaSpec::new("decode-0", TpuConfig::tpuv4i(), tiny())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                    ReplicaSpec::new("decode-1", TpuConfig::tpuv4i(), tiny())
                        .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ],
                RouterPolicy::RoundRobin,
                RouterPolicy::LeastKv,
                InterconnectSpec::ici(),
            )
            .expect("static fleet is valid")
            .with_faults(FaultPlan::none().with_event(FaultEvent::DegradedLink {
                from: Seconds::ZERO,
                until: Seconds::new(10.0),
                bandwidth_factor: 0.1,
                energy_factor: 2.0,
            })),
            traffic: chaos_traffic(),
        },
        // Appended last: the BENCH_cluster.json baseline grows at the
        // end, leaving every pre-existing entry byte-identical.
        cluster_day(),
        diurnal_point(
            "cluster-diurnal-autoscale",
            "a compressed diurnal day on an elastic 1..6-replica tiny group — \
             the reconcile loop rides the curve (scale-ups pay provisioning \
             + warmup, scale-downs drain)",
            false,
        ),
        diurnal_point(
            "cluster-diurnal-static",
            "the same diurnal day and hardware pinned at the 6-replica peak \
             size all day — the cost baseline the autoscaled run must beat",
            true,
        ),
        noisy_neighbor(),
        launch_spike(),
    ]
}

/// The multi-tenant headline scenario: three equal-weight tenants — an
/// interactive chat tier, a standard API tier, and a batch bulk tier —
/// share a two-replica tiny fleet squeezed into the smoke-kv 4-block KV
/// budget, behind SLO-aware routing. Every tenant offers the same decode
/// tokens, so Jain's fairness index sits at 1.0; the KV squeeze forces
/// preemptions, and the SLO-aware victim order makes the batch tier
/// absorb them while interactive attainment holds (CI asserts both).
fn noisy_neighbor() -> Scenario {
    let tight_kv = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(64))
        .with_block_tokens(16);
    let tenant_traffic = |rate_rps: f64, seed: u64| TrafficSpec {
        requests: 16,
        arrival: ArrivalPattern::OpenLoop { rate_rps },
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(8),
        prefix: PrefixTraffic::None,
        seed,
    };
    Scenario {
        name: "cluster-noisy-neighbor",
        tenants: Some(
            TenantSet::new(vec![
                TenantSpec::new(
                    "chat",
                    SloClass::Interactive,
                    1.0,
                    tenant_traffic(4_000.0, 0xC1A0),
                ),
                TenantSpec::new("api", SloClass::Standard, 1.0, tenant_traffic(4_000.0, 0xC1A1)),
                TenantSpec::new("bulk", SloClass::Batch, 1.0, tenant_traffic(20_000.0, 0xC1A2)),
            ])
            .expect("static tenant set is valid"),
        ),
        description: "3 equal-weight SLO tiers (chat/api/bulk) on a 2-replica tiny \
                      fleet under the smoke-kv 4-block KV squeeze, SLO-aware routing \
                      (CI: fairness, batch-absorbed preemptions, interactive SLO)",
        engine: ClusterEngine::colocated(
            vec![
                ReplicaSpec::new("shared-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 })
                    .with_memory(tight_kv),
                ReplicaSpec::new("shared-1", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 4 })
                    .with_memory(tight_kv),
            ],
            RouterPolicy::SloAware,
        )
        .expect("static fleet is valid"),
        // The base shape `--tenants` overlays split; `tenants` above
        // supersedes it for plain runs.
        traffic: tenant_traffic(8_000.0, 0xC1A0),
    }
}

/// The launch-day spike: an interactive tenant whose traffic bursts hard
/// (a compressed diurnal day at double-rate burst) rides alongside a
/// steady batch backfill tenant at half its weight. Weighted-fair
/// scheduling keeps the backfill flowing through the spike instead of
/// starving it.
fn launch_spike() -> Scenario {
    Scenario {
        name: "cluster-launch-spike",
        tenants: Some(
            TenantSet::new(vec![
                TenantSpec::new(
                    "launch",
                    SloClass::Interactive,
                    2.0,
                    TrafficSpec {
                        requests: 32,
                        arrival: ArrivalPattern::Diurnal {
                            peak_rps: 24_000.0,
                            day_s: 0.012,
                            burst_x: 2.0,
                            bursts: 1,
                        },
                        prompt: LenDist::Uniform { lo: 16, hi: 48 },
                        steps: LenDist::Uniform { lo: 4, hi: 8 },
                        prefix: PrefixTraffic::None,
                        seed: 0x5B1E,
                    },
                ),
                TenantSpec::new(
                    "backfill",
                    SloClass::Batch,
                    1.0,
                    TrafficSpec {
                        requests: 16,
                        arrival: ArrivalPattern::OpenLoop { rate_rps: 2_000.0 },
                        prompt: LenDist::Fixed(64),
                        steps: LenDist::Fixed(16),
                        prefix: PrefixTraffic::None,
                        seed: 0x5B1F,
                    },
                ),
            ])
            .expect("static tenant set is valid"),
        ),
        description: "an interactive launch-day spike (diurnal burst, weight 2) over a \
                      steady weight-1 batch backfill on a 2-replica tiny fleet — \
                      weighted-fair scheduling keeps the backfill alive through the peak",
        engine: ClusterEngine::colocated(
            vec![
                ReplicaSpec::new("spike-0", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
                ReplicaSpec::new("spike-1", TpuConfig::tpuv4i(), tiny())
                    .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
            ],
            RouterPolicy::SloAware,
        )
        .expect("static fleet is valid"),
        traffic: TrafficSpec {
            requests: 48,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 8_000.0 },
            prompt: LenDist::Uniform { lo: 16, hi: 64 },
            steps: LenDist::Uniform { lo: 4, hi: 12 },
            prefix: PrefixTraffic::None,
            seed: 0x5B1E,
        },
    }
}

/// The million-request scale point: `cluster-day` offers ten million
/// closed-loop requests (a thousand clients on ~8.6 s think time — about
/// one simulated day of traffic) to a 100-replica tiny fleet. The
/// round-robin router keeps routing O(1), so the run measures the
/// discrete-event core itself; `cluster_sim --perf-json` records how
/// fast the driver chews through it in wall clock.
fn cluster_day_point(
    name: &'static str,
    description: &'static str,
    requests: u64,
) -> Scenario {
    let replicas = (0..100)
        .map(|i| {
            ReplicaSpec::new(format!("day-{i:02}"), TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 })
        })
        .collect();
    Scenario {
        name,
        tenants: None,
        description,
        engine: ClusterEngine::colocated(replicas, RouterPolicy::RoundRobin)
            .expect("static fleet is valid"),
        traffic: TrafficSpec {
            requests,
            arrival: ArrivalPattern::ClosedLoop { clients: 1000, think_ms: 8640.0 },
            prompt: LenDist::Uniform { lo: 16, hi: 48 },
            steps: LenDist::Uniform { lo: 2, hi: 6 },
            prefix: PrefixTraffic::None,
            seed: 0xC1A0,
        },
    }
}

/// The headline `cluster-day` scenario: 10M requests over 100 replicas.
fn cluster_day() -> Scenario {
    cluster_day_point(
        "cluster-day",
        "a simulated day of traffic: 10M closed-loop requests (1000 clients) \
         over a 100-replica tiny fleet, round-robin routing",
        10_000_000,
    )
}

/// The CI perf-smoke scenario: `cluster-day` at 1/40 the request count
/// (same fleet, same clients), small enough for every CI run. The
/// perf-smoke check replays it twice for the determinism diff and reads
/// the `--perf-json` sidecar against the committed
/// `requests_per_second` floor.
pub fn cluster_day_smoke() -> Scenario {
    cluster_day_point(
        "cluster-day-smoke",
        "cluster-day at 1/40 scale: 250k closed-loop requests over the same \
         100-replica fleet (CI perf floor + determinism check)",
        250_000,
    )
}

/// The diurnal head-to-head: one elastic group of tiny replicas under a
/// compressed diurnal day. `pinned_at_peak` selects the static baseline —
/// the same hardware held at the elastic band's 6-replica peak size all
/// day — so the pair compares elasticity cost (chip-seconds and joules)
/// at matched traffic. The elastic policy's utilization band is sized
/// from the tiny replica's measured operating curve (~31k rps saturated,
/// steady-state in-flight ≈ 0.6 at light load to ≈ 7 near saturation):
/// target concurrency 4 with the 0.25/0.75 band scales up past ~2/3 of
/// a replica's service rate and down below ~1/5 of it.
fn diurnal_point(
    name: &'static str,
    description: &'static str,
    pinned_at_peak: bool,
) -> Scenario {
    let elastic = GroupPolicy {
        min: 1,
        max: 6,
        initial: 2,
        concurrency: 4,
        scale_up_above: 0.75,
        scale_down_below: 0.25,
        up_cooldown: Seconds::new(0.002),
        down_cooldown: Seconds::new(0.008),
        slo_floor: 0.0,
    };
    let group = if pinned_at_peak {
        GroupPolicy { min: 6, initial: 6, ..elastic }
    } else {
        elastic
    };
    let policy = AutoscalePolicy {
        interval: Seconds::new(0.002),
        provision: Seconds::new(0.002),
        warmup: Seconds::new(0.001),
        ..AutoscalePolicy::new(vec![group])
    };
    Scenario {
        name,
        tenants: None,
        description,
        engine: ClusterEngine::colocated(
            vec![ReplicaSpec::new("diurnal", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 })],
            RouterPolicy::LeastOutstanding,
        )
        .expect("static fleet is valid")
        .with_slo_ms(2.0)
        .with_autoscale(policy),
        traffic: TrafficSpec {
            requests: 30_000,
            arrival: ArrivalPattern::Diurnal {
                peak_rps: 100_000.0,
                day_s: 0.6, // hour_len = 25 ms; ~32k requests per day
                burst_x: 1.5,
                bursts: 1,
            },
            prompt: LenDist::Uniform { lo: 16, hi: 64 },
            steps: LenDist::Uniform { lo: 4, hi: 12 },
            prefix: PrefixTraffic::None,
            seed: 0xC1A0,
        },
    }
}

/// The CI autoscale smoke: a single tiny group allowed to scale to zero
/// (band 0..2) under a bursty compressed day, tuned so the committed
/// seed deterministically produces at least one scale-up, one
/// scale-down, and one scale-to-zero — the events the CI grep asserts.
pub fn smoke_autoscale() -> Scenario {
    let policy = AutoscalePolicy {
        interval: Seconds::new(0.001),
        provision: Seconds::new(0.001),
        warmup: Seconds::new(0.000_5),
        ..AutoscalePolicy::new(vec![GroupPolicy {
            min: 0,
            max: 2,
            initial: 1,
            concurrency: 4,
            scale_up_above: 0.75,
            scale_down_below: 0.25,
            up_cooldown: Seconds::new(0.001),
            down_cooldown: Seconds::new(0.002),
            slo_floor: 0.0,
        }])
    };
    Scenario {
        name: "smoke-autoscale",
        tenants: None,
        description: "bursty compressed day on a scale-to-zero 0..2-replica tiny \
                      group (CI grep: scale-up, scale-down, scale-to-zero)",
        engine: ClusterEngine::colocated(
            vec![ReplicaSpec::new("burst", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 })],
            RouterPolicy::LeastOutstanding,
        )
        .expect("static fleet is valid")
        .with_slo_ms(2.0)
        .with_autoscale(policy),
        traffic: TrafficSpec {
            requests: 3_000,
            arrival: ArrivalPattern::Diurnal {
                peak_rps: 24_000.0,
                day_s: 0.24, // hour_len = 10 ms
                burst_x: 2.0,
                bursts: 1,
            },
            prompt: LenDist::Uniform { lo: 16, hi: 64 },
            steps: LenDist::Uniform { lo: 4, hi: 12 },
            prefix: PrefixTraffic::None,
            seed: 0xC1A0,
        },
    }
}

/// The chaos testbed: two identical tiny replicas behind
/// least-outstanding routing, with the given fault plan installed.
fn chaos_fleet(faults: FaultPlan) -> ClusterEngine {
    ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("chaos-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
            ReplicaSpec::new("chaos-1", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 }),
        ],
        RouterPolicy::LeastOutstanding,
    )
    .expect("static fleet is valid")
    .with_faults(faults)
}

/// Chaos-set traffic: open-loop pressure past the tiny fleet's service
/// rate, so queues build and the fault windows always overlap in-flight
/// work.
fn chaos_traffic() -> TrafficSpec {
    TrafficSpec {
        requests: 48,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
        prompt: LenDist::Uniform { lo: 16, hi: 64 },
        steps: LenDist::Uniform { lo: 8, hi: 16 },
        prefix: PrefixTraffic::None,
        seed: 0xC1A0,
    }
}

/// The shared-vs-cold prefix fleet: two identical Design A replicas
/// behind prefix-affinity routing (each shared head lands where its KV
/// blocks live); `sharing` toggles the replicas' prefix caches and is
/// the only difference between the pair.
fn prefix_fleet(sharing: bool) -> ClusterEngine {
    let memory = if sharing {
        MemoryConfig::unlimited().with_prefix_sharing()
    } else {
        MemoryConfig::unlimited()
    };
    ClusterEngine::colocated(
        vec![
            ReplicaSpec::new("prefix-0", TpuConfig::design_a(), llm_6_7b())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 })
                .with_memory(memory),
            ReplicaSpec::new("prefix-1", TpuConfig::design_a(), llm_6_7b())
                .with_policy(BatchPolicy::Continuous { max_batch: 8 })
                .with_memory(memory),
        ],
        RouterPolicy::PrefixAffinity,
    )
    .expect("static fleet is valid")
}

/// Shared-system-prompt fleet traffic: four 512-token heads across 24
/// medium prompts.
fn cluster_prefix_traffic() -> TrafficSpec {
    TrafficSpec {
        requests: 24,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 6.0 },
        prompt: LenDist::Uniform { lo: 640, hi: 1024 },
        steps: LenDist::Fixed(32),
        prefix: PrefixTraffic::SharedHead { tokens: 512, groups: 4 },
        seed: 0xC1A0,
    }
}

/// The CI smoke scenario: a tiny disaggregated fleet under a tight decode
/// KV budget, so KV handoffs *and* decode admission gating both fire in
/// milliseconds of wall clock. Must report at least one KV transfer — CI
/// asserts it.
pub fn smoke_cluster() -> Scenario {
    Scenario {
        name: "smoke-cluster",
        tenants: None,
        description: "tiny 1-prefill + 1-decode fleet, 4-block decode KV budget \
                      (CI handoff determinism check)",
        engine: ClusterEngine::disaggregated(
            vec![ReplicaSpec::new("prefill-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 })],
            vec![ReplicaSpec::new("decode-0", TpuConfig::tpuv4i(), tiny())
                .with_policy(BatchPolicy::Continuous { max_batch: 4 })
                .with_memory(
                    MemoryConfig::unlimited()
                        .with_budget_bytes(Bytes::from_kib(64))
                        .with_block_tokens(16),
                )],
            RouterPolicy::PassThrough,
            RouterPolicy::PassThrough,
            InterconnectSpec::ici(),
        )
        .expect("static fleet is valid"),
        traffic: TrafficSpec {
            requests: 6,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 20_000.0 },
            prompt: LenDist::Fixed(32),
            steps: LenDist::Fixed(8),
            prefix: PrefixTraffic::None,
            seed: 7,
        },
    }
}

/// Looks a scenario up by name (the headline set plus the smoke check).
///
/// # Errors
///
/// Returns [`Error::UnknownPreset`] for unrecognized names.
pub fn by_name(name: &str) -> Result<Scenario> {
    if name == "smoke-cluster" {
        return Ok(smoke_cluster());
    }
    if name == "cluster-day-smoke" {
        return Ok(cluster_day_smoke());
    }
    if name == "smoke-autoscale" {
        return Ok(smoke_autoscale());
    }
    headline()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| Error::unknown_preset(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_covers_all_scenarios() {
        for s in headline() {
            assert_eq!(by_name(s.name).unwrap().name, s.name);
        }
        assert_eq!(by_name("smoke-cluster").unwrap().name, "smoke-cluster");
        assert_eq!(by_name("cluster-day-smoke").unwrap().name, "cluster-day-smoke");
        assert_eq!(by_name("smoke-autoscale").unwrap().name, "smoke-autoscale");
        assert!(by_name("nope").is_err());
    }

    #[test]
    fn autoscaled_diurnal_beats_the_static_peak_fleet() {
        let auto = by_name("cluster-diurnal-autoscale").unwrap().run(None).unwrap();
        let fixed = by_name("cluster-diurnal-static").unwrap().run(None).unwrap();
        assert_eq!(auto.report.completed, auto.report.offered);
        assert_eq!(fixed.report.completed, fixed.report.offered);
        let a = auto.report.scaling.as_ref().expect("elastic run reports scaling");
        let s = fixed.report.scaling.as_ref().expect("pinned run reports scaling");
        // The elastic fleet breathes with the curve: it grows toward the
        // peak and shrinks back down the evening slope.
        assert!(
            a.scale_ups >= 1 && a.scale_downs >= 1,
            "expected scaling activity, got {} up / {} down",
            a.scale_ups,
            a.scale_downs
        );
        assert!(a.peak_replicas <= 6);
        // The pinned baseline holds 6 replicas all day and never acts.
        assert_eq!(fixed.report.replicas, 6);
        assert_eq!(s.scale_ups + s.scale_downs + s.swaps, 0);
        // The headline acceptance: strictly lower chip-seconds AND joules
        // at matched traffic.
        assert!(
            a.chip_seconds < s.chip_seconds,
            "elastic {:.4} chip-s !< static {:.4} chip-s",
            a.chip_seconds,
            s.chip_seconds
        );
        assert!(
            a.total_cost_j < s.total_cost_j,
            "elastic {:.4} J !< static {:.4} J",
            a.total_cost_j,
            s.total_cost_j
        );
        // SLO violations during provisioning/warmup ramps are bounded:
        // under 1% of the day's traffic.
        assert!(
            a.slo_violations_ramp <= auto.report.offered / 100,
            "{} ramp SLO misses on {} requests",
            a.slo_violations_ramp,
            auto.report.offered
        );
    }

    #[test]
    fn smoke_autoscale_emits_every_event_kind_deterministically() {
        let run = smoke_autoscale().run(None).unwrap();
        let s = run.report.scaling.as_ref().expect("elastic run reports scaling");
        // The three events the CI grep asserts on the report text.
        assert!(s.scale_ups >= 1, "scaling: {s:?}");
        assert!(s.scale_downs >= 1, "scaling: {s:?}");
        assert!(s.scale_to_zero >= 1, "scaling: {s:?}");
        // Scale-to-zero parks arrivals rather than dropping them.
        assert_eq!(run.report.completed, run.report.offered);
        let again = smoke_autoscale().run(None).unwrap();
        assert_eq!(run.report, again.report);
        assert_eq!(run.completions, again.completions);
    }

    #[test]
    fn cluster_day_fleet_completes_everything_deterministically() {
        // The full cluster-day point is a release-binary benchmark; the
        // unit test drives the same 100-replica fleet at a debug-friendly
        // request count.
        let tiny_day = cluster_day_point("day-tiny", "", 2_000);
        let a = tiny_day.run(None).unwrap();
        assert_eq!(a.report.completed, 2_000);
        assert_eq!(a.report.replicas, 100);
        // Round-robin spreads a light closed loop evenly.
        assert!(a.report.imbalance < 1.5, "imbalance {}", a.report.imbalance);
        let b = tiny_day.run(None).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn smoke_cluster_hands_off_kv_deterministically() {
        let a = smoke_cluster().run(None).unwrap();
        let b = smoke_cluster().run(None).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.report.completed, 6);
        // Every request's cache crossed the interconnect.
        assert_eq!(a.report.kv_transfers, 6, "report: {}", a.report);
        assert!(a.report.kv_transfer_bytes > 0);
        assert!(a.report.kv_transfer_s > 0.0);
        assert!(a.report.kv_transfer_energy_j > 0.0);
        // The 4-block decode budget (2.5 worst-case requests) gates
        // admission: decode queue-full time accrues.
        assert!(a.report.queue_full_s > 0.0, "report: {}", a.report);
        // A different seed changes the trace, hence the report.
        let c = smoke_cluster().run(Some(99)).unwrap();
        assert_ne!(a.report, c.report);
    }

    #[test]
    fn cluster_shared_prefix_beats_cold_at_matched_hardware() {
        let shared = by_name("cluster-shared-prefix").unwrap().run(None).unwrap();
        let cold = by_name("cluster-cold-prefix").unwrap().run(None).unwrap();
        // Same fleet, same trace: completions are token-for-token equal.
        assert_eq!(
            shared.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
            cold.completions.iter().map(|c| (c.id, c.steps)).collect::<Vec<_>>(),
        );
        // Affinity routing concentrates each head, so the caches hit.
        assert!(shared.prefix.hits > 0, "prefix stats: {}", shared.prefix);
        assert_eq!(cold.prefix, cimtpu_serving::PrefixStats::default());
        assert!(
            shared.report.ttft.mean_ms < cold.report.ttft.mean_ms,
            "shared TTFT {} ms !< cold {} ms",
            shared.report.ttft.mean_ms,
            cold.report.ttft.mean_ms
        );
        assert!(shared.report.total_energy_j < cold.report.total_energy_j);
        // Deterministic replay.
        let again = by_name("cluster-shared-prefix").unwrap().run(None).unwrap();
        assert_eq!(shared.report, again.report);
        assert_eq!(shared.prefix, again.prefix);
    }

    #[test]
    fn chaos_crash_reports_failures_and_recovers() {
        let run = by_name("cluster-chaos-crash").unwrap().run(None).unwrap();
        let avail =
            run.report.availability.as_ref().expect("fault runs report availability");
        assert!(avail.crashes >= 1, "report: {}", run.report);
        assert!(avail.retries >= 1, "report: {}", run.report);
        assert!(avail.retried_ok >= 1, "report: {}", run.report);
        assert!(avail.availability < 1.0, "report: {}", run.report);
        assert!(avail.downtime_s > 0.0);
        assert_eq!(avail.time_to_recover_s.len(), avail.crashes as usize);
        // Conservation: every offered request is accounted for.
        assert_eq!(
            run.report.completed + avail.shed + avail.timed_out,
            run.report.offered,
            "report: {}",
            run.report
        );
        // Deterministic replay at the default fault seed.
        let again = by_name("cluster-chaos-crash").unwrap().run(None).unwrap();
        assert_eq!(run.report, again.report);
        assert_eq!(run.completions, again.completions);
    }

    #[test]
    fn straggler_window_slows_but_loses_nothing() {
        let faulty = by_name("cluster-straggler").unwrap().run(None).unwrap();
        let clean = Scenario {
            engine: chaos_fleet(FaultPlan::none()),
            ..by_name("cluster-straggler").unwrap()
        }
        .run(None)
        .unwrap();
        let avail = faulty.report.availability.as_ref().unwrap();
        assert_eq!(avail.crashes, 0);
        assert_eq!(avail.shed + avail.timed_out, 0);
        assert_eq!(faulty.report.completed, clean.report.completed);
        // A 4x-slow replica costs wall clock somewhere.
        assert!(
            faulty.report.latency.p99_ms > clean.report.latency.p99_ms,
            "straggler p99 {} ms !> clean {} ms",
            faulty.report.latency.p99_ms,
            clean.report.latency.p99_ms
        );
    }

    #[test]
    fn degraded_link_stretches_transfers() {
        let degraded = by_name("cluster-degraded-link").unwrap().run(None).unwrap();
        let clean = Scenario {
            engine: by_name("cluster-degraded-link").unwrap().engine.with_faults(FaultPlan::none()),
            ..by_name("cluster-degraded-link").unwrap()
        }
        .run(None)
        .unwrap();
        assert_eq!(degraded.report.completed, clean.report.completed);
        assert_eq!(degraded.report.kv_transfers, clean.report.kv_transfers);
        assert_eq!(degraded.report.kv_transfer_bytes, clean.report.kv_transfer_bytes);
        assert!(
            degraded.report.kv_transfer_s > clean.report.kv_transfer_s,
            "degraded transfer time {} s !> clean {} s",
            degraded.report.kv_transfer_s,
            clean.report.kv_transfer_s
        );
        assert!(degraded.report.kv_transfer_energy_j > clean.report.kv_transfer_energy_j);
    }

    #[test]
    fn noisy_neighbor_isolates_the_interactive_tenant() {
        let run = by_name("cluster-noisy-neighbor").unwrap().run(None).unwrap();
        assert_eq!(run.report.completed, run.report.offered);
        let t = run.report.tenants.as_ref().expect("multi-tenant run reports tenants");
        // Equal weights, equal decode tokens per tenant: Jain's index
        // should sit essentially at 1 (CI asserts > 0.9).
        assert!(t.fairness > 0.9, "fairness {}", t.fairness);
        let chat = t.tenants.iter().find(|u| u.name == "chat").unwrap();
        let bulk = t.tenants.iter().find(|u| u.name == "bulk").unwrap();
        // The headline acceptance: interactive SLO attainment under
        // contention, with the batch tenant absorbing every KV eviction.
        assert!(chat.slo_attainment >= 0.95, "chat SLO {}", chat.slo_attainment);
        assert!(bulk.preemptions >= 1, "expected batch preemptions, tenants: {t:?}");
        assert_eq!(chat.preemptions, 0, "interactive tenant was preempted: {t:?}");
        let total: u64 = t.tenants.iter().map(|u| u.preemptions).sum();
        assert_eq!(total, run.report.preemptions, "ledger must conserve preemptions");
        let again = by_name("cluster-noisy-neighbor").unwrap().run(None).unwrap();
        assert_eq!(run.report, again.report);
        assert_eq!(run.completions, again.completions);
    }

    #[test]
    fn launch_spike_completes_deterministically() {
        let run = by_name("cluster-launch-spike").unwrap().run(None).unwrap();
        assert_eq!(run.report.completed, run.report.offered);
        let t = run.report.tenants.as_ref().expect("multi-tenant run reports tenants");
        assert_eq!(t.tenants.len(), 2);
        let launch = t.tenants.iter().find(|u| u.name == "launch").unwrap();
        assert_eq!(launch.completed, 32);
        assert!(launch.slo_attainment >= 0.95, "launch SLO {}", launch.slo_attainment);
        let again = by_name("cluster-launch-spike").unwrap().run(None).unwrap();
        assert_eq!(run.report, again.report);
        // Reseeding moves the merged trace, hence the report.
        let reseeded = by_name("cluster-launch-spike").unwrap().run(Some(7)).unwrap();
        assert_ne!(run.report, reseeded.report);
    }

    #[test]
    fn tenant_overlay_preserves_the_fleet_total() {
        // `--tenants` overlays split the scenario's base traffic across
        // equal-weight tenants; the fleet-level totals must be conserved.
        let base = by_name("hetero-fleet").unwrap();
        let parts = crate::parse_tenants("a=interactive,b=batch").unwrap();
        let split = base.run_tenants(None, &parts).unwrap();
        assert_eq!(split.report.offered, base.traffic.requests);
        assert_eq!(split.report.completed, split.report.offered);
        let t = split.report.tenants.as_ref().expect("overlay reports tenants");
        let done: u64 = t.tenants.iter().map(|u| u.completed).sum();
        assert_eq!(done, split.report.completed);
    }

    #[test]
    fn closed_loop_sweep_saturates() {
        let c2 = closed_loop_point("c2", "", 2).run(None).unwrap();
        let c32 = closed_loop_point("c32", "", 32).run(None).unwrap();
        assert!(
            c32.report.throughput_rps > c2.report.throughput_rps,
            "32 clients {:.1} rps should beat 2 clients {:.1} rps",
            c32.report.throughput_rps,
            c2.report.throughput_rps
        );
        assert!(
            c32.report.latency.p99_ms > c2.report.latency.p99_ms,
            "saturation should cost tail latency"
        );
    }
}
