//! Fleet-level serving simulation driver.
//!
//! ```text
//! cluster_sim [--scenario NAME|all] [--seed N] [--workers N] [--json PATH]
//!             [--kv-budget BUDGET] [--clients N] [--think-ms MS]
//!             [--tenants SPEC] [--trace-in PATH] [--trace-out PATH]
//!             [--fault-seed N] [--faults SPEC] [--autoscale SPEC]
//!             [--perf-json PATH] [--trace PATH] [--trace-filter SPEC]
//!             [--metrics-csv PATH] [--summary]
//! ```
//!
//! Runs the named cluster scenario (default: all headline scenarios) and
//! prints fleet throughput, goodput, latency/TTFT percentiles, KV-handoff
//! traffic, and per-replica utilization. Scenarios are independent, so
//! they fan out over the `cimtpu_bench::sweep` worker pool; `--workers N`
//! overrides the `CIMTPU_WORKERS` environment variable. Output is
//! deterministic for a fixed `--seed`.
//!
//! `--kv-budget BUDGET` overrides every replica's KV budget (both pools
//! of a disaggregated fleet): `unlimited`, `hbm` (HBM minus resident
//! weights), or a byte count with an optional `KiB`/`MiB`/`GiB`/`TiB` suffix —
//! see `cimtpu_serving::parse_kv_budget`. `--clients N` converts the
//! scenario's traffic to closed loop with `N` concurrent clients
//! (`--think-ms` sets their think time; default 10 ms).
//!
//! `--tenants SPEC` splits each scenario's traffic across SLO tenants
//! (comma-separated `name=class[:weight[:slo_ms]]`, grammar in
//! `cimtpu_cluster::parse_tenants`) and serves it tenant-aware:
//! colocated replicas schedule weighted-fair (priority admission,
//! deficit-weighted service, SLO-aware preemption evicting batch-tier
//! residents first), and reports gain a per-tenant section (goodput, SLO
//! attainment, Jain's fairness index). The multi-tenant headline
//! scenarios (`cluster-noisy-neighbor`, `cluster-launch-spike`) carry
//! their own tenant sets, which the flag replaces. Single-tenant output
//! is byte-identical to builds without the flag.
//!
//! `--trace-out PATH` writes each selected scenario's synthesized
//! traffic as a JSONL request trace and exits without simulating
//! (multi-tenant scenarios write their merged, tenant-tagged trace);
//! `--trace-in PATH` replaces each scenario's traffic with the trace at
//! PATH (replayed byte-identically, so `--seed` no longer perturbs
//! arrivals). See `cimtpu_serving::trace` for the format.
//!
//! `--faults SPEC` replaces every selected scenario's fault plan with
//! the comma-separated events in `SPEC` (grammar in
//! `cimtpu_cluster::parse_faults`, e.g.
//! `crash@2s:replica1:repair=5s,link@0s-2s:x0.1`); `--fault-seed N`
//! reseeds the plan, redrawing chaos-generated crashes while explicit
//! events stand. Reports from fault runs carry an extra `availability`
//! section; zero-fault output is byte-identical to builds without these
//! flags.
//!
//! `--autoscale SPEC` installs an autoscale policy on every selected
//! scenario (grammar in `cimtpu_autoscale::parse_autoscale`), making each
//! replica group an elastic pool the reconcile loop sizes to the traffic:
//! comma-separated, case-insensitive knobs `interval=1s` (reconcile
//! cadence), `provision=2s` / `warmup=500ms` (boot cost model),
//! `idle-w=30` (idle watts pricing held-but-idle chips), `replicas=LO..HI`
//! (every group's band; `LO=0` enables scale-to-zero), `group<K>=LO..HI`
//! (one group's band), `init=N` (initial size), `conc=N` (target
//! concurrency per replica), `up=0.75` / `down=0.25` (utilization
//! thresholds), `up-cd=2s` / `down-cd=5s` (cooldowns), `slo-floor=0.9`
//! (rolling-goodput trigger), and `swap` (allow model swaps between
//! groups). Reports gain a `scaling` section; a pinned band
//! (`LO == HI`, no `swap`) reproduces the plain run bit-for-bit plus
//! that section. Elastic policies compose with neither `--faults` /
//! `--fault-seed` nor disaggregated scenarios (typed errors).
//!
//! `--json PATH` additionally writes the full `ClusterReport` list as
//! pretty-printed JSON (`-` writes JSON to stdout instead of the text
//! report). The committed `BENCH_cluster.json` baseline is exactly
//! `cluster_sim --json BENCH_cluster.json`.
//!
//! `--perf-json PATH` also writes one wall-clock [`PerfRecord`] per
//! scenario — how fast the discrete-event driver itself ran on this
//! machine (`requests_per_second`, `steps_per_second` against the host
//! clock). The committed `BENCH_cluster_perf.json` snapshot is
//! `cluster_sim --perf-json BENCH_cluster_perf.json` on the dev box;
//! wall times are machine-dependent, so CI checks a floor on the
//! `cluster-day-smoke` record rather than diffing bytes.
//!
//! `--trace PATH` attaches the `cimtpu-obs` flight recorder and writes a
//! Chrome trace-event JSON file per scenario (load it in Perfetto or
//! `chrome://tracing`; with several scenarios selected, the scenario
//! name is inserted before the extension). One track per replica slot
//! plus one per control plane; `--trace-filter crash,retry,...` keeps
//! only the named event kinds. `--metrics-csv PATH` writes the
//! downsampled gauge series (`scenario,series,t_s,value` rows), and
//! traced runs gain a `timeseries` section in the `--json` report.
//! Traces are keyed by simulated time, so a fixed `--seed` reproduces
//! them byte-for-byte; recorder-off output is byte-identical to builds
//! without these flags. Traced scenarios run sequentially (the recorder
//! is single-threaded state); leave these flags off for perf runs.
//!
//! `--summary` prints a one-screen table — one row per scenario with
//! goodput, availability, scaling-action counts, and latency
//! percentiles — instead of the full per-replica reports.

use std::cell::RefCell;
use std::rc::Rc;

use cimtpu_bench::sweep;
use cimtpu_cluster::scenario::{self, Scenario};
use cimtpu_cluster::{
    parse_faults, parse_autoscale, parse_tenants, ClusterReport, ClusterTopology, FaultPlan,
    PerfRecord, Recorder, SharedRecorder, TenantSet, TraceFilter,
};
use cimtpu_serving::cli::{self, SimFlags};
use cimtpu_serving::ArrivalPattern;

/// The `--summary` one-screen table: one row per scenario with goodput,
/// availability, scaling-action counts, and latency percentiles.
fn print_summary(reports: &[ClusterReport]) {
    println!(
        "{:<26} {:>9} {:>9} {:>13} {:>10} {:>10} {:>6}  scale(+/-/0/swap)",
        "scenario", "offered", "done", "goodput_rps", "p50_ms", "p99_ms", "avail"
    );
    for r in reports {
        let avail = r
            .availability
            .as_ref()
            .map_or_else(|| "-".to_owned(), |a| format!("{:.3}", a.availability));
        let scaling = r.scaling.as_ref().map_or_else(
            || "-".to_owned(),
            |s| format!("{}/{}/{}/{}", s.scale_ups, s.scale_downs, s.scale_to_zero, s.swaps),
        );
        println!(
            "{:<26} {:>9} {:>9} {:>13.2} {:>10.3} {:>10.3} {:>6}  {}",
            r.label,
            r.offered,
            r.completed,
            r.goodput_rps,
            r.latency.p50_ms,
            r.latency.p99_ms,
            avail,
            scaling
        );
    }
}

fn main() {
    let flags = match SimFlags::parse("cluster_sim", "every replica's", true, || {
        for s in scenario::headline() {
            println!("  {:<22} {}", s.name, s.description);
        }
        let smoke = [
            scenario::smoke_cluster(),
            scenario::cluster_day_smoke(),
            scenario::smoke_autoscale(),
        ];
        for s in smoke {
            println!("  {:<22} {}", s.name, s.description);
        }
    }) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("cluster_sim: {e}");
            std::process::exit(2);
        }
    };

    let mut scenarios: Vec<Scenario> = if flags.scenario == "all" {
        scenario::headline()
    } else {
        match scenario::by_name(&flags.scenario) {
            Ok(s) => vec![s],
            Err(e) => {
                eprintln!("cluster_sim: {e}");
                std::process::exit(2);
            }
        }
    };
    // `--faults` replaces each scenario's plan with the given explicit
    // events; `--fault-seed` then reseeds whatever plan is in place
    // (redrawing chaos-generated crashes, leaving explicit events alone).
    let cli_events = flags.faults.as_deref().map(|spec| match parse_faults(spec) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("cluster_sim: {e}");
            std::process::exit(2);
        }
    });
    // `--autoscale` parses once; the per-group policy expansion happens
    // per scenario, since each fleet has its own group count.
    let cli_autoscale = flags.autoscale.as_deref().map(|spec| match parse_autoscale(spec) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("cluster_sim: {e}");
            std::process::exit(2);
        }
    });
    for s in &mut scenarios {
        if let Some(budget) = flags.kv_budget {
            s.engine = s.engine.clone().with_kv_budget(budget);
        }
        if let Some(clients) = flags.clients {
            s.traffic.arrival =
                ArrivalPattern::ClosedLoop { clients, think_ms: flags.think_ms };
        }
        if let Some(events) = &cli_events {
            s.engine =
                s.engine.clone().with_faults(FaultPlan::none().with_events(events.clone()));
        }
        if let Some(seed) = flags.fault_seed {
            let reseeded = s.engine.faults().clone().with_seed(seed);
            s.engine = s.engine.clone().with_faults(reseeded);
        }
        if let Some(spec) = &cli_autoscale {
            let ngroups = match s.engine.topology() {
                ClusterTopology::Colocated { replicas, .. } => replicas.len(),
                ClusterTopology::Disaggregated { prefill, decode, .. } => {
                    prefill.len() + decode.len()
                }
            };
            match spec.policy_for(ngroups) {
                Ok(policy) => s.engine = s.engine.clone().with_autoscale(policy),
                Err(e) => {
                    eprintln!("cluster_sim: {}: {e}", s.name);
                    std::process::exit(2);
                }
            }
        }
    }

    // `--trace-in` replaces each scenario's traffic wholesale (the trace
    // carries arrivals, lengths, sessions, tenants, and classes), so it
    // composes with neither `--clients` nor `--seed` reseeding — and it
    // clears scenario tenant sets (a replayed trace is served as-is).
    if let Some(path) = flags.trace_in.as_deref() {
        let replay = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|text| {
                cimtpu_serving::parse_jsonl(&text)
                    .and_then(cimtpu_serving::replay_spec)
                    .map_err(|e| e.to_string())
            });
        match replay {
            Ok(spec) => {
                for s in &mut scenarios {
                    s.traffic = spec.clone();
                    s.tenants = None;
                }
            }
            Err(e) => {
                eprintln!("cluster_sim: {e}");
                std::process::exit(2);
            }
        }
    }
    let seed = flags.seed;
    // `--trace-out` is the seeded synthesis tool: write each scenario's
    // materialized traffic (the merged tenant-tagged trace for
    // multi-tenant scenarios) as a JSONL trace and exit without
    // simulating.
    if let Some(path) = flags.trace_out.as_deref() {
        let mut traffics: Vec<(&str, cimtpu_serving::TrafficSpec)> = Vec::new();
        for s in &scenarios {
            let spec = match (&s.tenants, seed) {
                (Some(set), Some(seed)) => set.with_seed(seed).merged_spec(),
                (Some(set), None) => set.merged_spec(),
                (None, _) => {
                    let mut traffic = s.traffic.clone();
                    if let Some(seed) = seed {
                        traffic.seed = seed;
                    }
                    Ok(traffic)
                }
            };
            match spec {
                Ok(spec) => traffics.push((s.name, spec)),
                Err(e) => {
                    eprintln!("cluster_sim: {}: {e}", s.name);
                    std::process::exit(2);
                }
            }
        }
        if cli::emit_traces("cluster_sim", path, &traffics) {
            std::process::exit(1);
        }
        return;
    }
    // `--tenants` overlays each scenario's base traffic across the given
    // SLO tiers (replacing any scenario-carried tenant set); the run path
    // reseeds every tenant's stream under `--seed`.
    match flags.tenants.as_deref() {
        None => {}
        Some(_) if flags.trace_in.is_some() => {
            // The trace records already carry tenant assignments; there
            // is no base traffic left to split.
            eprintln!("cluster_sim: --tenants cannot be combined with --trace-in");
            std::process::exit(2);
        }
        Some(spec) => {
            let parts = match parse_tenants(spec) {
                Ok(parts) => parts,
                Err(e) => {
                    eprintln!("cluster_sim: {e}");
                    std::process::exit(2);
                }
            };
            for s in &mut scenarios {
                match TenantSet::overlay(&s.traffic, &parts) {
                    Ok(set) => s.tenants = Some(set),
                    Err(e) => {
                        eprintln!("cluster_sim: {}: {e}", s.name);
                        std::process::exit(2);
                    }
                }
            }
        }
    }

    let filter = match flags.trace_filter.as_deref() {
        None => TraceFilter::default(),
        Some(spec) => match TraceFilter::parse(spec) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cluster_sim: bad --trace-filter: {e}");
                std::process::exit(2);
            }
        },
    };

    let observing = flags.trace.is_some() || flags.metrics_csv.is_some();
    let mut failed = false;
    let mut csv = String::new();
    // Traced runs attach an `Rc`-shared recorder, which is not `Send`:
    // they run sequentially, exporting each scenario's trace/CSV on the
    // spot. The untraced path keeps the worker-pool fan-out below —
    // scenarios are independent simulations that return in scenario
    // order, so output is stable, and each worker clocks its own
    // scenario so the wall times feeding `--perf-json` are per-run
    // driver times even under the fan-out.
    let results: Vec<_> = if observing {
        scenarios
            .iter()
            .map(|s| {
                let start = std::time::Instant::now();
                let rec: SharedRecorder = Rc::new(RefCell::new(Recorder::new()));
                let result = s.run_observed(seed, Some(&rec)).map(|mut run| {
                    let rec = rec.borrow();
                    run.report.timeseries = Some(rec.timeseries());
                    if let Some(base) = flags.trace.as_deref() {
                        let path = if scenarios.len() > 1 {
                            cli::per_scenario_path(base, s.name)
                        } else {
                            base.to_owned()
                        };
                        if let Err(e) = std::fs::write(&path, rec.to_chrome_json(&filter)) {
                            eprintln!("cluster_sim: writing {path}: {e}");
                            failed = true;
                        }
                    }
                    if flags.metrics_csv.is_some() {
                        let body = rec.metrics_csv(s.name);
                        // One header for the whole file: strip it from
                        // every scenario after the first.
                        if csv.is_empty() {
                            csv.push_str(&body);
                        } else if let Some((_, rows)) = body.split_once('\n') {
                            csv.push_str(rows);
                        }
                    }
                    run
                });
                (result, start.elapsed().as_secs_f64())
            })
            .collect()
    } else {
        sweep::parallel_map(&scenarios, |s| {
            let start = std::time::Instant::now();
            (s.run(seed), start.elapsed().as_secs_f64())
        })
    };
    if let Some(path) = flags.metrics_csv.as_deref() {
        if let Err(e) = std::fs::write(path, &csv) {
            eprintln!("cluster_sim: writing {path}: {e}");
            failed = true;
        }
    }

    let mut reports: Vec<ClusterReport> = Vec::new();
    let mut perf: Vec<PerfRecord> = Vec::new();
    let mut prefix_lines: Vec<(&str, cimtpu_serving::PrefixStats)> = Vec::new();
    for (s, (result, wall_s)) in scenarios.iter().zip(results) {
        match result {
            Ok(run) => {
                if run.prefix.lookups > 0 {
                    prefix_lines.push((s.name, run.prefix));
                }
                perf.push(PerfRecord::measure(
                    s.name,
                    run.report.offered,
                    &run.completions,
                    wall_s,
                ));
                reports.push(run.report);
            }
            Err(e) => {
                eprintln!("{}: {e}", s.name);
                failed = true;
            }
        }
    }

    if flags.summary && flags.json.as_deref() != Some("-") {
        // One row per scenario instead of the full per-replica reports;
        // `--json PATH` still writes the complete report list.
        if let Some(path) = flags.json.as_deref() {
            let payload =
                serde_json::to_string_pretty(&reports).expect("reports serialize");
            if let Err(e) = std::fs::write(path, payload + "\n") {
                eprintln!("cluster_sim: writing {path}: {e}");
                failed = true;
            }
        }
        print_summary(&reports);
    } else {
        failed |= cli::emit_reports("cluster_sim", &reports, flags.json.as_deref());
    }
    // Wall-clock throughput goes to its own sidecar: the numbers are
    // machine-dependent, so they must never leak into the byte-diffed
    // `--json` baseline.
    if let Some(path) = flags.perf_json.as_deref() {
        let payload = serde_json::to_string_pretty(&perf).expect("perf records serialize");
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("cluster_sim: writing {path}: {e}");
            failed = true;
        }
    }
    // Prefix-sharing fleets append their cache counters (absent when
    // sharing is off, keeping default output and the JSON shape
    // unchanged).
    cli::emit_prefix_stats(&prefix_lines, flags.json.as_deref());
    if failed {
        std::process::exit(1);
    }
}
