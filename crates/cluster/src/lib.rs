//! Cluster-scale serving simulation: fleets of serving engines behind a
//! router, with optional disaggregated prefill/decode.
//!
//! The `cimtpu-serving` crate prices one engine — one chip group, one
//! model, one batching policy. Production serving is a *fleet* problem:
//! heterogeneous replicas, request routing, closed-loop client
//! populations, and (since DistServe/Splitwise) pipelines where prefill
//! and decode run on different machines with the KV cache migrating
//! between them. This crate composes those out of the existing layers.
//!
//! # Topology
//!
//! ```text
//!                       ┌────────────────────────────────────────────┐
//!   TrafficSpec ──────► │ Router (round-robin / least-outstanding /  │
//!   (open / closed      │  least-KV / session- / prefix-affinity)    │
//!    loop, seeded)      └───────┬──────────────┬─────────────────────┘
//!                               │              │
//!                     Colocated │              │ Disaggregated
//!                               ▼              ▼
//!              ┌─ replica 0: EngineCore ┐   ┌─ prefill pool ─┐
//!              ├─ replica 1: EngineCore ┤   │ FCFS prompt    │
//!              ├─ replica 2: EngineCore ┤   │ ingestion      │
//!              └─ ... (any chip, model, ┘   └───────┬────────┘
//!                 policy, KV budget mix)            │ KV handoff:
//!                                                   │ paged blocks over
//!                                                   │ InterconnectSpec
//!                                                   ▼
//!                                            ┌─ decode pool ──┐
//!                                            │ continuous     │
//!                                            │ decode, paged  │
//!                                            │ KV admission   │
//!                                            └────────────────┘
//! ```
//!
//! **Colocated** fleets run one incremental
//! [`EngineCore`](cimtpu_serving::EngineCore) per [`ReplicaSpec`] — each
//! with its own chip config, model, batching policy, and KV budget — and
//! interleave them through the shared
//! [`drive`](cimtpu_serving::drive) event loop. The [`Router`] sees a
//! [`ReplicaSnapshot`] per replica at every arrival instant (outstanding
//! work, queue depth, live KV occupancy) and picks the target; see the
//! [`router`] module docs for the full trait contract. A 1-replica
//! colocated cluster with the [`RouterPolicy::PassThrough`] router
//! reproduces the corresponding single-engine
//! [`ServingReport`](cimtpu_serving::ServingReport) **bit-for-bit** —
//! the equivalence anchor the test suite pins for every batching policy
//! and both open- and closed-loop traffic.
//!
//! **Disaggregated** fleets split the pipeline: a prefill pool ingests
//! prompts FCFS, the finished prompt's paged KV cache migrates over an
//! [`InterconnectSpec`] (block-aligned
//! [`handoff_bytes`](cimtpu_kv::KvFootprint::handoff_bytes), serialized
//! per egress link, priced in seconds *and* joules), and a second router
//! places each handoff on a decode replica whose paged allocator gates
//! admission. See the [`disagg`] module docs for the full cost model.
//!
//! # Traffic
//!
//! Both topologies accept every
//! [`TrafficSpec`](cimtpu_serving::TrafficSpec) arrival pattern,
//! including closed-loop client populations — completions anywhere in
//! the fleet schedule that client's next arrival, so saturation studies
//! (throughput and latency versus client count) run fleet-wide.
//!
//! # Multi-tenancy
//!
//! [`ClusterEngine::run_tenants`] serves a [`TenantSet`] — named tenants
//! with [`SloClass`] tiers, weights, and their own open-loop traffic —
//! merged into one deterministic trace. Colocated replicas arm each
//! [`EngineCore`](cimtpu_serving::EngineCore)'s weighted-fair scheduler
//! (priority admission, deficit-weighted service, SLO-aware preemption
//! that evicts batch-tier residents first); the
//! [`RouterPolicy::SloAware`] router reads per-class outstanding splits
//! from the [`ReplicaSnapshot`]s. Disaggregated pools keep tenancy at
//! the traffic and report level (the FCFS/continuous pools schedule
//! tenant-blind). Reports gain a `tenants` section — per-tenant goodput,
//! SLO attainment, preemptions, and Jain's fairness index — and
//! single-tenant runs stay byte-identical with the section omitted.
//!
//! # Faults
//!
//! The [`fault`] module injects failures into either topology: replica
//! crashes (in-flight work and KV/prefix state lost, cold restart after
//! repair), straggler windows (multiplicative step-latency slowdown on
//! colocated replicas), and degraded interconnect windows (bandwidth /
//! energy multipliers on the disaggregated handoff link). A
//! [`FaultPlan`] combines explicit events with seeded [`ChaosSpec`]
//! draws from an RNG stream separate from the traffic's, so reseeding
//! faults never perturbs arrivals — and an *empty* plan dispatches to
//! the unchanged zero-fault drivers, keeping today's runs bit-for-bit.
//! The failure-aware drivers route around down replicas via a
//! [`HealthView`], retry lost requests with capped exponential backoff
//! under a per-request budget and deadline, and report an
//! [`AvailabilityStats`] section (crashes, downtime, retries, shed /
//! timed-out work, time-to-recover) on the [`ClusterReport`].
//!
//! # Autoscaling
//!
//! [`ClusterEngine::with_autoscale`] installs an
//! [`AutoscalePolicy`]: each
//! [`ReplicaSpec`] becomes an elastic group of up to `max` slots that a
//! deterministic reconcile loop grows and
//! shrinks on a fixed interval of the simulated clock — scale-ups pay a
//! provisioning delay plus warmup before turning `Up` in the
//! [`HealthView`], scale-downs drain in-flight work, groups with
//! `min == 0` scale to zero and park arrivals until woken, and model
//! swaps repurpose capacity between groups under skewed traffic. The
//! report gains a `scaling` section (action log, ramp SLO violations,
//! chip-seconds and joules) so an elastic run compares head-to-head
//! with a peak-sized static fleet. A **pinned** policy (`min == max`
//! everywhere, no swaps) expands the fleet and reuses the plain drivers
//! bit-identically.
//!
//! # Observability
//!
//! [`ClusterEngine::run_observed`] (and
//! [`Scenario::run_observed`](scenario::Scenario::run_observed)) accept
//! an optional [`SharedRecorder`] — the `cimtpu-obs` flight recorder.
//! When attached, every driver emits typed lifecycle events (arrival →
//! queue → prefill → KV handoff → decode → complete, plus preempt /
//! retry / shed / timeout / park) and fleet events (crash, repair,
//! straggler windows, scale actions, reconcile ticks) keyed by
//! simulated time, onto one track per replica slot plus a control
//! track. The recorder exports a Chrome trace-event JSON
//! (Perfetto-loadable, via [`Recorder::to_chrome_json`] with a
//! [`TraceFilter`]), streaming log-bucketed latency/TTFT histograms and
//! downsampled gauge series ([`TimeseriesStats`], surfaced as the
//! report's optional `timeseries` section), and a gauge CSV. Traces are
//! a pure function of the simulated run: same seed, same bytes. Passing
//! `None` dispatches to code paths with no recording overhead and
//! byte-identical reports.
//!
//! # Reports
//!
//! A [`ClusterRun`] carries the fleet [`ClusterReport`] (p50/p95/p99
//! latency and TTFT, throughput and SLO-goodput, energy, KV-transfer
//! volume/time/energy, per-replica utilization rows and an imbalance
//! ratio) plus per-replica `ServingReport`s for colocated fleets. The
//! `cluster_sim` binary runs the headline scenarios and writes
//! `BENCH_cluster.json`, which CI diffs against the committed baseline.
//!
//! # Example
//!
//! ```
//! use cimtpu_cluster::{ClusterEngine, ReplicaSpec, RouterPolicy};
//! use cimtpu_core::TpuConfig;
//! use cimtpu_models::TransformerConfig;
//! use cimtpu_serving::{ArrivalPattern, LenDist, PrefixTraffic, ServingModel, TrafficSpec};
//!
//! let tiny = TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024)?;
//! let fleet = ClusterEngine::colocated(
//!     vec![
//!         ReplicaSpec::new("a", TpuConfig::tpuv4i(), ServingModel::Llm(tiny.clone())),
//!         ReplicaSpec::new("b", TpuConfig::design_a(), ServingModel::Llm(tiny)),
//!     ],
//!     RouterPolicy::LeastOutstanding,
//! )?;
//! let run = fleet.run(
//!     "quickstart",
//!     &TrafficSpec {
//!         requests: 8,
//!         arrival: ArrivalPattern::ClosedLoop { clients: 4, think_ms: 5.0 },
//!         prompt: LenDist::Fixed(32),
//!         steps: LenDist::Fixed(4),
//!         prefix: PrefixTraffic::None,
//!         seed: 1,
//!     },
//! )?;
//! assert_eq!(run.report.completed, 8);
//! assert_eq!(run.report.per_replica.len(), 2);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disagg;
mod elastic;
mod engine;
pub mod fault;
mod replica;
mod report;
pub mod router;
pub mod scenario;

pub use cimtpu_autoscale::{
    parse_autoscale, AutoscalePolicy, AutoscaleSpec, GroupPolicy, ScalingAction, ScalingStats,
};
pub use cimtpu_obs::{
    EventKind, Recorder, SharedRecorder, TimeseriesStats, TraceFilter, TraceHandle,
};
pub use disagg::InterconnectSpec;
pub use engine::{ClusterEngine, ClusterRun, ClusterTopology};
pub use fault::{
    parse_faults, AvailabilityStats, ChaosSpec, FaultEvent, FaultPlan, RecoveryPolicy,
};
pub use cimtpu_serving::{
    parse_tenants, SloClass, TenantPart, TenantReport, TenantSet, TenantSpec, TenantUsage,
};
pub use replica::ReplicaSpec;
pub use report::{ClusterReport, KvTransferStats, PerfRecord, ReplicaUtilization};
pub use router::{HealthView, ReplicaHealth, ReplicaSnapshot, Router, RouterPolicy};
