//! The result of mapping one GEMM onto the hardware.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bytes, GemmShape, Seconds};

/// A chosen tiling with its cost breakdown.
///
/// Produced by [`Mapper::best_gemm_mapping`](crate::Mapper::best_gemm_mapping).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    shape: GemmShape,
    tile: GemmShape,
    tiles: u64,
    compute: Seconds,
    dma: Seconds,
    total: Seconds,
    hbm_bytes: Bytes,
}

impl Mapping {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shape: GemmShape,
        tile: GemmShape,
        tiles: u64,
        compute: Seconds,
        dma: Seconds,
        total: Seconds,
        hbm_bytes: Bytes,
    ) -> Self {
        Mapping { shape, tile, tiles, compute, dma, total, hbm_bytes }
    }

    /// The full GEMM being mapped.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// The chosen buffer-level tile.
    pub fn tile(&self) -> GemmShape {
        self.tile
    }

    /// Number of tiles executed.
    pub fn tiles(&self) -> u64 {
        self.tiles
    }

    /// Aggregate engine-compute time across tiles (no overlap applied).
    pub fn compute(&self) -> Seconds {
        self.compute
    }

    /// Aggregate DMA time across tiles (no overlap applied).
    pub fn dma(&self) -> Seconds {
        self.dma
    }

    /// Scheduled end-to-end latency with overlap applied.
    pub fn total(&self) -> Seconds {
        self.total
    }

    /// Unique bytes streamed from main memory.
    pub fn hbm_bytes(&self) -> Bytes {
        self.hbm_bytes
    }

    /// Whether the schedule is limited by DMA rather than compute.
    pub fn is_memory_bound(&self) -> bool {
        self.dma > self.compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_classification() {
        let shape = GemmShape::new(1, 2, 3).unwrap();
        let m = Mapping::new(
            shape,
            shape,
            1,
            Seconds::new(1.0),
            Seconds::new(2.0),
            Seconds::new(2.0),
            Bytes::new(6),
        );
        assert!(m.is_memory_bound());
    }
}
