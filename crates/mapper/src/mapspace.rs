//! Map-space enumeration with LLMCompass/Timeloop-style pruning heuristics.
//!
//! Two entry points exist:
//!
//! - [`candidate_tiles`] materializes the pruned space into a `Vec` (the
//!   original API, used by map-space studies and tests);
//! - [`for_each_candidate`] is the allocation-free fast path used by the
//!   mapper's search loop: it streams candidates through a closure,
//!   reusing caller-owned [`EdgeBuffers`] for the per-dimension edge
//!   lists, so a `best_gemm_mapping` call performs no per-call heap
//!   allocation once the buffers are warm.

use cimtpu_units::{Bytes, DataType, GemmShape};

/// Reusable scratch for the per-dimension edge-candidate lists.
///
/// The three vectors are cleared and refilled on every enumeration; keeping
/// them alive across calls (the [`Mapper`](crate::Mapper) owns one set)
/// avoids three heap allocations per mapped GEMM on the simulator hot path.
#[derive(Debug, Clone, Default)]
pub struct EdgeBuffers {
    m: Vec<u64>,
    k: Vec<u64>,
    n: Vec<u64>,
}

/// Enumerates candidate `(tm, tk, tn)` tiles for `shape` that fit `budget`.
///
/// Heuristics (each dramatically shrinks the space without excluding the
/// optimum for dense GEMMs, mirroring prior work):
///
/// 1. tile edges are powers of two, snapped to multiples of the engine's
///    preferred granularity (`pref_k` rows / `pref_n` columns) when larger;
/// 2. the full dimension is always a candidate (no pointless remainders);
/// 3. working set `(tm·tk + tk·tn + tm·tn) · elem` must fit `budget`
///    (the caller already halves the budget for double buffering);
/// 4. degenerate tiles that would leave the engine's contraction dimension
///    mostly idle are dropped when a larger-k candidate exists.
///
/// The returned list is never empty unless even the minimal
/// `(1, pref_k.min(k), pref_n.min(n))` tile exceeds the budget.
pub fn candidate_tiles(
    shape: GemmShape,
    dtype: DataType,
    pref_k: u64,
    pref_n: u64,
    budget: Bytes,
) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    let mut scratch = EdgeBuffers::default();
    for_each_candidate(shape, dtype, pref_k, pref_n, budget, false, &mut scratch, |tile| {
        out.push(tile);
    });
    out
}

/// Streams the pruned candidate tiles of [`candidate_tiles`] through `f`
/// without materializing them, reusing `scratch` for the edge lists.
///
/// Candidates arrive in the same order `candidate_tiles` returns them:
/// `(tk, tn)` pairs largest-first, each with its largest feasible `tm`.
///
/// `prune_dominated` additionally drops `(tk, tn)` candidates that share
/// their `(⌈k/tk⌉, ⌈n/tn⌉)` tile counts with a smaller candidate: at
/// equal tile counts the aggregate DMA is identical while per-tile
/// compute (a [monotone](crate::TileCostModel::tile_cycles) cost) and the
/// double-buffering prologue (strictly increasing in the tile footprint)
/// only favor the smaller edges, so the smallest member of each class
/// strictly dominates the rest. The strict prologue inequality is what
/// makes the pruned stream's first-minimal winner identical to the full
/// stream's — only enable it for double-buffered schedules (without the
/// prologue, a dominated candidate can tie and win the index tie-break).
#[allow(clippy::too_many_arguments)] // mirrors candidate_tiles + the flag
pub fn for_each_candidate(
    shape: GemmShape,
    dtype: DataType,
    pref_k: u64,
    pref_n: u64,
    budget: Bytes,
    prune_dominated: bool,
    scratch: &mut EdgeBuffers,
    mut f: impl FnMut((u64, u64, u64)),
) {
    let elem = dtype.size_bytes();
    let fits = |tm: u64, tk: u64, tn: u64| -> bool {
        // Accumulators are FP32 regardless of operand width.
        let bytes = (tm * tk + tk * tn) * elem + tm * tn * 4;
        bytes <= budget.get()
    };

    edge_candidates_into(shape.m(), 1, &mut scratch.m);
    edge_candidates_into(shape.k(), pref_k, &mut scratch.k);
    edge_candidates_into(shape.n(), pref_n, &mut scratch.n);
    if prune_dominated {
        prune_equal_ceil(shape.k(), &mut scratch.k);
        prune_equal_ceil(shape.n(), &mut scratch.n);
    }

    for &tk in &scratch.k {
        for &tn in &scratch.n {
            // Heuristic 4: prefer covering K fully when possible — partial-K
            // tiles force extra partial-sum passes.
            for &tm in &scratch.m {
                if fits(tm, tk, tn) {
                    f((tm, tk, tn));
                    break; // larger tm always dominates smaller at same (tk, tn)
                }
            }
        }
    }
}

/// Power-of-two candidates for one dimension, largest first, snapped to
/// `pref` multiples above `pref`, always including the full extent.
///
/// Uniqueness comes from one sort + dedup pass instead of a linear
/// `contains` probe per insertion (the previous O(n²) hot spot).
fn edge_candidates_into(extent: u64, pref: u64, out: &mut Vec<u64>) {
    out.clear();
    out.push(extent);
    let mut v = extent.next_power_of_two();
    while v >= 1 {
        let c = v.min(extent);
        let snapped = if c > pref { c - (c % pref.max(1)) } else { c };
        if snapped >= 1 {
            out.push(snapped);
        }
        if v == 1 {
            break;
        }
        v /= 2;
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out.dedup();
    // Cap the candidate count (map-space pruning) while always keeping the
    // degenerate size-1 tile so tiny budgets stay mappable. The list is
    // sorted descending and unique, so 1 (when present) is the last
    // element; truncation can only drop it.
    if out.len() > 16 {
        out.truncate(15);
        out.push(1);
    }
}

/// Keeps only the smallest candidate of each equal-`⌈extent/edge⌉` run
/// (the list is sorted descending, so that is the last element of the
/// run). Feasibility is preserved: the kept edge has the smallest
/// footprint of its class, so it fits whenever any class member did.
fn prune_equal_ceil(extent: u64, out: &mut Vec<u64>) {
    let mut w = 0;
    for i in 0..out.len() {
        if i + 1 == out.len() || extent.div_ceil(out[i]) != extent.div_ceil(out[i + 1]) {
            out[w] = out[i];
            w += 1;
        }
    }
    out.truncate(w);
}

#[cfg(test)]
fn edge_candidates(extent: u64, pref: u64) -> Vec<u64> {
    let mut out = Vec::new();
    edge_candidates_into(extent, pref, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_extent_always_first_candidate() {
        let c = edge_candidates(7168, 128);
        assert_eq!(c[0], 7168);
        assert!(c.iter().all(|&x| (1..=7168).contains(&x)));
    }

    #[test]
    fn candidates_fit_budget() {
        let shape = GemmShape::new(8192, 7168, 7168).unwrap();
        let budget = Bytes::from_mib(8);
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, budget);
        assert!(!tiles.is_empty());
        for (tm, tk, tn) in tiles {
            let bytes = (tm * tk + tk * tn) + tm * tn * 4;
            assert!(bytes <= budget.get(), "({tm},{tk},{tn}) exceeds budget");
        }
    }

    #[test]
    fn tiny_budget_yields_empty() {
        // The minimal (1,1,1) tile needs 2 operand bytes + 4 accumulator
        // bytes; anything below that is unmappable.
        let shape = GemmShape::new(4096, 4096, 4096).unwrap();
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::new(5));
        assert!(tiles.is_empty());
        // 6 bytes is enough for the degenerate tile.
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::new(6));
        assert!(!tiles.is_empty());
    }

    #[test]
    fn small_shapes_single_tile() {
        let shape = GemmShape::new(8, 128, 128).unwrap();
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::from_mib(8));
        assert!(tiles.contains(&(8, 128, 128)));
    }

    #[test]
    fn candidates_are_deduplicated_and_sorted() {
        for (extent, pref) in [(128, 128), (7168, 128), (10_000, 256), (1, 64), (65, 1)] {
            let c = edge_candidates(extent, pref);
            let mut unique = c.clone();
            unique.dedup();
            assert_eq!(c.len(), unique.len(), "duplicates for extent {extent}");
            assert!(
                c.windows(2).all(|w| w[0] > w[1]),
                "not strictly descending for extent {extent}: {c:?}"
            );
        }
    }

    #[test]
    fn cap_preserves_size_one_tile() {
        // A prime-ish large extent with pref 1 produces > 16 candidates;
        // the cap must keep the degenerate size-1 tile mappable.
        let c = edge_candidates((1 << 40) - 1, 1);
        assert!(c.len() <= 16, "{}", c.len());
        assert_eq!(*c.last().unwrap(), 1);
    }

    #[test]
    fn snapping_respects_preference() {
        // Above pref, candidates are multiples of pref.
        for &x in edge_candidates(10_000, 256).iter() {
            if x > 256 && x != 10_000 {
                assert_eq!(x % 256, 0, "{x} not snapped");
            }
        }
    }

    #[test]
    fn streaming_path_matches_materialized_path() {
        let mut scratch = EdgeBuffers::default();
        for (m, k, n) in [(1, 7168, 7168), (8192, 7168, 28672), (13, 1000, 999), (8, 128, 128)] {
            let shape = GemmShape::new(m, k, n).unwrap();
            let budget = Bytes::from_mib(8);
            let vec_path = candidate_tiles(shape, DataType::Int8, 128, 128, budget);
            let mut streamed = Vec::new();
            for_each_candidate(shape, DataType::Int8, 128, 128, budget, false, &mut scratch, |t| {
                streamed.push(t);
            });
            assert_eq!(vec_path, streamed, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prune_keeps_smallest_of_each_ceil_class() {
        // Extent 1000: 896 and 512 both tile as ⌈1000/·⌉ = 2; only the
        // smaller survives. The full extent (ceil 1) is its own class.
        let mut v = vec![1000, 896, 512, 256, 128, 1];
        prune_equal_ceil(1000, &mut v);
        assert_eq!(v, vec![1000, 512, 256, 128, 1]);
        // Singleton runs survive untouched.
        let mut v = vec![64, 32, 16];
        prune_equal_ceil(64, &mut v);
        assert_eq!(v, vec![64, 32, 16]);
        // The full extent (ceil 1) is always its own class.
        let mut v = vec![128, 127];
        prune_equal_ceil(128, &mut v);
        assert_eq!(v, vec![128, 127]);
    }

    #[test]
    fn pruned_stream_is_a_subset_with_equal_ceil_coverage() {
        let mut scratch = EdgeBuffers::default();
        for (m, k, n) in [(1, 7168, 7168), (8192, 7168, 28672), (13, 1000, 999)] {
            let shape = GemmShape::new(m, k, n).unwrap();
            let budget = Bytes::from_mib(8);
            let full = candidate_tiles(shape, DataType::Int8, 128, 128, budget);
            let mut pruned = Vec::new();
            for_each_candidate(shape, DataType::Int8, 128, 128, budget, true, &mut scratch, |t| {
                pruned.push(t);
            });
            assert!(!pruned.is_empty());
            assert!(pruned.iter().all(|t| full.contains(t)), "{m}x{k}x{n}: not a subset");
            // Every (⌈k/tk⌉, ⌈n/tn⌉) class of the full space stays
            // represented (by its smallest member or a feasible stand-in).
            for &(_, tk, tn) in &full {
                let class = (k.div_ceil(tk), n.div_ceil(tn));
                assert!(
                    pruned.iter().any(|&(_, pk, pn)| (k.div_ceil(pk), n.div_ceil(pn)) == class),
                    "{m}x{k}x{n}: class {class:?} lost"
                );
            }
        }
    }
}
