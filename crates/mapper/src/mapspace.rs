//! Map-space enumeration with LLMCompass/Timeloop-style pruning heuristics.

use cimtpu_units::{Bytes, DataType, GemmShape};

/// Enumerates candidate `(tm, tk, tn)` tiles for `shape` that fit `budget`.
///
/// Heuristics (each dramatically shrinks the space without excluding the
/// optimum for dense GEMMs, mirroring prior work):
///
/// 1. tile edges are powers of two, snapped to multiples of the engine's
///    preferred granularity (`pref_k` rows / `pref_n` columns) when larger;
/// 2. the full dimension is always a candidate (no pointless remainders);
/// 3. working set `(tm·tk + tk·tn + tm·tn) · elem` must fit `budget`
///    (the caller already halves the budget for double buffering);
/// 4. degenerate tiles that would leave the engine's contraction dimension
///    mostly idle are dropped when a larger-k candidate exists.
///
/// The returned list is never empty unless even the minimal
/// `(1, pref_k.min(k), pref_n.min(n))` tile exceeds the budget.
pub fn candidate_tiles(
    shape: GemmShape,
    dtype: DataType,
    pref_k: u64,
    pref_n: u64,
    budget: Bytes,
) -> Vec<(u64, u64, u64)> {
    let elem = dtype.size_bytes();
    let fits = |tm: u64, tk: u64, tn: u64| -> bool {
        // Accumulators are FP32 regardless of operand width.
        let bytes = (tm * tk + tk * tn) * elem + tm * tn * 4;
        bytes <= budget.get()
    };

    let m_cands = edge_candidates(shape.m(), 1);
    let k_cands = edge_candidates(shape.k(), pref_k);
    let n_cands = edge_candidates(shape.n(), pref_n);

    let mut out = Vec::new();
    for &tk in &k_cands {
        for &tn in &n_cands {
            // Heuristic 4: prefer covering K fully when possible — partial-K
            // tiles force extra partial-sum passes.
            for &tm in &m_cands {
                if fits(tm, tk, tn) {
                    out.push((tm, tk, tn));
                    break; // larger tm always dominates smaller at same (tk, tn)
                }
            }
        }
    }
    out
}

/// Power-of-two candidates for one dimension, largest first, snapped to
/// `pref` multiples above `pref`, always including the full extent.
fn edge_candidates(extent: u64, pref: u64) -> Vec<u64> {
    let mut cands = vec![extent];
    let mut v = extent.next_power_of_two();
    while v >= 1 {
        let c = v.min(extent);
        let snapped = if c > pref { c - (c % pref.max(1)) } else { c };
        if snapped >= 1 && !cands.contains(&snapped) {
            cands.push(snapped);
        }
        if v == 1 {
            break;
        }
        v /= 2;
    }
    cands.sort_unstable_by(|a, b| b.cmp(a));
    // Cap the candidate count (map-space pruning) while always keeping the
    // degenerate size-1 tile so tiny budgets stay mappable.
    if cands.len() > 16 {
        cands.truncate(15);
        cands.push(1);
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_extent_always_first_candidate() {
        let c = edge_candidates(7168, 128);
        assert_eq!(c[0], 7168);
        assert!(c.iter().all(|&x| (1..=7168).contains(&x)));
    }

    #[test]
    fn candidates_fit_budget() {
        let shape = GemmShape::new(8192, 7168, 7168).unwrap();
        let budget = Bytes::from_mib(8);
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, budget);
        assert!(!tiles.is_empty());
        for (tm, tk, tn) in tiles {
            let bytes = (tm * tk + tk * tn) + tm * tn * 4;
            assert!(bytes <= budget.get(), "({tm},{tk},{tn}) exceeds budget");
        }
    }

    #[test]
    fn tiny_budget_yields_empty() {
        // The minimal (1,1,1) tile needs 2 operand bytes + 4 accumulator
        // bytes; anything below that is unmappable.
        let shape = GemmShape::new(4096, 4096, 4096).unwrap();
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::new(5));
        assert!(tiles.is_empty());
        // 6 bytes is enough for the degenerate tile.
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::new(6));
        assert!(!tiles.is_empty());
    }

    #[test]
    fn small_shapes_single_tile() {
        let shape = GemmShape::new(8, 128, 128).unwrap();
        let tiles = candidate_tiles(shape, DataType::Int8, 128, 128, Bytes::from_mib(8));
        assert!(tiles.contains(&(8, 128, 128)));
    }

    #[test]
    fn candidates_are_deduplicated() {
        let c = edge_candidates(128, 128);
        let mut sorted = c.clone();
        sorted.dedup();
        assert_eq!(c.len(), sorted.len());
    }

    #[test]
    fn snapping_respects_preference() {
        // Above pref, candidates are multiples of pref.
        for &x in edge_candidates(10_000, 256).iter() {
            if x > 256 && x != 10_000 {
                assert_eq!(x % 256, 0, "{x} not snapped");
            }
        }
    }
}
