//! Tiling and scheduling engine for CIM-based TPUs.
//!
//! Given a GEMM, a memory hierarchy and an engine cost model, the mapping
//! engine (paper Fig. 5) chooses how to partition the operands into
//! sub-tiles that fit the on-chip buffers and how to schedule their DMA
//! alongside compute:
//!
//! - [`MemoryLevels`] — the two-level TPU hierarchy (VMEM ← CMEM ← HBM via
//!   the on-chip interconnect), with toggles for **double buffering** and
//!   **memory coalescing** (the two scheduling options Section III-C names);
//! - [`TileCostModel`] — the trait engines implement to price one tile
//!   (both the digital systolic MXU and the CIM-MXU provide this through
//!   `cimtpu-core`);
//! - [`Mapper`] — enumerates the pruned map-space (heuristics in the style
//!   of LLMCompass/Timeloop: power-of-two tile candidates snapped to the
//!   engine's preferred granularity) and returns the latency-optimal
//!   [`Mapping`].
//!
//! # Examples
//!
//! ```
//! use cimtpu_mapper::{Mapper, MemoryLevels, TileCostModel};
//! use cimtpu_units::{Bandwidth, Bytes, Cycles, DataType, Frequency, GemmShape};
//!
//! /// A toy engine: one MAC per cycle.
//! struct Scalar;
//! impl TileCostModel for Scalar {
//!     fn tile_cycles(&self, s: GemmShape, _d: DataType) -> Cycles { Cycles::new(s.macs()) }
//!     fn clock(&self) -> Frequency { Frequency::from_ghz(1.0) }
//!     fn preferred_k(&self) -> u64 { 64 }
//!     fn preferred_n(&self) -> u64 { 64 }
//! }
//!
//! let mapper = Mapper::new(MemoryLevels::tpuv4i());
//! let mapping = mapper.best_gemm_mapping(
//!     GemmShape::new(256, 4096, 4096)?, DataType::Int8, &Scalar, false)?;
//! assert!(mapping.tiles() >= 1);
//! assert!(mapping.total().get() > 0.0);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod levels;
mod mapping;
mod mapspace;
#[cfg(test)]
mod proptests;

pub use levels::MemoryLevels;
pub use mapping::Mapping;
pub use mapspace::{candidate_tiles, for_each_candidate, EdgeBuffers};

use std::cell::RefCell;

use cimtpu_units::{Cycles, DataType, Error, Frequency, GemmShape, Result, Seconds};

/// Prices one buffer-level tile on a matrix engine.
///
/// Implementations exist in `cimtpu-core` for the digital systolic MXU and
/// the CIM-MXU; the trait keeps this crate engine-agnostic.
pub trait TileCostModel {
    /// Cycles for the engine to process one `[tm × tk] · [tk × tn]` tile
    /// with freshly loaded weights (internal folding included).
    ///
    /// # Contract
    ///
    /// The cost must be monotone non-decreasing in each tile dimension:
    /// shrinking an edge never makes the tile slower. Every folding /
    /// ceiling-based engine satisfies this naturally; the map-space
    /// search relies on it to prune dominated candidates that share
    /// their tile counts with a smaller tile (see
    /// [`for_each_candidate`]).
    fn tile_cycles(&self, shape: GemmShape, dtype: DataType) -> Cycles;

    /// The engine clock, used to convert cycles to wall time for overlap
    /// against DMA.
    fn clock(&self) -> Frequency;

    /// Preferred contraction-tile granularity (e.g. array rows).
    fn preferred_k(&self) -> u64;

    /// Preferred output-tile granularity (e.g. array columns).
    fn preferred_n(&self) -> u64;
}

/// One GEMM pricing request for the batch API ([`Mapper::map_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmQuery {
    /// The GEMM to map.
    pub shape: GemmShape,
    /// Operand precision.
    pub dtype: DataType,
    /// Whether the weights are already resident on chip (skips HBM).
    pub weights_resident: bool,
}

impl GemmQuery {
    /// Creates a query with streamed (non-resident) weights.
    pub fn streamed(shape: GemmShape, dtype: DataType) -> Self {
        GemmQuery { shape, dtype, weights_resident: false }
    }
}

/// The mapping engine.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Mapper {
    levels: MemoryLevels,
    /// Reused edge-candidate buffers: the map-space search allocates
    /// nothing per call once these are warm.
    scratch: RefCell<EdgeBuffers>,
}

impl PartialEq for Mapper {
    fn eq(&self, other: &Self) -> bool {
        // Scratch buffers are a cache, not state.
        self.levels == other.levels
    }
}

impl Mapper {
    /// Creates a mapper over the given memory hierarchy.
    pub fn new(levels: MemoryLevels) -> Self {
        Mapper { levels, scratch: RefCell::new(EdgeBuffers::default()) }
    }

    /// The memory hierarchy this mapper schedules against.
    pub fn levels(&self) -> &MemoryLevels {
        &self.levels
    }

    /// Finds the latency-optimal tiling for `shape` on `engine`.
    ///
    /// `weights_resident` marks weights already on chip (e.g. a second pass
    /// over the same layer), skipping HBM weight traffic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unmappable`] if no candidate tile fits the VMEM
    /// working-set budget.
    pub fn best_gemm_mapping(
        &self,
        shape: GemmShape,
        dtype: DataType,
        engine: &dyn TileCostModel,
        weights_resident: bool,
    ) -> Result<Mapping> {
        self.best_mapping_with_budget(
            shape,
            dtype,
            engine,
            weights_resident,
            self.levels.vmem_tile_budget(),
            engine.preferred_k(),
            engine.preferred_n(),
        )
    }

    /// Prices every query in `queries` against one engine, deriving the
    /// VMEM budget and the engine's preferred granularities exactly once.
    ///
    /// Results are returned in query order. This is the bulk entry point
    /// for sweep drivers that price many operator shapes on a fixed
    /// hardware configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`Error::Unmappable`] encountered.
    pub fn map_batch(
        &self,
        queries: &[GemmQuery],
        engine: &dyn TileCostModel,
    ) -> Result<Vec<Mapping>> {
        let budget = self.levels.vmem_tile_budget();
        let pref_k = engine.preferred_k();
        let pref_n = engine.preferred_n();
        queries
            .iter()
            .map(|q| {
                self.best_mapping_with_budget(
                    q.shape,
                    q.dtype,
                    engine,
                    q.weights_resident,
                    budget,
                    pref_k,
                    pref_n,
                )
            })
            .collect()
    }

    /// The streaming search behind [`Mapper::best_gemm_mapping`]: folds the
    /// candidate iterator directly into the best mapping (no intermediate
    /// candidate or mapping vectors).
    #[allow(clippy::too_many_arguments)]
    fn best_mapping_with_budget(
        &self,
        shape: GemmShape,
        dtype: DataType,
        engine: &dyn TileCostModel,
        weights_resident: bool,
        budget: cimtpu_units::Bytes,
        pref_k: u64,
        pref_n: u64,
    ) -> Result<Mapping> {
        let mut best: Option<Mapping> = None;
        let mut failure: Option<Error> = None;
        // Take the buffers out of the cell for the duration of the search:
        // a re-entrant cost model (one that calls back into this mapper
        // from `tile_cycles`) then simply allocates fresh buffers instead
        // of hitting a RefCell double-borrow panic.
        let mut scratch = self.scratch.take();
        // Dominated-candidate pruning is only winner-preserving when the
        // double-buffering prologue makes the domination strict; without
        // it a dominated tile can tie on total latency and win the
        // first-minimal tie-break.
        let prune = self.levels.double_buffering();
        mapspace::for_each_candidate(
            shape,
            dtype,
            pref_k,
            pref_n,
            budget,
            prune,
            &mut scratch,
            |tile| {
                if failure.is_some() {
                    return;
                }
                match self.evaluate(shape, dtype, engine, weights_resident, tile) {
                    Ok(mapping) => match &best {
                        Some(b) if b.total() <= mapping.total() => {}
                        _ => best = Some(mapping),
                    },
                    Err(e) => failure = Some(e),
                }
            },
        );
        *self.scratch.borrow_mut() = scratch;
        if let Some(e) = failure {
            return Err(e);
        }
        best.ok_or_else(|| {
            Error::unmappable(format!("no tile of {shape} fits the {budget} VMEM budget"))
        })
    }

    /// Evaluates one specific tiling (exposed for map-space studies).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if the tile has a zero dimension.
    pub fn evaluate(
        &self,
        shape: GemmShape,
        dtype: DataType,
        engine: &dyn TileCostModel,
        weights_resident: bool,
        tile: (u64, u64, u64),
    ) -> Result<Mapping> {
        let (tm, tk, tn) = tile;
        let tile_shape = GemmShape::new(tm.min(shape.m()), tk.min(shape.k()), tn.min(shape.n()))?;
        let tiles_m = shape.m().div_ceil(tile_shape.m());
        let tiles_k = shape.k().div_ceil(tile_shape.k());
        let tiles_n = shape.n().div_ceil(tile_shape.n());
        let tiles = tiles_m * tiles_k * tiles_n;

        // Loop order is m-innermost (weight-stationary across m-chunks): one
        // weight residency serves every activation chunk, so the engine is
        // priced per (k, n) tile with the *full* m streamed through it —
        // activation chunking constrains the buffers (via the candidate
        // filter), not the compute cost.
        let kn_tiles = tiles_k * tiles_n;
        let kn_shape = GemmShape::new(shape.m(), tile_shape.k(), tile_shape.n())?;
        let compute = engine
            .tile_cycles(kn_shape, dtype)
            .at(engine.clock())
            * kn_tiles as f64;

        // Aggregate DMA: weights stream from HBM exactly once; activations
        // re-cross the OCI once per n-tile, partial sums once per k-tile.
        let hbm_time = if weights_resident {
            Seconds::ZERO
        } else {
            self.levels.hbm_time(shape.weight_bytes(dtype))
        };
        let oci_bytes = cimtpu_units::Bytes::new(
            shape.activation_bytes(dtype).get() * tiles_n
                + shape.output_bytes(DataType::Fp32).get() * tiles_k,
        );
        let oci_time = self.levels.oci_time(oci_bytes);

        // Schedule: with double buffering the three channels overlap
        // (roofline); the prologue exposes one tile's DMA. Without it,
        // everything serializes.
        let dma = hbm_time.max(oci_time);
        let total = if self.levels.double_buffering() {
            let prologue = self.levels.hbm_time(tile_shape.weight_bytes(dtype));
            prologue + compute.max(dma)
        } else {
            compute + hbm_time + oci_time
        };

        Ok(Mapping::new(
            shape,
            tile_shape,
            tiles,
            compute,
            dma,
            total,
            if weights_resident {
                cimtpu_units::Bytes::ZERO
            } else {
                shape.weight_bytes(dtype)
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_units::Bytes;

    /// Engine with perfect peak: macs / 16384 cycles per tile.
    struct Ideal;
    impl TileCostModel for Ideal {
        fn tile_cycles(&self, s: GemmShape, _d: DataType) -> Cycles {
            Cycles::new(s.macs().div_ceil(16384))
        }
        fn clock(&self) -> Frequency {
            Frequency::from_ghz(1.05)
        }
        fn preferred_k(&self) -> u64 {
            128
        }
        fn preferred_n(&self) -> u64 {
            128
        }
    }

    #[test]
    fn compute_bound_gemm_tracks_peak() {
        // Large prefill GEMM: mapped latency should approach macs/peak.
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let shape = GemmShape::new(8192, 7168, 7168).unwrap();
        let m = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .unwrap();
        let ideal = shape.macs() as f64 / (16384.0 * 1.05e9);
        let ratio = m.total().get() / ideal;
        assert!(ratio < 1.3, "mapped/ideal = {ratio}");
    }

    #[test]
    fn memory_bound_gemv_tracks_hbm() {
        // Decode-style GEMV: latency should approach weight-bytes / HBM BW.
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let shape = GemmShape::new(8, 7168, 28672).unwrap();
        let m = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .unwrap();
        let hbm = shape.weight_bytes(DataType::Int8).get() as f64 / 614e9;
        let ratio = m.total().get() / hbm;
        assert!((1.0..1.5).contains(&ratio), "mapped/hbm = {ratio}");
    }

    #[test]
    fn resident_weights_skip_hbm() {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let shape = GemmShape::new(8, 7168, 7168).unwrap();
        let streamed = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .unwrap();
        let resident = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, true)
            .unwrap();
        assert!(resident.total() < streamed.total());
        assert_eq!(resident.hbm_bytes(), Bytes::ZERO);
    }

    #[test]
    fn double_buffering_helps() {
        let with_db = Mapper::new(MemoryLevels::tpuv4i());
        let without = Mapper::new(MemoryLevels::tpuv4i().with_double_buffering(false));
        let shape = GemmShape::new(1024, 7168, 7168).unwrap();
        let a = with_db
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .unwrap();
        let b = without
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .unwrap();
        assert!(a.total() < b.total());
    }

    #[test]
    fn unmappable_when_budget_too_small() {
        let tiny = MemoryLevels::tpuv4i().with_vmem(Bytes::new(8));
        let mapper = Mapper::new(tiny);
        let shape = GemmShape::new(4096, 4096, 4096).unwrap();
        assert!(mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .is_err());
    }

    #[test]
    fn reentrant_cost_model_does_not_panic() {
        // A cost model that consults the same mapper from inside
        // `tile_cycles` must not trip the scratch-buffer cell.
        struct Reentrant<'a> {
            mapper: &'a Mapper,
        }
        impl TileCostModel for Reentrant<'_> {
            fn tile_cycles(&self, s: GemmShape, d: DataType) -> Cycles {
                let inner = self
                    .mapper
                    .best_gemm_mapping(GemmShape::new(8, 128, 128).unwrap(), d, &Ideal, false)
                    .unwrap();
                Cycles::new(s.macs().div_ceil(16384) + inner.tiles())
            }
            fn clock(&self) -> Frequency {
                Frequency::from_ghz(1.05)
            }
            fn preferred_k(&self) -> u64 {
                128
            }
            fn preferred_n(&self) -> u64 {
                128
            }
        }
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let engine = Reentrant { mapper: &mapper };
        let m = mapper
            .best_gemm_mapping(GemmShape::new(64, 512, 512).unwrap(), DataType::Int8, &engine, false)
            .unwrap();
        assert!(m.total().get() > 0.0);
    }

    #[test]
    fn map_batch_matches_single_queries() {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let queries = vec![
            GemmQuery::streamed(GemmShape::new(8, 7168, 7168).unwrap(), DataType::Int8),
            GemmQuery {
                shape: GemmShape::new(8192, 7168, 28672).unwrap(),
                dtype: DataType::Bf16,
                weights_resident: false,
            },
            GemmQuery {
                shape: GemmShape::new(8, 7168, 7168).unwrap(),
                dtype: DataType::Int8,
                weights_resident: true,
            },
        ];
        let batch = mapper.map_batch(&queries, &Ideal).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            let single = mapper
                .best_gemm_mapping(q.shape, q.dtype, &Ideal, q.weights_resident)
                .unwrap();
            assert_eq!(*got, single, "{:?}", q);
        }
    }

    #[test]
    fn work_is_conserved() {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        for (m, k, n) in [(1, 7168, 7168), (8192, 7168, 28672), (13, 1000, 999)] {
            let shape = GemmShape::new(m, k, n).unwrap();
            let mapping = mapper
                .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
                .unwrap();
            // Tiles cover the iteration space.
            let t = mapping.tile();
            assert!(t.m() * mapping.tiles() >= shape.m(), "{m}x{k}x{n}");
            assert!(mapping.total() >= mapping.compute().min(mapping.dma()));
        }
    }
}
