//! The TPU memory hierarchy as seen by the mapping engine.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bandwidth, Bytes, Seconds};

/// Capacities and bandwidths of the two-level on-chip hierarchy plus HBM.
///
/// Defaults follow Table I: 16 MB VMEM, 128 MB CMEM, 614 GB/s main-memory
/// bandwidth. The OCI (on-chip interconnect) moves tiles between CMEM and
/// VMEM; **memory coalescing** raises the achievable fraction of its raw
/// bandwidth, and **double buffering** lets DMA overlap compute — the two
/// scheduling options from Section III-C.
///
/// # Examples
///
/// ```
/// use cimtpu_mapper::MemoryLevels;
/// use cimtpu_units::Bytes;
/// let levels = MemoryLevels::tpuv4i();
/// assert_eq!(levels.vmem(), Bytes::from_mib(16));
/// assert!(levels.double_buffering());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevels {
    vmem: Bytes,
    cmem: Bytes,
    hbm_bandwidth: Bandwidth,
    oci_bandwidth: Bandwidth,
    double_buffering: bool,
    memory_coalescing: bool,
}

impl MemoryLevels {
    /// Fraction of raw bandwidth achieved with coalesced accesses.
    const COALESCED_EFFICIENCY: f64 = 0.95;
    /// Fraction achieved with naive strided accesses.
    const UNCOALESCED_EFFICIENCY: f64 = 0.60;

    /// The TPUv4i hierarchy (Table I).
    pub fn tpuv4i() -> Self {
        MemoryLevels {
            vmem: Bytes::from_mib(16),
            cmem: Bytes::from_mib(128),
            hbm_bandwidth: Bandwidth::from_gb_per_s(614.0),
            // OCI sized so CMEM can feed the 4 MXUs: ~2 TB/s aggregate.
            oci_bandwidth: Bandwidth::from_gb_per_s(2048.0),
            double_buffering: true,
            memory_coalescing: true,
        }
    }

    /// Vector-memory capacity.
    pub fn vmem(&self) -> Bytes {
        self.vmem
    }

    /// Common-memory capacity.
    pub fn cmem(&self) -> Bytes {
        self.cmem
    }

    /// Raw main-memory bandwidth.
    pub fn hbm_bandwidth(&self) -> Bandwidth {
        self.hbm_bandwidth
    }

    /// Raw on-chip interconnect bandwidth.
    pub fn oci_bandwidth(&self) -> Bandwidth {
        self.oci_bandwidth
    }

    /// Whether DMA overlaps compute.
    pub fn double_buffering(&self) -> bool {
        self.double_buffering
    }

    /// Whether accesses are coalesced into wide bursts.
    pub fn memory_coalescing(&self) -> bool {
        self.memory_coalescing
    }

    /// Overrides VMEM capacity.
    #[must_use]
    pub fn with_vmem(mut self, vmem: Bytes) -> Self {
        self.vmem = vmem;
        self
    }

    /// Overrides CMEM capacity.
    #[must_use]
    pub fn with_cmem(mut self, cmem: Bytes) -> Self {
        self.cmem = cmem;
        self
    }

    /// Overrides HBM bandwidth.
    #[must_use]
    pub fn with_hbm_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.hbm_bandwidth = bw;
        self
    }

    /// Enables or disables double buffering.
    #[must_use]
    pub fn with_double_buffering(mut self, enabled: bool) -> Self {
        self.double_buffering = enabled;
        self
    }

    /// Enables or disables memory coalescing.
    #[must_use]
    pub fn with_memory_coalescing(mut self, enabled: bool) -> Self {
        self.memory_coalescing = enabled;
        self
    }

    fn efficiency(&self) -> f64 {
        if self.memory_coalescing {
            Self::COALESCED_EFFICIENCY
        } else {
            Self::UNCOALESCED_EFFICIENCY
        }
    }

    /// Effective time to stream `bytes` from main memory.
    pub fn hbm_time(&self, bytes: Bytes) -> Seconds {
        (self.hbm_bandwidth * self.efficiency()).transfer_time(bytes)
    }

    /// Effective time to move `bytes` between CMEM and VMEM.
    pub fn oci_time(&self, bytes: Bytes) -> Seconds {
        (self.oci_bandwidth * self.efficiency()).transfer_time(bytes)
    }

    /// The VMEM working-set budget for one tile.
    ///
    /// Double buffering halves the usable capacity (two tiles in flight).
    pub fn vmem_tile_budget(&self) -> Bytes {
        if self.double_buffering {
            Bytes::new(self.vmem.get() / 2)
        } else {
            self.vmem
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpuv4i_matches_table1() {
        let l = MemoryLevels::tpuv4i();
        assert_eq!(l.vmem(), Bytes::from_mib(16));
        assert_eq!(l.cmem(), Bytes::from_mib(128));
        assert!((l.hbm_bandwidth().as_gb_per_s() - 614.0).abs() < 1e-9);
    }

    #[test]
    fn coalescing_speeds_up_dma() {
        let on = MemoryLevels::tpuv4i();
        let off = MemoryLevels::tpuv4i().with_memory_coalescing(false);
        let b = Bytes::from_mib(64);
        assert!(on.hbm_time(b) < off.hbm_time(b));
        assert!(on.oci_time(b) < off.oci_time(b));
    }

    #[test]
    fn double_buffering_halves_budget() {
        let on = MemoryLevels::tpuv4i();
        let off = MemoryLevels::tpuv4i().with_double_buffering(false);
        assert_eq!(on.vmem_tile_budget().get() * 2, off.vmem_tile_budget().get());
    }
}
