//! Property-based tests of the mapping engine.

#![cfg(test)]

use proptest::prelude::*;

use cimtpu_units::{Bytes, Cycles, DataType, Frequency, GemmShape};

use crate::{candidate_tiles, Mapper, Mapping, MemoryLevels, TileCostModel};

/// Ideal engine: peak 16384 MACs/cycle, no overheads.
struct Ideal;

impl TileCostModel for Ideal {
    fn tile_cycles(&self, s: GemmShape, _d: DataType) -> Cycles {
        Cycles::new(s.macs().div_ceil(16384))
    }
    fn clock(&self) -> Frequency {
        Frequency::from_ghz(1.05)
    }
    fn preferred_k(&self) -> u64 {
        128
    }
    fn preferred_n(&self) -> u64 {
        128
    }
}

/// A coarser-grained engine (256-row, 64-column folding) whose per-tile
/// cost rounds each edge up to the fold — monotone, but with plateaus
/// that produce latency ties between distinct tiles.
struct Coarse;

impl TileCostModel for Coarse {
    fn tile_cycles(&self, s: GemmShape, _d: DataType) -> Cycles {
        let folded = s.m() * s.k().next_multiple_of(256) * s.n().next_multiple_of(64);
        Cycles::new(folded.div_ceil(16384))
    }
    fn clock(&self) -> Frequency {
        Frequency::from_ghz(0.94)
    }
    fn preferred_k(&self) -> u64 {
        256
    }
    fn preferred_n(&self) -> u64 {
        64
    }
}

/// Folds the full (unpruned) candidate stream to the first-minimal
/// mapping — the search loop's tie-break without the dominated-candidate
/// pruning, as the oracle for winner identity.
fn unpruned_winner(
    mapper: &Mapper,
    shape: GemmShape,
    dtype: DataType,
    engine: &dyn TileCostModel,
) -> Option<Mapping> {
    let mut best: Option<Mapping> = None;
    let tiles = candidate_tiles(
        shape,
        dtype,
        engine.preferred_k(),
        engine.preferred_n(),
        mapper.levels().vmem_tile_budget(),
    );
    for tile in tiles {
        let m = mapper.evaluate(shape, dtype, engine, false, tile).expect("evaluable");
        match &best {
            Some(b) if b.total() <= m.total() => {}
            _ => best = Some(m),
        }
    }
    best
}

fn shape_strategy() -> impl Strategy<Value = GemmShape> {
    (1u64..4096, 64u64..8192, 64u64..8192)
        .prop_map(|(m, k, n)| GemmShape::new(m, k, n).expect("non-zero dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen mapping is never worse than any other candidate.
    #[test]
    fn best_mapping_is_minimal(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let best = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let cands = candidate_tiles(
            shape,
            DataType::Int8,
            128,
            128,
            mapper.levels().vmem_tile_budget(),
        );
        for tile in cands {
            let m = mapper
                .evaluate(shape, DataType::Int8, &Ideal, false, tile)
                .expect("evaluable");
            prop_assert!(
                best.total() <= m.total() * (1.0 + 1e-12),
                "{shape}: best {} beaten by {:?} at {}",
                best.total().get(),
                tile,
                m.total().get()
            );
        }
    }

    /// Every candidate fits the working-set budget.
    #[test]
    fn candidates_respect_budget(shape in shape_strategy()) {
        let levels = MemoryLevels::tpuv4i();
        let budget = levels.vmem_tile_budget();
        for (tm, tk, tn) in candidate_tiles(shape, DataType::Int8, 128, 128, budget) {
            let bytes = (tm * tk + tk * tn) + tm * tn * 4;
            prop_assert!(bytes <= budget.get(), "({tm},{tk},{tn})");
            prop_assert!(tm >= 1 && tk >= 1 && tn >= 1);
        }
    }

    /// Mapped latency respects both roofline floors.
    #[test]
    fn mapping_respects_floors(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let m = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let compute_floor = shape.macs() as f64 / (16384.0 * 1.05e9);
        let hbm_floor = shape.weight_bytes(DataType::Int8).get() as f64 / 614e9;
        prop_assert!(m.total().get() >= compute_floor.max(hbm_floor) * 0.999);
    }

    /// Dominated-candidate pruning never changes the selected mapping:
    /// across hierarchy presets, operand dtypes, and engine
    /// granularities, the pruned search returns bit-identically the
    /// winner the full candidate stream picks under the first-minimal
    /// tie-break.
    #[test]
    fn pruned_search_selects_identical_winner(shape in shape_strategy()) {
        // Presets: the stock hierarchy plus coalescing-off and a tighter
        // VMEM — all double-buffered, the gate the pruning hangs on.
        let presets = [
            MemoryLevels::tpuv4i(),
            MemoryLevels::tpuv4i().with_memory_coalescing(false),
            MemoryLevels::tpuv4i().with_vmem(Bytes::from_mib(4)),
        ];
        for levels in presets {
            let mapper = Mapper::new(levels);
            for dtype in [DataType::Int8, DataType::Bf16] {
                for engine in [&Ideal as &dyn TileCostModel, &Coarse] {
                    let pruned = mapper
                        .best_gemm_mapping(shape, dtype, engine, false)
                        .expect("mappable");
                    let full =
                        unpruned_winner(&mapper, shape, dtype, engine).expect("mappable");
                    prop_assert_eq!(&pruned, &full, "{} {:?}", shape, dtype);
                }
            }
        }
    }

    /// Resident weights are never slower than streamed weights.
    #[test]
    fn residency_never_hurts(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let streamed = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let resident = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, true)
            .expect("mappable");
        prop_assert!(resident.total() <= streamed.total() * (1.0 + 1e-12));
    }
}
