//! Property-based tests of the mapping engine.

#![cfg(test)]

use proptest::prelude::*;

use cimtpu_units::{Cycles, DataType, Frequency, GemmShape};

use crate::{candidate_tiles, Mapper, MemoryLevels, TileCostModel};

/// Ideal engine: peak 16384 MACs/cycle, no overheads.
struct Ideal;

impl TileCostModel for Ideal {
    fn tile_cycles(&self, s: GemmShape, _d: DataType) -> Cycles {
        Cycles::new(s.macs().div_ceil(16384))
    }
    fn clock(&self) -> Frequency {
        Frequency::from_ghz(1.05)
    }
    fn preferred_k(&self) -> u64 {
        128
    }
    fn preferred_n(&self) -> u64 {
        128
    }
}

fn shape_strategy() -> impl Strategy<Value = GemmShape> {
    (1u64..4096, 64u64..8192, 64u64..8192)
        .prop_map(|(m, k, n)| GemmShape::new(m, k, n).expect("non-zero dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chosen mapping is never worse than any other candidate.
    #[test]
    fn best_mapping_is_minimal(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let best = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let cands = candidate_tiles(
            shape,
            DataType::Int8,
            128,
            128,
            mapper.levels().vmem_tile_budget(),
        );
        for tile in cands {
            let m = mapper
                .evaluate(shape, DataType::Int8, &Ideal, false, tile)
                .expect("evaluable");
            prop_assert!(
                best.total() <= m.total() * (1.0 + 1e-12),
                "{shape}: best {} beaten by {:?} at {}",
                best.total().get(),
                tile,
                m.total().get()
            );
        }
    }

    /// Every candidate fits the working-set budget.
    #[test]
    fn candidates_respect_budget(shape in shape_strategy()) {
        let levels = MemoryLevels::tpuv4i();
        let budget = levels.vmem_tile_budget();
        for (tm, tk, tn) in candidate_tiles(shape, DataType::Int8, 128, 128, budget) {
            let bytes = (tm * tk + tk * tn) + tm * tn * 4;
            prop_assert!(bytes <= budget.get(), "({tm},{tk},{tn})");
            prop_assert!(tm >= 1 && tk >= 1 && tn >= 1);
        }
    }

    /// Mapped latency respects both roofline floors.
    #[test]
    fn mapping_respects_floors(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let m = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let compute_floor = shape.macs() as f64 / (16384.0 * 1.05e9);
        let hbm_floor = shape.weight_bytes(DataType::Int8).get() as f64 / 614e9;
        prop_assert!(m.total().get() >= compute_floor.max(hbm_floor) * 0.999);
    }

    /// Resident weights are never slower than streamed weights.
    #[test]
    fn residency_never_hurts(shape in shape_strategy()) {
        let mapper = Mapper::new(MemoryLevels::tpuv4i());
        let streamed = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, false)
            .expect("mappable");
        let resident = mapper
            .best_gemm_mapping(shape, DataType::Int8, &Ideal, true)
            .expect("mappable");
        prop_assert!(resident.total() <= streamed.total() * (1.0 + 1e-12));
    }
}
