//! The ICI ring topology and its collective cost models.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Bandwidth, Bytes, Error, Result, Seconds};

/// Per-hop software/serialization latency of an ICI transfer.
const HOP_LATENCY_US: f64 = 1.0;

/// A ring of TPU chips connected over their ICI links.
///
/// Each TPUv4i chip has two 100 GB/s ICI links, so a ring uses both —
/// one to each neighbour — which is the paper's default multi-chip
/// configuration ("4 TPUs interconnected in a ring topology to fully
/// utilize the two ICI links on each TPU chip").
///
/// # Examples
///
/// ```
/// use cimtpu_multi::RingTopology;
/// use cimtpu_units::{Bandwidth, Bytes};
///
/// let ring = RingTopology::new(4, 2, Bandwidth::from_gb_per_s(100.0))?;
/// let t = ring.all_reduce_time(Bytes::from_mib(1));
/// assert!(t.get() > 0.0);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingTopology {
    devices: u64,
    links_per_chip: u64,
    link_bandwidth: Bandwidth,
}

impl RingTopology {
    /// Creates a ring of `devices` chips.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero devices/links or rings
    /// larger than the two links per chip can form (more than 2 links are
    /// accepted but unused by the ring).
    pub fn new(devices: u64, links_per_chip: u64, link_bandwidth: Bandwidth) -> Result<Self> {
        if devices == 0 {
            return Err(Error::invalid_config("ring needs at least one device"));
        }
        if links_per_chip == 0 {
            return Err(Error::invalid_config("chips need at least one ICI link"));
        }
        Ok(RingTopology {
            devices,
            links_per_chip,
            link_bandwidth,
        })
    }

    /// Number of chips in the ring.
    pub fn devices(&self) -> u64 {
        self.devices
    }

    /// ICI links per chip.
    pub fn links_per_chip(&self) -> u64 {
        self.links_per_chip
    }

    /// Bandwidth of one ICI link.
    pub fn link_bandwidth(&self) -> Bandwidth {
        self.link_bandwidth
    }

    fn hop_latency(&self) -> Seconds {
        Seconds::from_micros(HOP_LATENCY_US)
    }

    /// Time for a ring all-reduce of `bytes` (per-device payload).
    ///
    /// Standard ring cost: `2·(p−1)/p · bytes / link_bw` plus per-step hop
    /// latency, using both directions of the ring (both links).
    pub fn all_reduce_time(&self, bytes: Bytes) -> Seconds {
        let p = self.devices;
        if p == 1 {
            return Seconds::ZERO;
        }
        let effective_bw = self.link_bandwidth * self.links_per_chip.min(2) as f64;
        let volume = 2.0 * (p - 1) as f64 / p as f64 * bytes.get() as f64;
        Seconds::new(volume / effective_bw.get()) + self.hop_latency() * (2 * (p - 1)) as f64
    }

    /// Time for a ring all-gather of `bytes` (per-device shard).
    pub fn all_gather_time(&self, bytes: Bytes) -> Seconds {
        let p = self.devices;
        if p == 1 {
            return Seconds::ZERO;
        }
        let effective_bw = self.link_bandwidth * self.links_per_chip.min(2) as f64;
        let volume = (p - 1) as f64 / p as f64 * bytes.get() as f64;
        Seconds::new(volume / effective_bw.get()) + self.hop_latency() * (p - 1) as f64
    }

    /// Time to send `bytes` to the ring neighbour (one link).
    pub fn p2p_time(&self, bytes: Bytes) -> Seconds {
        if self.devices == 1 {
            return Seconds::ZERO;
        }
        self.link_bandwidth.transfer_time(bytes) + self.hop_latency()
    }
}

/// A 2-D torus of TPU chips (TPUv4-pod style), for scaling beyond the
/// 4-chip ring the paper evaluates.
///
/// Collectives decompose into two phases: a ring all-reduce along each row,
/// then along each column — the standard hierarchical algorithm for torus
/// interconnects.
///
/// # Examples
///
/// ```
/// use cimtpu_multi::{RingTopology, Torus2dTopology};
/// use cimtpu_units::{Bandwidth, Bytes};
///
/// let bw = Bandwidth::from_gb_per_s(100.0);
/// let torus = Torus2dTopology::new(4, 4, bw)?;
/// let ring16 = RingTopology::new(16, 2, bw)?;
/// // A 4x4 torus all-reduces faster than one 16-chip ring.
/// let bytes = Bytes::from_mib(64);
/// assert!(torus.all_reduce_time(bytes) < ring16.all_reduce_time(bytes));
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Torus2dTopology {
    x: u64,
    y: u64,
    link_bandwidth: Bandwidth,
}

impl Torus2dTopology {
    /// Creates an `x × y` torus. Each chip needs 4 links (2 per dimension);
    /// degenerate 1-wide dimensions collapse to a ring.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either dimension is zero.
    pub fn new(x: u64, y: u64, link_bandwidth: Bandwidth) -> Result<Self> {
        if x == 0 || y == 0 {
            return Err(Error::invalid_config("torus dimensions must be non-zero"));
        }
        Ok(Torus2dTopology { x, y, link_bandwidth })
    }

    /// Chips along the first dimension.
    pub fn x(&self) -> u64 {
        self.x
    }

    /// Chips along the second dimension.
    pub fn y(&self) -> u64 {
        self.y
    }

    /// Total chips.
    pub fn devices(&self) -> u64 {
        self.x * self.y
    }

    fn row_ring(&self) -> RingTopology {
        RingTopology::new(self.x.max(1), 2, self.link_bandwidth).expect("validated dims")
    }

    fn col_ring(&self) -> RingTopology {
        RingTopology::new(self.y.max(1), 2, self.link_bandwidth).expect("validated dims")
    }

    /// Hierarchical all-reduce: reduce-scatter + all-gather along rows,
    /// then the same along columns on `1/x` of the data.
    pub fn all_reduce_time(&self, bytes: Bytes) -> Seconds {
        let row = self.row_ring().all_reduce_time(bytes);
        let col_bytes = Bytes::new(bytes.get().div_ceil(self.x.max(1)));
        let col = self.col_ring().all_reduce_time(col_bytes);
        row + col
    }

    /// Neighbour transfer (one hop on either dimension).
    pub fn p2p_time(&self, bytes: Bytes) -> Seconds {
        if self.devices() == 1 {
            return Seconds::ZERO;
        }
        self.link_bandwidth.transfer_time(bytes) + Seconds::from_micros(HOP_LATENCY_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(p: u64) -> RingTopology {
        RingTopology::new(p, 2, Bandwidth::from_gb_per_s(100.0)).unwrap()
    }

    fn torus(x: u64, y: u64) -> Torus2dTopology {
        Torus2dTopology::new(x, y, Bandwidth::from_gb_per_s(100.0)).unwrap()
    }

    #[test]
    fn torus_validation() {
        assert!(Torus2dTopology::new(0, 4, Bandwidth::from_gb_per_s(100.0)).is_err());
        assert_eq!(torus(4, 4).devices(), 16);
    }

    #[test]
    fn degenerate_torus_matches_ring() {
        // A 1 x p torus is a ring plus a trivial second phase.
        let bytes = Bytes::from_mib(32);
        let t = torus(1, 4).all_reduce_time(bytes);
        let r = ring(4).all_reduce_time(bytes);
        // Row phase over x=1 is free; the column phase carries everything.
        assert!((t.get() - r.get()).abs() / r.get() < 1e-9);
    }

    #[test]
    fn torus_beats_flat_ring_at_scale() {
        let bytes = Bytes::from_mib(256);
        for (x, y) in [(4u64, 4u64), (8, 4), (8, 8)] {
            let t = torus(x, y).all_reduce_time(bytes);
            let r = ring(x * y).all_reduce_time(bytes);
            assert!(t < r, "{x}x{y} torus should beat a {}-ring", x * y);
        }
    }

    #[test]
    fn torus_p2p_single_device_free() {
        assert_eq!(torus(1, 1).p2p_time(Bytes::from_mib(1)), Seconds::ZERO);
        assert!(torus(2, 2).p2p_time(Bytes::from_mib(1)).get() > 0.0);
    }

    #[test]
    fn single_device_collectives_are_free() {
        assert_eq!(ring(1).all_reduce_time(Bytes::from_mib(64)), Seconds::ZERO);
        assert_eq!(ring(1).all_gather_time(Bytes::from_mib(64)), Seconds::ZERO);
        assert_eq!(ring(1).p2p_time(Bytes::from_mib(64)), Seconds::ZERO);
    }

    #[test]
    fn all_reduce_cost_follows_ring_formula() {
        // 4 devices, 200 GB/s effective: 2*(3/4)*bytes/bw + 6 hops.
        let bytes = Bytes::new(400_000_000);
        let t = ring(4).all_reduce_time(bytes);
        let expected = 2.0 * 0.75 * 400e6 / 200e9 + 6.0e-6;
        assert!((t.get() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn bigger_rings_cost_more_per_byte() {
        let bytes = Bytes::from_mib(64);
        assert!(ring(4).all_reduce_time(bytes) > ring(2).all_reduce_time(bytes));
    }

    #[test]
    fn all_gather_cheaper_than_all_reduce() {
        let bytes = Bytes::from_mib(64);
        assert!(ring(4).all_gather_time(bytes) < ring(4).all_reduce_time(bytes));
    }

    #[test]
    fn zero_devices_rejected() {
        assert!(RingTopology::new(0, 2, Bandwidth::from_gb_per_s(100.0)).is_err());
        assert!(RingTopology::new(4, 0, Bandwidth::from_gb_per_s(100.0)).is_err());
    }
}
