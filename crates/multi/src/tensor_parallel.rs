//! Megatron-style tensor parallelism for Transformer layers.
//!
//! Sharding follows Shoeybi et al.: QKV generation and FFN1 are
//! column-parallel (each device produces `1/p` of the output features),
//! attention heads are partitioned, and Proj/FFN2 are row-parallel,
//! each followed by a ring all-reduce of the `[tokens × d_model]`
//! activations — two all-reduces per layer.

use cimtpu_models::{Op, OpCategory, OpInstance, Phase, TransformerConfig, Workload};
use cimtpu_units::{Error, GemmShape, Result, Seconds};

use crate::MultiTpu;

/// Builds the per-device shard of one decode-layer step under `p`-way
/// tensor parallelism (without the all-reduces, which are priced on the
/// ring separately).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `p` does not divide the head count
/// and feed-forward width.
pub fn decode_layer_shard(
    model: &TransformerConfig,
    batch: u64,
    ctx: u64,
    p: u64,
) -> Result<Workload> {
    if p == 0 || !model.heads().is_multiple_of(p) || !model.d_ff().is_multiple_of(p) {
        return Err(Error::invalid_config(format!(
            "{p}-way tensor parallelism must divide heads ({}) and d_ff ({})",
            model.heads(),
            model.d_ff()
        )));
    }
    let d = model.d_model();
    let dtype = model.dtype();
    let heads = model.heads() / p;
    let d_ff = model.d_ff() / p;
    let mut w = Workload::new(format!(
        "{} decode layer shard (B={batch}, ctx={ctx}, tp={p})",
        model.name()
    ));

    w.begin_segment("attention", Phase::Decode);
    w.push(OpInstance::new(
        "LayerNorm (pre-attn)",
        OpCategory::LayerNorm,
        Op::LayerNorm { rows: batch, d },
    ));
    // Column-parallel QKV: n = 3d/p.
    w.push(OpInstance::new(
        "QKV Gen (shard)",
        OpCategory::QkvGen,
        Op::Gemm { shape: GemmShape::new(batch, d, 3 * d / p)?, dtype },
    ));
    // Heads partitioned: each device handles heads/p.
    w.push(OpInstance::new(
        "Q x K^T (shard)",
        OpCategory::Attention,
        Op::BatchedMatmul {
            batch: batch * heads,
            shape: GemmShape::gemv(model.d_head(), ctx)?,
            dtype,
            static_weights: false,
        },
    ));
    w.push(OpInstance::new(
        "Softmax (shard)",
        OpCategory::Attention,
        Op::Softmax { rows: batch * heads, cols: ctx },
    ));
    w.push(OpInstance::new(
        "S x V (shard)",
        OpCategory::Attention,
        Op::BatchedMatmul {
            batch: batch * heads,
            shape: GemmShape::gemv(ctx, model.d_head())?,
            dtype,
            static_weights: false,
        },
    ));
    // Row-parallel projection: k = d/p (followed by all-reduce).
    w.push(OpInstance::new(
        "Proj (shard)",
        OpCategory::Projection,
        Op::Gemm { shape: GemmShape::new(batch, d / p, d)?, dtype },
    ));
    w.begin_segment("ffn", Phase::Decode);
    w.push(OpInstance::new(
        "LayerNorm (pre-FFN)",
        OpCategory::LayerNorm,
        Op::LayerNorm { rows: batch, d },
    ));
    w.push(OpInstance::new(
        "FFN1 (shard)",
        OpCategory::Ffn1,
        Op::Gemm { shape: GemmShape::new(batch, d, d_ff)?, dtype },
    ));
    w.push(OpInstance::new(
        "GeLU (shard)",
        OpCategory::Gelu,
        Op::Gelu { elems: batch * d_ff },
    ));
    // Row-parallel FFN2: k = d_ff/p (followed by all-reduce).
    w.push(OpInstance::new(
        "FFN2 (shard)",
        OpCategory::Ffn2,
        Op::Gemm { shape: GemmShape::new(batch, d_ff, d)?, dtype },
    ));
    Ok(w)
}

/// Builds the per-device shard of one prefill layer under `p`-way tensor
/// parallelism (column-parallel QKV/FFN1, partitioned heads, row-parallel
/// Proj/FFN2; all-reduces priced separately).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `p` does not divide the head count
/// and feed-forward width.
pub fn prefill_layer_shard(
    model: &TransformerConfig,
    batch: u64,
    seq: u64,
    p: u64,
) -> Result<Workload> {
    if p == 0 || !model.heads().is_multiple_of(p) || !model.d_ff().is_multiple_of(p) {
        return Err(Error::invalid_config(format!(
            "{p}-way tensor parallelism must divide heads ({}) and d_ff ({})",
            model.heads(),
            model.d_ff()
        )));
    }
    let d = model.d_model();
    let dtype = model.dtype();
    let heads = model.heads() / p;
    let d_ff = model.d_ff() / p;
    let tokens = batch * seq;
    let mut w = Workload::new(format!(
        "{} prefill layer shard (B={batch}, L={seq}, tp={p})",
        model.name()
    ));

    w.begin_segment("attention", Phase::Prefill);
    w.push(OpInstance::new(
        "LayerNorm (pre-attn)",
        OpCategory::LayerNorm,
        Op::LayerNorm { rows: tokens, d },
    ));
    w.push(OpInstance::new(
        "QKV Gen (shard)",
        OpCategory::QkvGen,
        Op::Gemm { shape: GemmShape::new(tokens, d, 3 * d / p)?, dtype },
    ));
    w.push(OpInstance::new(
        "Q x K^T (shard)",
        OpCategory::Attention,
        Op::BatchedMatmul {
            batch: batch * heads,
            shape: GemmShape::new(seq, model.d_head(), seq)?,
            dtype,
            static_weights: false,
        },
    ));
    w.push(OpInstance::new(
        "Softmax (shard)",
        OpCategory::Attention,
        Op::Softmax { rows: batch * heads * seq, cols: seq },
    ));
    w.push(OpInstance::new(
        "S x V (shard)",
        OpCategory::Attention,
        Op::BatchedMatmul {
            batch: batch * heads,
            shape: GemmShape::new(seq, seq, model.d_head())?,
            dtype,
            static_weights: false,
        },
    ));
    w.push(OpInstance::new(
        "Proj (shard)",
        OpCategory::Projection,
        Op::Gemm { shape: GemmShape::new(tokens, d / p, d)?, dtype },
    ));
    w.begin_segment("ffn", Phase::Prefill);
    w.push(OpInstance::new(
        "LayerNorm (pre-FFN)",
        OpCategory::LayerNorm,
        Op::LayerNorm { rows: tokens, d },
    ));
    w.push(OpInstance::new(
        "FFN1 (shard)",
        OpCategory::Ffn1,
        Op::Gemm { shape: GemmShape::new(tokens, d, d_ff)?, dtype },
    ));
    w.push(OpInstance::new(
        "GeLU (shard)",
        OpCategory::Gelu,
        Op::Gelu { elems: tokens * d_ff },
    ));
    w.push(OpInstance::new(
        "FFN2 (shard)",
        OpCategory::Ffn2,
        Op::Gemm { shape: GemmShape::new(tokens, d_ff, d)?, dtype },
    ));
    Ok(w)
}

/// Latency of one tensor-parallel decode-layer step on the cluster:
/// the per-device shard plus the two ring all-reduces.
pub(crate) fn decode_layer_latency(
    cluster: &MultiTpu,
    model: &TransformerConfig,
    batch: u64,
    ctx: u64,
) -> Result<Seconds> {
    let p = cluster.devices();
    let shard = decode_layer_shard(model, batch, ctx, p)?;
    let report = cluster.simulator().run(&shard)?;
    let activation_bytes = cimtpu_units::Bytes::new(
        batch * model.d_model() * model.dtype().size_bytes(),
    );
    let comm = cluster.topology().all_reduce_time(activation_bytes) * 2.0;
    Ok(report.total_latency() + comm)
}

/// End-to-end tensor-parallel LLM inference latency (prefill + all decode
/// steps, all layers) — the latency-optimized alternative to pipeline
/// parallelism for interactive serving.
pub(crate) fn llm_latency(
    cluster: &MultiTpu,
    model: &TransformerConfig,
    spec: cimtpu_models::LlmInferenceSpec,
) -> Result<Seconds> {
    let p = cluster.devices();
    let layers = model.layers() as f64;
    let sim = cluster.simulator();
    let dtype_bytes = model.dtype().size_bytes();

    // Prefill: sharded layer + 2 all-reduces of [tokens × d].
    let prefill_shard = prefill_layer_shard(model, spec.batch(), spec.input_len(), p)?;
    let prefill_act = cimtpu_units::Bytes::new(
        spec.batch() * spec.input_len() * model.d_model() * dtype_bytes,
    );
    let prefill = sim.run(&prefill_shard)?.total_latency()
        + cluster.topology().all_reduce_time(prefill_act) * 2.0;

    // Decode: sample context lengths and integrate linearly.
    let steps = spec.sampled_decode_steps(5);
    let mut total_sampled = Seconds::ZERO;
    for &step in &steps {
        total_sampled += decode_layer_latency(cluster, model, spec.batch(), spec.ctx_at_step(step))?;
    }
    let decode_per_layer =
        Seconds::new(total_sampled.get() / steps.len() as f64) * spec.output_len() as f64;

    Ok((prefill + decode_per_layer) * layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_core::TpuConfig;
    use cimtpu_models::presets;

    #[test]
    fn shard_macs_divide_by_p() {
        let model = presets::gpt3_30b();
        let full = model.decode_layer(8, 1280).unwrap();
        let shard = decode_layer_shard(&model, 8, 1280, 4).unwrap();
        let matrix_full: u64 = full.total_macs();
        let matrix_shard: u64 = shard.total_macs();
        let ratio = matrix_full as f64 / matrix_shard as f64;
        assert!((ratio - 4.0).abs() < 0.05, "MAC ratio {ratio}");
    }

    #[test]
    fn rejects_indivisible_parallelism() {
        let model = presets::gpt3_30b(); // 56 heads
        assert!(decode_layer_shard(&model, 8, 1280, 5).is_err());
        assert!(decode_layer_shard(&model, 8, 1280, 0).is_err());
    }

    #[test]
    fn prefill_shard_macs_divide_by_p() {
        let model = presets::gpt3_30b();
        let full = model.prefill_layer(8, 512).unwrap();
        let shard = prefill_layer_shard(&model, 8, 512, 4).unwrap();
        let ratio = full.total_macs() as f64 / shard.total_macs() as f64;
        assert!((ratio - 4.0).abs() < 0.05, "MAC ratio {ratio}");
    }

    #[test]
    fn full_tp_inference_faster_with_more_chips() {
        use cimtpu_models::LlmInferenceSpec;
        let model = presets::gpt3_30b();
        let spec = LlmInferenceSpec::new(8, 128, 16).unwrap();
        let t1 = MultiTpu::new(TpuConfig::cim_base(), 1)
            .unwrap()
            .llm_tensor_parallel_latency(&model, spec)
            .unwrap();
        let t4 = MultiTpu::new(TpuConfig::cim_base(), 4)
            .unwrap()
            .llm_tensor_parallel_latency(&model, spec)
            .unwrap();
        assert!(t4 < t1, "tp4 {} vs tp1 {}", t4.get(), t1.get());
    }

    #[test]
    fn tensor_parallel_faster_than_single_chip_per_layer() {
        // Sharded compute + all-reduce still beats one chip on a decode
        // layer (weights per chip shrink by p).
        let model = presets::gpt3_30b();
        let single = MultiTpu::new(TpuConfig::tpuv4i(), 1).unwrap();
        let quad = MultiTpu::new(TpuConfig::tpuv4i(), 4).unwrap();
        let t1 = single
            .llm_tensor_parallel_decode_layer(&model, 8, 1280)
            .unwrap();
        let t4 = quad
            .llm_tensor_parallel_decode_layer(&model, 8, 1280)
            .unwrap();
        assert!(t4 < t1, "tp4 {} vs tp1 {}", t4.as_millis(), t1.as_millis());
    }
}
