//! Pipeline parallelism with micro-batching over the ICI ring.
//!
//! Layers are split into `p` contiguous stages, one per chip; `p`
//! micro-batches keep every stage busy in steady state (GPipe-style).
//! System throughput is then one micro-batch per stage time, where a stage
//! time is the per-layer cost times `layers / p` plus the activation
//! hand-off to the next chip.

use cimtpu_core::inference;
use cimtpu_models::{DitConfig, LlmInferenceSpec, TransformerConfig};
use cimtpu_units::{Bytes, Joules, Result, Seconds};

use crate::{MultiTpu, ThroughputResult};

/// LLM inference throughput under pipeline parallelism.
pub(crate) fn llm_throughput(
    cluster: &MultiTpu,
    model: &TransformerConfig,
    spec: LlmInferenceSpec,
) -> Result<ThroughputResult> {
    let p = cluster.devices();
    let sim = cluster.simulator();

    // Full single-chip cost of the whole model (all layers).
    let full = inference::run_llm(sim, model, spec)?;
    let total_latency = full.total_latency();
    let total_energy = full.total_mxu_energy();

    // Per-request stage work is 1/p of the model; activations hop between
    // stages once per layer boundary per token step (prefill + decode).
    let activation_bytes = Bytes::new(
        spec.batch() * model.d_model() * model.dtype().size_bytes(),
    );
    let hops_per_request = (spec.output_len() + 1) * (p - 1);
    let comm_per_request =
        cluster.topology().p2p_time(activation_bytes) * hops_per_request as f64;

    // Steady state: p micro-batches in flight; each stage finishes one
    // request's worth of its stage every (total/p + comm/p).
    let round = Seconds::new((total_latency + comm_per_request).get() / p as f64);
    let tokens = spec.total_generated_tokens() as f64;
    let throughput = tokens / round.get();

    // Energy per token: compute energy is conserved across stages; idle
    // bubbles are negligible in steady state with full micro-batching.
    let energy_per_token = Joules::new(total_energy.get() / tokens);

    Ok(ThroughputResult {
        devices: p,
        throughput,
        mxu_energy_per_unit: energy_per_token,
        round_latency: round,
    })
}

/// DiT inference throughput under pipeline parallelism.
pub(crate) fn dit_throughput(
    cluster: &MultiTpu,
    dit: &DitConfig,
    batch: u64,
    resolution: u64,
    diffusion_steps: u64,
) -> Result<ThroughputResult> {
    let p = cluster.devices();
    let sim = cluster.simulator();

    let fwd = inference::run_dit(sim, dit, batch, resolution)?;
    let per_image_latency =
        Seconds::new(fwd.total_latency.get() * diffusion_steps as f64);
    let per_image_energy =
        Joules::new(fwd.total_mxu_energy.get() * diffusion_steps as f64 / batch as f64);

    let tokens_bytes = Bytes::new(
        batch
            * dit.tokens_for_resolution(resolution)?
            * dit.transformer().d_model()
            * dit.transformer().dtype().size_bytes(),
    );
    let hops = diffusion_steps * (p - 1);
    let comm = cluster.topology().p2p_time(tokens_bytes) * hops as f64;

    let round = Seconds::new((per_image_latency + comm).get() / p as f64);
    let throughput = batch as f64 / round.get();

    Ok(ThroughputResult {
        devices: p,
        throughput,
        mxu_energy_per_unit: per_image_energy,
        round_latency: round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_core::TpuConfig;
    use cimtpu_models::presets;

    #[test]
    fn pipeline_scaling_is_sublinear_but_close() {
        let spec = LlmInferenceSpec::new(8, 128, 32).unwrap();
        let gpt3 = presets::gpt3_30b();
        let mut last = 0.0;
        for devices in [1u64, 2, 4] {
            let r = MultiTpu::new(TpuConfig::tpuv4i(), devices)
                .unwrap()
                .llm_pipeline_throughput(&gpt3, spec)
                .unwrap();
            assert!(r.throughput > last, "{devices} devices regressed");
            last = r.throughput;
        }
    }

    #[test]
    fn dit_throughput_positive_and_scaling() {
        let r1 = MultiTpu::new(TpuConfig::tpuv4i(), 1)
            .unwrap()
            .dit_pipeline_throughput(&presets::dit_xl_2(), 8, 256, 50)
            .unwrap();
        let r4 = MultiTpu::new(TpuConfig::tpuv4i(), 4)
            .unwrap()
            .dit_pipeline_throughput(&presets::dit_xl_2(), 8, 256, 50)
            .unwrap();
        assert!(r1.throughput > 0.0);
        let scaling = r4.throughput / r1.throughput;
        assert!((2.5..4.05).contains(&scaling), "scaling {scaling:.2}");
    }

    #[test]
    fn energy_per_unit_independent_of_device_count() {
        // Pipeline parallelism redistributes work; MXU energy per token is
        // conserved (same total compute).
        let spec = LlmInferenceSpec::new(8, 128, 32).unwrap();
        let gpt3 = presets::gpt3_30b();
        let e1 = MultiTpu::new(TpuConfig::design_a(), 1)
            .unwrap()
            .llm_pipeline_throughput(&gpt3, spec)
            .unwrap()
            .mxu_energy_per_unit;
        let e4 = MultiTpu::new(TpuConfig::design_a(), 4)
            .unwrap()
            .llm_pipeline_throughput(&gpt3, spec)
            .unwrap()
            .mxu_energy_per_unit;
        assert!((e1.get() / e4.get() - 1.0).abs() < 1e-9);
    }
}
