//! Multi-TPU inference: ICI ring topology, collectives, tensor and
//! pipeline parallelism (paper Section V-B).
//!
//! TPUv4i chips carry two 100 GB/s ICI links; up to four chips are
//! connected in a ring, enabling:
//!
//! - [`RingTopology`] — collective cost models (ring all-reduce,
//!   all-gather, neighbour point-to-point);
//! - [`tensor_parallel`] — Megatron-style sharding of a Transformer layer
//!   across chips (column-parallel QKV/FFN1, row-parallel Proj/FFN2, two
//!   all-reduces per layer);
//! - [`pipeline`] — pipeline parallelism with micro-batching (the Fig. 8
//!   configuration: up to 4-way pipeline over the ring);
//! - [`ThroughputResult`] — inference throughput and MXU energy for the
//!   Fig. 8 comparison between the baseline TPU, Design A and Design B.
//!
//! # Examples
//!
//! ```
//! use cimtpu_core::TpuConfig;
//! use cimtpu_models::{presets, LlmInferenceSpec};
//! use cimtpu_multi::MultiTpu;
//!
//! let cluster = MultiTpu::new(TpuConfig::design_a(), 4)?;
//! let spec = LlmInferenceSpec::new(8, 128, 32)?;
//! let r = cluster.llm_pipeline_throughput(&presets::gpt3_30b(), spec)?;
//! assert!(r.throughput > 0.0);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod tensor_parallel;
mod topology;

pub use topology::{RingTopology, Torus2dTopology};

use serde::{Deserialize, Serialize};

use cimtpu_core::{Simulator, TpuConfig};
use cimtpu_models::{DitConfig, LlmInferenceSpec, TransformerConfig};
use cimtpu_units::{Error, Joules, Result, Seconds};

/// Throughput and energy of a multi-chip inference configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Devices used.
    pub devices: u64,
    /// Tokens/s (LLM) or images/s (DiT).
    pub throughput: f64,
    /// Aggregate MXU energy per generated token (LLM) or per image (DiT).
    pub mxu_energy_per_unit: Joules,
    /// Steady-state latency of one pipeline round (or one sharded step).
    pub round_latency: Seconds,
}

/// A ring of identical TPU chips.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct MultiTpu {
    sim: Simulator,
    topology: RingTopology,
}

impl MultiTpu {
    /// Creates a cluster of `devices` chips of configuration `config`
    /// connected in a ring over their ICI links.
    ///
    /// # Errors
    ///
    /// Returns an error for zero devices or an invalid chip configuration.
    pub fn new(config: TpuConfig, devices: u64) -> Result<Self> {
        if devices == 0 {
            return Err(Error::invalid_config("device count must be non-zero"));
        }
        let topology = RingTopology::new(
            devices,
            config.ici_links(),
            config.ici_link_bandwidth(),
        )?;
        Ok(MultiTpu {
            sim: Simulator::new(config)?,
            topology,
        })
    }

    /// The per-chip simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The ring topology.
    pub fn topology(&self) -> &RingTopology {
        &self.topology
    }

    /// Number of devices.
    pub fn devices(&self) -> u64 {
        self.topology.devices()
    }

    /// LLM inference throughput with pipeline parallelism across the ring
    /// (the Fig. 8 configuration).
    ///
    /// # Errors
    ///
    /// Returns an error if the workload cannot be mapped or layers cannot
    /// be split over the devices.
    pub fn llm_pipeline_throughput(
        &self,
        model: &TransformerConfig,
        spec: LlmInferenceSpec,
    ) -> Result<ThroughputResult> {
        pipeline::llm_throughput(self, model, spec)
    }

    /// DiT inference throughput with pipeline parallelism across the ring.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload cannot be mapped.
    pub fn dit_pipeline_throughput(
        &self,
        dit: &DitConfig,
        batch: u64,
        resolution: u64,
        diffusion_steps: u64,
    ) -> Result<ThroughputResult> {
        pipeline::dit_throughput(self, dit, batch, resolution, diffusion_steps)
    }

    /// LLM per-layer latency with tensor parallelism across the ring
    /// (Megatron-style sharding + 2 all-reduces).
    ///
    /// # Errors
    ///
    /// Returns an error if the sharded layer cannot be built or mapped.
    pub fn llm_tensor_parallel_decode_layer(
        &self,
        model: &TransformerConfig,
        batch: u64,
        ctx: u64,
    ) -> Result<Seconds> {
        tensor_parallel::decode_layer_latency(self, model, batch, ctx)
    }

    /// End-to-end tensor-parallel LLM inference latency (prefill + decode,
    /// all layers) — the latency-optimized alternative to
    /// [`MultiTpu::llm_pipeline_throughput`] for interactive serving.
    ///
    /// # Errors
    ///
    /// Returns an error if the sharded layers cannot be built or mapped.
    pub fn llm_tensor_parallel_latency(
        &self,
        model: &TransformerConfig,
        spec: LlmInferenceSpec,
    ) -> Result<Seconds> {
        tensor_parallel::llm_latency(self, model, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_models::presets;

    #[test]
    fn rejects_zero_devices() {
        assert!(MultiTpu::new(TpuConfig::tpuv4i(), 0).is_err());
    }

    #[test]
    fn throughput_scales_with_devices() {
        // Fig. 8: throughput grows close to linearly from 1 to 4 TPUs.
        let spec = LlmInferenceSpec::new(8, 128, 32).unwrap();
        let gpt3 = presets::gpt3_30b();
        let t1 = MultiTpu::new(TpuConfig::tpuv4i(), 1)
            .unwrap()
            .llm_pipeline_throughput(&gpt3, spec)
            .unwrap();
        let t4 = MultiTpu::new(TpuConfig::tpuv4i(), 4)
            .unwrap()
            .llm_pipeline_throughput(&gpt3, spec)
            .unwrap();
        let scaling = t4.throughput / t1.throughput;
        assert!((2.5..4.05).contains(&scaling), "1->4 scaling {scaling:.2}");
    }

    #[test]
    fn design_a_beats_baseline_on_llm_throughput() {
        // Fig. 8: Design A averages ~28% higher LLM throughput and ~24x
        // lower MXU energy than the baseline (decode-dominated 1024/512
        // spec — on prefill-heavy workloads Design A's half peak loses).
        let spec = LlmInferenceSpec::paper_fig7(8).unwrap();
        let gpt3 = presets::gpt3_30b();
        for devices in [1u64, 2, 4] {
            let base = MultiTpu::new(TpuConfig::tpuv4i(), devices)
                .unwrap()
                .llm_pipeline_throughput(&gpt3, spec)
                .unwrap();
            let a = MultiTpu::new(TpuConfig::design_a(), devices)
                .unwrap()
                .llm_pipeline_throughput(&gpt3, spec)
                .unwrap();
            assert!(
                a.throughput > base.throughput,
                "{devices} devices: A {} vs base {}",
                a.throughput,
                base.throughput
            );
            let energy_ratio =
                base.mxu_energy_per_unit.get() / a.mxu_energy_per_unit.get();
            assert!(energy_ratio > 10.0, "energy ratio {energy_ratio:.1}");
        }
    }

    #[test]
    fn design_b_beats_baseline_on_dit_throughput() {
        // Fig. 8: Design B ~33% higher DiT throughput, ~6.34x lower energy.
        for devices in [1u64, 2, 4] {
            let base = MultiTpu::new(TpuConfig::tpuv4i(), devices)
                .unwrap()
                .dit_pipeline_throughput(&presets::dit_xl_2(), 8, 256, 50)
                .unwrap();
            let b = MultiTpu::new(TpuConfig::design_b(), devices)
                .unwrap()
                .dit_pipeline_throughput(&presets::dit_xl_2(), 8, 256, 50)
                .unwrap();
            assert!(b.throughput > base.throughput, "{devices} devices");
            let energy_ratio =
                base.mxu_energy_per_unit.get() / b.mxu_energy_per_unit.get();
            assert!(energy_ratio > 3.0, "energy ratio {energy_ratio:.1}");
        }
    }
}
