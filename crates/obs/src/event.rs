//! Typed trace events and the event-type filter.

use std::fmt;

/// The event taxonomy: request-lifecycle spans/instants plus fleet
/// control-plane events.
///
/// Spans carry a duration ([`EventKind::is_span`] is `true`); instants
/// mark a point on the simulated clock. The wire name
/// ([`EventKind::name`]) is what `--trace-filter` matches and what the
/// Chrome trace export shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    // --- request lifecycle -------------------------------------------------
    /// Instant: a request entered the system for the first time.
    Arrival,
    /// Span: from arrival to batch admission (time spent queued).
    Queue,
    /// Span: one prefill chunk executing in a batch.
    Prefill,
    /// Span: KV-cache handoff over the interconnect (disaggregated).
    KvHandoff,
    /// Span: decode, from first token to finish.
    Decode,
    /// Instant: terminal — the request's completion was delivered.
    Complete,
    /// Instant: the request's KV was evicted; it will recompute.
    Preempt,
    /// Span: a lost request waiting out its retry backoff.
    Retry,
    /// Instant: terminal — the request was shed (retry budget spent).
    Shed,
    /// Instant: terminal — the request exceeded its retry deadline.
    Timeout,
    /// Instant: an arrival was parked (target group scaled to zero or
    /// whole fleet down) until capacity returns.
    Park,
    // --- fleet / control plane ---------------------------------------------
    /// Instant: a replica crashed; in-flight state lost.
    Crash,
    /// Instant: a crashed replica finished repair and restarted.
    Repair,
    /// Span: a straggler window degrading a replica's step latency.
    Straggler,
    /// Instant: the reconciler started provisioning a slot.
    ScaleUp,
    /// Instant: the reconciler began draining a slot.
    ScaleDown,
    /// Instant: a group's last slot began draining to zero.
    ScaleToZero,
    /// Instant: a swap began provisioning a slot in the destination group.
    SwapIn,
    /// Instant: a swap began draining a slot in the source group.
    SwapOut,
    /// Instant: a provisioned slot finished warmup and turned routable.
    Up,
    /// Instant: a drained slot went offline.
    Retired,
    /// Instant: one reconcile tick of the autoscale control loop.
    Reconcile,
}

/// Every kind, in declaration order (drives filter error messages).
const ALL_KINDS: [EventKind; 22] = [
    EventKind::Arrival,
    EventKind::Queue,
    EventKind::Prefill,
    EventKind::KvHandoff,
    EventKind::Decode,
    EventKind::Complete,
    EventKind::Preempt,
    EventKind::Retry,
    EventKind::Shed,
    EventKind::Timeout,
    EventKind::Park,
    EventKind::Crash,
    EventKind::Repair,
    EventKind::Straggler,
    EventKind::ScaleUp,
    EventKind::ScaleDown,
    EventKind::ScaleToZero,
    EventKind::SwapIn,
    EventKind::SwapOut,
    EventKind::Up,
    EventKind::Retired,
    EventKind::Reconcile,
];

impl EventKind {
    /// The stable wire name (trace export + `--trace-filter` token).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::Queue => "queue",
            EventKind::Prefill => "prefill",
            EventKind::KvHandoff => "kv_handoff",
            EventKind::Decode => "decode",
            EventKind::Complete => "complete",
            EventKind::Preempt => "preempt",
            EventKind::Retry => "retry",
            EventKind::Shed => "shed",
            EventKind::Timeout => "timeout",
            EventKind::Park => "park",
            EventKind::Crash => "crash",
            EventKind::Repair => "repair",
            EventKind::Straggler => "straggler",
            EventKind::ScaleUp => "scale_up",
            EventKind::ScaleDown => "scale_down",
            EventKind::ScaleToZero => "scale_to_zero",
            EventKind::SwapIn => "swap_in",
            EventKind::SwapOut => "swap_out",
            EventKind::Up => "up",
            EventKind::Retired => "retired",
            EventKind::Reconcile => "reconcile",
        }
    }

    /// Whether this kind carries a duration (Chrome `ph: "X"`).
    #[must_use]
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Queue
                | EventKind::Prefill
                | EventKind::KvHandoff
                | EventKind::Decode
                | EventKind::Retry
                | EventKind::Straggler
        )
    }

    /// Whether this kind terminates a request's lifecycle.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, EventKind::Complete | EventKind::Shed | EventKind::Timeout)
    }

    fn from_name(name: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One buffered trace event.
///
/// `ts_s`/`dur_s` are simulated seconds; `dur_s` is zero for instants.
/// `track` indexes the recorder's track table (one per replica slot plus
/// one control-plane track); `id` is the request id for lifecycle events
/// and a site-specific index (slot, replica) for fleet events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event type.
    pub kind: EventKind,
    /// Track (Chrome `tid`) the event renders on.
    pub track: u32,
    /// Request id, or slot/replica index for fleet events.
    pub id: u64,
    /// Start time, simulated seconds.
    pub ts_s: f64,
    /// Duration, simulated seconds (zero for instants).
    pub dur_s: f64,
    /// Tenant index for multi-tenant runs; `None` in single-tenant runs,
    /// keeping their exports byte-identical to the pre-tenancy format.
    pub tenant: Option<u32>,
}

/// An event-type allowlist parsed from `--trace-filter`.
///
/// `TraceFilter::default()` (or an empty spec) allows everything.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    allowed: Option<Vec<EventKind>>,
}

impl TraceFilter {
    /// Parses a comma-separated list of event names, e.g.
    /// `"crash,retry,scale_up"`. An empty spec allows every kind.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown token and listing every
    /// valid event name.
    pub fn parse(spec: &str) -> Result<TraceFilter, String> {
        let mut allowed = Vec::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match EventKind::from_name(token) {
                Some(kind) => {
                    if !allowed.contains(&kind) {
                        allowed.push(kind);
                    }
                }
                None => {
                    let names: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
                    return Err(format!(
                        "unknown trace event type '{token}' (valid: {})",
                        names.join(", ")
                    ));
                }
            }
        }
        if allowed.is_empty() {
            Ok(TraceFilter::default())
        } else {
            Ok(TraceFilter { allowed: Some(allowed) })
        }
    }

    /// Whether events of `kind` pass the filter.
    #[must_use]
    pub fn allows(&self, kind: EventKind) -> bool {
        match &self.allowed {
            None => true,
            Some(list) => list.contains(&kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ALL_KINDS {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn spans_and_terminals_are_disjoint() {
        for kind in ALL_KINDS {
            assert!(!(kind.is_span() && kind.is_terminal()), "{kind} is both");
        }
    }

    #[test]
    fn filter_parses_and_filters() {
        let f = TraceFilter::parse("crash, retry").unwrap();
        assert!(f.allows(EventKind::Crash));
        assert!(f.allows(EventKind::Retry));
        assert!(!f.allows(EventKind::Prefill));
        assert!(TraceFilter::parse("").unwrap().allows(EventKind::Prefill));
        let err = TraceFilter::parse("bogus").unwrap_err();
        assert!(err.contains("bogus") && err.contains("kv_handoff"), "{err}");
    }
}
