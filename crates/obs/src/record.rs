//! The buffered flight recorder and its engine-facing handle.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::event::{Event, EventKind, TraceFilter};
use crate::timeseries::{GaugeSeries, HistogramSummary, TimeseriesStats};
use crate::LogHistogram;

/// Minimum spacing between retained gauge samples, simulated seconds.
pub const DEFAULT_GAUGE_INTERVAL_S: f64 = 0.001;

/// Destination for trace events.
///
/// Engines emit through this trait (via [`TraceHandle`]) so tests can
/// substitute sinks; [`Recorder`] is the buffered production impl.
pub trait TraceSink {
    /// Records an instant event at `ts_s`.
    fn instant(&mut self, track: u32, kind: EventKind, id: u64, ts_s: f64);
    /// Records a span covering `[start_s, end_s]`.
    fn span(&mut self, track: u32, kind: EventKind, id: u64, start_s: f64, end_s: f64);
}

/// One gauge series under construction (downsampled on insert).
#[derive(Debug, Clone)]
struct GaugeBuf {
    name: String,
    t_s: Vec<f64>,
    values: Vec<f64>,
}

/// The buffered flight recorder.
///
/// Buffers typed [`Event`]s keyed by simulated time, streams latency /
/// TTFT samples into log-bucketed histograms, and downsamples gauge
/// series on a fixed simulated-time interval. All state is plain
/// in-memory data ordered by insertion, so two same-seed runs build
/// byte-identical exports.
#[derive(Debug, Clone)]
pub struct Recorder {
    events: Vec<Event>,
    tracks: Vec<String>,
    seen: HashSet<u64>,
    latency_ms: LogHistogram,
    ttft_ms: LogHistogram,
    gauges: Vec<GaugeBuf>,
    gauge_interval_s: f64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default gauge interval.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::with_gauge_interval(DEFAULT_GAUGE_INTERVAL_S)
    }

    /// Creates a recorder retaining gauge samples at least `interval_s`
    /// simulated seconds apart.
    #[must_use]
    pub fn with_gauge_interval(interval_s: f64) -> Recorder {
        Recorder {
            events: Vec::new(),
            tracks: Vec::new(),
            seen: HashSet::new(),
            latency_ms: LogHistogram::default(),
            ttft_ms: LogHistogram::default(),
            gauges: Vec::new(),
            gauge_interval_s: interval_s,
        }
    }

    /// Registers a track (Chrome thread) and returns its id.
    pub fn track(&mut self, name: &str) -> u32 {
        self.tracks.push(name.to_string());
        (self.tracks.len() - 1) as u32
    }

    /// Registers a gauge series and returns its index for
    /// [`Recorder::sample`].
    pub fn gauge_series(&mut self, name: &str) -> usize {
        self.gauges.push(GaugeBuf { name: name.to_string(), t_s: Vec::new(), values: Vec::new() });
        self.gauges.len() - 1
    }

    /// Records a gauge sample; dropped if closer than the gauge
    /// interval to the previous retained sample of the series.
    pub fn sample(&mut self, series: usize, ts_s: f64, value: f64) {
        let g = &mut self.gauges[series];
        if g.t_s.last().is_none_or(|&last| ts_s - last >= self.gauge_interval_s) {
            g.t_s.push(ts_s);
            g.values.push(value);
        }
    }

    /// Records the first sighting of request `id` as an [arrival]
    /// instant; later sightings (crash retries re-entering a queue) are
    /// ignored so each id arrives exactly once.
    ///
    /// [arrival]: EventKind::Arrival
    pub fn request_arrival(&mut self, track: u32, id: u64, ts_s: f64) {
        self.request_arrival_for(track, id, ts_s, None);
    }

    /// [`Recorder::request_arrival`] with an optional tenant tag.
    pub fn request_arrival_for(&mut self, track: u32, id: u64, ts_s: f64, tenant: Option<u32>) {
        if self.seen.insert(id) {
            self.instant_for(track, EventKind::Arrival, id, ts_s, tenant);
        }
    }

    /// Records a delivered completion: the terminal [`EventKind::Complete`]
    /// instant plus latency/TTFT histogram samples.
    pub fn complete(&mut self, track: u32, id: u64, finish_s: f64, latency_ms: f64, ttft_ms: f64) {
        self.complete_for(track, id, finish_s, latency_ms, ttft_ms, None);
    }

    /// [`Recorder::complete`] with an optional tenant tag.
    pub fn complete_for(
        &mut self,
        track: u32,
        id: u64,
        finish_s: f64,
        latency_ms: f64,
        ttft_ms: f64,
        tenant: Option<u32>,
    ) {
        self.instant_for(track, EventKind::Complete, id, finish_s, tenant);
        self.latency_ms.observe(latency_ms);
        self.ttft_ms.observe(ttft_ms);
    }

    /// Records a tenant-tagged instant event at `ts_s` (`None` emits the
    /// untagged single-tenant form).
    pub fn instant_for(
        &mut self,
        track: u32,
        kind: EventKind,
        id: u64,
        ts_s: f64,
        tenant: Option<u32>,
    ) {
        self.events.push(Event { kind, track, id, ts_s, dur_s: 0.0, tenant });
    }

    /// Records a tenant-tagged span covering `[start_s, end_s]` (`None`
    /// emits the untagged single-tenant form).
    pub fn span_for(
        &mut self,
        track: u32,
        kind: EventKind,
        id: u64,
        start_s: f64,
        end_s: f64,
        tenant: Option<u32>,
    ) {
        self.events.push(Event { kind, track, id, ts_s: start_s, dur_s: end_s - start_s, tenant });
    }

    /// The buffered events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Registered track names, indexed by track id.
    #[must_use]
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// Builds the `timeseries` report section.
    #[must_use]
    pub fn timeseries(&self) -> TimeseriesStats {
        TimeseriesStats {
            interval_s: self.gauge_interval_s,
            latency_ms: HistogramSummary::of(&self.latency_ms),
            ttft_ms: HistogramSummary::of(&self.ttft_ms),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSeries {
                    name: g.name.clone(),
                    t_s: g.t_s.clone(),
                    values: g.values.clone(),
                })
                .collect(),
        }
    }

    /// Exports the buffered events as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`, loadable in Perfetto /
    /// `chrome://tracing`), one line per event.
    ///
    /// Events are sorted by start timestamp under [`f64::total_cmp`]
    /// with a stable sort, so ties keep emission order — a stable total
    /// order that makes same-seed traces byte-identical. Timestamps are
    /// microseconds of simulated time.
    #[must_use]
    pub fn to_chrome_json(&self, filter: &TraceFilter) -> String {
        let mut picked: Vec<&Event> =
            self.events.iter().filter(|e| filter.allows(e.kind)).collect();
        picked.sort_by(|a, b| a.ts_s.total_cmp(&b.ts_s));
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (tid, name) in self.tracks.iter().enumerate() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_str(name)
            );
        }
        for e in picked {
            sep(&mut out, &mut first);
            let ts = e.ts_s * 1e6;
            let args = match e.tenant {
                Some(t) => format!("{{\"id\":{},\"tenant\":{t}}}", e.id),
                None => format!("{{\"id\":{}}}", e.id),
            };
            if e.kind.is_span() {
                let dur = e.dur_s * 1e6;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts:?},\"dur\":{dur:?},\
                     \"pid\":0,\"tid\":{},\"args\":{args}}}",
                    e.kind.name(),
                    e.track,
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:?},\
                     \"pid\":0,\"tid\":{},\"args\":{args}}}",
                    e.kind.name(),
                    e.track,
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders the gauge series as CSV (`scenario,series,t_s,value`).
    #[must_use]
    pub fn metrics_csv(&self, scenario: &str) -> String {
        self.timeseries().to_csv(scenario)
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TraceSink for Recorder {
    fn instant(&mut self, track: u32, kind: EventKind, id: u64, ts_s: f64) {
        self.instant_for(track, kind, id, ts_s, None);
    }

    fn span(&mut self, track: u32, kind: EventKind, id: u64, start_s: f64, end_s: f64) {
        self.span_for(track, kind, id, start_s, end_s, None);
    }
}

/// A recorder shared across the engine cores and drivers of one run.
pub type SharedRecorder = Rc<RefCell<Recorder>>;

/// A cheap per-core handle: a shared recorder plus the core's track id.
///
/// Engines hold an `Option<TraceHandle>`; `None` costs one branch per
/// emission site, keeping the recorder-off paths bit-identical.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    rec: SharedRecorder,
    track: u32,
}

impl TraceHandle {
    /// Creates a handle targeting `track` of `rec`.
    #[must_use]
    pub fn new(rec: SharedRecorder, track: u32) -> TraceHandle {
        TraceHandle { rec, track }
    }

    /// The track this handle emits on.
    #[must_use]
    pub fn track(&self) -> u32 {
        self.track
    }

    /// See [`Recorder::request_arrival`].
    pub fn arrival(&self, id: u64, ts_s: f64) {
        self.arrival_for(id, ts_s, None);
    }

    /// See [`Recorder::request_arrival_for`].
    pub fn arrival_for(&self, id: u64, ts_s: f64, tenant: Option<u32>) {
        self.rec.borrow_mut().request_arrival_for(self.track, id, ts_s, tenant);
    }

    /// Emits an instant on this handle's track.
    pub fn instant(&self, kind: EventKind, id: u64, ts_s: f64) {
        self.instant_for(kind, id, ts_s, None);
    }

    /// Emits a tenant-tagged instant on this handle's track.
    pub fn instant_for(&self, kind: EventKind, id: u64, ts_s: f64, tenant: Option<u32>) {
        self.rec.borrow_mut().instant_for(self.track, kind, id, ts_s, tenant);
    }

    /// Emits a span on this handle's track.
    pub fn span(&self, kind: EventKind, id: u64, start_s: f64, end_s: f64) {
        self.span_for(kind, id, start_s, end_s, None);
    }

    /// Emits a tenant-tagged span on this handle's track.
    pub fn span_for(&self, kind: EventKind, id: u64, start_s: f64, end_s: f64, tenant: Option<u32>) {
        self.rec.borrow_mut().span_for(self.track, kind, id, start_s, end_s, tenant);
    }

    /// See [`Recorder::complete`].
    pub fn complete(&self, id: u64, finish_s: f64, latency_ms: f64, ttft_ms: f64) {
        self.complete_for(id, finish_s, latency_ms, ttft_ms, None);
    }

    /// See [`Recorder::complete_for`].
    pub fn complete_for(
        &self,
        id: u64,
        finish_s: f64,
        latency_ms: f64,
        ttft_ms: f64,
        tenant: Option<u32>,
    ) {
        self.rec.borrow_mut().complete_for(self.track, id, finish_s, latency_ms, ttft_ms, tenant);
    }

    /// See [`Recorder::sample`].
    pub fn sample(&self, series: usize, ts_s: f64, value: f64) {
        self.rec.borrow_mut().sample(series, ts_s, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_dedups_by_id() {
        let mut r = Recorder::new();
        let t = r.track("r0");
        r.request_arrival(t, 7, 0.0);
        r.request_arrival(t, 7, 1.0);
        r.request_arrival(t, 8, 2.0);
        let arrivals: Vec<u64> = r
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Arrival)
            .map(|e| e.id)
            .collect();
        assert_eq!(arrivals, vec![7, 8]);
    }

    #[test]
    fn chrome_export_sorts_and_formats() {
        let mut r = Recorder::new();
        let t0 = r.track("r0");
        let cp = r.track("control");
        r.instant(cp, EventKind::Crash, 0, 2.0);
        r.span(t0, EventKind::Prefill, 5, 0.5, 1.5);
        r.instant(t0, EventKind::Complete, 5, 3.0);
        let json = r.to_chrome_json(&TraceFilter::default());
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.contains("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"control\"}}"));
        // Sorted by ts: prefill (0.5 s) precedes crash (2.0 s).
        let prefill = json.find("\"name\":\"prefill\",\"ph\":\"X\"").unwrap();
        let crash = json.find("\"name\":\"crash\",\"ph\":\"i\"").unwrap();
        assert!(prefill < crash);
        assert!(json.contains("\"ts\":500000.0,\"dur\":1000000.0"));
        // Filtered export drops the others.
        let only_crash = r.to_chrome_json(&TraceFilter::parse("crash").unwrap());
        assert!(only_crash.contains("\"name\":\"crash\""));
        assert!(!only_crash.contains("\"name\":\"prefill\""));
    }

    #[test]
    fn tenant_tags_render_only_when_present() {
        let mut r = Recorder::new();
        let t = r.track("r0");
        r.instant_for(t, EventKind::Preempt, 3, 1.0, Some(2));
        r.span_for(t, EventKind::Decode, 4, 1.0, 2.0, None);
        let json = r.to_chrome_json(&TraceFilter::default());
        assert!(json.contains("\"args\":{\"id\":3,\"tenant\":2}"), "{json}");
        assert!(json.contains("\"args\":{\"id\":4}"), "{json}");
    }

    #[test]
    fn gauge_downsampling_honors_interval() {
        let mut r = Recorder::with_gauge_interval(1.0);
        let g = r.gauge_series("q");
        for i in 0..10 {
            r.sample(g, i as f64 * 0.25, i as f64);
        }
        let ts = r.timeseries();
        assert_eq!(ts.gauges[0].t_s, vec![0.0, 1.0, 2.0]);
        assert_eq!(ts.gauges[0].values, vec![0.0, 4.0, 8.0]);
    }

    #[test]
    fn complete_feeds_histograms() {
        let mut r = Recorder::new();
        let t = r.track("r0");
        r.complete(t, 1, 1.0, 250.0, 40.0);
        r.complete(t, 2, 2.0, 150.0, 20.0);
        let ts = r.timeseries();
        assert_eq!(ts.latency_ms.count, 2);
        assert_eq!(ts.latency_ms.max, 250.0);
        assert_eq!(ts.ttft_ms.max, 40.0);
    }

    #[test]
    fn handle_shares_one_recorder() {
        let rec: SharedRecorder = Rc::new(RefCell::new(Recorder::new()));
        let t0 = rec.borrow_mut().track("r0");
        let t1 = rec.borrow_mut().track("r1");
        let h0 = TraceHandle::new(Rc::clone(&rec), t0);
        let h1 = TraceHandle::new(Rc::clone(&rec), t1);
        h0.arrival(1, 0.0);
        h1.arrival(1, 0.5); // same id, different core: still one arrival
        h1.instant(EventKind::Shed, 1, 1.0);
        let r = rec.borrow();
        assert_eq!(r.events().iter().filter(|e| e.kind == EventKind::Arrival).count(), 1);
        assert_eq!(r.events().last().unwrap().kind, EventKind::Shed);
    }
}
