//! Exact nearest-rank selection in O(1) memory.
//!
//! Report percentiles are pinned byte-for-byte by the BENCH baselines,
//! so the streaming [`LogHistogram`](crate::LogHistogram)'s bounded
//! relative error is not good enough there. This module computes the
//! *exact* k-th smallest samples without materializing or sorting the
//! sample buffer: an MSB-first radix selection over a monotone `u64`
//! key whose order matches [`f64::total_cmp`]. Eight passes over the
//! data, a 256-entry counting histogram per distinct rank prefix per
//! pass — O(1) memory however many samples stream through — and the
//! returned values are bit-identical to `sort` + nearest-rank indexing
//! for NaN-free data (and still well-defined, by total order, if a NaN
//! ever slips in).

/// Maps a float to a `u64` key whose unsigned order equals
/// [`f64::total_cmp`] order (IEEE-754 totalOrder).
#[must_use]
pub fn rank_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`rank_key`].
#[must_use]
pub fn key_value(k: u64) -> f64 {
    let b = if k >> 63 == 1 { k & !(1 << 63) } else { !k };
    f64::from_bits(b)
}

/// The 1-based nearest rank for quantile `q` over `n` samples:
/// `ceil(q * n)` clamped to `[1, n]`.
#[must_use]
pub fn nearest_rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Selects the `rank`-th smallest (1-based, [`f64::total_cmp`] order)
/// value for every requested rank, re-iterating the samples once per
/// key byte (8 passes total, shared across all ranks).
///
/// `samples` is a factory returning a fresh iterator over the same
/// sequence each call; `n` must equal that iterator's length and every
/// rank must lie in `[1, n]`.
///
/// # Panics
///
/// Panics if `n == 0`, a rank is out of `[1, n]`, or an iterator pass
/// yields fewer than the expected matching samples (i.e. the factory
/// does not replay the same sequence).
pub fn select_ranks<I, F>(n: usize, ranks: &[usize], mut samples: F) -> Vec<f64>
where
    I: Iterator<Item = f64>,
    F: FnMut() -> I,
{
    assert!(n > 0, "cannot select from zero samples");
    for &r in ranks {
        assert!((1..=n).contains(&r), "rank {r} out of 1..={n}");
    }
    // Per rank: the key prefix resolved so far and the rank *within*
    // the samples matching that prefix.
    let mut prefixes: Vec<u64> = vec![0; ranks.len()];
    let mut remaining: Vec<u64> = ranks.iter().map(|&r| r as u64).collect();
    let mut counts: Vec<[u64; 256]> = vec![[0; 256]; ranks.len()];
    for byte in (0..8usize).rev() {
        let shift = 8 * byte;
        // Mask covering the bytes already resolved (above this one).
        let high_mask = if byte == 7 { 0 } else { u64::MAX << (shift + 8) };
        for c in &mut counts {
            c.fill(0);
        }
        for x in samples() {
            let key = rank_key(x);
            let masked = key & high_mask;
            let bucket = ((key >> shift) & 0xFF) as usize;
            // Ranks frequently share prefixes; the per-rank histograms
            // keep the bookkeeping trivial while staying O(1) memory.
            for (i, &prefix) in prefixes.iter().enumerate() {
                if masked == prefix {
                    counts[i][bucket] += 1;
                }
            }
        }
        for i in 0..ranks.len() {
            let mut cum = 0u64;
            let mut chosen = None;
            for (b, &c) in counts[i].iter().enumerate() {
                if cum + c >= remaining[i] {
                    chosen = Some(b as u64);
                    break;
                }
                cum += c;
            }
            let b = chosen.expect("sample iterator replayed fewer samples than expected");
            prefixes[i] |= b << shift;
            remaining[i] -= cum;
        }
    }
    prefixes.into_iter().map(key_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_reference(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn key_is_monotone_and_invertible() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-308,
            0.1,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(rank_key(w[0]) <= rank_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(key_value(rank_key(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn matches_sort_then_index() {
        let samples: Vec<f64> = (0..500)
            .map(|i| {
                let x = (i * 2654435761u64 % 1000) as f64;
                (x - 200.0) * 1.7 + 0.001 * i as f64
            })
            .collect();
        let sorted = sorted_reference(samples.clone());
        let n = samples.len();
        let ranks = [1, nearest_rank(0.5, n), nearest_rank(0.95, n), nearest_rank(0.99, n), n];
        let got = select_ranks(n, &ranks, || samples.iter().copied());
        for (&r, &v) in ranks.iter().zip(&got) {
            assert_eq!(v.to_bits(), sorted[r - 1].to_bits(), "rank {r}");
        }
    }

    #[test]
    fn handles_duplicates_and_single() {
        let samples = [3.0, 3.0, 3.0, 3.0];
        let got = select_ranks(4, &[1, 2, 4], || samples.iter().copied());
        assert_eq!(got, vec![3.0, 3.0, 3.0]);
        let one = select_ranks(1, &[1], || [42.5].into_iter());
        assert_eq!(one, vec![42.5]);
    }

    #[test]
    fn nearest_rank_clamps() {
        assert_eq!(nearest_rank(0.0, 10), 1);
        assert_eq!(nearest_rank(0.5, 10), 5);
        assert_eq!(nearest_rank(0.99, 10), 10);
        assert_eq!(nearest_rank(1.0, 3), 3);
    }
}
