//! Flight recorder: deterministic request tracing + streaming fleet
//! telemetry.
//!
//! Serving and cluster runs are discrete-event simulations over a
//! deterministic clock, so their observability layer can be
//! deterministic too: every span and instant event is keyed by
//! *simulated* time, and two same-seed runs emit byte-identical trace
//! files. The crate has three pieces:
//!
//! 1. **Trace events** — a typed [`EventKind`] taxonomy over the request
//!    lifecycle (arrival → queue → prefill → KV handoff → decode →
//!    complete / preempt / retry / shed / timeout) and the fleet control
//!    plane (crash, repair, straggler window, scale-up / drain / swap,
//!    reconcile tick), buffered by the [`Recorder`] behind the
//!    [`TraceSink`] trait. Emission sites in the engines take an
//!    `Option<` [`TraceHandle`] `>`; `None` costs one branch per site,
//!    so the recorder-off paths stay bit-identical and allocation-free.
//!
//! 2. **Chrome trace export** — [`Recorder::to_chrome_json`] writes the
//!    Chrome trace-event JSON format (loadable in Perfetto /
//!    `chrome://tracing`), one track per replica slot plus one for the
//!    control plane, with an [`TraceFilter`] event-type filter.
//!    Events are stably sorted by simulated timestamp
//!    ([`f64::total_cmp`], insertion order on ties), giving the stable
//!    total order that makes same-seed traces byte-identical.
//!
//! 3. **Streaming telemetry** — a log-bucketed [`LogHistogram`] (à la
//!    HdrHistogram: O(buckets) memory, bounded relative error) for
//!    latency/TTFT distributions, fixed-interval gauge sampling (queue
//!    depth, outstanding, KV occupancy, batch size, utilization), a
//!    [`TimeseriesStats`] report section, and a CSV export for sweep
//!    plotting. The exact-percentile path for reports lives in
//!    [`select`]: an MSB-first radix selector that reproduces
//!    sort-then-nearest-rank bit-exactly in O(1) memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod record;
pub mod select;
mod timeseries;

pub use event::{Event, EventKind, TraceFilter};
pub use hist::LogHistogram;
pub use record::{Recorder, SharedRecorder, TraceHandle, TraceSink};
pub use timeseries::{GaugeSeries, HistogramSummary, TimeseriesStats};
