//! Streaming-telemetry report section and CSV export shapes.

use serde::{Deserialize, Serialize};

use crate::LogHistogram;

/// Summary of one streaming [`LogHistogram`]: approximate percentiles
/// (bounded relative error, see the histogram docs) plus exact
/// streaming mean/max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Exact streaming mean.
    pub mean: f64,
    /// Exact maximum.
    pub max: f64,
    /// Occupied histogram buckets (memory gauge).
    pub buckets: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    #[must_use]
    pub fn of(h: &LogHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            mean: h.mean(),
            max: h.max(),
            buckets: h.occupied_buckets() as u64,
        }
    }
}

/// One downsampled gauge series (parallel time/value arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSeries {
    /// Series name, e.g. `"r0.queue_depth"`.
    pub name: String,
    /// Sample times, simulated seconds.
    pub t_s: Vec<f64>,
    /// Sampled values.
    pub values: Vec<f64>,
}

/// The optional `timeseries` report section: streaming latency/TTFT
/// histograms plus fixed-interval gauge series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesStats {
    /// Minimum spacing between retained gauge samples, simulated seconds.
    pub interval_s: f64,
    /// Streaming request-latency distribution, milliseconds.
    pub latency_ms: HistogramSummary,
    /// Streaming time-to-first-token distribution, milliseconds.
    pub ttft_ms: HistogramSummary,
    /// Downsampled gauge series, in registration order.
    pub gauges: Vec<GaugeSeries>,
}

impl TimeseriesStats {
    /// Renders the gauge series as CSV rows
    /// (`scenario,series,t_s,value` header included).
    #[must_use]
    pub fn to_csv(&self, scenario: &str) -> String {
        let mut out = String::from("scenario,series,t_s,value\n");
        for g in &self.gauges {
            for (t, v) in g.t_s.iter().zip(&g.values) {
                out.push_str(&format!("{scenario},{},{t:?},{v:?}\n", g.name));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let ts = TimeseriesStats {
            interval_s: 0.001,
            latency_ms: HistogramSummary::of(&LogHistogram::default()),
            ttft_ms: HistogramSummary::of(&LogHistogram::default()),
            gauges: vec![GaugeSeries {
                name: "r0.queue_depth".into(),
                t_s: vec![0.0, 0.5],
                values: vec![1.0, 3.0],
            }],
        };
        let csv = ts.to_csv("smoke");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("scenario,series,t_s,value"));
        assert_eq!(lines.next(), Some("smoke,r0.queue_depth,0.0,1.0"));
        assert_eq!(lines.next(), Some("smoke,r0.queue_depth,0.5,3.0"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn serializes_and_round_trips() {
        let ts = TimeseriesStats {
            interval_s: 0.25,
            latency_ms: HistogramSummary::of(&LogHistogram::default()),
            ttft_ms: HistogramSummary::of(&LogHistogram::default()),
            gauges: vec![],
        };
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeseriesStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
    }
}
