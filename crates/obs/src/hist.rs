//! Log-bucketed streaming histogram (à la HdrHistogram).

use std::collections::BTreeMap;

/// A streaming histogram with logarithmically spaced buckets.
///
/// Positive values land in bucket `floor(ln(v) / ln(growth))`; each
/// bucket spans one `growth`-factor of the value axis, so quantile
/// estimates carry a bounded *relative* error of at most
/// `sqrt(growth) - 1` (≈ 1% at the default growth of 1.02) regardless
/// of the value range. Memory is O(occupied buckets) — a few hundred
/// entries even for latencies spanning nanoseconds to hours — which is
/// what lets a 10M-request run stream its latency distribution instead
/// of buffering every sample. Zero and negative values count into a
/// dedicated underflow bucket reported as `0.0`.
///
/// The exact-percentile path for pinned report fields lives in
/// [`crate::select`]; this type backs the `timeseries` telemetry
/// section, where the documented relative-error contract applies.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    inv_ln_growth: f64,
    half_bucket: f64,
    growth: f64,
    buckets: BTreeMap<i64, u64>,
    underflow: u64,
    count: u64,
    sum: f64,
    max: f64,
}

/// Default bucket growth factor (≈ 1% relative error).
pub const DEFAULT_GROWTH: f64 = 1.02;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(DEFAULT_GROWTH)
    }
}

impl LogHistogram {
    /// Creates a histogram with the given bucket growth factor
    /// (must be > 1; relative error is at most `sqrt(growth) - 1`).
    #[must_use]
    pub fn new(growth: f64) -> LogHistogram {
        assert!(growth > 1.0, "growth factor must exceed 1");
        LogHistogram {
            inv_ln_growth: growth.ln().recip(),
            half_bucket: growth.sqrt(),
            growth,
            buckets: BTreeMap::new(),
            underflow: 0,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        if value > 0.0 {
            let idx = (value.ln() * self.inv_ln_growth).floor() as i64;
            *self.buckets.entry(idx).or_insert(0) += 1;
        } else {
            self.underflow += 1;
        }
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Streaming mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum sample (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile estimate (`q` in `[0, 1]`), accurate to the
    /// bucket's relative-error bound. Returns 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.underflow {
            return 0.0;
        }
        let mut remaining = rank - self.underflow;
        for (&idx, &n) in &self.buckets {
            if remaining <= n {
                // Geometric midpoint of [growth^idx, growth^(idx+1)).
                return self.growth.powi(idx as i32) * self.half_bucket;
            }
            remaining -= n;
        }
        self.max
    }

    /// Number of occupied buckets (memory gauge; excludes underflow).
    #[must_use]
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = LogHistogram::default();
        for i in 1..=10_000u64 {
            h.observe(i as f64 / 10.0);
        }
        let tol = h.half_bucket - 1.0 + 1e-12;
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= tol, "q={q}: est {est} vs {exact} (rel {rel})");
        }
        assert_eq!(h.max(), 1000.0);
        assert!((h.mean() - 500.05).abs() < 1e-9);
    }

    #[test]
    fn memory_is_o_buckets() {
        let mut h = LogHistogram::default();
        for i in 0..1_000_000u64 {
            h.observe(1.0 + (i % 997) as f64);
        }
        assert_eq!(h.count(), 1_000_000);
        assert!(h.occupied_buckets() < 400, "{} buckets", h.occupied_buckets());
    }

    #[test]
    fn underflow_and_empty() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
        h.observe(0.0);
        h.observe(5.0);
        assert_eq!(h.quantile(0.25), 0.0);
        assert!(h.quantile(1.0) > 0.0);
    }
}
