//! Memory-capacity accounting: does a model fit the chip?
//!
//! Table I gives the TPUv4i 8 GB of main memory. The paper's evaluations
//! (like ours) simulate per-layer behaviour and sidestep capacity, but a
//! deployment tool must answer "how many chips do I need just to *hold*
//! the model?" — this module does that bookkeeping, advisory rather than
//! enforced, so the paper's single-chip experiments remain reproducible.

use serde::{Deserialize, Serialize};

use cimtpu_models::{DitConfig, LlmInferenceSpec, TransformerConfig};
use cimtpu_units::Bytes;

use crate::arch::TpuConfig;

/// Main-memory footprint of a resident model plus its inference state.
///
/// # Examples
///
/// ```
/// use cimtpu_core::{memory::MemoryFootprint, TpuConfig};
/// use cimtpu_models::{presets, LlmInferenceSpec};
///
/// let spec = LlmInferenceSpec::paper_fig7(8)?;
/// let fp = MemoryFootprint::llm(&presets::gpt3_30b(), spec);
/// // GPT-3-30B at INT8 does not fit one 8 GB TPUv4i…
/// assert!(!fp.fits(&TpuConfig::tpuv4i()));
/// // …it needs a handful of chips just for capacity.
/// assert!(fp.min_devices(&TpuConfig::tpuv4i()) >= 4);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    weights: Bytes,
    kv_cache: Bytes,
    activations: Bytes,
}

impl MemoryFootprint {
    /// Footprint of a full LLM at the end of `spec` (maximum KV occupancy).
    pub fn llm(model: &TransformerConfig, spec: LlmInferenceSpec) -> Self {
        let layers = model.layers();
        let max_ctx = spec.ctx_at_step(spec.output_len().saturating_sub(1));
        let weights = Bytes::new(model.weight_bytes_per_layer().get() * layers);
        let kv_cache = Bytes::new(
            model
                .kv_cache_bytes_per_layer(spec.batch(), max_ctx)
                .get()
                * layers,
        );
        // Activation working set: a few layer-widths of the live batch.
        let activations = Bytes::new(
            4 * spec.batch() * max_ctx * model.d_model() * model.dtype().size_bytes(),
        );
        MemoryFootprint { weights, kv_cache, activations }
    }

    /// Footprint of a DiT forward pass (no KV cache; activations are the
    /// token tensor plus the FFN intermediate).
    ///
    /// # Errors
    ///
    /// Propagates invalid resolutions.
    pub fn dit(
        dit: &DitConfig,
        batch: u64,
        resolution: u64,
    ) -> cimtpu_units::Result<Self> {
        let t = dit.transformer();
        let tokens = dit.tokens_for_resolution(resolution)?;
        let weights = Bytes::new(
            (t.weight_bytes_per_layer().get()
                // adaLN conditioning MLP adds 6d^2 per block.
                + 6 * t.d_model() * t.d_model() * t.dtype().size_bytes())
                * dit.blocks(),
        );
        let activations = Bytes::new(
            batch * tokens * (t.d_model() + t.d_ff()) * t.dtype().size_bytes() * 2,
        );
        Ok(MemoryFootprint {
            weights,
            kv_cache: Bytes::ZERO,
            activations,
        })
    }

    /// Model weight bytes.
    pub fn weights(&self) -> Bytes {
        self.weights
    }

    /// KV-cache bytes at maximum context.
    pub fn kv_cache(&self) -> Bytes {
        self.kv_cache
    }

    /// Activation working-set bytes.
    pub fn activations(&self) -> Bytes {
        self.activations
    }

    /// Total main-memory requirement.
    pub fn total(&self) -> Bytes {
        self.weights + self.kv_cache + self.activations
    }

    /// Whether the footprint fits one chip's main memory.
    pub fn fits(&self, config: &TpuConfig) -> bool {
        self.total() <= config.hbm_capacity()
    }

    /// Minimum number of chips needed to hold the model (weights and KV
    /// shard across devices; activations replicate).
    pub fn min_devices(&self, config: &TpuConfig) -> u64 {
        let cap = config.hbm_capacity().get();
        let replicated = self.activations.get();
        if replicated >= cap {
            return u64::MAX; // activations alone exceed a chip
        }
        let shardable = (self.weights + self.kv_cache).get();
        shardable.div_ceil(cap - replicated).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_models::presets;

    #[test]
    fn gpt3_30b_needs_multiple_chips() {
        let spec = LlmInferenceSpec::paper_fig7(8).unwrap();
        let fp = MemoryFootprint::llm(&presets::gpt3_30b(), spec);
        // ~29.6 GB of weights alone at INT8.
        assert!(fp.weights() > Bytes::from_gib(25));
        assert!(!fp.fits(&TpuConfig::tpuv4i()));
        let n = fp.min_devices(&TpuConfig::tpuv4i());
        assert!((4..=6).contains(&n), "min devices {n}");
    }

    #[test]
    fn small_models_fit_one_chip() {
        let spec = LlmInferenceSpec::new(1, 128, 32).unwrap();
        let fp = MemoryFootprint::llm(&presets::gpt3_6_7b(), spec);
        assert!(fp.fits(&TpuConfig::tpuv4i()), "total {}", fp.total());
        assert_eq!(fp.min_devices(&TpuConfig::tpuv4i()), 1);
    }

    #[test]
    fn dit_xl2_fits_easily() {
        let fp = MemoryFootprint::dit(&presets::dit_xl_2(), 8, 512).unwrap();
        // ~700M params at INT8 plus activations.
        assert!(fp.total() < Bytes::from_gib(2), "total {}", fp.total());
        assert!(fp.fits(&TpuConfig::tpuv4i()));
        assert_eq!(fp.kv_cache(), Bytes::ZERO);
    }

    #[test]
    fn kv_cache_grows_with_batch_and_context() {
        let small = MemoryFootprint::llm(
            &presets::gpt3_30b(),
            LlmInferenceSpec::new(1, 128, 32).unwrap(),
        );
        let big = MemoryFootprint::llm(
            &presets::gpt3_30b(),
            LlmInferenceSpec::new(16, 2048, 512).unwrap(),
        );
        assert!(big.kv_cache() > small.kv_cache() * 100);
        assert_eq!(big.weights(), small.weights());
    }

    #[test]
    fn total_is_sum() {
        let fp = MemoryFootprint::llm(
            &presets::llama2_13b(),
            LlmInferenceSpec::new(4, 512, 128).unwrap(),
        );
        assert_eq!(fp.total(), fp.weights() + fp.kv_cache() + fp.activations());
    }
}
