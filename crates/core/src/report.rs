//! Simulation reports: per-op and per-category latency/energy.

use std::fmt;

use serde::{Deserialize, Serialize};

use cimtpu_models::OpCategory;
use cimtpu_units::{Bytes, Joules, Seconds};

/// Cost of one executed [`OpInstance`](cimtpu_models::OpInstance)
/// (all repetitions included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpReport {
    /// Operator display name.
    pub name: String,
    /// Reporting category (Fig. 6 row).
    pub category: OpCategory,
    /// Repetitions executed.
    pub count: u64,
    /// Total latency contribution.
    pub latency: Seconds,
    /// MXU energy (dynamic + leakage over this op's window).
    pub mxu_energy: Joules,
    /// Dynamic portion of the MXU energy (MACs, weight movement, I/O).
    pub mxu_dynamic: Joules,
    /// Leakage portion of the MXU energy.
    pub mxu_static: Joules,
    /// VPU energy.
    pub vpu_energy: Joules,
    /// Unique main-memory traffic.
    pub hbm_bytes: Bytes,
}

/// One row of a per-category summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryRow {
    /// The category.
    pub category: OpCategory,
    /// Latency attributed to the category.
    pub latency: Seconds,
    /// Fraction of total latency, in `[0, 1]`.
    pub latency_fraction: f64,
    /// MXU energy attributed to the category.
    pub mxu_energy: Joules,
}

/// Full result of simulating a workload on one TPU configuration.
///
/// # Examples
///
/// ```
/// use cimtpu_core::{Simulator, TpuConfig};
/// use cimtpu_models::presets;
///
/// let sim = Simulator::new(TpuConfig::tpuv4i())?;
/// let report = sim.run(&presets::gpt3_30b().prefill_layer(8, 128)?)?;
/// assert!(report.total_latency().get() > 0.0);
/// println!("{report}");
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    name: String,
    config_name: String,
    ops: Vec<OpReport>,
}

impl Report {
    pub(crate) fn new(name: impl Into<String>, config_name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            config_name: config_name.into(),
            ops: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, op: OpReport) {
        self.ops.push(op);
    }

    /// The simulated workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hardware configuration's name.
    pub fn config_name(&self) -> &str {
        &self.config_name
    }

    /// Per-op cost rows in execution order.
    pub fn ops(&self) -> &[OpReport] {
        &self.ops
    }

    /// End-to-end latency (ops execute sequentially on one TensorCore).
    pub fn total_latency(&self) -> Seconds {
        self.ops.iter().map(|o| o.latency).sum()
    }

    /// Total MXU energy (the paper's headline energy metric).
    pub fn mxu_energy(&self) -> Joules {
        self.ops.iter().map(|o| o.mxu_energy).sum()
    }

    /// Dynamic portion of the total MXU energy.
    pub fn mxu_dynamic_energy(&self) -> Joules {
        self.ops.iter().map(|o| o.mxu_dynamic).sum()
    }

    /// Leakage portion of the total MXU energy.
    pub fn mxu_static_energy(&self) -> Joules {
        self.ops.iter().map(|o| o.mxu_static).sum()
    }

    /// Total VPU energy.
    pub fn vpu_energy(&self) -> Joules {
        self.ops.iter().map(|o| o.vpu_energy).sum()
    }

    /// Total unique main-memory traffic.
    pub fn hbm_bytes(&self) -> Bytes {
        self.ops.iter().map(|o| o.hbm_bytes).sum()
    }

    /// Latency attributed to one category.
    pub fn latency_in(&self, category: OpCategory) -> Seconds {
        self.ops
            .iter()
            .filter(|o| o.category == category)
            .map(|o| o.latency)
            .sum()
    }

    /// MXU energy attributed to one category.
    pub fn mxu_energy_in(&self, category: OpCategory) -> Joules {
        self.ops
            .iter()
            .filter(|o| o.category == category)
            .map(|o| o.mxu_energy)
            .sum()
    }

    /// Per-category summary in first-seen order.
    pub fn by_category(&self) -> Vec<CategoryRow> {
        let total = self.total_latency();
        let mut cats: Vec<OpCategory> = Vec::new();
        for op in &self.ops {
            if !cats.contains(&op.category) {
                cats.push(op.category);
            }
        }
        cats.into_iter()
            .map(|category| {
                let latency = self.latency_in(category);
                CategoryRow {
                    category,
                    latency,
                    latency_fraction: if total.get() > 0.0 { latency / total } else { 0.0 },
                    mxu_energy: self.mxu_energy_in(category),
                }
            })
            .collect()
    }

    /// Latency speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &Report) -> f64 {
        baseline.total_latency() / self.total_latency()
    }

    /// MXU-energy reduction factor relative to `baseline` (>1 means less
    /// energy).
    pub fn mxu_energy_reduction_vs(&self, baseline: &Report) -> f64 {
        baseline.mxu_energy().get() / self.mxu_energy().get()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} on {} ==", self.name, self.config_name)?;
        writeln!(
            f,
            "{:<24} {:>12} {:>8} {:>14} {:>12}",
            "category", "latency(ms)", "%", "MXU energy(mJ)", "HBM(MiB)"
        )?;
        for row in self.by_category() {
            let hbm: Bytes = self
                .ops
                .iter()
                .filter(|o| o.category == row.category)
                .map(|o| o.hbm_bytes)
                .sum();
            writeln!(
                f,
                "{:<24} {:>12.4} {:>7.1}% {:>14.4} {:>12.2}",
                row.category.label(),
                row.latency.as_millis(),
                row.latency_fraction * 100.0,
                row.mxu_energy.as_millijoules(),
                hbm.as_mib(),
            )?;
        }
        writeln!(
            f,
            "{:<24} {:>12.4} {:>7.1}% {:>14.4} {:>12.2}",
            "TOTAL",
            self.total_latency().as_millis(),
            100.0,
            self.mxu_energy().as_millijoules(),
            self.hbm_bytes().as_mib(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, cat: OpCategory, ms: f64, mj: f64) -> OpReport {
        OpReport {
            name: name.to_owned(),
            category: cat,
            count: 1,
            latency: Seconds::from_millis(ms),
            mxu_energy: Joules::from_millijoules(mj),
            mxu_dynamic: Joules::from_millijoules(mj),
            mxu_static: Joules::ZERO,
            vpu_energy: Joules::ZERO,
            hbm_bytes: Bytes::new(1024),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let mut r = Report::new("w", "cfg");
        r.push(op("a", OpCategory::QkvGen, 3.0, 5.0));
        r.push(op("b", OpCategory::Attention, 1.0, 1.0));
        assert!((r.total_latency().as_millis() - 4.0).abs() < 1e-9);
        let rows = r.by_category();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].latency_fraction - 0.75).abs() < 1e-9);
        assert_eq!(r.hbm_bytes(), Bytes::new(2048));
    }

    #[test]
    fn speedup_and_energy_ratio() {
        let mut base = Report::new("w", "base");
        base.push(op("a", OpCategory::QkvGen, 4.0, 10.0));
        let mut fast = Report::new("w", "cim");
        fast.push(op("a", OpCategory::QkvGen, 2.0, 1.0));
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-9);
        assert!((fast.mxu_energy_reduction_vs(&base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_all_categories() {
        let mut r = Report::new("w", "cfg");
        r.push(op("a", OpCategory::QkvGen, 1.0, 1.0));
        r.push(op("s", OpCategory::Gelu, 1.0, 0.0));
        let s = r.to_string();
        assert!(s.contains("QKV Gen"));
        assert!(s.contains("GeLU"));
        assert!(s.contains("TOTAL"));
    }
}
