//! The CIM-based TPU architecture model and simulator.
//!
//! This crate composes the substrates into the system the paper evaluates:
//!
//! - [`TpuConfig`] — Table I parameters (clock, MXU count and kind, VPU,
//!   VMEM/CMEM/HBM, ICI links) with presets for the **TPUv4i baseline**,
//!   the default **CIM-based TPU**, every **Table IV design point**, and
//!   the optimized **Design A** (LLM) / **Design B** (DiT);
//! - [`MatrixEngine`] — a digital systolic MXU or a CIM-MXU behind one
//!   interface, including the batched-attention path where the two
//!   architectures differ most (weight-FIFO streaming vs bit-serial
//!   broadcast with grid-row packing);
//! - [`VpuConfig`] — the vector unit (online softmax, LayerNorm, tanh-GeLU);
//! - [`Simulator`] — executes a [`Workload`](cimtpu_models::Workload)
//!   operator by operator through the mapping engine, overlapping compute
//!   with HBM/OCI DMA, and produces a [`Report`] with per-category latency
//!   and MXU energy (the Fig. 6 rows);
//! - [`ExecutionContext`] — segment-level pricing on top of the simulator:
//!   price a phase segment once, replay it per request (the substrate of
//!   the `cimtpu-serving` request-level simulator);
//! - [`inference`] — end-to-end LLM inference (prefill + integrated
//!   decode) and DiT forward passes used by the Fig. 7 exploration.
//!
//! # Examples
//!
//! ```
//! use cimtpu_core::{Simulator, TpuConfig};
//! use cimtpu_models::presets;
//!
//! let baseline = Simulator::new(TpuConfig::tpuv4i())?;
//! let cim = Simulator::new(TpuConfig::cim_base())?;
//!
//! let decode = presets::gpt3_30b().decode_layer(8, 1280)?;
//! let base_rep = baseline.run(&decode)?;
//! let cim_rep = cim.run(&decode)?;
//!
//! // The paper's headline decode results: CIM is faster and far more
//! // energy-efficient on the memory-bound decoding stage.
//! assert!(cim_rep.total_latency() < base_rep.total_latency());
//! assert!(cim_rep.mxu_energy().get() * 5.0 < base_rep.mxu_energy().get());
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod cache;
mod context;
mod engine;
mod exec;
pub mod inference;
pub mod memory;
mod report;
pub mod roofline;
mod simulator;
pub mod timeline;
mod vpu;

pub use arch::{MxuKind, TpuConfig};
pub use cache::{CacheStats, MappingCache, CACHE_DIR_ENV};
pub use context::{ExecutionContext, PhasedReport, SegmentCost, SegmentReport};
pub use engine::MatrixEngine;
pub use report::{CategoryRow, OpReport, Report};
pub use simulator::Simulator;
pub use vpu::VpuConfig;
