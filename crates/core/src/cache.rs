//! Memoized operator pricing for the simulator hot path.
//!
//! A [`Simulator`](crate::Simulator) prices each distinct matrix operator
//! through the mapping engine (a Timeloop-style map-space search) and the
//! engine energy model. The same `(shape, dtype, residency)` queries recur
//! constantly — identical transformer layers, the decode-context samples of
//! [`inference::run_llm`](crate::inference::run_llm), and repeated
//! experiment sweeps on one configuration — so the simulator memoizes each
//! query's [`OpCost`] in a [`MappingCache`] and prices it exactly once.
//!
//! The cache uses interior mutability (`RefCell`/`Cell`): simulation keeps
//! its `&self` API, and each simulator owns its own cache (a `Simulator`
//! is `Send` but deliberately not `Sync`; parallel sweeps run one
//! simulator per worker). The engine/memory-hierarchy *fingerprint*
//! recorded at construction identifies the configuration the entries are
//! valid for; the simulator debug-asserts the match on every run (see
//! [`MappingCache::matches`]).

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use cimtpu_units::{Bytes, DataType, GemmShape, Joules, Result, Seconds};

use crate::arch::TpuConfig;
use crate::exec::OpCost;

/// Environment variable naming the directory where mapping caches persist
/// across processes (one file per configuration fingerprint). Unset means
/// in-memory only.
pub const CACHE_DIR_ENV: &str = "CIMTPU_CACHE_DIR";

/// Cache key: one matrix-operator pricing query.
///
/// Vector-unit operators are not cached — their closed-form pricing is
/// cheaper than a hash lookup, and excluding them keeps the hit-rate
/// statistics focused on the expensive map-space searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PriceKey {
    /// A weight GEMM routed through the mapping engine.
    Gemm {
        /// Full (pre-split) GEMM shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
        /// Whether weights were already resident on chip.
        weights_resident: bool,
    },
    /// A batched attention/expert matmul priced on the engine directly.
    Batched {
        /// Independent items in the batch.
        batch: u64,
        /// Per-item shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
        /// Whether per-item weights are static parameters.
        static_weights: bool,
    },
}

/// Observability snapshot of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the full pricing path.
    pub misses: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of queries served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoization table mapping pricing queries to operator costs.
///
/// Owned by one [`Simulator`](crate::Simulator); see the module-level
/// comments in `cache.rs` for the design rationale.
#[derive(Debug, Clone)]
pub struct MappingCache {
    entries: RefCell<HashMap<PriceKey, OpCost>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    enabled: Cell<bool>,
    fingerprint: u64,
}

impl MappingCache {
    /// Creates an enabled, empty cache bound to `config`'s fingerprint.
    pub(crate) fn for_config(config: &TpuConfig) -> Self {
        MappingCache {
            entries: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            enabled: Cell::new(true),
            fingerprint: fingerprint_of(config),
        }
    }

    /// Returns the cached cost for `key`, or prices it via `compute` and
    /// stores the result. Disabled caches always call `compute`.
    pub(crate) fn get_or_try_insert(
        &self,
        key: PriceKey,
        compute: impl FnOnce() -> Result<OpCost>,
    ) -> Result<OpCost> {
        if !self.enabled.get() {
            return compute();
        }
        if let Some(cost) = self.entries.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Ok(*cost);
        }
        let cost = compute()?;
        self.misses.set(self.misses.get() + 1);
        self.entries.borrow_mut().insert(key, cost);
        Ok(cost)
    }

    /// Hit/miss/occupancy counters since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.entries.borrow().len(),
        }
    }

    /// Fingerprint of the hardware configuration this cache prices for
    /// (hash of the engine, MXU count, clock, and memory hierarchy).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this cache was built for `config` (fingerprint match). The
    /// simulator asserts this on every run in debug builds, so a future
    /// config setter or cache-sharing scheme cannot silently serve stale
    /// entries.
    pub fn matches(&self, config: &TpuConfig) -> bool {
        self.fingerprint == fingerprint_of(config)
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Enables or disables memoization (used by benchmarks to measure the
    /// uncached path; results are identical either way).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }

    /// The file this cache persists to inside a cache directory: one file
    /// per configuration fingerprint, so caches of different configs never
    /// mix.
    pub fn persist_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("mapcache-v1-{:016x}.tsv", self.fingerprint))
    }

    /// Loads previously persisted entries for this fingerprint from `dir`,
    /// inserting any not already present. Loaded entries count as neither
    /// hits nor misses. Returns the number of entries inserted; a missing
    /// file loads zero entries, and malformed lines are skipped (a
    /// truncated file from a crashed writer must not poison later runs).
    ///
    /// # Errors
    ///
    /// Returns an error only for I/O failures other than "not found".
    pub fn load_from_dir(&self, dir: &Path) -> std::io::Result<usize> {
        let text = match std::fs::read_to_string(self.persist_path(dir)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut inserted = 0;
        let mut entries = self.entries.borrow_mut();
        for line in text.lines() {
            if let Some((key, cost)) = parse_entry(line) {
                entries.entry(key).or_insert_with(|| {
                    inserted += 1;
                    cost
                });
            }
        }
        Ok(inserted)
    }

    /// Persists this cache's entries under `dir` (created if absent),
    /// merged with whatever the file held when the save started. The write
    /// is atomic (unique temp file + rename), so readers never observe a
    /// half-written file; with *concurrent* savers of the same fingerprint
    /// the merge is best-effort (last rename wins and may miss entries the
    /// other saver added meanwhile — harmless, since entries are
    /// recomputable and correctness never depends on the file). Returns
    /// the number of entries in this saver's merged file.
    ///
    /// Costs round-trip exactly: floats are stored as IEEE-754 bit
    /// patterns, so a warm-from-disk simulator is bit-identical to the one
    /// that wrote the file.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        // Merge-on-save: union with the file's current contents so
        // concurrent sweep workers only ever add entries.
        let mut merged: HashMap<PriceKey, OpCost> = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(self.persist_path(dir)) {
            merged.extend(text.lines().filter_map(parse_entry));
        }
        for (key, cost) in self.entries.borrow().iter() {
            merged.insert(*key, *cost);
        }

        let mut lines: Vec<String> = merged
            .iter()
            .map(|(key, cost)| format_entry(key, cost))
            .collect();
        lines.sort_unstable(); // deterministic file contents

        // Unique per process *and* per call: concurrent saves of the same
        // fingerprint (e.g. two serving scenarios on one chip config fanned
        // out over threads) must never write through the same temp file.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".mapcache-{:016x}-{}-{seq}.tmp",
            self.fingerprint,
            std::process::id()
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            for line in &lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.persist_path(dir))?;
        Ok(merged.len())
    }
}

fn dtype_tag(dtype: DataType) -> &'static str {
    match dtype {
        DataType::Int8 => "int8",
        DataType::Bf16 => "bf16",
        DataType::Fp32 => "fp32",
    }
}

fn parse_dtype(tag: &str) -> Option<DataType> {
    match tag {
        "int8" => Some(DataType::Int8),
        "bf16" => Some(DataType::Bf16),
        "fp32" => Some(DataType::Fp32),
        _ => None,
    }
}

/// One cache entry as a line of space-separated fields. Floats are encoded
/// as hex bit patterns — exact round-trip is what makes a disk-warmed
/// cache bit-identical to an in-process one.
fn format_entry(key: &PriceKey, cost: &OpCost) -> String {
    let costs = format!(
        "{:016x} {:016x} {:016x} {}",
        cost.latency.get().to_bits(),
        cost.mxu_dynamic.get().to_bits(),
        cost.vpu_energy.get().to_bits(),
        cost.hbm_bytes.get(),
    );
    match *key {
        PriceKey::Gemm { shape, dtype, weights_resident } => format!(
            "G {} {} {} {} {} {costs}",
            shape.m(),
            shape.k(),
            shape.n(),
            dtype_tag(dtype),
            u8::from(weights_resident),
        ),
        PriceKey::Batched { batch, shape, dtype, static_weights } => format!(
            "B {batch} {} {} {} {} {} {costs}",
            shape.m(),
            shape.k(),
            shape.n(),
            dtype_tag(dtype),
            u8::from(static_weights),
        ),
    }
}

fn parse_entry(line: &str) -> Option<(PriceKey, OpCost)> {
    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
    let (key, rest) = match *fields.first()? {
        "G" if fields.len() == 10 => {
            let shape = GemmShape::new(
                fields[1].parse().ok()?,
                fields[2].parse().ok()?,
                fields[3].parse().ok()?,
            )
            .ok()?;
            let key = PriceKey::Gemm {
                shape,
                dtype: parse_dtype(fields[4])?,
                weights_resident: fields[5] == "1",
            };
            (key, &fields[6..])
        }
        "B" if fields.len() == 11 => {
            let shape = GemmShape::new(
                fields[2].parse().ok()?,
                fields[3].parse().ok()?,
                fields[4].parse().ok()?,
            )
            .ok()?;
            let key = PriceKey::Batched {
                batch: fields[1].parse().ok()?,
                shape,
                dtype: parse_dtype(fields[5])?,
                static_weights: fields[6] == "1",
            };
            (key, &fields[7..])
        }
        _ => return None,
    };
    let bits = |s: &str| u64::from_str_radix(s, 16).ok();
    Some((
        key,
        OpCost {
            latency: Seconds::new(f64::from_bits(bits(rest[0])?)),
            mxu_dynamic: Joules::new(f64::from_bits(bits(rest[1])?)),
            vpu_energy: Joules::new(f64::from_bits(bits(rest[2])?)),
            hbm_bytes: Bytes::new(rest[3].parse().ok()?),
        },
    ))
}

/// Hashes every configuration field that influences matrix-operator
/// pricing: the full MXU configuration (serialized, so every engine knob
/// counts), the MXU count, the clock, and the memory hierarchy.
fn fingerprint_of(config: &TpuConfig) -> u64 {
    let mut h = DefaultHasher::new();
    hash_value(&serde::Serialize::to_value(config.mxu()), &mut h);
    config.mxu_count().hash(&mut h);
    config.clock().get().to_bits().hash(&mut h);
    hash_value(&serde::Serialize::to_value(config.levels()), &mut h);
    h.finish()
}

/// Structural hash over a serialized value tree (floats hash by bits).
fn hash_value(v: &serde::Value, h: &mut DefaultHasher) {
    use serde::Value;
    match v {
        Value::Null => 0u8.hash(h),
        Value::Bool(b) => (1u8, b).hash(h),
        Value::U64(x) => (2u8, x).hash(h),
        Value::I64(x) => (3u8, x).hash(h),
        Value::F64(x) => (4u8, x.to_bits()).hash(h),
        Value::Str(s) => (5u8, s).hash(h),
        Value::Seq(items) => {
            (6u8, items.len()).hash(h);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Map(entries) => {
            (7u8, entries.len()).hash(h);
            for (key, value) in entries {
                key.hash(h);
                hash_value(value, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_units::{Bytes, Joules, Seconds};

    fn cost(ms: f64) -> OpCost {
        OpCost {
            latency: Seconds::from_millis(ms),
            mxu_dynamic: Joules::ZERO,
            vpu_energy: Joules::ZERO,
            hbm_bytes: Bytes::ZERO,
        }
    }

    fn key(m: u64) -> PriceKey {
        PriceKey::Gemm {
            shape: GemmShape::new(m, 128, 128).unwrap(),
            dtype: DataType::Int8,
            weights_resident: false,
        }
    }

    #[test]
    fn caches_and_counts() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        let mut computed = 0;
        for _ in 0..3 {
            let c = cache
                .get_or_try_insert(key(8), || {
                    computed += 1;
                    Ok(cost(1.0))
                })
                .unwrap();
            assert_eq!(c, cost(1.0));
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        cache.set_enabled(false);
        let mut computed = 0;
        for _ in 0..3 {
            cache
                .get_or_try_insert(key(8), || {
                    computed += 1;
                    Ok(cost(1.0))
                })
                .unwrap();
        }
        assert_eq!(computed, 3);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        let r = cache.get_or_try_insert(key(8), || {
            Err(cimtpu_units::Error::unmappable("nope"))
        });
        assert!(r.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful computation still lands.
        cache.get_or_try_insert(key(8), || Ok(cost(2.0))).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn fingerprints_separate_configs() {
        let a = MappingCache::for_config(&TpuConfig::tpuv4i());
        let b = MappingCache::for_config(&TpuConfig::cim_base());
        let c = MappingCache::for_config(&TpuConfig::tpuv4i());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cimtpu-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn full_cost(ms: f64) -> OpCost {
        OpCost {
            latency: Seconds::from_millis(ms),
            mxu_dynamic: Joules::new(ms * 0.125 + 1e-9), // non-trivial bit patterns
            vpu_energy: Joules::new(ms / 3.0),
            hbm_bytes: Bytes::new((ms * 1024.0) as u64),
        }
    }

    #[test]
    fn persisted_entries_round_trip_bit_exactly() {
        let dir = temp_cache_dir("roundtrip");
        let writer = MappingCache::for_config(&TpuConfig::tpuv4i());
        writer.get_or_try_insert(key(8), || Ok(full_cost(1.0 / 3.0))).unwrap();
        let batched = PriceKey::Batched {
            batch: 448,
            shape: GemmShape::new(1, 128, 1024).unwrap(),
            dtype: DataType::Bf16,
            static_weights: true,
        };
        writer.get_or_try_insert(batched, || Ok(full_cost(0.7))).unwrap();
        assert_eq!(writer.save_to_dir(&dir).unwrap(), 2);

        let reader = MappingCache::for_config(&TpuConfig::tpuv4i());
        assert_eq!(reader.load_from_dir(&dir).unwrap(), 2);
        // Loaded entries answer without recomputing, bit-identically.
        let c = reader.get_or_try_insert(key(8), || unreachable!()).unwrap();
        assert_eq!(c, full_cost(1.0 / 3.0));
        let c = reader.get_or_try_insert(batched, || unreachable!()).unwrap();
        assert_eq!(c, full_cost(0.7));
        // Loading counts as neither hit nor miss.
        assert_eq!(reader.stats().misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_merges_with_existing_file() {
        let dir = temp_cache_dir("merge");
        let a = MappingCache::for_config(&TpuConfig::tpuv4i());
        a.get_or_try_insert(key(8), || Ok(full_cost(1.0))).unwrap();
        a.save_to_dir(&dir).unwrap();

        let b = MappingCache::for_config(&TpuConfig::tpuv4i());
        b.get_or_try_insert(key(16), || Ok(full_cost(2.0))).unwrap();
        assert_eq!(b.save_to_dir(&dir).unwrap(), 2, "second save unions entries");

        let c = MappingCache::for_config(&TpuConfig::tpuv4i());
        assert_eq!(c.load_from_dir(&dir).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_shard_saves_match_one_process() {
        // The sharded-sweep workflow (`repro_all --shard i/n` over a
        // shared CIMTPU_CACHE_DIR): each shard warm-starts from the
        // directory, prices its slice, and merge-saves. Two shards over
        // disjoint slices must leave byte-identical files to one process
        // pricing everything.
        let sharded = temp_cache_dir("two-shards");
        let whole = temp_cache_dir("one-process");

        let s0 = MappingCache::for_config(&TpuConfig::tpuv4i());
        s0.load_from_dir(&sharded).unwrap();
        for m in [8, 32] {
            s0.get_or_try_insert(key(m), || Ok(full_cost(m as f64 / 3.0))).unwrap();
        }
        s0.save_to_dir(&sharded).unwrap();

        let s1 = MappingCache::for_config(&TpuConfig::tpuv4i());
        s1.load_from_dir(&sharded).unwrap();
        for m in [16, 64] {
            s1.get_or_try_insert(key(m), || Ok(full_cost(m as f64 / 3.0))).unwrap();
        }
        s1.save_to_dir(&sharded).unwrap();

        let one = MappingCache::for_config(&TpuConfig::tpuv4i());
        for m in [8, 16, 32, 64] {
            one.get_or_try_insert(key(m), || Ok(full_cost(m as f64 / 3.0))).unwrap();
        }
        one.save_to_dir(&whole).unwrap();

        let a = std::fs::read_to_string(one.persist_path(&sharded)).unwrap();
        let b = std::fs::read_to_string(one.persist_path(&whole)).unwrap();
        assert_eq!(a, b, "sharded merge differs from the one-process file");
        let _ = std::fs::remove_dir_all(&sharded);
        let _ = std::fs::remove_dir_all(&whole);
    }

    #[test]
    fn different_fingerprints_use_different_files() {
        let dir = temp_cache_dir("fingerprints");
        let v4i = MappingCache::for_config(&TpuConfig::tpuv4i());
        v4i.get_or_try_insert(key(8), || Ok(full_cost(1.0))).unwrap();
        v4i.save_to_dir(&dir).unwrap();

        let cim = MappingCache::for_config(&TpuConfig::cim_base());
        assert_eq!(cim.load_from_dir(&dir).unwrap(), 0, "wrong config loads nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = temp_cache_dir("malformed");
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        cache.get_or_try_insert(key(8), || Ok(full_cost(1.0))).unwrap();
        cache.save_to_dir(&dir).unwrap();
        // Corrupt the file: garbage line + truncated line + valid entries.
        let path = cache.persist_path(&dir);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not an entry\nG 1 2\n");
        std::fs::write(&path, text).unwrap();

        let reader = MappingCache::for_config(&TpuConfig::tpuv4i());
        assert_eq!(reader.load_from_dir(&dir).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_loads_nothing() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        let dir = temp_cache_dir("absent");
        assert_eq!(cache.load_from_dir(&dir).unwrap(), 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        cache.get_or_try_insert(key(8), || Ok(cost(1.0))).unwrap();
        cache.get_or_try_insert(key(16), || Ok(cost(2.0))).unwrap();
        let batched = PriceKey::Batched {
            batch: 8,
            shape: GemmShape::new(8, 128, 128).unwrap(),
            dtype: DataType::Int8,
            static_weights: false,
        };
        cache.get_or_try_insert(batched, || Ok(cost(3.0))).unwrap();
        assert_eq!(cache.stats().entries, 3);
        let c = cache.get_or_try_insert(key(16), || unreachable!()).unwrap();
        assert_eq!(c, cost(2.0));
    }
}
