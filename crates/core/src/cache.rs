//! Memoized operator pricing for the simulator hot path.
//!
//! A [`Simulator`](crate::Simulator) prices each distinct matrix operator
//! through the mapping engine (a Timeloop-style map-space search) and the
//! engine energy model. The same `(shape, dtype, residency)` queries recur
//! constantly — identical transformer layers, the decode-context samples of
//! [`inference::run_llm`](crate::inference::run_llm), and repeated
//! experiment sweeps on one configuration — so the simulator memoizes each
//! query's [`OpCost`] in a [`MappingCache`] and prices it exactly once.
//!
//! The cache uses interior mutability (`RefCell`/`Cell`): simulation keeps
//! its `&self` API, and each simulator owns its own cache (a `Simulator`
//! is `Send` but deliberately not `Sync`; parallel sweeps run one
//! simulator per worker). The engine/memory-hierarchy *fingerprint*
//! recorded at construction identifies the configuration the entries are
//! valid for; the simulator debug-asserts the match on every run (see
//! [`MappingCache::matches`]).

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use cimtpu_units::{DataType, GemmShape, Result};

use crate::arch::TpuConfig;
use crate::exec::OpCost;

/// Cache key: one matrix-operator pricing query.
///
/// Vector-unit operators are not cached — their closed-form pricing is
/// cheaper than a hash lookup, and excluding them keeps the hit-rate
/// statistics focused on the expensive map-space searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PriceKey {
    /// A weight GEMM routed through the mapping engine.
    Gemm {
        /// Full (pre-split) GEMM shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
        /// Whether weights were already resident on chip.
        weights_resident: bool,
    },
    /// A batched attention/expert matmul priced on the engine directly.
    Batched {
        /// Independent items in the batch.
        batch: u64,
        /// Per-item shape.
        shape: GemmShape,
        /// Operand precision.
        dtype: DataType,
        /// Whether per-item weights are static parameters.
        static_weights: bool,
    },
}

/// Observability snapshot of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run the full pricing path.
    pub misses: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of queries served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoization table mapping pricing queries to operator costs.
///
/// Owned by one [`Simulator`](crate::Simulator); see the [module
/// documentation](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct MappingCache {
    entries: RefCell<HashMap<PriceKey, OpCost>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    enabled: Cell<bool>,
    fingerprint: u64,
}

impl MappingCache {
    /// Creates an enabled, empty cache bound to `config`'s fingerprint.
    pub(crate) fn for_config(config: &TpuConfig) -> Self {
        MappingCache {
            entries: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            enabled: Cell::new(true),
            fingerprint: fingerprint_of(config),
        }
    }

    /// Returns the cached cost for `key`, or prices it via `compute` and
    /// stores the result. Disabled caches always call `compute`.
    pub(crate) fn get_or_try_insert(
        &self,
        key: PriceKey,
        compute: impl FnOnce() -> Result<OpCost>,
    ) -> Result<OpCost> {
        if !self.enabled.get() {
            return compute();
        }
        if let Some(cost) = self.entries.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Ok(*cost);
        }
        let cost = compute()?;
        self.misses.set(self.misses.get() + 1);
        self.entries.borrow_mut().insert(key, cost);
        Ok(cost)
    }

    /// Hit/miss/occupancy counters since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.entries.borrow().len(),
        }
    }

    /// Fingerprint of the hardware configuration this cache prices for
    /// (hash of the engine, MXU count, clock, and memory hierarchy).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this cache was built for `config` (fingerprint match). The
    /// simulator asserts this on every run in debug builds, so a future
    /// config setter or cache-sharing scheme cannot silently serve stale
    /// entries.
    pub fn matches(&self, config: &TpuConfig) -> bool {
        self.fingerprint == fingerprint_of(config)
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Enables or disables memoization (used by benchmarks to measure the
    /// uncached path; results are identical either way).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
        self.hits.set(0);
        self.misses.set(0);
    }
}

/// Hashes every configuration field that influences matrix-operator
/// pricing: the full MXU configuration (serialized, so every engine knob
/// counts), the MXU count, the clock, and the memory hierarchy.
fn fingerprint_of(config: &TpuConfig) -> u64 {
    let mut h = DefaultHasher::new();
    hash_value(&serde::Serialize::to_value(config.mxu()), &mut h);
    config.mxu_count().hash(&mut h);
    config.clock().get().to_bits().hash(&mut h);
    hash_value(&serde::Serialize::to_value(config.levels()), &mut h);
    h.finish()
}

/// Structural hash over a serialized value tree (floats hash by bits).
fn hash_value(v: &serde::Value, h: &mut DefaultHasher) {
    use serde::Value;
    match v {
        Value::Null => 0u8.hash(h),
        Value::Bool(b) => (1u8, b).hash(h),
        Value::U64(x) => (2u8, x).hash(h),
        Value::I64(x) => (3u8, x).hash(h),
        Value::F64(x) => (4u8, x.to_bits()).hash(h),
        Value::Str(s) => (5u8, s).hash(h),
        Value::Seq(items) => {
            (6u8, items.len()).hash(h);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Map(entries) => {
            (7u8, entries.len()).hash(h);
            for (key, value) in entries {
                key.hash(h);
                hash_value(value, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_units::{Bytes, Joules, Seconds};

    fn cost(ms: f64) -> OpCost {
        OpCost {
            latency: Seconds::from_millis(ms),
            mxu_dynamic: Joules::ZERO,
            vpu_energy: Joules::ZERO,
            hbm_bytes: Bytes::ZERO,
        }
    }

    fn key(m: u64) -> PriceKey {
        PriceKey::Gemm {
            shape: GemmShape::new(m, 128, 128).unwrap(),
            dtype: DataType::Int8,
            weights_resident: false,
        }
    }

    #[test]
    fn caches_and_counts() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        let mut computed = 0;
        for _ in 0..3 {
            let c = cache
                .get_or_try_insert(key(8), || {
                    computed += 1;
                    Ok(cost(1.0))
                })
                .unwrap();
            assert_eq!(c, cost(1.0));
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        cache.set_enabled(false);
        let mut computed = 0;
        for _ in 0..3 {
            cache
                .get_or_try_insert(key(8), || {
                    computed += 1;
                    Ok(cost(1.0))
                })
                .unwrap();
        }
        assert_eq!(computed, 3);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        let r = cache.get_or_try_insert(key(8), || {
            Err(cimtpu_units::Error::unmappable("nope"))
        });
        assert!(r.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful computation still lands.
        cache.get_or_try_insert(key(8), || Ok(cost(2.0))).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn fingerprints_separate_configs() {
        let a = MappingCache::for_config(&TpuConfig::tpuv4i());
        let b = MappingCache::for_config(&TpuConfig::cim_base());
        let c = MappingCache::for_config(&TpuConfig::tpuv4i());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = MappingCache::for_config(&TpuConfig::tpuv4i());
        cache.get_or_try_insert(key(8), || Ok(cost(1.0))).unwrap();
        cache.get_or_try_insert(key(16), || Ok(cost(2.0))).unwrap();
        let batched = PriceKey::Batched {
            batch: 8,
            shape: GemmShape::new(8, 128, 128).unwrap(),
            dtype: DataType::Int8,
            static_weights: false,
        };
        cache.get_or_try_insert(batched, || Ok(cost(3.0))).unwrap();
        assert_eq!(cache.stats().entries, 3);
        let c = cache.get_or_try_insert(key(16), || unreachable!()).unwrap();
        assert_eq!(c, cost(2.0));
    }
}
