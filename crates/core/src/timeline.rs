//! Execution timeline: when each operator runs within a simulated window.
//!
//! Operators execute sequentially on the TensorCore (matrix ops and vector
//! ops share the same instruction stream in this model), so a [`Report`]
//! induces a timeline directly. [`Timeline::render_ascii`] draws a Gantt
//! chart that makes bottlenecks visually obvious — e.g. the softmax bar
//! dominating a DiT block.
//!
//! # Examples
//!
//! ```
//! use cimtpu_core::{timeline::Timeline, Simulator, TpuConfig};
//! use cimtpu_models::presets;
//!
//! let sim = Simulator::new(TpuConfig::tpuv4i())?;
//! let report = sim.run(&presets::gpt3_30b().decode_layer(8, 1280)?)?;
//! let t = Timeline::from_report(&report);
//! println!("{}", t.render_ascii(60));
//! assert!(t.spans().len() > 5);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use serde::{Deserialize, Serialize};

use cimtpu_models::OpCategory;
use cimtpu_units::Seconds;

use crate::report::Report;

/// One operator's occupancy interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Operator name.
    pub name: String,
    /// Reporting category.
    pub category: OpCategory,
    /// Start offset from the workload's beginning.
    pub start: Seconds,
    /// Duration (all repetitions).
    pub duration: Seconds,
}

impl Span {
    /// End offset of the span.
    pub fn end(&self) -> Seconds {
        self.start + self.duration
    }
}

/// A sequential execution timeline derived from a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    name: String,
    spans: Vec<Span>,
}

impl Timeline {
    /// Builds the timeline of a report (ops in execution order).
    pub fn from_report(report: &Report) -> Self {
        let mut spans = Vec::with_capacity(report.ops().len());
        let mut cursor = Seconds::ZERO;
        for op in report.ops() {
            spans.push(Span {
                name: op.name.clone(),
                category: op.category,
                start: cursor,
                duration: op.latency,
            });
            cursor += op.latency;
        }
        Timeline {
            name: report.name().to_owned(),
            spans,
        }
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All spans in execution order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total duration.
    pub fn total(&self) -> Seconds {
        self.spans.last().map_or(Seconds::ZERO, Span::end)
    }

    /// Renders an ASCII Gantt chart `width` characters wide.
    ///
    /// Spans shorter than half a character cell are still drawn with one
    /// `·` so nothing disappears entirely.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let total = self.total().get();
        if total <= 0.0 {
            return format!("{}: empty timeline\n", self.name);
        }
        let label_w = self
            .spans
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .min(28);
        let mut out = String::new();
        out.push_str(&format!(
            "{} — total {:.4} ms\n",
            self.name,
            self.total().as_millis()
        ));
        for span in &self.spans {
            let start = ((span.start.get() / total) * width as f64).round() as usize;
            let mut len = ((span.duration.get() / total) * width as f64).round() as usize;
            let ch = if len == 0 {
                len = 1;
                '·'
            } else {
                '█'
            };
            let start = start.min(width.saturating_sub(1));
            let len = len.min(width - start);
            let mut name = span.name.clone();
            name.truncate(label_w);
            out.push_str(&format!(
                "{name:<label_w$} |{}{}{}| {:>9.4} ms\n",
                " ".repeat(start),
                ch.to_string().repeat(len),
                " ".repeat(width - start - len),
                span.duration.as_millis(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TpuConfig;
    use crate::simulator::Simulator;
    use cimtpu_models::presets;

    fn timeline() -> Timeline {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let report = sim
            .run(&presets::gpt3_30b().decode_layer(8, 1280).unwrap())
            .unwrap();
        Timeline::from_report(&report)
    }

    #[test]
    fn spans_are_contiguous() {
        let t = timeline();
        for pair in t.spans().windows(2) {
            assert!((pair[0].end().get() - pair[1].start.get()).abs() < 1e-15);
        }
        assert!(t.total().get() > 0.0);
    }

    #[test]
    fn total_matches_report() {
        let sim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let report = sim
            .run(&presets::dit_xl_2().block(8, 256).unwrap())
            .unwrap();
        let t = Timeline::from_report(&report);
        assert!((t.total().get() - report.total_latency().get()).abs() < 1e-12);
    }

    #[test]
    fn ascii_renders_every_span() {
        let t = timeline();
        let s = t.render_ascii(60);
        assert_eq!(s.lines().count(), t.spans().len() + 1);
        assert!(s.contains("QKV Gen"));
        assert!(s.contains('█'));
    }

    #[test]
    fn tiny_spans_still_visible() {
        let t = timeline();
        let s = t.render_ascii(40);
        // LayerNorm in a decode layer is microseconds on a ms-scale chart.
        assert!(s.contains('·'), "tiny spans should render as dots:\n{s}");
    }
}
