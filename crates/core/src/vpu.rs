//! The vector processing unit (VPU) model.
//!
//! The TPUv4i VPU is an 8×128-lane SIMD engine; it executes everything the
//! MXU cannot: softmax (with the online-normalizer algorithm of Milakov &
//! Gimelshein, as in the paper), LayerNorm, GeLU (tanh approximation, as in
//! DiT), elementwise glue, and the shift/scale modulation of DiT blocks.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Cycles, Joules, Watts};

/// Vector-unit geometry and per-element operation costs.
///
/// # Examples
///
/// ```
/// use cimtpu_core::VpuConfig;
/// let vpu = VpuConfig::tpuv4i();
/// assert_eq!(vpu.lanes(), 1024);
/// // Online softmax costs ~12 vector ops per element.
/// let c = vpu.softmax_cycles(8, 1024);
/// assert!(c.get() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VpuConfig {
    lanes: u64,
    /// Vector ops per element for online softmax (max pass fused with exp
    /// and running sum, then a normalization pass).
    softmax_ops_per_elem: u32,
    /// Vector ops per element for LayerNorm (mean/var pass + normalize).
    layernorm_ops_per_elem: u32,
    /// Vector ops per element for tanh-approximated GeLU.
    gelu_ops_per_elem: u32,
    /// Dynamic energy per vector lane-op.
    energy_per_op: Joules,
    /// Leakage of the whole VPU.
    static_power: Watts,
}

impl VpuConfig {
    /// The TPUv4i vector unit: 8 × 128 lanes.
    pub fn tpuv4i() -> Self {
        VpuConfig {
            lanes: 8 * 128,
            softmax_ops_per_elem: 12,
            layernorm_ops_per_elem: 8,
            gelu_ops_per_elem: 12,
            energy_per_op: Joules::from_picojoules(1.2),
            static_power: Watts::new(0.8),
        }
    }

    /// Number of SIMD lanes.
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// Dynamic energy of one lane-op.
    pub fn energy_per_op(&self) -> Joules {
        self.energy_per_op
    }

    /// VPU leakage power.
    pub fn static_power(&self) -> Watts {
        self.static_power
    }

    /// Overrides the softmax per-element cost (for sensitivity studies).
    #[must_use]
    pub fn with_softmax_ops_per_elem(mut self, ops: u32) -> Self {
        self.softmax_ops_per_elem = ops;
        self
    }

    fn elementwise(&self, elems: u64, ops_per_elem: u32) -> Cycles {
        Cycles::new((elems * u64::from(ops_per_elem)).div_ceil(self.lanes))
    }

    /// Cycles for a row-wise online softmax over `rows × cols`.
    pub fn softmax_cycles(&self, rows: u64, cols: u64) -> Cycles {
        self.elementwise(rows * cols, self.softmax_ops_per_elem)
    }

    /// Cycles for LayerNorm over `rows` vectors of length `d`.
    pub fn layernorm_cycles(&self, rows: u64, d: u64) -> Cycles {
        self.elementwise(rows * d, self.layernorm_ops_per_elem)
    }

    /// Cycles for tanh-GeLU over `elems` elements.
    pub fn gelu_cycles(&self, elems: u64) -> Cycles {
        self.elementwise(elems, self.gelu_ops_per_elem)
    }

    /// Cycles for generic elementwise work.
    pub fn elementwise_cycles(&self, elems: u64, ops_per_elem: u32) -> Cycles {
        self.elementwise(elems, ops_per_elem)
    }

    /// Dynamic energy for `elems × ops_per_elem` lane-ops.
    pub fn dynamic_energy(&self, elems: u64, ops_per_elem: u32) -> Joules {
        Joules::new(self.energy_per_op.get() * (elems * u64::from(ops_per_elem)) as f64)
    }

    /// Lane-op count for each vector operator, used for energy accounting.
    pub fn softmax_ops(&self, rows: u64, cols: u64) -> u64 {
        rows * cols * u64::from(self.softmax_ops_per_elem)
    }

    /// Lane-op count of a LayerNorm.
    pub fn layernorm_ops(&self, rows: u64, d: u64) -> u64 {
        rows * d * u64::from(self.layernorm_ops_per_elem)
    }

    /// Lane-op count of a GeLU.
    pub fn gelu_ops(&self, elems: u64) -> u64 {
        elems * u64::from(self.gelu_ops_per_elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_scale_linearly() {
        let vpu = VpuConfig::tpuv4i();
        let small = vpu.softmax_cycles(100, 1024);
        let big = vpu.softmax_cycles(200, 1024);
        assert_eq!(big.get(), 2 * small.get());
    }

    #[test]
    fn lane_parallelism_is_applied() {
        let vpu = VpuConfig::tpuv4i();
        // 1024 elements * 12 ops / 1024 lanes = 12 cycles.
        assert_eq!(vpu.softmax_cycles(1, 1024), Cycles::new(12));
    }

    #[test]
    fn gelu_more_expensive_than_residual() {
        let vpu = VpuConfig::tpuv4i();
        assert!(vpu.gelu_cycles(1 << 20) > vpu.elementwise_cycles(1 << 20, 1));
    }

    #[test]
    fn dit_softmax_is_milliseconds_scale() {
        // DiT-XL/2 @512^2, batch 8: 8*16*1024^2 softmax elements should take
        // on the order of a millisecond at ~1 GHz — the Fig. 6 bottleneck.
        let vpu = VpuConfig::tpuv4i();
        let cycles = vpu.softmax_cycles(8 * 16 * 1024, 1024);
        let ms = cycles.get() as f64 / 1.05e9 * 1e3;
        assert!((0.5..5.0).contains(&ms), "softmax {ms} ms");
    }
}
