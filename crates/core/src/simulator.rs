//! The workload simulator: executes operator lists on a TPU configuration.

use cimtpu_mapper::{Mapper, MemoryLevels};
use cimtpu_models::{OpInstance, Workload};
use cimtpu_units::{Bytes, Joules, Result, Watts};

use crate::arch::TpuConfig;
use crate::cache::{CacheStats, MappingCache};
use crate::engine::MatrixEngine;
use crate::exec;
use crate::report::{OpReport, Report};

/// Executes [`Workload`]s on one TPU chip and produces [`Report`]s.
///
/// Operators run sequentially on the TensorCore; within a matrix operator,
/// work is split across the configured number of MXUs and DMA overlaps
/// compute according to the memory hierarchy's scheduling options.
///
/// Each simulator owns a [`MappingCache`]: every distinct matrix-operator
/// query runs the map-space search exactly once, and repeats (identical
/// transformer layers, decode-context samples, sweep re-runs) are answered
/// from the cache with bit-identical results. Inspect it with
/// [`cache_stats`](Simulator::cache_stats); disable it with
/// [`mapping_cache`](Simulator::mapping_cache)`().set_enabled(false)` when
/// measuring the raw search cost.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: TpuConfig,
    engine: MatrixEngine,
    /// Mapper with per-MXU bandwidth/capacity shares.
    per_mxu_mapper: Mapper,
    /// Memoized operator pricing (see [`MappingCache`]).
    cache: MappingCache,
}

impl Simulator {
    /// Creates a simulator for `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: TpuConfig) -> Result<Self> {
        config.validate()?;
        let engine = MatrixEngine::from_kind(config.mxu())?;
        let levels = config.levels();
        let per_mxu_levels: MemoryLevels = levels
            .clone()
            .with_vmem(Bytes::new(levels.vmem().get() / config.mxu_count()))
            .with_hbm_bandwidth(levels.hbm_bandwidth() / config.mxu_count() as f64);
        let cache = MappingCache::for_config(&config);
        // Warm from the cross-process cache directory when configured.
        // Failures are non-fatal: a cold cache is always correct.
        if let Some(dir) = std::env::var_os(crate::cache::CACHE_DIR_ENV) {
            let _ = cache.load_from_dir(std::path::Path::new(&dir));
        }
        Ok(Simulator {
            engine,
            per_mxu_mapper: Mapper::new(per_mxu_levels),
            cache,
            config,
        })
    }

    /// The architecture being simulated.
    pub fn config(&self) -> &TpuConfig {
        &self.config
    }

    /// The matrix engine model.
    pub fn engine(&self) -> &MatrixEngine {
        &self.engine
    }

    /// The per-MXU mapping engine.
    pub fn per_mxu_mapper(&self) -> &Mapper {
        &self.per_mxu_mapper
    }

    /// The operator-pricing memoization cache.
    pub fn mapping_cache(&self) -> &MappingCache {
        &self.cache
    }

    /// Hit/miss/occupancy counters of the mapping cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Combined leakage of all MXUs (charged over every op's window — the
    /// array leaks whether or not it computes).
    pub fn mxu_static_power(&self) -> Watts {
        Watts::new(self.engine.static_power().get() * self.config.mxu_count() as f64)
    }

    /// A segment-level pricing context on this simulator (price a phase
    /// segment once, replay it per request). See
    /// [`ExecutionContext`](crate::ExecutionContext).
    pub fn execution_context(&self) -> crate::ExecutionContext<'_> {
        crate::ExecutionContext::new(self)
    }

    /// Simulates a workload.
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn run(&self, workload: &Workload) -> Result<Report> {
        debug_assert!(
            self.cache.matches(&self.config),
            "mapping cache fingerprint does not match this simulator's config"
        );
        self.execution_context().run(workload)
    }

    /// Simulates a workload segment by segment, reporting per-phase costs.
    ///
    /// Totals are identical to [`run`](Simulator::run); see
    /// [`ExecutionContext::run_phased`](crate::ExecutionContext::run_phased).
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn run_phased(&self, workload: &Workload) -> Result<crate::PhasedReport> {
        self.execution_context().run_phased(workload)
    }

    /// Simulates a single operator instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the operator cannot be mapped onto the hardware.
    pub fn run_instance(&self, inst: &OpInstance) -> Result<OpReport> {
        let cost = exec::exec_op(self, inst.op())?;
        let n = inst.count() as f64;
        let latency = cost.latency * n;
        // Leakage accrues over the whole window regardless of op type.
        let mxu_static = self.mxu_static_power().for_duration(latency);
        Ok(OpReport {
            name: inst.name().to_owned(),
            category: inst.category(),
            count: inst.count(),
            latency,
            mxu_energy: cost.mxu_dynamic * n + mxu_static,
            mxu_dynamic: cost.mxu_dynamic * n,
            mxu_static,
            vpu_energy: cost.vpu_energy * n
                + self.config.vpu().static_power().for_duration(latency),
            hbm_bytes: cost.hbm_bytes * inst.count(),
        })
    }

    /// MXU energy of an idle window (leakage only) — used when integrating
    /// decode steps over time.
    pub fn idle_mxu_energy(&self, window: cimtpu_units::Seconds) -> Joules {
        self.mxu_static_power().for_duration(window)
    }

    /// Persists the mapping cache to the directory named by
    /// `CIMTPU_CACHE_DIR`, so later processes simulating the same
    /// configuration skip the map-space searches entirely. Returns `false`
    /// (and does nothing) when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn persist_cache(&self) -> std::io::Result<bool> {
        match std::env::var_os(crate::cache::CACHE_DIR_ENV) {
            Some(dir) => {
                self.cache.save_to_dir(std::path::Path::new(&dir))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_models::presets;
    use cimtpu_units::Seconds;

    #[test]
    fn baseline_prefill_layer_is_compute_bound() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let layer = presets::gpt3_30b().prefill_layer(8, 1024).unwrap();
        let rep = sim.run(&layer).unwrap();
        // Closed form: ~5.17e12 MACs at 68.8e12 MACs/s plus vector ops —
        // tens of milliseconds.
        let ms = rep.total_latency().as_millis();
        assert!((50.0..150.0).contains(&ms), "prefill layer = {ms} ms");
        // GEMM categories dominate (paper: 84.9%).
        let gemm: Seconds = [
            cimtpu_models::OpCategory::QkvGen,
            cimtpu_models::OpCategory::Projection,
            cimtpu_models::OpCategory::Ffn1,
            cimtpu_models::OpCategory::Ffn2,
        ]
        .iter()
        .map(|&c| rep.latency_in(c))
        .sum();
        let frac = gemm / rep.total_latency();
        assert!((0.75..0.95).contains(&frac), "GEMM fraction {frac:.3}");
    }

    #[test]
    fn baseline_decode_layer_matches_memory_bound_scale() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let layer = presets::gpt3_30b().decode_layer(8, 1280).unwrap();
        let rep = sim.run(&layer).unwrap();
        // Weights are ~616 MB; at 614 GB/s the floor is ~1 ms. With
        // attention serialization the baseline lands around 1.5-2.5 ms.
        let ms = rep.total_latency().as_millis();
        assert!((1.0..3.0).contains(&ms), "decode layer = {ms} ms");
    }

    #[test]
    fn attention_fraction_of_baseline_decode() {
        // Paper: attention ~33.7% of baseline decode latency.
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let layer = presets::gpt3_30b().decode_layer(8, 1280).unwrap();
        let rep = sim.run(&layer).unwrap();
        let frac = rep.latency_in(cimtpu_models::OpCategory::Attention) / rep.total_latency();
        assert!((0.2..0.5).contains(&frac), "attention fraction {frac:.3}");
    }

    #[test]
    fn cim_decode_layer_faster_than_baseline() {
        // Paper Fig. 6: 29.9% decode latency reduction.
        let base = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let layer = presets::gpt3_30b().decode_layer(8, 1280).unwrap();
        let b = base.run(&layer).unwrap();
        let c = cim.run(&layer).unwrap();
        let reduction = 1.0 - c.total_latency() / b.total_latency();
        assert!(
            (0.15..0.45).contains(&reduction),
            "decode latency reduction {reduction:.3}"
        );
    }

    #[test]
    fn cim_prefill_layer_close_to_baseline() {
        // Paper Fig. 6: +2.43% (CIM about equal on compute-bound prefill).
        let base = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let layer = presets::gpt3_30b().prefill_layer(8, 1024).unwrap();
        let b = base.run(&layer).unwrap();
        let c = cim.run(&layer).unwrap();
        let ratio = c.total_latency() / b.total_latency();
        assert!((0.9..1.1).contains(&ratio), "prefill ratio {ratio:.3}");
    }

    #[test]
    fn cim_energy_reduction_about_an_order_of_magnitude() {
        // Paper Fig. 6: 9.21x (prefill) and 13.4x (decode) MXU energy.
        let base = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let gpt3 = presets::gpt3_30b();

        let prefill = gpt3.prefill_layer(8, 1024).unwrap();
        let rp = cim.run(&prefill).unwrap().mxu_energy_reduction_vs(
            &base.run(&prefill).unwrap(),
        );
        assert!((6.0..13.0).contains(&rp), "prefill energy reduction {rp:.2}");

        let decode = gpt3.decode_layer(8, 1280).unwrap();
        let rd = cim.run(&decode).unwrap().mxu_energy_reduction_vs(
            &base.run(&decode).unwrap(),
        );
        assert!((9.0..20.0).contains(&rd), "decode energy reduction {rd:.2}");
        assert!(rd > rp, "decode should benefit more than prefill");
    }

    #[test]
    fn warm_cache_reproduces_cold_reports_exactly() {
        // Running the same workload twice must produce identical reports,
        // with the second run answered from the cache.
        let sim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let layer = presets::gpt3_30b().decode_layer(8, 1280).unwrap();
        let cold = sim.run(&layer).unwrap();
        let misses_after_cold = sim.cache_stats().misses;
        let warm = sim.run(&layer).unwrap();
        assert_eq!(cold, warm);
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, misses_after_cold, "warm run must not miss");
        assert!(stats.hits >= misses_after_cold);
    }

    #[test]
    fn disabled_cache_matches_enabled_cache() {
        let cached = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let uncached = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        uncached.mapping_cache().set_enabled(false);
        let layer = presets::gpt3_30b().prefill_layer(8, 1024).unwrap();
        // Two passes each: the cached simulator answers the second from
        // memory, the uncached one recomputes; results must be identical.
        for _ in 0..2 {
            assert_eq!(cached.run(&layer).unwrap(), uncached.run(&layer).unwrap());
        }
        assert_eq!(uncached.cache_stats().entries, 0);
        assert!(cached.cache_stats().hits > 0);
    }

    #[test]
    fn dit_block_softmax_is_major_bottleneck() {
        // Paper: softmax ~36.9% of baseline DiT block latency.
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let block = presets::dit_xl_2().block(8, 512).unwrap();
        let rep = sim.run(&block).unwrap();
        let softmax: Seconds = rep
            .ops()
            .iter()
            .filter(|o| o.name == "Softmax")
            .map(|o| o.latency)
            .sum();
        let frac = softmax / rep.total_latency();
        assert!((0.2..0.5).contains(&frac), "softmax fraction {frac:.3}");
    }

    #[test]
    fn dit_block_cim_slightly_faster_much_less_energy() {
        // Paper Fig. 6: -6.67% latency, 10.4x MXU energy for a DiT block.
        let base = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let block = presets::dit_xl_2().block(8, 512).unwrap();
        let b = base.run(&block).unwrap();
        let c = cim.run(&block).unwrap();
        let latency_ratio = c.total_latency() / b.total_latency();
        assert!((0.85..1.02).contains(&latency_ratio), "DiT ratio {latency_ratio:.3}");
        let e = c.mxu_energy_reduction_vs(&b);
        assert!((6.0..15.0).contains(&e), "DiT energy reduction {e:.2}");
    }
}
