//! Per-operator execution: latency and energy of one [`Op`].

use cimtpu_models::Op;
use cimtpu_units::{Bytes, DataType, Joules, Result, Seconds};

use crate::cache::PriceKey;
use crate::engine::EngineCost;
use crate::simulator::Simulator;

/// Cost of executing one operator once (no repetition, no leakage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OpCost {
    pub latency: Seconds,
    /// MXU dynamic energy (MACs, weight movement, streaming).
    pub mxu_dynamic: Joules,
    /// VPU dynamic energy.
    pub vpu_energy: Joules,
    /// Unique main-memory traffic.
    pub hbm_bytes: Bytes,
}

impl OpCost {
    fn vector(latency: Seconds, vpu_energy: Joules) -> Self {
        OpCost {
            latency,
            mxu_dynamic: Joules::ZERO,
            vpu_energy,
            hbm_bytes: Bytes::ZERO,
        }
    }
}

/// Random-gather penalty on HBM for embedding lookups.
const GATHER_PENALTY: f64 = 2.0;

pub(crate) fn exec_op(sim: &Simulator, op: &Op) -> Result<OpCost> {
    let cfg = sim.config();
    let clock = cfg.clock();
    let vpu = cfg.vpu();

    match *op {
        Op::Gemm { shape, dtype } => {
            let key = PriceKey::Gemm { shape, dtype, weights_resident: false };
            sim.mapping_cache().get_or_try_insert(key, || {
                // Output channels are sharded across the MXUs; each MXU maps
                // its shard independently against its bandwidth share. The
                // largest shard bounds latency.
                let parts = shape.split_n(cfg.mxu_count());
                let widest = parts[0];
                let engine_cost = EngineCost::new(sim.engine(), clock);
                let mapping = sim.per_mxu_mapper().best_gemm_mapping(
                    widest,
                    dtype,
                    &engine_cost,
                    false,
                )?;
                Ok(OpCost {
                    latency: mapping.total(),
                    mxu_dynamic: sim.engine().gemm_dynamic_energy(shape, dtype),
                    vpu_energy: Joules::ZERO,
                    hbm_bytes: shape.weight_bytes(dtype),
                })
            })
        }
        Op::BatchedMatmul { batch, shape, dtype, static_weights } => {
            let key = PriceKey::Batched { batch, shape, dtype, static_weights };
            sim.mapping_cache().get_or_try_insert(key, || {
                // Items are distributed round-robin across MXUs; the per-item
                // weight operands stream from main memory at full chip
                // bandwidth.
                let items_per_mxu = batch.div_ceil(cfg.mxu_count());
                let compute = sim
                    .engine()
                    .batched_gemm_cycles_with(items_per_mxu, shape, dtype, static_weights)
                    .at(clock);
                let kv_bytes = shape.weight_bytes(dtype) * batch;
                let dma = cfg.levels().hbm_time(kv_bytes);
                let latency = if cfg.levels().double_buffering() {
                    compute.max(dma)
                } else {
                    compute + dma
                };
                Ok(OpCost {
                    latency,
                    mxu_dynamic: sim.engine().batched_gemm_dynamic_energy(batch, shape, dtype),
                    vpu_energy: Joules::ZERO,
                    hbm_bytes: kv_bytes,
                })
            })
        }
        Op::Softmax { rows, cols } => {
            let latency = vpu.softmax_cycles(rows, cols).at(clock);
            let energy = vpu.dynamic_energy(vpu.softmax_ops(rows, cols), 1);
            Ok(OpCost::vector(latency, energy))
        }
        Op::LayerNorm { rows, d } => {
            let latency = vpu.layernorm_cycles(rows, d).at(clock);
            let energy = vpu.dynamic_energy(vpu.layernorm_ops(rows, d), 1);
            Ok(OpCost::vector(latency, energy))
        }
        Op::Gelu { elems } => {
            let latency = vpu.gelu_cycles(elems).at(clock);
            let energy = vpu.dynamic_energy(vpu.gelu_ops(elems), 1);
            Ok(OpCost::vector(latency, energy))
        }
        Op::Elementwise { elems, ops_per_elem } => {
            let latency = vpu.elementwise_cycles(elems, ops_per_elem).at(clock);
            let energy = vpu.dynamic_energy(elems, ops_per_elem);
            Ok(OpCost::vector(latency, energy))
        }
        Op::EmbeddingLookup { tokens, d_model, dtype } => {
            let bytes = Bytes::new(tokens * d_model * dtype.size_bytes());
            let latency = cfg.levels().hbm_time(bytes) * GATHER_PENALTY;
            Ok(OpCost {
                latency,
                mxu_dynamic: Joules::ZERO,
                vpu_energy: Joules::ZERO,
                hbm_bytes: bytes,
            })
        }
        Op::AllReduce { bytes } => {
            // Single-hop approximation on this chip's ICI links; proper ring
            // collectives live in `cimtpu-multi`.
            let bw = cfg.ici_link_bandwidth() * cfg.ici_links() as f64;
            Ok(OpCost {
                latency: bw.transfer_time(bytes),
                mxu_dynamic: Joules::ZERO,
                vpu_energy: Joules::ZERO,
                hbm_bytes: Bytes::ZERO,
            })
        }
        // `Op` is non-exhaustive: fail loudly on operators this executor
        // does not know rather than silently mis-costing them.
        ref other => Err(cimtpu_units::Error::invalid_config(format!(
            "unsupported operator {other:?}"
        ))),
    }
}

/// Reference INT8 accumulator width used for partial-sum traffic.
#[allow(dead_code)]
pub(crate) const ACC_DTYPE: DataType = DataType::Fp32;
