//! End-to-end single-chip inference evaluation.
//!
//! The Fig. 7 exploration evaluates *full* LLM inference (prefill of 1024
//! tokens + 512 decode steps) and full DiT forward passes. Decode steps are
//! sampled along the growing context and integrated with the trapezoidal
//! rule, because per-step cost varies slowly (linearly in context length).

use serde::{Deserialize, Serialize};

use cimtpu_models::{DitConfig, LlmInferenceSpec, TransformerConfig};
use cimtpu_units::{Joules, Result, Seconds};

use crate::report::Report;
use crate::simulator::Simulator;

/// Number of decode-step samples used for integration.
const DECODE_SAMPLES: u64 = 9;

/// Cost of one full LLM inference (all layers, prefill + decode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmInferenceResult {
    /// Per-layer prefill report (single layer; totals below scale by layers).
    pub prefill_layer: Report,
    /// Prefill latency across all layers.
    pub prefill_latency: Seconds,
    /// Prefill MXU energy across all layers.
    pub prefill_mxu_energy: Joules,
    /// Total decode latency across all layers and output tokens.
    pub decode_latency: Seconds,
    /// Total decode MXU energy.
    pub decode_mxu_energy: Joules,
    /// Tokens generated (batch × output length).
    pub generated_tokens: u64,
}

impl LlmInferenceResult {
    /// End-to-end latency.
    pub fn total_latency(&self) -> Seconds {
        self.prefill_latency + self.decode_latency
    }

    /// End-to-end MXU energy.
    pub fn total_mxu_energy(&self) -> Joules {
        self.prefill_mxu_energy + self.decode_mxu_energy
    }

    /// Generation throughput in tokens per second (decode-phase tokens over
    /// end-to-end latency, the usual serving metric).
    pub fn tokens_per_second(&self) -> f64 {
        self.generated_tokens as f64 / self.total_latency().get()
    }
}

/// Simulates full LLM inference on one chip.
///
/// # Errors
///
/// Returns an error if any operator cannot be mapped.
///
/// # Examples
///
/// ```
/// use cimtpu_core::{inference, Simulator, TpuConfig};
/// use cimtpu_models::{presets, LlmInferenceSpec};
///
/// let sim = Simulator::new(TpuConfig::design_a())?;
/// let spec = LlmInferenceSpec::new(8, 128, 32)?;
/// let r = inference::run_llm(&sim, &presets::gpt3_30b(), spec)?;
/// assert!(r.decode_latency > r.prefill_latency); // decoding dominates
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
pub fn run_llm(
    sim: &Simulator,
    model: &TransformerConfig,
    spec: LlmInferenceSpec,
) -> Result<LlmInferenceResult> {
    let layers = model.layers() as f64;

    // Prefill: all layers are identical.
    let prefill_layer = sim.run(&model.prefill_layer(spec.batch(), spec.input_len())?)?;
    let prefill_latency = prefill_layer.total_latency() * layers;
    let prefill_mxu_energy = prefill_layer.mxu_energy() * layers;

    // Decode: sample steps along the growing context, integrate.
    let steps = spec.sampled_decode_steps(DECODE_SAMPLES);
    let mut sampled: Vec<(f64, Seconds, Joules)> = Vec::with_capacity(steps.len());
    for &step in &steps {
        let ctx = spec.ctx_at_step(step);
        let rep = sim.run(&model.decode_layer(spec.batch(), ctx)?)?;
        sampled.push((step as f64, rep.total_latency(), rep.mxu_energy()));
    }
    let (decode_latency, decode_mxu_energy) = integrate(&sampled, spec.output_len());

    Ok(LlmInferenceResult {
        prefill_layer,
        prefill_latency,
        prefill_mxu_energy,
        decode_latency: decode_latency * layers,
        decode_mxu_energy: decode_mxu_energy * layers,
        generated_tokens: spec.total_generated_tokens(),
    })
}

/// Trapezoidal integration of per-step cost over all decode steps.
fn integrate(samples: &[(f64, Seconds, Joules)], total_steps: u64) -> (Seconds, Joules) {
    if samples.len() == 1 {
        return (
            samples[0].1 * total_steps as f64,
            samples[0].2 * total_steps as f64,
        );
    }
    let mut lat = 0.0;
    let mut energy = 0.0;
    for pair in samples.windows(2) {
        let (x0, t0, e0) = pair[0];
        let (x1, t1, e1) = pair[1];
        let w = x1 - x0;
        lat += 0.5 * (t0.get() + t1.get()) * w;
        energy += 0.5 * (e0.get() + e1.get()) * w;
    }
    // The sample range covers steps 0..=total-1; scale any rounding gap.
    let covered = samples.last().expect("non-empty").0 - samples[0].0;
    let scale = if covered > 0.0 {
        total_steps as f64 / (covered + 1.0)
    } else {
        total_steps as f64
    };
    (
        Seconds::new(lat * scale.max(1.0)),
        Joules::new(energy * scale.max(1.0)),
    )
}

/// Cost of one full DiT forward pass (one diffusion step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DitInferenceResult {
    /// Per-block report (all blocks are identical).
    pub block: Report,
    /// Number of DiT blocks.
    pub blocks: u64,
    /// Latency of all blocks (one diffusion step).
    pub total_latency: Seconds,
    /// MXU energy of all blocks.
    pub total_mxu_energy: Joules,
    /// Images per forward pass (the batch size).
    pub batch: u64,
}

impl DitInferenceResult {
    /// Throughput in images per second for a sampler with `steps`
    /// diffusion steps.
    pub fn images_per_second(&self, steps: u64) -> f64 {
        self.batch as f64 / (self.total_latency.get() * steps as f64)
    }
}

/// Simulates one DiT forward pass (all blocks) on one chip.
///
/// # Errors
///
/// Returns an error if any operator cannot be mapped.
///
/// # Examples
///
/// ```
/// use cimtpu_core::{inference, Simulator, TpuConfig};
/// use cimtpu_models::presets;
///
/// let sim = Simulator::new(TpuConfig::design_b())?;
/// let r = inference::run_dit(&sim, &presets::dit_xl_2(), 8, 256)?;
/// assert_eq!(r.blocks, 28);
/// # Ok::<(), cimtpu_units::Error>(())
/// ```
pub fn run_dit(
    sim: &Simulator,
    dit: &DitConfig,
    batch: u64,
    resolution: u64,
) -> Result<DitInferenceResult> {
    let block = sim.run(&dit.block(batch, resolution)?)?;
    let blocks = dit.blocks();
    Ok(DitInferenceResult {
        total_latency: block.total_latency() * blocks as f64,
        total_mxu_energy: block.mxu_energy() * blocks as f64,
        block,
        blocks,
        batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TpuConfig;
    use cimtpu_models::presets;

    #[test]
    fn decode_dominates_fig7_spec() {
        // Paper: with 1024 in / 512 out, "Decoding dominates the latency and
        // energy consumption of MXUs".
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let r = run_llm(
            &sim,
            &presets::gpt3_30b(),
            LlmInferenceSpec::paper_fig7(8).unwrap(),
        )
        .unwrap();
        assert!(r.decode_latency > r.prefill_latency);
        assert!(r.decode_mxu_energy > r.prefill_mxu_energy);
    }

    #[test]
    fn decode_sampling_hits_the_mapping_cache() {
        // The weight GEMMs (QKV, projection, FFN1/2) are identical across
        // all decode-context samples; only the attention matmuls change
        // shape with the context. After the first sampled step, every
        // weight-GEMM query must be a cache hit.
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let spec = LlmInferenceSpec::new(8, 256, 64).unwrap();
        run_llm(&sim, &presets::gpt3_30b(), spec).unwrap();
        let stats = sim.cache_stats();
        assert!(stats.hits > 0, "no cache hits during run_llm: {stats:?}");
        // 9 decode samples share one set of weight-GEMM shapes: the bulk of
        // matrix queries must be served from the cache.
        assert!(
            stats.hit_rate() > 0.5,
            "decode sampling should be cache-dominated: {stats:?}"
        );
        assert_eq!(stats.entries as u64, stats.misses);
    }

    #[test]
    fn integration_is_exact_for_linear_cost() {
        // Cost linear in step: trapezoid integrates exactly.
        let samples: Vec<(f64, Seconds, Joules)> = (0..=8)
            .map(|i| {
                let x = (i * 63) as f64; // steps 0..=504 of 512
                (x, Seconds::new(1.0 + x), Joules::new(2.0 * x))
            })
            .collect();
        let (lat, _e) = integrate(&samples, 512);
        // Exact integral of (1+x) over 512 steps ≈ 512 + 512*511/2.
        let exact = 512.0 + 0.5 * 512.0 * 511.0;
        assert!((lat.get() - exact).abs() / exact < 0.05, "{}", lat.get());
    }

    #[test]
    fn cim_llm_inference_beats_baseline() {
        // Direction of Fig. 7: CIM variants cut energy by an order of
        // magnitude at comparable-or-better latency.
        let base = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let spec = LlmInferenceSpec::new(8, 256, 64).unwrap();
        let gpt3 = presets::gpt3_30b();
        let rb = run_llm(&base, &gpt3, spec).unwrap();
        let rc = run_llm(&cim, &gpt3, spec).unwrap();
        assert!(rc.total_latency() < rb.total_latency());
        assert!(rc.total_mxu_energy().get() * 5.0 < rb.total_mxu_energy().get());
        assert!(rc.tokens_per_second() > rb.tokens_per_second());
    }

    #[test]
    fn dit_result_scales_blocks() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let r = run_dit(&sim, &presets::dit_xl_2(), 8, 256).unwrap();
        let per_block = r.block.total_latency();
        assert!((r.total_latency.get() - per_block.get() * 28.0).abs() < 1e-12);
        assert!(r.images_per_second(50) > 0.0);
    }
}
