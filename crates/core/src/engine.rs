//! A matrix engine: the digital systolic MXU or the CIM-MXU behind one
//! interface.
//!
//! Besides plain weight GEMMs, the engine models the **batched attention
//! matmul** path (Q×Kᵀ and S×Vᵀ), where the two architectures diverge most:
//!
//! - on the **systolic array**, attention operands are dynamic activations
//!   that cannot be pre-staged through the weight FIFO, so every tile pays
//!   a serialized weight load *and* the full `R + C − 2` pipeline skew —
//!   the "traversing all preceding MAC units" cost the paper calls out;
//! - on the **CIM-MXU**, the per-item key/value slice occupies only
//!   `⌈k / 128⌉` grid rows; independent items are packed across the
//!   remaining rows (the inter-row accumulators are bypassed), and weight
//!   writes overlap with the previous group's computation through the
//!   dedicated weight port. This is the "better mapping" behind the
//!   paper's 30.3% DiT attention improvement and 72.7% decode speedup.

use cimtpu_cim::CimMxu;
use cimtpu_mapper::TileCostModel;
use cimtpu_systolic::SystolicArray;
use cimtpu_units::{Area, Cycles, DataType, Frequency, GemmShape, Joules, Result, Watts};

use crate::arch::MxuKind;

/// One matrix unit (digital or CIM) with uniform timing/energy queries.
#[derive(Debug, Clone)]
pub enum MatrixEngine {
    /// Digital weight-stationary systolic array.
    Digital(SystolicArray),
    /// CIM-MXU grid.
    Cim(CimMxu),
}

impl MatrixEngine {
    /// Builds the engine for an architecture's MXU kind.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying configuration is invalid.
    pub fn from_kind(kind: &MxuKind) -> Result<Self> {
        match kind {
            MxuKind::DigitalSystolic(cfg) => Ok(MatrixEngine::Digital(SystolicArray::new(*cfg)?)),
            MxuKind::Cim(cfg) => Ok(MatrixEngine::Cim(CimMxu::new(*cfg)?)),
        }
    }

    /// Peak MACs per cycle of this engine.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        match self {
            MatrixEngine::Digital(a) => a.peak_macs_per_cycle(),
            MatrixEngine::Cim(m) => m.peak_macs_per_cycle(),
        }
    }

    /// Silicon area of one engine.
    pub fn area(&self) -> Area {
        match self {
            MatrixEngine::Digital(a) => a.area(),
            MatrixEngine::Cim(m) => m.area(),
        }
    }

    /// Leakage power of one engine.
    pub fn static_power(&self) -> Watts {
        match self {
            MatrixEngine::Digital(a) => a.static_power(),
            MatrixEngine::Cim(m) => m.static_power(),
        }
    }

    /// Cycles to execute one weight GEMM with freshly streamed weights.
    pub fn gemm_cycles(&self, shape: GemmShape, dtype: DataType) -> Cycles {
        match self {
            MatrixEngine::Digital(a) => a.gemm_timing(shape, dtype).total(),
            MatrixEngine::Cim(m) => m.gemm_timing(shape, dtype).total(),
        }
    }

    /// Dynamic energy (MACs + weight movement + streaming I/O, *without*
    /// leakage) of one weight GEMM.
    pub fn gemm_dynamic_energy(&self, shape: GemmShape, dtype: DataType) -> Joules {
        match self {
            MatrixEngine::Digital(a) => {
                let e = a.gemm_energy(shape, dtype);
                e.mac() + e.weight_load() + e.io()
            }
            MatrixEngine::Cim(m) => {
                let e = m.gemm_energy(shape, dtype);
                e.mac() + e.weight_write() + e.io()
            }
        }
    }

    /// Cycles to execute `batch` independent *attention* matmuls of `shape`
    /// on this engine — dynamic per-item operands (see the module docs).
    pub fn batched_gemm_cycles(&self, batch: u64, shape: GemmShape, dtype: DataType) -> Cycles {
        self.batched_gemm_cycles_with(batch, shape, dtype, false)
    }

    /// Cycles for `batch` independent matmuls whose per-item weights are
    /// either dynamic activations (`static_weights = false`, attention) or
    /// static parameters (`static_weights = true`, MoE experts — the
    /// systolic array may pre-stage them through its weight FIFO).
    pub fn batched_gemm_cycles_with(
        &self,
        batch: u64,
        shape: GemmShape,
        dtype: DataType,
        static_weights: bool,
    ) -> Cycles {
        match self {
            MatrixEngine::Digital(a) => {
                if static_weights {
                    // Parameters pre-stage through the weight FIFO exactly
                    // like an ordinary weight GEMM; consecutive items
                    // pipeline with double-buffered weights.
                    a.gemm_timing(shape, dtype).total() * batch
                } else {
                    // Dynamic operands: no weight-FIFO streaming. Every item
                    // runs with fully serialized loads and per-tile fill/drain.
                    let serialized = SystolicArray::new(
                        a.config().with_weight_double_buffering(false),
                    )
                    .expect("config was already validated");
                    serialized.gemm_timing(shape, dtype).total() * batch
                }
            }
            // The CIM-MXU's weight port handles both cases identically.
            MatrixEngine::Cim(m) => cim_batched_cycles(m, batch, shape, dtype),
        }
    }

    /// Dynamic energy of `batch` independent attention matmuls.
    pub fn batched_gemm_dynamic_energy(
        &self,
        batch: u64,
        shape: GemmShape,
        dtype: DataType,
    ) -> Joules {
        self.gemm_dynamic_energy(shape, dtype) * batch as f64
    }

    /// The engine's preferred contraction-tile granularity.
    pub fn preferred_k(&self) -> u64 {
        match self {
            MatrixEngine::Digital(a) => a.config().rows(),
            MatrixEngine::Cim(m) => m.config().k_extent(),
        }
    }

    /// The engine's preferred output-tile granularity.
    pub fn preferred_n(&self) -> u64 {
        match self {
            MatrixEngine::Digital(a) => a.config().cols(),
            MatrixEngine::Cim(m) => m.config().n_extent(),
        }
    }
}

/// CIM batched-attention timing with grid-row packing.
fn cim_batched_cycles(mxu: &CimMxu, batch: u64, shape: GemmShape, dtype: DataType) -> Cycles {
    let cfg = mxu.config();
    let core = cfg.core();
    let elem = dtype.size_bytes();

    // Rows of the grid one item's contraction dimension occupies; items
    // whose k exceeds the full grid column fold into k_tiles residencies
    // with partial-sum accumulation in the PSUM buffer.
    let rows_per_item = shape.k().div_ceil(core.rows()).min(cfg.grid_rows());
    let k_per_residency = rows_per_item * core.rows();
    let k_tiles = shape.k().div_ceil(k_per_residency);
    // Independent items packed across grid rows (inter-row accumulation
    // bypassed between items).
    let lanes = (cfg.grid_rows() / rows_per_item).max(1);
    let groups = batch.div_ceil(lanes);

    // Output columns of one item spread over the grid columns.
    let n_tiles = shape.n().div_ceil(cfg.n_extent());
    let tile_n = shape.n().div_ceil(n_tiles);
    let n_per_core = tile_n.div_ceil(cfg.grid_cols());
    let wave = core.vector_cycles(n_per_core, core.bit_serial_bits());
    let fill = (cfg.grid_cols() - 1) * cfg.input_hop_cycles()
        + (rows_per_item - 1) * cfg.psum_hop_cycles();
    let group_compute = shape.m() * wave * n_tiles * k_tiles + fill;

    // Weight (K/V) delivery for one group: every lane's slice crosses the
    // MXU ingest bus; cores write their slices in parallel.
    let tile_k = shape.k().min(k_per_residency);
    let bytes_per_core = tile_k.min(core.rows()) * n_per_core * elem;
    let group_bytes = lanes.min(batch) * tile_k * tile_n * elem;
    let update = cfg.weight_write_cycles(group_bytes, bytes_per_core) * n_tiles * k_tiles;

    let exposed_per_group = if cfg.overlap_weight_update() {
        update.saturating_sub(group_compute)
    } else {
        update
    };
    // The first group's delivery is fully exposed; later groups only stall
    // by whatever their delivery cannot hide under the previous compute.
    Cycles::new(update + groups * group_compute + (groups - 1) * exposed_per_group)
}

/// Adapter giving the mapper a per-MXU tile cost model.
#[derive(Debug, Clone)]
pub struct EngineCost<'a> {
    engine: &'a MatrixEngine,
    clock: Frequency,
}

impl<'a> EngineCost<'a> {
    /// Wraps an engine with its clock for the mapper.
    pub fn new(engine: &'a MatrixEngine, clock: Frequency) -> Self {
        EngineCost { engine, clock }
    }
}

impl TileCostModel for EngineCost<'_> {
    fn tile_cycles(&self, shape: GemmShape, dtype: DataType) -> Cycles {
        self.engine.gemm_cycles(shape, dtype)
    }

    fn clock(&self) -> Frequency {
        self.clock
    }

    fn preferred_k(&self) -> u64 {
        self.engine.preferred_k()
    }

    fn preferred_n(&self) -> u64 {
        self.engine.preferred_n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_cim::CimMxuConfig;
    use cimtpu_systolic::SystolicConfig;

    fn digital() -> MatrixEngine {
        MatrixEngine::from_kind(&MxuKind::DigitalSystolic(SystolicConfig::tpuv4i_mxu())).unwrap()
    }

    fn cim() -> MatrixEngine {
        MatrixEngine::from_kind(&MxuKind::Cim(CimMxuConfig::paper_default())).unwrap()
    }

    #[test]
    fn same_peak_for_paper_configs() {
        assert_eq!(digital().peak_macs_per_cycle(), cim().peak_macs_per_cycle());
    }

    #[test]
    fn cim_half_area_at_same_peak() {
        let ratio = cim().area().as_mm2() / digital().area().as_mm2();
        assert!((0.45..0.55).contains(&ratio), "area ratio {ratio}");
    }

    #[test]
    fn decode_attention_gemv_much_faster_on_cim() {
        // Decode Q*K^T: 448 items of [1 x 128] . [128 x 1280].
        let shape = GemmShape::gemv(128, 1280).unwrap();
        let d = digital().batched_gemm_cycles(112, shape, DataType::Int8);
        let c = cim().batched_gemm_cycles(112, shape, DataType::Int8);
        let speedup = d.get() as f64 / c.get() as f64;
        // Grid-row packing + overlapped KV writes: ~3x fewer cycles (the
        // remaining floor is KV delivery, which is HBM-bound at op level).
        assert!(speedup > 2.5, "CIM GEMV speedup only {speedup:.1}x");
    }

    #[test]
    fn prefill_attention_moderately_faster_on_cim() {
        // Prefill Q*K^T: [1024 x 128] . [128 x 1024] per item — the paper's
        // "better DiT mapping" regime (~30% improvement).
        let shape = GemmShape::new(1024, 128, 1024).unwrap();
        let d = digital().batched_gemm_cycles(32, shape, DataType::Int8);
        let c = cim().batched_gemm_cycles(32, shape, DataType::Int8);
        let speedup = d.get() as f64 / c.get() as f64;
        assert!(
            (1.05..3.0).contains(&speedup),
            "prefill attention speedup {speedup:.2}x"
        );
    }

    #[test]
    fn large_gemm_similar_on_both() {
        // Compute-bound prefill GEMMs: both engines near peak, within 15%.
        let shape = GemmShape::new(8192, 2048, 2048).unwrap();
        let d = digital().gemm_cycles(shape, DataType::Int8).get() as f64;
        let c = cim().gemm_cycles(shape, DataType::Int8).get() as f64;
        let ratio = c / d;
        assert!((0.85..1.15).contains(&ratio), "gemm cycle ratio {ratio}");
    }

    #[test]
    fn cim_dynamic_energy_roughly_9x_lower() {
        let shape = GemmShape::new(4096, 2048, 2048).unwrap();
        let d = digital().gemm_dynamic_energy(shape, DataType::Int8);
        let c = cim().gemm_dynamic_energy(shape, DataType::Int8);
        let ratio = d.get() / c.get();
        assert!((6.0..12.0).contains(&ratio), "dynamic energy ratio {ratio:.2}");
    }

    #[test]
    fn batched_energy_scales_with_batch() {
        let shape = GemmShape::gemv(128, 1024).unwrap();
        let one = cim().batched_gemm_dynamic_energy(1, shape, DataType::Int8);
        let many = cim().batched_gemm_dynamic_energy(64, shape, DataType::Int8);
        assert!((many.get() / one.get() - 64.0).abs() < 1e-6);
    }

    #[test]
    fn grid_row_packing_reduces_groups() {
        // k=128 occupies one grid row of 16: 16 items form ONE group and
        // share its compute wave; only the K/V delivery scales with items.
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        let shape = GemmShape::gemv(128, 1280).unwrap();
        let t16 = cim_batched_cycles(&mxu, 16, shape, DataType::Int8);
        let t1 = cim_batched_cycles(&mxu, 1, shape, DataType::Int8);
        assert!(t16 > t1);
        assert!(
            t16.get() < 16 * t1.get(),
            "packing should beat 16 sequential items: {} vs {}",
            t16.get(),
            16 * t1.get()
        );
        // Doubling items past the lane count doubles the groups.
        let t32 = cim_batched_cycles(&mxu, 32, shape, DataType::Int8);
        assert!(t32 > t16);
    }
}
