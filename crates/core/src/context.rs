//! Reusable execution context: price a segment once, replay it per request.
//!
//! [`Simulator::run`](crate::Simulator::run) walks a workload operator by
//! operator. A request-level scheduler replays the *same* phase segment
//! (one decode step of a given batch/context, one prefill of a given
//! prompt) hundreds of times across requests, so re-walking the operator
//! list each time is wasted work even with the
//! [`MappingCache`](crate::MappingCache) answering the per-operator
//! queries. An [`ExecutionContext`] sits between the two: it prices whole
//! segments through the simulator exactly once, memoizes the aggregate
//! [`SegmentCost`] keyed by the segment's operator list, and replays from
//! that table. Replayed costs are bit-identical to a fresh
//! [`Simulator::run`] because they are built from the same per-operator
//! reports, summed in the same order.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Add, AddAssign};

use cimtpu_models::{OpInstance, Phase, Segment, Workload};
use cimtpu_units::{Bytes, Joules, Result, Seconds};

use serde::{Deserialize, Serialize};

use crate::report::Report;
use crate::simulator::Simulator;

/// Aggregate cost of one priced segment (or whole workload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentCost {
    /// End-to-end latency of the segment's operators.
    pub latency: Seconds,
    /// MXU energy (dynamic + leakage over the segment's window).
    pub mxu_energy: Joules,
    /// VPU energy.
    pub vpu_energy: Joules,
    /// Unique main-memory traffic.
    pub hbm_bytes: Bytes,
}

impl SegmentCost {
    /// The all-zero cost (identity for [`Add`]).
    pub const ZERO: SegmentCost = SegmentCost {
        latency: Seconds::ZERO,
        mxu_energy: Joules::ZERO,
        vpu_energy: Joules::ZERO,
        hbm_bytes: Bytes::ZERO,
    };

    /// MXU + VPU energy.
    pub fn total_energy(&self) -> Joules {
        self.mxu_energy + self.vpu_energy
    }

    /// Cost of `times` back-to-back replays of this segment.
    #[must_use]
    pub fn repeated(&self, times: f64) -> SegmentCost {
        SegmentCost {
            latency: self.latency * times,
            mxu_energy: self.mxu_energy * times,
            vpu_energy: self.vpu_energy * times,
            hbm_bytes: Bytes::new((self.hbm_bytes.get() as f64 * times) as u64),
        }
    }
}

impl Add for SegmentCost {
    type Output = SegmentCost;

    fn add(self, rhs: SegmentCost) -> SegmentCost {
        SegmentCost {
            latency: self.latency + rhs.latency,
            mxu_energy: self.mxu_energy + rhs.mxu_energy,
            vpu_energy: self.vpu_energy + rhs.vpu_energy,
            hbm_bytes: self.hbm_bytes + rhs.hbm_bytes,
        }
    }
}

impl AddAssign for SegmentCost {
    fn add_assign(&mut self, rhs: SegmentCost) {
        *self = *self + rhs;
    }
}

/// Cost of one segment inside a [`PhasedReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// The segment name (e.g. `"attention"`).
    pub name: String,
    /// The serving phase the segment belongs to.
    pub phase: Phase,
    /// The segment's aggregate cost.
    pub cost: SegmentCost,
}

/// Per-segment view of a simulated workload: the phase-structured
/// counterpart of the flat per-operator [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedReport {
    /// The simulated workload's name.
    pub workload: String,
    /// Per-segment costs in execution order.
    pub segments: Vec<SegmentReport>,
}

impl PhasedReport {
    /// End-to-end latency (sum over segments).
    pub fn total_latency(&self) -> Seconds {
        self.segments.iter().map(|s| s.cost.latency).sum()
    }

    /// Total MXU energy.
    pub fn mxu_energy(&self) -> Joules {
        self.segments.iter().map(|s| s.cost.mxu_energy).sum()
    }

    /// Aggregate cost of all segments in `phase`.
    pub fn cost_in_phase(&self, phase: Phase) -> SegmentCost {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .fold(SegmentCost::ZERO, |acc, s| acc + s.cost)
    }

    /// Distinct phases present, in first-seen order.
    pub fn phases(&self) -> Vec<Phase> {
        let mut seen = Vec::new();
        for s in &self.segments {
            if !seen.contains(&s.phase) {
                seen.push(s.phase);
            }
        }
        seen
    }
}

/// Segment-level pricing front-end over one [`Simulator`].
///
/// A request-level scheduler replays the same phase segment (one decode
/// step at a given batch/context, one prefill of a given prompt) hundreds
/// of times across requests; the context prices each distinct segment
/// exactly once and replays the memoized aggregate, bit-identically. The
/// context borrows the simulator, so its memo table shares the
/// simulator's lifetime but not its identity: a long-lived serving loop
/// keeps one context per simulator; `Simulator::run` builds a throwaway
/// one (the per-operator [`MappingCache`](crate::MappingCache) underneath
/// persists either way).
#[derive(Debug)]
pub struct ExecutionContext<'a> {
    sim: &'a Simulator,
    /// Segment memo keyed by the exact operator list, so two structurally
    /// identical segments from different builders share one entry and a
    /// hash collision can never alias distinct segments.
    memo: RefCell<HashMap<Vec<OpInstance>, SegmentCost>>,
}

impl<'a> ExecutionContext<'a> {
    /// Creates a context pricing on `sim`.
    pub fn new(sim: &'a Simulator) -> Self {
        ExecutionContext { sim, memo: RefCell::new(HashMap::new()) }
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &'a Simulator {
        self.sim
    }

    /// Runs a workload operator by operator (the flat execution loop that
    /// used to live in `Simulator::run`).
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn run(&self, workload: &Workload) -> Result<Report> {
        let mut report = Report::new(workload.name(), self.sim.config().name());
        for inst in workload.ops() {
            report.push(self.sim.run_instance(inst)?);
        }
        Ok(report)
    }

    /// Prices a run of consecutive operators, memoized on the exact
    /// operator list.
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn price_ops(&self, ops: &[OpInstance]) -> Result<SegmentCost> {
        if let Some(cost) = self.memo.borrow().get(ops) {
            return Ok(*cost);
        }
        let mut total = SegmentCost::ZERO;
        for inst in ops {
            let op = self.sim.run_instance(inst)?;
            total += SegmentCost {
                latency: op.latency,
                mxu_energy: op.mxu_energy,
                vpu_energy: op.vpu_energy,
                hbm_bytes: op.hbm_bytes,
            };
        }
        self.memo.borrow_mut().insert(ops.to_vec(), total);
        Ok(total)
    }

    /// Prices one workload segment (memoized).
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn price_segment(&self, segment: &Segment<'_>) -> Result<SegmentCost> {
        self.price_ops(segment.ops())
    }

    /// Prices a whole workload segment by segment.
    ///
    /// The summed totals equal [`run`](ExecutionContext::run)'s flat totals
    /// exactly: both paths price every operator through the same
    /// [`Simulator::run_instance`] and sum in execution order.
    ///
    /// # Errors
    ///
    /// Returns an error if any operator cannot be mapped onto the hardware.
    pub fn run_phased(&self, workload: &Workload) -> Result<PhasedReport> {
        let mut segments = Vec::with_capacity(workload.segment_count());
        for seg in workload.segments() {
            segments.push(SegmentReport {
                name: seg.name().to_owned(),
                phase: seg.phase(),
                cost: self.price_segment(&seg)?,
            });
        }
        Ok(PhasedReport { workload: workload.name().to_owned(), segments })
    }

    /// Number of memoized segments.
    pub fn memoized_segments(&self) -> usize {
        self.memo.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TpuConfig;
    use cimtpu_models::presets;

    #[test]
    fn phased_totals_match_flat_run() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cx = ExecutionContext::new(&sim);
        for workload in [
            presets::gpt3_30b().prefill_layer(4, 256).unwrap(),
            presets::gpt3_30b().decode_layer(4, 512).unwrap(),
            presets::dit_xl_2().block(2, 256).unwrap(),
        ] {
            let flat = cx.run(&workload).unwrap();
            let phased = cx.run_phased(&workload).unwrap();
            // Same per-op costs, summed segment-by-segment: equal up to
            // float-summation associativity, exact on integer traffic.
            let rel = (phased.total_latency().get() - flat.total_latency().get()).abs()
                / flat.total_latency().get();
            assert!(rel < 1e-12, "{}: latency rel err {rel:e}", workload.name());
            let rel = (phased.mxu_energy().get() - flat.mxu_energy().get()).abs()
                / flat.mxu_energy().get();
            assert!(rel < 1e-12, "{}: energy rel err {rel:e}", workload.name());
            let seg_bytes: u64 = phased.segments.iter().map(|s| s.cost.hbm_bytes.get()).sum();
            assert_eq!(seg_bytes, flat.hbm_bytes().get(), "{}", workload.name());
        }
    }

    #[test]
    fn replay_is_memoized_and_identical() {
        let sim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let cx = ExecutionContext::new(&sim);
        let layer = presets::gpt3_30b().decode_layer(8, 1280).unwrap();
        let first = cx.run_phased(&layer).unwrap();
        let segments_priced = cx.memoized_segments();
        let replay = cx.run_phased(&layer).unwrap();
        assert_eq!(first, replay);
        assert_eq!(cx.memoized_segments(), segments_priced, "replay must not re-price");
    }

    #[test]
    fn phase_costs_partition_the_total() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let cx = ExecutionContext::new(&sim);
        let block = presets::dit_xl_2().block(2, 256).unwrap();
        let phased = cx.run_phased(&block).unwrap();
        let by_phase: Seconds = phased
            .phases()
            .iter()
            .map(|&p| phased.cost_in_phase(p).latency)
            .sum();
        assert!((by_phase.get() - phased.total_latency().get()).abs() < 1e-15);
        assert!(phased.cost_in_phase(Phase::Conditioning).latency > Seconds::ZERO);
    }

    #[test]
    fn repeated_scales_cost() {
        let cost = SegmentCost {
            latency: Seconds::new(2.0),
            mxu_energy: Joules::new(3.0),
            vpu_energy: Joules::new(1.0),
            hbm_bytes: Bytes::new(100),
        };
        let five = cost.repeated(5.0);
        assert_eq!(five.latency, Seconds::new(10.0));
        assert_eq!(five.total_energy(), Joules::new(20.0));
        assert_eq!(five.hbm_bytes, Bytes::new(500));
    }
}
