//! TPU architecture configuration (Table I) and design presets (Table IV).

use serde::{Deserialize, Serialize};

use cimtpu_cim::CimMxuConfig;
use cimtpu_mapper::MemoryLevels;
use cimtpu_systolic::SystolicConfig;
use cimtpu_units::{Bandwidth, Bytes, Error, Frequency, Result};

use crate::vpu::VpuConfig;

/// Which matrix engine populates the TensorCore.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MxuKind {
    /// The vanilla TPUv4i 128×128 weight-stationary systolic array.
    DigitalSystolic(SystolicConfig),
    /// The paper's CIM-MXU (a grid of digital CIM cores).
    Cim(CimMxuConfig),
}

impl MxuKind {
    /// Peak MACs per cycle of one MXU of this kind.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        match self {
            MxuKind::DigitalSystolic(c) => c.macs(),
            MxuKind::Cim(c) => c.peak_macs_per_cycle(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MxuKind::DigitalSystolic(c) => format!("systolic {}x{}", c.rows(), c.cols()),
            MxuKind::Cim(c) => format!("CIM {}x{}", c.grid_rows(), c.grid_cols()),
        }
    }
}

/// Full architecture description of one TPU chip (Table I).
///
/// # Examples
///
/// ```
/// use cimtpu_core::TpuConfig;
/// let base = TpuConfig::tpuv4i();
/// assert_eq!(base.mxu_count(), 4);
/// assert_eq!(base.peak_macs_per_cycle(), 65536);
/// // Design A halves peak for big energy savings on LLM decoding.
/// assert_eq!(TpuConfig::design_a().peak_macs_per_cycle(), 32768);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpuConfig {
    name: String,
    clock: Frequency,
    mxu_count: u64,
    mxu: MxuKind,
    vpu: VpuConfig,
    levels: MemoryLevels,
    hbm_capacity: Bytes,
    ici_links: u64,
    ici_link_bandwidth: Bandwidth,
}

impl TpuConfig {
    /// The TPUv4i baseline (Table I, left column).
    pub fn tpuv4i() -> Self {
        TpuConfig {
            name: "TPUv4i".to_owned(),
            clock: Frequency::from_ghz(1.05),
            mxu_count: 4,
            mxu: MxuKind::DigitalSystolic(SystolicConfig::tpuv4i_mxu()),
            vpu: VpuConfig::tpuv4i(),
            levels: MemoryLevels::tpuv4i(),
            hbm_capacity: Bytes::from_gib(8),
            ici_links: 2,
            ici_link_bandwidth: Bandwidth::from_gb_per_s(100.0),
        }
    }

    /// The default CIM-based TPU (Table I, right column): four 16×8
    /// CIM-MXUs, everything else unchanged.
    pub fn cim_base() -> Self {
        let mut cfg = TpuConfig::tpuv4i();
        cfg.name = "CIM-TPU".to_owned();
        cfg.mxu = MxuKind::Cim(CimMxuConfig::paper_default());
        cfg
    }

    /// A CIM-based TPU with `mxu_count` MXUs of `grid_rows × grid_cols`
    /// CIM cores (the Table IV axes).
    pub fn cim_variant(mxu_count: u64, grid_rows: u64, grid_cols: u64) -> Self {
        let mut cfg = TpuConfig::tpuv4i();
        cfg.name = format!("CIM-TPU {mxu_count}x({grid_rows}x{grid_cols})");
        cfg.mxu_count = mxu_count;
        cfg.mxu = MxuKind::Cim(CimMxuConfig::with_grid(grid_rows, grid_cols));
        cfg
    }

    /// Design A: four CIM-MXUs with 8×8 grids — the paper's optimized
    /// configuration for LLM inference (latency/energy trade-off on the
    /// memory-bound decode stage).
    pub fn design_a() -> Self {
        let mut cfg = TpuConfig::cim_variant(4, 8, 8);
        cfg.name = "Design A".to_owned();
        cfg
    }

    /// Design B: eight CIM-MXUs with 16×8 grids — the paper's optimized
    /// configuration for compute-bound DiT inference.
    pub fn design_b() -> Self {
        let mut cfg = TpuConfig::cim_variant(8, 16, 8);
        cfg.name = "Design B".to_owned();
        cfg
    }

    /// All nine Table IV design points (count × grid), in sweep order.
    pub fn table4_designs() -> Vec<TpuConfig> {
        let mut out = Vec::new();
        for &(gr, gc) in &[(8u64, 8u64), (16, 8), (16, 16)] {
            for &count in &[2u64, 4, 8] {
                out.push(TpuConfig::cim_variant(count, gr, gc));
            }
        }
        out
    }

    /// A TPUv4-like training chip (Sec. III: "our architecture modeling can
    /// also be adapted to other TPU variants"): doubled MXU count and HBM
    /// bandwidth relative to the inference-oriented TPUv4i.
    pub fn tpuv4_like() -> Self {
        let mut cfg = TpuConfig::tpuv4i();
        cfg.name = "TPUv4-like".to_owned();
        cfg.mxu_count = 8;
        cfg.levels = MemoryLevels::tpuv4i()
            .with_hbm_bandwidth(Bandwidth::from_gb_per_s(1228.0));
        cfg.hbm_capacity = Bytes::from_gib(32);
        cfg
    }

    /// A CIM-based TPUv4-like chip (eight 16×8 CIM-MXUs).
    pub fn cim_tpuv4_like() -> Self {
        let mut cfg = TpuConfig::tpuv4_like();
        cfg.name = "CIM-TPUv4-like".to_owned();
        cfg.mxu = MxuKind::Cim(CimMxuConfig::paper_default());
        cfg
    }

    /// An A100-like "big accelerator" used only for the Fig. 2d runtime
    /// breakdown (relative fractions, not absolute speed): more matrix
    /// throughput and HBM bandwidth than a TPUv4i.
    pub fn a100_like() -> Self {
        let mut cfg = TpuConfig::tpuv4i();
        cfg.name = "A100-like".to_owned();
        cfg.clock = Frequency::from_ghz(1.41);
        cfg.levels = MemoryLevels::tpuv4i()
            .with_hbm_bandwidth(Bandwidth::from_gb_per_s(1555.0))
            .with_cmem(Bytes::from_mib(40));
        cfg
    }

    /// The chip name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the configuration.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Core clock.
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// Number of MXUs in the TensorCore.
    pub fn mxu_count(&self) -> u64 {
        self.mxu_count
    }

    /// The MXU kind.
    pub fn mxu(&self) -> &MxuKind {
        &self.mxu
    }

    /// The vector unit.
    pub fn vpu(&self) -> &VpuConfig {
        &self.vpu
    }

    /// The memory hierarchy.
    pub fn levels(&self) -> &MemoryLevels {
        &self.levels
    }

    /// Main-memory capacity.
    pub fn hbm_capacity(&self) -> Bytes {
        self.hbm_capacity
    }

    /// Number of inter-chip links.
    pub fn ici_links(&self) -> u64 {
        self.ici_links
    }

    /// Bandwidth per inter-chip link.
    pub fn ici_link_bandwidth(&self) -> Bandwidth {
        self.ici_link_bandwidth
    }

    /// Chip-level peak MAC throughput (all MXUs).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.mxu_count * self.mxu.peak_macs_per_cycle()
    }

    /// Chip-level peak in TOPS (2 ops per MAC) at the configured clock.
    pub fn peak_tops(&self) -> f64 {
        self.peak_macs_per_cycle() as f64 * 2.0 * self.clock.as_hz() / 1e12
    }

    /// Replaces the MXU configuration.
    #[must_use]
    pub fn with_mxu(mut self, count: u64, kind: MxuKind) -> Self {
        self.mxu_count = count;
        self.mxu = kind;
        self
    }

    /// Replaces the memory hierarchy.
    #[must_use]
    pub fn with_levels(mut self, levels: MemoryLevels) -> Self {
        self.levels = levels;
        self
    }

    /// Replaces the vector unit.
    #[must_use]
    pub fn with_vpu(mut self, vpu: VpuConfig) -> Self {
        self.vpu = vpu;
        self
    }

    /// Replaces the main-memory capacity — the budget a serving memory
    /// subsystem divides between resident weights and KV cache (the paper
    /// presets keep the TPUv4i's 8 GiB; deliberately tight capacities are
    /// how KV-pressure scenarios are built).
    #[must_use]
    pub fn with_hbm_capacity(mut self, capacity: Bytes) -> Self {
        self.hbm_capacity = capacity;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero MXU count, zero clock, or
    /// an invalid MXU geometry.
    pub fn validate(&self) -> Result<()> {
        if self.mxu_count == 0 {
            return Err(Error::invalid_config("MXU count must be non-zero"));
        }
        if self.clock.as_hz() <= 0.0 {
            return Err(Error::invalid_config("clock must be positive"));
        }
        if self.ici_links == 0 {
            return Err(Error::invalid_config("at least one ICI link is required"));
        }
        match &self.mxu {
            MxuKind::DigitalSystolic(c) => c.validate(),
            MxuKind::Cim(c) => c.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_capacity_is_overridable() {
        let tight = TpuConfig::design_a().with_hbm_capacity(Bytes::from_gib(2));
        assert_eq!(tight.hbm_capacity(), Bytes::from_gib(2));
        tight.validate().expect("capacity override keeps the config valid");
        // Presets are untouched.
        assert_eq!(TpuConfig::design_a().hbm_capacity(), Bytes::from_gib(8));
    }

    #[test]
    fn tpuv4i_matches_table1() {
        let cfg = TpuConfig::tpuv4i();
        assert_eq!(cfg.mxu_count(), 4);
        assert_eq!(cfg.peak_macs_per_cycle(), 4 * 128 * 128);
        assert_eq!(cfg.ici_links(), 2);
        assert_eq!(cfg.hbm_capacity(), Bytes::from_gib(8));
        // 4 MXUs * 16384 MACs * 2 * 1.05 GHz = 137.6 TOPS (TPUv4i peak).
        assert!((cfg.peak_tops() - 137.6).abs() < 1.0);
        cfg.validate().unwrap();
    }

    #[test]
    fn cim_base_keeps_same_peak() {
        assert_eq!(
            TpuConfig::cim_base().peak_macs_per_cycle(),
            TpuConfig::tpuv4i().peak_macs_per_cycle()
        );
    }

    #[test]
    fn table4_designs_cover_grid() {
        let designs = TpuConfig::table4_designs();
        assert_eq!(designs.len(), 9);
        // Peaks span 2*(8x8) .. 8*(16x16).
        let peaks: Vec<u64> = designs.iter().map(TpuConfig::peak_macs_per_cycle).collect();
        assert_eq!(peaks.iter().min(), Some(&(2 * 64 * 128)));
        assert_eq!(peaks.iter().max(), Some(&(8 * 256 * 128)));
        for d in &designs {
            d.validate().unwrap();
        }
    }

    #[test]
    fn design_points_match_paper() {
        // Design A: half the baseline peak. Design B: 2x the baseline peak.
        let base = TpuConfig::tpuv4i().peak_macs_per_cycle();
        assert_eq!(TpuConfig::design_a().peak_macs_per_cycle() * 2, base);
        assert_eq!(TpuConfig::design_b().peak_macs_per_cycle(), base * 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = TpuConfig::tpuv4i();
        cfg.mxu_count = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn tpuv4_like_doubles_the_chip() {
        let v4 = TpuConfig::tpuv4_like();
        assert_eq!(v4.peak_macs_per_cycle(), 2 * TpuConfig::tpuv4i().peak_macs_per_cycle());
        // ~275 TOPS, matching the published TPUv4 peak.
        assert!((v4.peak_tops() - 275.0).abs() < 2.0);
        assert_eq!(
            TpuConfig::cim_tpuv4_like().peak_macs_per_cycle(),
            v4.peak_macs_per_cycle()
        );
        v4.validate().unwrap();
    }
}
