//! Roofline analysis of workloads on a TPU configuration.
//!
//! The paper's central intuition — prefilling is compute-bound, decoding is
//! memory-bound (the survey \[12\]'s roofline framing) — made quantitative: for each
//! matrix operator this module reports its operational intensity, the
//! roofline-attainable rate, the rate the simulator actually achieved, and
//! which wall it sits against.
//!
//! # Examples
//!
//! ```
//! use cimtpu_core::{roofline, Simulator, TpuConfig};
//! use cimtpu_models::presets;
//!
//! let sim = Simulator::new(TpuConfig::tpuv4i())?;
//! let model = roofline::RooflineModel::of(&sim);
//! // Decode sits left of the ridge (memory-bound)…
//! let decode = roofline::analyze(&sim, &presets::gpt3_30b().decode_layer(8, 1280)?)?;
//! assert!(decode.iter().filter(|p| p.is_matrix).all(|p| p.intensity < model.ridge_intensity() * 4.0));
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use serde::{Deserialize, Serialize};

use cimtpu_models::{Op, OpCategory, Workload};
use cimtpu_units::Result;

use crate::simulator::Simulator;

/// The two walls of a roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// Limited by peak MAC throughput.
    Compute,
    /// Limited by main-memory bandwidth.
    Memory,
}

/// The chip's roofline: peak compute and memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Peak MACs per second (all MXUs).
    pub peak_macs_per_s: f64,
    /// Main-memory bandwidth in bytes per second.
    pub hbm_bytes_per_s: f64,
}

impl RooflineModel {
    /// Extracts the roofline of a simulator's configuration.
    pub fn of(sim: &Simulator) -> Self {
        let cfg = sim.config();
        RooflineModel {
            peak_macs_per_s: cfg.peak_macs_per_cycle() as f64 * cfg.clock().as_hz(),
            hbm_bytes_per_s: cfg.levels().hbm_bandwidth().get(),
        }
    }

    /// Intensity (MACs/byte) at which the two walls meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_macs_per_s / self.hbm_bytes_per_s
    }

    /// Attainable MAC rate at a given operational intensity.
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.hbm_bytes_per_s).min(self.peak_macs_per_s)
    }

    /// Which wall an operator at `intensity` leans on.
    pub fn bound(&self, intensity: f64) -> BoundKind {
        if intensity < self.ridge_intensity() {
            BoundKind::Memory
        } else {
            BoundKind::Compute
        }
    }
}

/// One operator placed on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Operator name.
    pub name: String,
    /// Reporting category.
    pub category: OpCategory,
    /// Whether this is a matrix op (vector ops have no MACs).
    pub is_matrix: bool,
    /// Operational intensity in MACs per main-memory byte.
    pub intensity: f64,
    /// Roofline-attainable MAC rate at this intensity.
    pub attainable_macs_per_s: f64,
    /// MAC rate the simulator actually achieved.
    pub achieved_macs_per_s: f64,
    /// The limiting wall.
    pub bound: BoundKind,
}

impl RooflinePoint {
    /// Achieved / attainable, in `(0, 1]` for a well-behaved model.
    pub fn roofline_efficiency(&self) -> f64 {
        if self.attainable_macs_per_s == 0.0 {
            return 0.0;
        }
        self.achieved_macs_per_s / self.attainable_macs_per_s
    }
}

/// Places every matrix operator of `workload` on the roofline of `sim`.
///
/// # Errors
///
/// Returns an error if the workload cannot be simulated.
pub fn analyze(sim: &Simulator, workload: &Workload) -> Result<Vec<RooflinePoint>> {
    let model = RooflineModel::of(sim);
    let mut points = Vec::new();
    for inst in workload.ops() {
        let rep = sim.run_instance(inst)?;
        let macs = inst.total_macs();
        let bytes = inst.op().main_memory_bytes().get() * inst.count();
        let is_matrix = inst.op().is_matrix_op();
        if !is_matrix {
            continue;
        }
        // Intensity counts unique main-memory traffic; on-chip re-use is
        // the whole point of the two-level hierarchy.
        let intensity = if bytes == 0 {
            f64::INFINITY
        } else {
            macs as f64 / bytes as f64
        };
        let achieved = macs as f64 / rep.latency.get().max(f64::MIN_POSITIVE);
        points.push(RooflinePoint {
            name: inst.name().to_owned(),
            category: inst.category(),
            is_matrix,
            intensity,
            attainable_macs_per_s: model.attainable(intensity),
            achieved_macs_per_s: achieved,
            bound: model.bound(intensity),
        });
    }
    // Vector ops are intentionally excluded: no MACs to place.
    let _ = Op::Softmax { rows: 0, cols: 0 };
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TpuConfig;
    use cimtpu_models::presets;

    #[test]
    fn ridge_is_where_walls_cross() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let m = RooflineModel::of(&sim);
        let ridge = m.ridge_intensity();
        let at_ridge = m.attainable(ridge);
        assert!((at_ridge - m.peak_macs_per_s).abs() / m.peak_macs_per_s < 1e-9);
        assert!(m.attainable(ridge / 2.0) < at_ridge);
        assert_eq!(m.bound(ridge / 2.0), BoundKind::Memory);
        assert_eq!(m.bound(ridge * 2.0), BoundKind::Compute);
    }

    #[test]
    fn prefill_gemms_compute_bound_decode_memory_bound() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let gpt3 = presets::gpt3_30b();

        let prefill = analyze(&sim, &gpt3.prefill_layer(8, 1024).unwrap()).unwrap();
        let qkv = prefill.iter().find(|p| p.name == "QKV Gen").unwrap();
        assert_eq!(qkv.bound, BoundKind::Compute);

        let decode = analyze(&sim, &gpt3.decode_layer(8, 1280).unwrap()).unwrap();
        for p in &decode {
            assert_eq!(p.bound, BoundKind::Memory, "{} should be memory-bound", p.name);
        }
    }

    #[test]
    fn achieved_never_exceeds_peak() {
        let sim = Simulator::new(TpuConfig::cim_base()).unwrap();
        let m = RooflineModel::of(&sim);
        for w in [
            presets::gpt3_30b().prefill_layer(8, 512).unwrap(),
            presets::gpt3_30b().decode_layer(8, 2048).unwrap(),
            presets::dit_xl_2().block(8, 512).unwrap(),
        ] {
            for p in analyze(&sim, &w).unwrap() {
                assert!(
                    p.achieved_macs_per_s <= m.peak_macs_per_s * (1.0 + 1e-9),
                    "{} exceeds peak",
                    p.name
                );
            }
        }
    }

    #[test]
    fn vector_ops_are_excluded() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let points = analyze(&sim, &presets::dit_xl_2().block(8, 256).unwrap()).unwrap();
        assert!(points.iter().all(|p| p.is_matrix));
        assert!(points.iter().any(|p| p.name == "Q x K^T"));
    }

    #[test]
    fn efficiency_is_sane() {
        let sim = Simulator::new(TpuConfig::tpuv4i()).unwrap();
        let points =
            analyze(&sim, &presets::gpt3_30b().prefill_layer(8, 1024).unwrap()).unwrap();
        for p in points {
            let e = p.roofline_efficiency();
            assert!(e > 0.05 && e <= 1.05, "{}: efficiency {e:.3}", p.name);
        }
    }
}
