//! Criterion benches: one per reproduced table/figure.
//!
//! Each bench exercises the full experiment code path (model building,
//! mapping, simulation) and asserts nothing — the assertions live in the
//! test suite; here we measure how fast the simulator regenerates each
//! artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cimtpu_bench::experiments;

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_mxu_comparison", |b| {
        b.iter(|| black_box(experiments::table2().expect("table2")))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_breakdown", |b| {
        b.iter(|| black_box(experiments::fig2_breakdown().expect("fig2")))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_layer_comparison", |b| {
        b.iter(|| black_box(experiments::fig6().expect("fig6")))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_exploration");
    g.sample_size(10); // 10 full-inference sweeps per sample is plenty
    g.bench_function("ten_design_points", |b| {
        b.iter(|| black_box(experiments::fig7().expect("fig7")))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_multi_device");
    g.sample_size(10);
    g.bench_function("nine_cluster_points", |b| {
        b.iter(|| black_box(experiments::fig8().expect("fig8")))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablations", |b| {
        b.iter(|| black_box(experiments::ablations().expect("ablations")))
    });
}

fn bench_extension_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("extension_sweeps");
    g.sample_size(10);
    g.bench_function("batch_sweep", |b| {
        b.iter(|| black_box(experiments::sweep_batch().expect("sweep")))
    });
    g.bench_function("context_sweep", |b| {
        b.iter(|| black_box(experiments::sweep_context().expect("sweep")))
    });
    g.bench_function("hbm_sweep", |b| {
        b.iter(|| black_box(experiments::sweep_hbm_bandwidth().expect("sweep")))
    });
    g.bench_function("moe_study", |b| {
        b.iter(|| black_box(experiments::moe_study().expect("moe")))
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table2,
    bench_fig2,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_ablations,
    bench_extension_sweeps
);
criterion_main!(paper);
