//! Trajectory benchmark: the memoized parallel sweep path vs the
//! sequential uncached reference (the seed's behaviour).
//!
//! Measures the Fig. 7 exploration end to end in both [`SweepMode`]s,
//! verifies the outputs are identical, prints criterion-style lines, and
//! exports the speedup to `BENCH_sweep.json` at the workspace root so the
//! number is tracked as a trajectory artifact:
//!
//! ```text
//! cargo bench -p cimtpu-bench --bench sweep
//! ```

use std::path::Path;
use std::time::Instant;

use cimtpu_bench::experiments;
use cimtpu_bench::sweep::{self, SweepMode};
use cimtpu_core::{inference, Simulator, TpuConfig};
use cimtpu_models::{presets, LlmInferenceSpec};
use serde::Serialize;

/// One measured experiment: reference vs optimized wall-clock.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    /// Experiment name.
    name: String,
    /// Sequential uncached wall-clock (seconds, min over samples).
    reference_s: f64,
    /// Parallel memoized wall-clock (seconds, min over samples).
    optimized_s: f64,
    /// reference / optimized.
    speedup: f64,
}

/// The exported trajectory artifact.
#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    /// Worker threads the parallel path used.
    workers: usize,
    /// Timed samples per measurement (min is reported).
    samples: u32,
    /// Mapping-cache hit rate over one full-LLM-inference evaluation.
    run_llm_cache_hit_rate: f64,
    /// Per-experiment timings.
    rows: Vec<BenchRow>,
}

/// Minimum wall-clock of `samples` runs of `f`, discarding results.
fn time_min<R>(samples: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn print_line(name: &str, seconds: f64) {
    println!(
        "{name:<48} time: [min {}]",
        criterion::format_duration(std::time::Duration::from_secs_f64(seconds))
    );
}

fn main() {
    // `cargo test` runs bench targets with `--test`: single quick sample.
    let samples: u32 = if std::env::args().any(|a| a == "--test") { 1 } else { 3 };
    let mut rows = Vec::new();

    // Correctness gate first: both paths must emit identical rows.
    let fast_rows = experiments::fig7_with(SweepMode::Parallel).expect("fig7 fast path");
    let ref_rows = experiments::fig7_with(SweepMode::SequentialUncached).expect("fig7 reference");
    assert_eq!(fast_rows, ref_rows, "sweep modes diverged — refusing to benchmark");

    // Fig. 7: the headline end-to-end sweep (10 design points, full LLM
    // inference + DiT forward each).
    let reference_s = time_min(samples, || {
        experiments::fig7_with(SweepMode::SequentialUncached).expect("fig7 reference")
    });
    let optimized_s = time_min(samples, || {
        experiments::fig7_with(SweepMode::Parallel).expect("fig7 fast path")
    });
    print_line("fig7/sequential_uncached", reference_s);
    print_line("fig7/parallel_memoized", optimized_s);
    rows.push(BenchRow {
        name: "fig7_exploration".to_owned(),
        reference_s,
        optimized_s,
        speedup: reference_s / optimized_s,
    });

    // Single-config full LLM inference: isolates the memoization win from
    // the parallel fan-out (one simulator, no threading either way).
    let spec = LlmInferenceSpec::new(
        experiments::BATCH,
        experiments::INPUT_LEN,
        experiments::OUTPUT_LEN,
    )
    .expect("valid spec");
    let gpt3 = presets::gpt3_30b();
    let reference_s = time_min(samples, || {
        let sim = Simulator::new(TpuConfig::cim_base()).expect("valid config");
        sim.mapping_cache().set_enabled(false);
        inference::run_llm(&sim, &gpt3, spec).expect("maps")
    });
    let optimized_s = time_min(samples, || {
        let sim = Simulator::new(TpuConfig::cim_base()).expect("valid config");
        inference::run_llm(&sim, &gpt3, spec).expect("maps")
    });
    print_line("run_llm/uncached", reference_s);
    print_line("run_llm/memoized", optimized_s);
    rows.push(BenchRow {
        name: "run_llm_gpt3_30b".to_owned(),
        reference_s,
        optimized_s,
        speedup: reference_s / optimized_s,
    });

    // Cache observability: hit rate over one full inference.
    let sim = Simulator::new(TpuConfig::cim_base()).expect("valid config");
    inference::run_llm(&sim, &gpt3, spec).expect("maps");
    let hit_rate = sim.cache_stats().hit_rate();

    let report = BenchReport {
        workers: sweep::available_workers(),
        samples,
        run_llm_cache_hit_rate: hit_rate,
        rows,
    };
    for row in &report.rows {
        println!("{:<48} speedup: {:.2}x", row.name, row.speedup);
    }
    println!("run_llm cache hit rate: {:.1}%", hit_rate * 100.0);

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
