//! Micro-benches of the engine and mapper hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cimtpu_core::{MatrixEngine, Simulator, TpuConfig};
use cimtpu_models::presets;
use cimtpu_units::{DataType, GemmShape};

fn bench_engine_timing(c: &mut Criterion) {
    let digital = MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu()).expect("valid");
    let cim = MatrixEngine::from_kind(TpuConfig::cim_base().mxu()).expect("valid");
    let shapes = [
        ("prefill_gemm", GemmShape::new(8192, 7168, 7168).expect("valid")),
        ("decode_gemv", GemmShape::new(8, 7168, 28672).expect("valid")),
        ("attention_item", GemmShape::gemv(128, 1280).expect("valid")),
    ];
    let mut g = c.benchmark_group("engine_gemm_timing");
    for (name, shape) in shapes {
        g.bench_with_input(BenchmarkId::new("digital", name), &shape, |b, &s| {
            b.iter(|| black_box(digital.gemm_cycles(s, DataType::Int8)))
        });
        g.bench_with_input(BenchmarkId::new("cim", name), &shape, |b, &s| {
            b.iter(|| black_box(cim.gemm_cycles(s, DataType::Int8)))
        });
    }
    g.finish();
}

fn bench_layer_simulation(c: &mut Criterion) {
    let sim = Simulator::new(TpuConfig::cim_base()).expect("valid");
    let prefill = presets::gpt3_30b().prefill_layer(8, 1024).expect("valid");
    let decode = presets::gpt3_30b().decode_layer(8, 1280).expect("valid");
    let dit = presets::dit_xl_2().block(8, 512).expect("valid");
    let mut g = c.benchmark_group("layer_simulation");
    g.bench_function("gpt3_prefill_layer", |b| {
        b.iter(|| black_box(sim.run(&prefill).expect("mappable")))
    });
    g.bench_function("gpt3_decode_layer", |b| {
        b.iter(|| black_box(sim.run(&decode).expect("mappable")))
    });
    g.bench_function("dit_block", |b| {
        b.iter(|| black_box(sim.run(&dit).expect("mappable")))
    });
    g.finish();
}

fn bench_bitserial_functional(c: &mut Criterion) {
    use cimtpu_cim::bitserial::BitSerialMacUnit;
    let unit = BitSerialMacUnit::new(128);
    let input: Vec<i8> = (0..128).map(|i| (i % 251) as i8).collect();
    let weights: Vec<Vec<i8>> = (0..128)
        .map(|r| (0..256).map(|col| ((r * 7 + col * 3) % 255) as i8).collect())
        .collect();
    c.bench_function("bitserial_matvec_128x256", |b| {
        b.iter(|| black_box(unit.matvec(&input, &weights).expect("valid shapes")))
    });
}

fn bench_cycle_sim(c: &mut Criterion) {
    use cimtpu_systolic::cycle_sim::CycleSim;
    let sim = CycleSim::new(16, 16).expect("valid");
    let a: Vec<Vec<i32>> = (0..32).map(|i| (0..16).map(|j| i + j).collect()).collect();
    let w: Vec<Vec<i32>> = (0..16).map(|i| (0..16).map(|j| i - j).collect()).collect();
    c.bench_function("cycle_sim_32x16x16", |b| {
        b.iter(|| black_box(sim.run(&a, &w).expect("valid shapes")))
    });
}

criterion_group!(
    engines,
    bench_engine_timing,
    bench_layer_simulation,
    bench_bitserial_functional,
    bench_cycle_sim
);
criterion_main!(engines);
