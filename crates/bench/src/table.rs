//! Minimal fixed-width table printer for experiment binaries.

/// A simple text table with a header row.
///
/// # Examples
///
/// ```
/// use cimtpu_bench::table::Table;
/// let mut t = Table::new(vec!["config", "latency (ms)"]);
/// t.row(vec!["baseline".into(), format!("{:.3}", 1.234)]);
/// let s = t.render();
/// assert!(s.contains("baseline"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Table {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells beyond the header width are dropped).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .take(widths.len())
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i] + 2))
                .collect::<String>()
                .trim_end()
                .to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn extra_cells_are_dropped() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "spurious".into()]);
        assert!(!t.render().contains("spurious"));
    }
}
