//! Static datasets reproduced from the paper's survey figures.

use serde::Serialize;

/// One published design in the Fig. 1 evolution survey.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CimDesign {
    /// Publication venue and year.
    pub venue: &'static str,
    /// Reference number in the paper.
    pub reference: &'static str,
    /// Peak INT performance in TOPS (0 when unpublished).
    pub tops: f64,
    /// Peak FP performance in TFLOPS (0 when integer-only).
    pub tflops: f64,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Process node label.
    pub node: &'static str,
    /// Whether the design uses compute-in-memory.
    pub cim: bool,
}

/// The Fig. 1 dataset: evolution of CIM-based designs vs. established
/// accelerators.
pub fn cim_evolution() -> Vec<CimDesign> {
    vec![
        CimDesign { venue: "ISSCC'19", reference: "[7]", tops: 0.0177, tflops: 0.0, area_mm2: 0.003, node: "65nm", cim: true },
        CimDesign { venue: "ISSCC'20", reference: "[8]", tops: 0.4551, tflops: 0.0, area_mm2: 0.0032, node: "7nm", cim: true },
        CimDesign { venue: "ISSCC'22", reference: "[9]", tops: 1.35, tflops: 1.08, area_mm2: 0.94, node: "28nm", cim: true },
        CimDesign { venue: "ISSCC'23", reference: "[10]", tops: 5.52, tflops: 1.25, area_mm2: 4.54, node: "28nm", cim: true },
        CimDesign { venue: "ISSCC'24", reference: "[11]", tops: 52.4, tflops: 0.0, area_mm2: 6.5, node: "12nm", cim: true },
        CimDesign { venue: "NVIDIA A100", reference: "[4]", tops: 624.0, tflops: 312.0, area_mm2: 826.0, node: "7nm", cim: false },
        CimDesign { venue: "Google TPUv4", reference: "[6]", tops: 275.0, tflops: 275.0, area_mm2: 780.0, node: "7nm", cim: false },
    ]
}

/// The paper's Fig. 2d reference breakdown (measured on A100 GPUs),
/// used to compare our simulated fractions against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig2dRow {
    /// Model name.
    pub model: &'static str,
    /// Layer-group name.
    pub layer: &'static str,
    /// Latency in milliseconds as reported.
    pub latency_ms: f64,
    /// Fraction of total inference time as reported.
    pub fraction: f64,
}

/// Paper-reported Fig. 2d rows.
pub fn fig2d_reference() -> Vec<Fig2dRow> {
    vec![
        Fig2dRow { model: "Llama2-13B", layer: "Token Embedding", latency_ms: 0.41, fraction: 0.0070 },
        Fig2dRow { model: "Llama2-13B", layer: "Transformer Layers", latency_ms: 57.91, fraction: 0.9835 },
        Fig2dRow { model: "Llama2-13B", layer: "Prediction Head", latency_ms: 0.56, fraction: 0.0095 },
        Fig2dRow { model: "DiT-XL/2", layer: "Pre-Process", latency_ms: 1.18, fraction: 0.0035 },
        Fig2dRow { model: "DiT-XL/2", layer: "DiT Blocks", latency_ms: 338.10, fraction: 0.9931 },
        Fig2dRow { model: "DiT-XL/2", layer: "Post-Process", latency_ms: 1.15, fraction: 0.0034 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolution_spans_five_orders_of_magnitude() {
        let designs = cim_evolution();
        let min = designs.iter().map(|d| d.tops).fold(f64::MAX, f64::min);
        let max = designs.iter().map(|d| d.tops).fold(0.0, f64::max);
        assert!(max / min > 1e4);
        assert!(designs.iter().any(|d| !d.cim));
    }

    #[test]
    fn fig2d_fractions_sum_to_one_per_model() {
        for model in ["Llama2-13B", "DiT-XL/2"] {
            let sum: f64 = fig2d_reference()
                .iter()
                .filter(|r| r.model == model)
                .map(|r| r.fraction)
                .sum();
            assert!((sum - 1.0).abs() < 0.01, "{model}: {sum}");
        }
    }
}
