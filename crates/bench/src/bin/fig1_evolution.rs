//! Fig. 1: evolution of the computing performance of CIM-based designs.

use cimtpu_bench::{data, table::Table};

fn main() {
    println!("Fig. 1 — Evolution of the computing performance of CIM-based designs\n");
    let mut t = Table::new(vec![
        "design", "ref", "TOPS", "TFLOPS", "area (mm^2)", "node", "CIM",
    ]);
    for d in data::cim_evolution() {
        t.row(vec![
            d.venue.to_owned(),
            d.reference.to_owned(),
            format!("{:.4}", d.tops),
            if d.tflops > 0.0 { format!("{:.2}", d.tflops) } else { "-".to_owned() },
            format!("{:.4}", d.area_mm2),
            d.node.to_owned(),
            if d.cim { "yes" } else { "no" }.to_owned(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "CIM designs span {:.1e}x in peak performance over five years;\n\
         the gap to A100/TPUv4 motivates integrating CIM *into* a TPU."
        , 52.4 / 0.0177
    );
}
