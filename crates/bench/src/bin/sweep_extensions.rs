//! Extension sweeps beyond the paper: batch size and context length.

use cimtpu_bench::{experiments, table::Table};

fn main() {
    println!("Extension sweep 1 — CIM decode benefit vs batch size (GPT-3-30B, ctx 1280)\n");
    let rows = experiments::sweep_batch().expect("batch sweep failed");
    let mut t = Table::new(vec![
        "batch", "baseline (ms)", "CIM (ms)", "speedup", "energy reduction",
    ]);
    for r in &rows {
        t.row(vec![
            r.batch.to_string(),
            format!("{:.3}", r.baseline.as_millis()),
            format!("{:.3}", r.cim.as_millis()),
            format!("{:.2}x", r.speedup),
            format!("{:.1}x", r.energy_reduction),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Batched attention GEMVs multiply with batch size and serialize on\n\
         the systolic baseline, while staying KV-bandwidth-bound on the\n\
         CIM-MXU: the latency benefit GROWS with batch, and the\n\
         ~order-of-magnitude energy advantage persists throughout.\n"
    );

    println!("Extension sweep 2 — decode cost vs context length (GPT-3-30B, batch 8)\n");
    let rows = experiments::sweep_context().expect("context sweep failed");
    let mut t = Table::new(vec![
        "ctx", "baseline (ms)", "CIM (ms)", "attn share (base)", "speedup",
    ]);
    for r in &rows {
        t.row(vec![
            r.ctx.to_string(),
            format!("{:.3}", r.baseline.as_millis()),
            format!("{:.3}", r.cim.as_millis()),
            format!("{:.1}%", r.baseline_attention_fraction * 100.0),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Attention grows linearly with context; since attention GEMVs are\n\
         exactly where the CIM-MXU wins, long-context serving amplifies the\n\
         benefit the paper measured at ctx = 1280.\n"
    );

    println!("Extension sweep 3 — CIM decode benefit vs HBM bandwidth\n");
    let rows = experiments::sweep_hbm_bandwidth().expect("HBM sweep failed");
    let mut t = Table::new(vec!["HBM (GB/s)", "baseline (ms)", "CIM (ms)", "speedup"]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}", r.hbm_gb_per_s),
            format!("{:.3}", r.baseline.as_millis()),
            format!("{:.3}", r.cim.as_millis()),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Faster memory raises the roofline; the baseline's serialized\n\
         attention becomes the binding constraint, so CIM-based TPUs age\n\
         well as HBM generations advance."
    );
}
