//! Fig. 8: multi-device inference throughput (1/2/4 TPUs, pipeline
//! parallelism over the ICI ring).

use cimtpu_bench::{experiments, table::Table};

fn main() {
    println!(
        "Fig. 8 — Inference throughput: baseline vs Design A vs Design B\n\
         GPT-3-30B (1024/512 tokens) and DiT-XL/2 @512x512 (50-step sampler)\n"
    );
    let rows = experiments::fig8().expect("fig8 sweep failed");
    let mut t = Table::new(vec![
        "config",
        "TPUs",
        "LLM tok/s",
        "MXU J/token",
        "DiT img/s",
        "MXU J/image",
    ]);
    for r in &rows {
        t.row(vec![
            r.config.clone(),
            r.devices.to_string(),
            format!("{:.1}", r.llm_tokens_per_s),
            format!("{:.4}", r.llm_energy_per_token.get()),
            format!("{:.3}", r.dit_images_per_s),
            format!("{:.3}", r.dit_energy_per_image.get()),
        ]);
    }
    println!("{}", t.render());

    // Average speedups over the baseline at matching device counts.
    let avg = |name: &str, metric: fn(&experiments::Fig8Row) -> f64| -> f64 {
        let mut sum = 0.0;
        let mut n = 0.0;
        for d in [1u64, 2, 4] {
            let base = rows.iter().find(|r| r.config == "TPUv4i" && r.devices == d);
            let cfg = rows.iter().find(|r| r.config == name && r.devices == d);
            if let (Some(b), Some(c)) = (base, cfg) {
                sum += metric(c) / metric(b);
                n += 1.0;
            }
        }
        sum / n
    };
    println!(
        "Design A: avg LLM speedup {:.2}x (paper: 1.28x), MXU energy/token {:.1}x lower (paper: 24.2x)",
        avg("Design A", |r| r.llm_tokens_per_s),
        1.0 / avg("Design A", |r| r.llm_energy_per_token.get()),
    );
    println!(
        "Design B: avg DiT speedup {:.2}x (paper: 1.33x), MXU energy/image {:.1}x lower (paper: 6.34x)",
        avg("Design B", |r| r.dit_images_per_s),
        1.0 / avg("Design B", |r| r.dit_energy_per_image.get()),
    );
}
