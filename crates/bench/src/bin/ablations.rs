//! Ablation studies beyond the paper (DESIGN.md §7).

use cimtpu_bench::{experiments, table::Table};

fn main() {
    println!("Ablations — contribution of individual design features\n");
    let rows = experiments::ablations().expect("ablation sweep failed");
    let mut t = Table::new(vec![
        "knob",
        "workload",
        "enabled (ms)",
        "disabled (ms)",
        "disabled/enabled",
    ]);
    for r in &rows {
        t.row(vec![
            r.knob.clone(),
            r.workload.clone(),
            format!("{:.4}", r.enabled.as_millis()),
            format!("{:.4}", r.disabled.as_millis()),
            format!("{:.3}x", r.ratio),
        ]);
    }
    println!("{}", t.render());
    println!(
        "GEMV asymmetry sanity: decode-attention batched matmuls take {:.1}x\n\
         fewer MXU cycles on the CIM-MXU than on the systolic baseline.",
        experiments::gemv_cycle_ratio().expect("engine configs valid"),
    );
}
