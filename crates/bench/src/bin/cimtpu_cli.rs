//! `cimtpu-cli` — command-line driver for the simulator.
//!
//! ```text
//! cimtpu configs
//! cimtpu models
//! cimtpu simulate  --config cim-base --model gpt3-30b --stage decode --batch 8 --ctx 1280 [--json]
//! cimtpu simulate  --config design-b --model dit-xl/2 --stage dit-block --batch 8 --resolution 512
//! cimtpu inference --config design-a --model gpt3-30b --batch 8 --input 1024 --output 512 [--json]
//! cimtpu throughput --config design-a --devices 4 --model gpt3-30b --batch 8 --input 1024 --output 512
//! cimtpu memory    --config tpuv4i --model llama2-70b --batch 8 --input 4096 --output 512
//! ```
//!
//! Architecture names: `tpuv4i`, `cim-base`, `design-a`, `design-b`, or
//! `cim-<count>x<rows>x<cols>` (e.g. `cim-8x16x16`).

use std::collections::HashMap;
use std::process::ExitCode;

use cimtpu_core::{inference, memory::MemoryFootprint, Simulator, TpuConfig};
use cimtpu_models::{presets, LlmInferenceSpec};
use cimtpu_multi::MultiTpu;

fn parse_config(name: &str) -> Result<TpuConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "tpuv4i" | "baseline" => Ok(TpuConfig::tpuv4i()),
        "cim-base" | "cim" => Ok(TpuConfig::cim_base()),
        "design-a" => Ok(TpuConfig::design_a()),
        "design-b" => Ok(TpuConfig::design_b()),
        "a100-like" => Ok(TpuConfig::a100_like()),
        "tpuv4-like" => Ok(TpuConfig::tpuv4_like()),
        "cim-tpuv4-like" => Ok(TpuConfig::cim_tpuv4_like()),
        other => {
            let parts: Vec<&str> = other
                .strip_prefix("cim-")
                .ok_or_else(|| format!("unknown config '{other}'"))?
                .split('x')
                .collect();
            if parts.len() != 3 {
                return Err(format!(
                    "unknown config '{other}' (expected cim-<count>x<rows>x<cols>)"
                ));
            }
            let nums: Vec<u64> = parts
                .iter()
                .map(|p| p.parse().map_err(|_| format!("bad number in '{other}'")))
                .collect::<Result<_, _>>()?;
            Ok(TpuConfig::cim_variant(nums[0], nums[1], nums[2]))
        }
    }
}

struct Args {
    flags: HashMap<String, String>,
    json: bool,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut json = false;
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if arg == "--json" {
                json = true;
            } else if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.insert(key.to_owned(), value.clone());
            } else {
                return Err(format!("unexpected argument '{arg}'"));
            }
        }
        Ok(Args { flags, json })
    }

    fn get(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} must be a number")),
        }
    }
}

fn cmd_configs() {
    println!("{:<14} {:>6} {:>10} {:>12}", "name", "MXUs", "peak TOPS", "MXU kind");
    let mut configs = vec![
        TpuConfig::tpuv4i(),
        TpuConfig::cim_base(),
        TpuConfig::design_a(),
        TpuConfig::design_b(),
    ];
    configs.extend(TpuConfig::table4_designs());
    for cfg in configs {
        println!(
            "{:<14} {:>6} {:>10.1} {:>12}",
            cfg.name(),
            cfg.mxu_count(),
            cfg.peak_tops(),
            cfg.mxu().label()
        );
    }
    println!("\nAlso accepted: cim-<count>x<rows>x<cols>, e.g. cim-8x16x16.");
}

fn cmd_models() {
    println!("LLMs: gpt3-30b, gpt3-175b, gpt3-6.7b, llama2-13b, llama2-70b (GQA)");
    println!("DiTs: dit-xl/2, dit-l/2, dit-b/2");
}

/// Resolves the architecture from --config-file (JSON) or --config (name).
fn resolve_config(args: &Args) -> Result<TpuConfig, String> {
    if let Ok(path) = args.get("config-file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let cfg: TpuConfig =
            serde_json::from_str(&text).map_err(|e| format!("bad config JSON: {e}"))?;
        cfg.validate().map_err(|e| e.to_string())?;
        return Ok(cfg);
    }
    parse_config(args.get("config")?)
}

fn cmd_export_config(args: &Args) -> Result<(), String> {
    let cfg = parse_config(args.get("config")?)?;
    println!(
        "{}",
        serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let cfg = resolve_config(args)?;
    let sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    let model_name = args.get("model")?;
    let stage = args.get("stage")?;
    let batch = args.get_u64("batch", 8)?;

    let workload = match stage {
        "prefill" => {
            let seq = args.get_u64("seq", 1024)?;
            presets::transformer_by_name(model_name)
                .map_err(|e| e.to_string())?
                .prefill_layer(batch, seq)
                .map_err(|e| e.to_string())?
        }
        "decode" => {
            let ctx = args.get_u64("ctx", 1280)?;
            presets::transformer_by_name(model_name)
                .map_err(|e| e.to_string())?
                .decode_layer(batch, ctx)
                .map_err(|e| e.to_string())?
        }
        "dit-block" => {
            let resolution = args.get_u64("resolution", 512)?;
            presets::dit_by_name(model_name)
                .map_err(|e| e.to_string())?
                .block(batch, resolution)
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown stage '{other}' (prefill|decode|dit-block)")),
    };

    let report = sim.run(&workload).map_err(|e| e.to_string())?;
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{report}");
    }
    Ok(())
}

fn cmd_inference(args: &Args) -> Result<(), String> {
    let cfg = resolve_config(args)?;
    let sim = Simulator::new(cfg).map_err(|e| e.to_string())?;
    let model = presets::transformer_by_name(args.get("model")?).map_err(|e| e.to_string())?;
    let spec = LlmInferenceSpec::new(
        args.get_u64("batch", 8)?,
        args.get_u64("input", 1024)?,
        args.get_u64("output", 512)?,
    )
    .map_err(|e| e.to_string())?;
    let r = inference::run_llm(&sim, &model, spec).map_err(|e| e.to_string())?;
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{} on {}: prefill {:.2} s, decode {:.2} s, total {:.2} s, \
             MXU energy {:.1} J, {:.1} tokens/s",
            model.name(),
            sim.config().name(),
            r.prefill_latency.get(),
            r.decode_latency.get(),
            r.total_latency().get(),
            r.total_mxu_energy().get(),
            r.tokens_per_second()
        );
    }
    Ok(())
}

fn cmd_memory(args: &Args) -> Result<(), String> {
    let cfg = resolve_config(args)?;
    let model = presets::transformer_by_name(args.get("model")?).map_err(|e| e.to_string())?;
    let spec = LlmInferenceSpec::new(
        args.get_u64("batch", 8)?,
        args.get_u64("input", 1024)?,
        args.get_u64("output", 512)?,
    )
    .map_err(|e| e.to_string())?;
    let fp = MemoryFootprint::llm(&model, spec);
    println!(
        "{} on {}: weights {}, KV cache {}, activations {}, total {}",
        model.name(),
        cfg.name(),
        fp.weights(),
        fp.kv_cache(),
        fp.activations(),
        fp.total()
    );
    if fp.fits(&cfg) {
        println!("fits in one chip ({} HBM)", cfg.hbm_capacity());
    } else {
        println!(
            "does NOT fit one chip ({} HBM); needs >= {} devices",
            cfg.hbm_capacity(),
            fp.min_devices(&cfg)
        );
    }
    Ok(())
}

fn cmd_throughput(args: &Args) -> Result<(), String> {
    let cfg = resolve_config(args)?;
    let devices = args.get_u64("devices", 4)?;
    let cluster = MultiTpu::new(cfg, devices).map_err(|e| e.to_string())?;
    let model = presets::transformer_by_name(args.get("model")?).map_err(|e| e.to_string())?;
    let spec = LlmInferenceSpec::new(
        args.get_u64("batch", 8)?,
        args.get_u64("input", 1024)?,
        args.get_u64("output", 512)?,
    )
    .map_err(|e| e.to_string())?;
    let r = cluster
        .llm_pipeline_throughput(&model, spec)
        .map_err(|e| e.to_string())?;
    println!(
        "{} x{}: {:.1} tokens/s, {:.4} J/token (MXU), round {:.2} ms",
        cluster.simulator().config().name(),
        devices,
        r.throughput,
        r.mxu_energy_per_unit.get(),
        r.round_latency.as_millis()
    );
    Ok(())
}

const USAGE: &str = "usage: cimtpu <configs|models|simulate|inference|throughput|memory|export-config> [flags]\nany command taking --config also accepts --config-file <path.json> (see export-config)
run `cimtpu <command>` with no flags to see what it needs";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "configs" => {
            cmd_configs();
            Ok(())
        }
        "models" => {
            cmd_models();
            Ok(())
        }
        "simulate" => cmd_simulate(&args),
        "memory" => cmd_memory(&args),
        "export-config" => cmd_export_config(&args),
        "inference" => cmd_inference(&args),
        "throughput" => cmd_throughput(&args),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
