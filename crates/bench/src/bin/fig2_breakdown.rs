//! Fig. 2d: inference latency breakdown of generative models.

use cimtpu_bench::{data, experiments, table::Table};

fn main() {
    let rows = experiments::fig2_breakdown().expect("fig2 simulation failed");
    let reference = data::fig2d_reference();

    println!("Fig. 2d — Inference latency breakdown (simulated vs paper-reported)\n");
    let mut t = Table::new(vec![
        "model", "layer", "latency (ms)", "breakdown", "paper breakdown",
    ]);
    for r in &rows {
        let paper = reference
            .iter()
            .find(|p| p.model == r.model && p.layer == r.layer)
            .map_or("-".to_owned(), |p| format!("{:.2}%", p.fraction * 100.0));
        t.row(vec![
            r.model.clone(),
            r.layer.clone(),
            format!("{:.2}", r.latency_ms),
            format!("{:.2}%", r.fraction * 100.0),
            paper,
        ]);
    }
    println!("{}", t.render());
    println!(
        "Claim reproduced: Transformer layers / DiT blocks dominate inference\n\
         time (paper: 98.35% and 99.31%), so accelerating them accelerates\n\
         the whole model."
    );
}
