//! Extension study: Mixture-of-Experts inference on the CIM-based TPU.

use cimtpu_bench::{experiments, table::Table};

fn main() {
    println!(
        "MoE extension — Mixtral-8x7B-like (8 experts, top-2), batch {}, INT8\n",
        experiments::BATCH
    );
    let rows = experiments::moe_study().expect("MoE study failed");
    let mut t = Table::new(vec![
        "stage", "baseline (ms)", "CIM (ms)", "speedup", "MXU energy reduction",
    ]);
    for r in &rows {
        t.row(vec![
            r.stage.clone(),
            format!("{:.3}", r.baseline.as_millis()),
            format!("{:.3}", r.cim.as_millis()),
            format!("{:.2}x", r.speedup),
            format!("{:.1}x", r.energy_reduction),
        ]);
    }
    println!("{}", t.render());
    println!(
        "MoE decoding streams every activated expert's FFN weights each\n\
         step — the memory-bound, low-reuse regime where the paper's CIM\n\
         analysis predicts the largest efficiency gains. The trend the paper\n\
         established for dense LLM decoding carries over to MoE."
    );
}
