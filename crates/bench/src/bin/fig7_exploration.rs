//! Fig. 7: architecture exploration of different CIM-MXU configurations
//! (full GPT-3-30B inference with 1024/512 tokens + DiT-XL/2 forward).

use cimtpu_bench::{experiments, table::Table};

fn main() {
    println!(
        "Fig. 7 — Exploration over Table IV design points (batch {}, INT8)\n\
         LLM: GPT-3-30B, input 1024 / output 512 tokens (decode-dominated).\n\
         DiT: DiT-XL/2 @ 512x512, one forward pass.\n",
        experiments::BATCH
    );
    let rows = experiments::fig7().expect("fig7 sweep failed");
    let mut t = Table::new(vec![
        "config",
        "LLM latency (s)",
        "LLM norm",
        "LLM MXU E (J)",
        "E norm",
        "DiT latency (ms)",
        "DiT norm",
        "DiT MXU E (mJ)",
        "E norm",
    ]);
    for r in &rows {
        t.row(vec![
            r.config.clone(),
            format!("{:.2}", r.llm_latency.get()),
            format!("{:.3}", r.llm_latency_norm),
            format!("{:.1}", r.llm_mxu_energy.get()),
            format!("{:.4}", r.llm_energy_norm),
            format!("{:.1}", r.dit_latency.as_millis()),
            format!("{:.3}", r.dit_latency_norm),
            format!("{:.1}", r.dit_mxu_energy.as_millijoules()),
            format!("{:.4}", r.dit_energy_norm),
        ]);
    }
    println!("{}", t.render());

    let best_llm = rows
        .iter()
        .min_by(|a, b| a.llm_latency_norm.total_cmp(&b.llm_latency_norm))
        .expect("non-empty sweep");
    let best_dit = rows
        .iter()
        .min_by(|a, b| a.dit_latency_norm.total_cmp(&b.dit_latency_norm))
        .expect("non-empty sweep");
    let small = rows
        .iter()
        .find(|r| r.mxu_count == 2 && r.grid == "8x8")
        .expect("2x(8x8) present");
    println!(
        "Headlines (paper in parentheses):\n\
         - max LLM improvement: {:.1}% ({}) (paper: 44.2%)\n\
         - max DiT improvement: {:.1}% ({}) (paper: 33.8%)\n\
         - 2x(8x8): {:+.0}% LLM latency at {:.1}x less MXU energy (paper: +38%, 27.3x)",
        (1.0 - best_llm.llm_latency_norm) * 100.0,
        best_llm.config,
        (1.0 - best_dit.dit_latency_norm) * 100.0,
        best_dit.config,
        (small.llm_latency_norm - 1.0) * 100.0,
        1.0 / small.llm_energy_norm,
    );
}
