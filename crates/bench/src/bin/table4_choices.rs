//! Table IV: architecture design choices of the CIM-MXU.

use cimtpu_bench::table::Table;
use cimtpu_core::TpuConfig;

fn main() {
    println!("Table IV — Architecture design choices of CIM-MXU\n");
    let mut t = Table::new(vec!["Parameters", "Architecture Choices", "", ""]);
    t.row(vec!["Array dimension".into(), "8 x 8".into(), "16 x 8".into(), "16 x 16".into()]);
    t.row(vec!["CIM-MXU count".into(), "2".into(), "4".into(), "8".into()]);
    println!("{}", t.render());

    println!("All nine design points (chip-level peak at 1.05 GHz):\n");
    let mut t = Table::new(vec!["config", "MXU count", "grid", "cores", "peak TOPS", "vs TPUv4i"]);
    let base_peak = TpuConfig::tpuv4i().peak_tops();
    for cfg in TpuConfig::table4_designs() {
        let (grid, cores) = match cfg.mxu() {
            cimtpu_core::MxuKind::Cim(c) => (
                format!("{}x{}", c.grid_rows(), c.grid_cols()),
                (c.core_count() * cfg.mxu_count()).to_string(),
            ),
            cimtpu_core::MxuKind::DigitalSystolic(_) => ("-".into(), "-".into()),
        };
        t.row(vec![
            cfg.name().to_owned(),
            cfg.mxu_count().to_string(),
            grid,
            cores,
            format!("{:.1}", cfg.peak_tops()),
            format!("{:.2}x", cfg.peak_tops() / base_peak),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Design A = 4x(8x8) (optimized for LLMs); Design B = 8x(16x8)\n\
         (optimized for DiTs). See fig7_exploration for the evaluation."
    );
}
