//! Exports every experiment's structured results as JSON for plotting.
//!
//! Writes one file per experiment into `results/` (created if missing):
//! `fig2.json`, `table2.json`, `fig6.json`, `fig7.json`, `fig8.json`,
//! `ablations.json`, `sweep_batch.json`, `sweep_context.json`,
//! `sweep_hbm.json`, `moe.json`.

use std::fs;
use std::path::Path;

use cimtpu_bench::experiments;

fn write_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    let path = dir.join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => match fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("failed to serialize {name}: {e}"),
    }
}

fn main() {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    write_json(dir, "table2.json", &experiments::table2().expect("table2"));
    write_json(dir, "fig2.json", &experiments::fig2_breakdown().expect("fig2"));
    write_json(dir, "fig6.json", &experiments::fig6().expect("fig6"));
    write_json(dir, "fig7.json", &experiments::fig7().expect("fig7"));
    write_json(dir, "fig8.json", &experiments::fig8().expect("fig8"));
    write_json(dir, "ablations.json", &experiments::ablations().expect("ablations"));
    write_json(dir, "sweep_batch.json", &experiments::sweep_batch().expect("sweep"));
    write_json(dir, "sweep_context.json", &experiments::sweep_context().expect("sweep"));
    write_json(dir, "sweep_hbm.json", &experiments::sweep_hbm_bandwidth().expect("sweep"));
    write_json(dir, "moe.json", &experiments::moe_study().expect("moe"));
    println!("done — load with pandas.read_json or jq");
}
