//! Fig. 6: comparison between baseline and CIM-based TPU designs on a
//! GPT-3-30B prefill layer, decode layer, and DiT-XL/2 block.

use cimtpu_bench::experiments;
use cimtpu_core::Report;
use cimtpu_models::OpCategory;

fn print_stage(stage: &experiments::StageComparison, paper_latency: &str, paper_energy: &str) {
    println!("=== {} ===", stage.stage);
    print_breakdown("baseline TPUv4i", &stage.baseline);
    print_breakdown("CIM-based TPU", &stage.cim);
    println!(
        "latency: {:+.2}% vs baseline (paper: {paper_latency}); \
         MXU energy: {:.2}x less (paper: {paper_energy})\n",
        stage.latency_delta * 100.0,
        stage.cim.mxu_energy_reduction_vs(&stage.baseline),
    );
}

fn print_breakdown(label: &str, rep: &Report) {
    println!(
        "  {label}: total {:.3} ms, MXU energy {:.3} mJ",
        rep.total_latency().as_millis(),
        rep.mxu_energy().as_millijoules()
    );
    for cat in OpCategory::FIG6_ORDER {
        let lat = rep.latency_in(cat);
        if lat.get() > 0.0 {
            println!(
                "    {:<14} {:>9.4} ms ({:>5.1}%)  {:>10.4} mJ",
                cat.label(),
                lat.as_millis(),
                lat / rep.total_latency() * 100.0,
                rep.mxu_energy_in(cat).as_millijoules(),
            );
        }
    }
}

fn main() {
    let f = experiments::fig6().expect("fig6 simulation failed");
    println!(
        "Fig. 6 — GPT-3-30B layer + DiT-XL/2 block, batch {}, INT8\n",
        experiments::BATCH
    );
    print_stage(&f.llm_prefill, "+2.43%", "9.21x");
    print_stage(&f.llm_decode, "-29.9%", "13.4x");
    print_stage(&f.dit_block, "-6.67%", "10.4x");
}
