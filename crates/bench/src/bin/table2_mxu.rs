//! Table II: comparison between CIM-MXU and digital MXU.

use cimtpu_bench::{experiments, table::Table};

fn main() {
    let r = experiments::table2().expect("table2 evaluation failed");
    println!("Table II — Comparison between CIM-MXU and digital MXU (INT8, 22 nm)\n");
    let mut t = Table::new(vec!["Evaluation Metrics", "Digital MXU", "CIM-MXU", "Speedup"]);
    t.row(vec![
        "MACs per cycle".into(),
        r.macs_per_cycle.0.to_string(),
        r.macs_per_cycle.1.to_string(),
        format!("{:.2}x", r.macs_per_cycle.1 as f64 / r.macs_per_cycle.0 as f64),
    ]);
    t.row(vec![
        "Energy Efficiency".into(),
        format!("{:.2} TOPS/W", r.tops_per_w.0),
        format!("{:.2} TOPS/W", r.tops_per_w.1),
        format!("{:.2}x", r.energy_ratio),
    ]);
    t.row(vec![
        "Area Efficiency".into(),
        format!("{:.3} TOPS/mm2", r.tops_per_mm2.0),
        format!("{:.3} TOPS/mm2", r.tops_per_mm2.1),
        format!("{:.2}x", r.area_ratio),
    ]);
    println!("{}", t.render());
    println!("Paper: 0.77 vs 7.26 TOPS/W (9.43x), 0.648 vs 1.31 TOPS/mm2 (2.02x).");
}
