//! Table I: architecture parameters for the CIM-based TPU.

use cimtpu_bench::table::Table;
use cimtpu_core::{MxuKind, TpuConfig};

fn describe_mxu(cfg: &TpuConfig) -> (String, String) {
    match cfg.mxu() {
        MxuKind::DigitalSystolic(c) => {
            (format!("{}x{} MACs", c.rows(), c.cols()), "N/A".to_owned())
        }
        MxuKind::Cim(c) => (
            format!("{}x{} CIMs", c.grid_rows(), c.grid_cols()),
            format!("{} x {}", c.core().rows(), c.core().cols()),
        ),
    }
}

fn main() {
    let base = TpuConfig::tpuv4i();
    let cim = TpuConfig::cim_base();
    let (base_mxu, base_core) = describe_mxu(&base);
    let (cim_mxu, cim_core) = describe_mxu(&cim);

    println!("Table I — Architecture parameters for CIM-based TPU\n");
    let mut t = Table::new(vec!["Key parameters", "TPUv4i", "CIM-based TPU"]);
    t.row(vec!["Tensor Core count".into(), "1".into(), "1".into()]);
    t.row(vec!["MXU count".into(), base.mxu_count().to_string(), cim.mxu_count().to_string()]);
    t.row(vec!["MXU dimension".into(), base_mxu, cim_mxu]);
    t.row(vec!["CIM core dimension".into(), base_core, cim_core]);
    t.row(vec!["Vector width".into(), "8 x 128".into(), "8 x 128".into()]);
    t.row(vec![
        "Vector memory size".into(),
        format!("{}", base.levels().vmem()),
        format!("{}", cim.levels().vmem()),
    ]);
    t.row(vec![
        "Common memory size".into(),
        format!("{}", base.levels().cmem()),
        format!("{}", cim.levels().cmem()),
    ]);
    t.row(vec![
        "Main memory size".into(),
        format!("{}", base.hbm_capacity()),
        format!("{}", cim.hbm_capacity()),
    ]);
    t.row(vec![
        "Main memory bandwidth".into(),
        format!("{:.0} GB/s", base.levels().hbm_bandwidth().as_gb_per_s()),
        format!("{:.0} GB/s", cim.levels().hbm_bandwidth().as_gb_per_s()),
    ]);
    t.row(vec![
        "ICI link bandwidth".into(),
        format!("{:.0} GB/s", base.ici_link_bandwidth().as_gb_per_s()),
        format!("{:.0} GB/s", cim.ici_link_bandwidth().as_gb_per_s()),
    ]);
    t.row(vec![
        "Peak (INT8, 1.05 GHz)".into(),
        format!("{:.1} TOPS", base.peak_tops()),
        format!("{:.1} TOPS", cim.peak_tops()),
    ]);
    println!("{}", t.render());
}
