//! Table III: configurations of evaluated generative models.

use cimtpu_bench::table::Table;
use cimtpu_models::presets;

fn main() {
    println!("Table III — Configurations of evaluated generative models\n");
    let mut t = Table::new(vec!["Generative model", "# Layers", "# Heads", "d_model", "d_ff"]);
    let gpt3 = presets::gpt3_30b();
    t.row(vec![
        gpt3.name().to_owned(),
        gpt3.layers().to_string(),
        gpt3.heads().to_string(),
        gpt3.d_model().to_string(),
        gpt3.d_ff().to_string(),
    ]);
    let dit = presets::dit_xl_2();
    let dt = dit.transformer();
    t.row(vec![
        dt.name().to_owned(),
        dit.blocks().to_string(),
        dt.heads().to_string(),
        dt.d_model().to_string(),
        dt.d_ff().to_string(),
    ]);
    println!("{}", t.render());

    println!("Additional presets available for scaling studies:\n");
    let mut t = Table::new(vec!["model", "# Layers", "# Heads", "d_model"]);
    for m in [presets::gpt3_6_7b(), presets::gpt3_175b(), presets::llama2_13b()] {
        t.row(vec![
            m.name().to_owned(),
            m.layers().to_string(),
            m.heads().to_string(),
            m.d_model().to_string(),
        ]);
    }
    for d in [presets::dit_b_2(), presets::dit_l_2()] {
        let m = d.transformer();
        t.row(vec![
            m.name().to_owned(),
            m.layers().to_string(),
            m.heads().to_string(),
            m.d_model().to_string(),
        ]);
    }
    println!("{}", t.render());
}
