//! Reproduces every table and figure in one run (the full evaluation).

use std::process::Command;

const BINS: &[&str] = &[
    "fig1_evolution",
    "fig2_breakdown",
    "table1_parameters",
    "table2_mxu",
    "table3_models",
    "fig6_layer_comparison",
    "table4_choices",
    "fig7_exploration",
    "fig8_multi_device",
    "ablations",
    "sweep_extensions",
    "moe_study",
];

fn main() {
    // When invoked through cargo the sibling binaries sit next to us.
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe has a parent dir");
    for bin in BINS {
        println!("\n{}\n### {}\n{}", "=".repeat(78), bin, "=".repeat(78));
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo for `cargo run --bin repro_all` workflows.
            Command::new("cargo")
                .args(["run", "--quiet", "--release", "-p", "cimtpu-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e}"),
        }
    }
}
