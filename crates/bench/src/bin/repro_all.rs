//! Reproduces every table and figure in one run (the full evaluation).
//!
//! The reproduction binaries are independent, so they fan out through the
//! sweep driver's worker pool. The children are themselves internally
//! parallel, so the available workers are split between the two levels
//! (a few children at a time, each with its share of the cores) rather
//! than letting every child claim the whole machine. Each child's
//! captured output is printed in the canonical order as soon as it — and
//! everything before it — has finished, so the combined log matches a
//! sequential run section for section. Set `CIMTPU_WORKERS=1` to
//! serialize the whole thing (children then inherit all cores).
//!
//! `--shard I/N` splits the binary list across N cooperating processes
//! (e.g. CI jobs): shard I runs the binaries at positions `≡ I (mod N)`.
//! Point `CIMTPU_CACHE_DIR` at a directory the shards share and each
//! worker warm-starts from the persistent mapping caches while its saves
//! merge back into them (sorted, union-of-entries files), so the shards
//! converge to exactly the cache a single process would have written.

use std::path::PathBuf;
use std::process::Command;

use cimtpu_bench::sweep;

const BINS: &[&str] = &[
    "fig1_evolution",
    "fig2_breakdown",
    "table1_parameters",
    "table2_mxu",
    "table3_models",
    "fig6_layer_comparison",
    "table4_choices",
    "fig7_exploration",
    "fig8_multi_device",
    "ablations",
    "sweep_extensions",
    "moe_study",
];

/// Outcome of one child binary.
struct BinRun {
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    status: Result<std::process::ExitStatus, String>,
}

fn run_bin(dir: &std::path::Path, bin: &str, child_workers: usize) -> BinRun {
    let path = dir.join(bin);
    let mut command = if path.exists() {
        Command::new(&path)
    } else {
        // Fall back to cargo for `cargo run --bin repro_all` workflows.
        let mut c = Command::new("cargo");
        c.args(["run", "--quiet", "--release", "-p", "cimtpu-bench", "--bin", bin]);
        c
    };
    command.env("CIMTPU_WORKERS", child_workers.to_string());
    match command.output() {
        Ok(out) => BinRun {
            stdout: out.stdout,
            stderr: out.stderr,
            status: Ok(out.status),
        },
        Err(e) => BinRun {
            stdout: Vec::new(),
            stderr: Vec::new(),
            status: Err(format!("failed to launch {bin}: {e}")),
        },
    }
}

fn print_section(bin: &str, run: BinRun) {
    println!("\n{}\n### {}\n{}", "=".repeat(78), bin, "=".repeat(78));
    print!("{}", String::from_utf8_lossy(&run.stdout));
    eprint!("{}", String::from_utf8_lossy(&run.stderr));
    match run.status {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => eprintln!("{e}"),
    }
}

fn main() {
    // `--workers N` overrides the CIMTPU_WORKERS environment variable
    // (and is inherited by the child binaries through it).
    let mut shard: Option<sweep::Shard> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("repro_all: --workers needs a positive integer");
                        std::process::exit(2);
                    });
                std::env::set_var("CIMTPU_WORKERS", n.max(1).to_string());
            }
            "--shard" => {
                shard = Some(
                    args.next().as_deref().and_then(sweep::Shard::parse).unwrap_or_else(|| {
                        eprintln!("repro_all: --shard needs i/n with 0 <= i < n");
                        std::process::exit(2);
                    }),
                );
            }
            "--help" | "-h" => {
                println!("usage: repro_all [--workers N] [--shard I/N]");
                println!();
                println!("  --shard I/N  run only the reproduction binaries at list");
                println!("               positions congruent to I modulo N (0 <= I < N).");
                println!("               The assignment is deterministic and depends only");
                println!("               on positions, so the N shards partition the list");
                println!("               exactly: their union is one repro_all run, and");
                println!("               re-running a shard redoes exactly its slice.");
                println!("               Set CIMTPU_CACHE_DIR to a shared directory so");
                println!("               the shards warm-start from — and merge their");
                println!("               mapping caches back into — the same files.");
                return;
            }
            other => {
                eprintln!("repro_all: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // The shard owns a deterministic, position-based slice of the binary
    // list; the cache-directory merge-on-save makes N sharded processes
    // converge to the cache files one process would have written.
    let bins: Vec<&str> = match shard {
        Some(s) => s.select(BINS).into_iter().copied().collect(),
        None => BINS.to_vec(),
    };

    // When invoked through cargo the sibling binaries sit next to us.
    let me = std::env::current_exe().expect("current exe path");
    let dir: PathBuf = me.parent().expect("exe has a parent dir").to_path_buf();

    // Split the workers between the two levels of parallelism: at most a
    // few children in flight, each with a fair share of the cores. With
    // CIMTPU_WORKERS=1 the outer loop is sequential and each child gets
    // every core (the long fig7 child then parallelizes internally).
    let workers = sweep::available_workers();
    let outer = workers.clamp(1, 4).min(bins.len().max(1));
    let child_workers = (workers / outer).max(1);

    std::env::set_var("CIMTPU_WORKERS", outer.to_string());
    sweep::parallel_map_consume(
        &bins,
        |bin| run_bin(&dir, bin, child_workers),
        |i, run| print_section(bins[i], run),
    );
}
