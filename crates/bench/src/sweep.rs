//! Parallel design-space sweep driver.
//!
//! The paper's experiments fan the same evaluation over many independent
//! design points (hardware configurations, batch sizes, context lengths).
//! This module provides the std-only work-stealing fan-out used by every
//! sweep binary: [`parallel_map`] and [`parallel_map_init`] mirror rayon's
//! `par_iter().map()` / `map_init()` idioms over `std::thread::scope`
//! (rayon itself is gated out — the build environment has no registry
//! access, and the scoped-thread implementation needs no dependencies).
//!
//! Each worker owns its per-worker state — typically one
//! [`Simulator`](cimtpu_core::Simulator) per design point, whose
//! [`MappingCache`](cimtpu_core::MappingCache) then serves every repeated
//! operator query on that worker. Results always return in item order, so
//! parallel sweeps are output-identical to sequential ones.
//!
//! # The `CIMTPU_WORKERS` environment variable
//!
//! `CIMTPU_WORKERS=<n>` caps the worker count for every pool in the
//! process (`1` forces a sequential run, which the benchmarks use as the
//! reference); unset, pools size to `std::thread::available_parallelism`.
//! Values below 1 are clamped to 1. Drivers with a command line
//! (`repro_all`, `serve_sim`) expose the same knob as `--workers N`,
//! which simply overrides the variable — child processes spawned by
//! `repro_all` inherit it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How a sweep executes: the production fast path or the reference path
/// benchmarks compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Parallel fan-out with memoized simulators (the default).
    #[default]
    Parallel,
    /// One worker, mapping caches disabled: the pre-optimization baseline.
    /// Produces bit-identical results to [`SweepMode::Parallel`].
    SequentialUncached,
}

impl SweepMode {
    /// Whether simulators created for this sweep should memoize pricing.
    pub fn cache_enabled(self) -> bool {
        self == SweepMode::Parallel
    }

    /// The worker count this mode allows for `items` work items.
    pub fn workers_for(self, items: usize) -> usize {
        match self {
            SweepMode::Parallel => available_workers().min(items).max(1),
            SweepMode::SequentialUncached => 1,
        }
    }
}

/// A deterministic `index/count` split of a work list across processes
/// (the `--shard i/n` flag on `repro_all`).
///
/// Shard `i` of `n` owns exactly the items whose position is congruent
/// to `i` modulo `n`: the shards partition any item list, every item
/// belongs to exactly one shard, and the assignment depends only on
/// positions — never on timing — so re-running a shard reproduces its
/// work exactly. Cross-process sharing happens through the persistent
/// mapping-cache directory (`CIMTPU_CACHE_DIR`): each shard warm-starts
/// from it and its saves *merge* into it (union of entries,
/// deterministic sorted files), so n sharded processes converge to the
/// same cache files one process would have written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Parses `"i/n"` (0-based `i < n`, `n ≥ 1`); `None` on anything else.
    pub fn parse(s: &str) -> Option<Shard> {
        let (i, n) = s.split_once('/')?;
        let (index, count) = (i.parse().ok()?, n.parse().ok()?);
        (count >= 1 && index < count).then_some(Shard { index, count })
    }

    /// Whether this shard owns the item at `position`: exactly when
    /// `position ≡ index (mod count)`. A pure function of the position —
    /// item values, timing, and the other shards never enter into it.
    pub fn owns(&self, position: usize) -> bool {
        position % self.count == self.index
    }

    /// The sub-list of `items` this shard owns, in the original order.
    ///
    /// The `n` shards of a list partition it: every item appears in
    /// exactly one shard's selection, and concatenating the selections
    /// position-by-position reproduces the one-process list — the
    /// contract that makes a sharded sweep's union equal a single run.
    pub fn select<'a, T>(&self, items: &'a [T]) -> Vec<&'a T> {
        items.iter().enumerate().filter(|(i, _)| self.owns(*i)).map(|(_, t)| t).collect()
    }
}

/// Worker threads available to sweeps (`CIMTPU_WORKERS` overrides the
/// detected CPU parallelism).
pub fn available_workers() -> usize {
    if let Some(n) = std::env::var("CIMTPU_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on a worker pool, preserving item order.
///
/// Equivalent to rayon's `items.par_iter().map(f).collect()`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_init(items, || (), |(), item| f(item))
}

/// Maps `f` over `items` with per-worker state, preserving item order.
///
/// `init` runs once per worker thread; the resulting state is threaded
/// through every item that worker steals. This is the hook for "one warm
/// simulator per worker": the state's mapping cache accumulates across the
/// worker's share of the sweep. Equivalent to rayon's
/// `par_iter().map_init(init, f)`.
pub fn parallel_map_init<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    map_with_workers(items, available_workers(), &init, &f)
}

/// [`parallel_map_init`] with an explicit worker count (used by
/// [`SweepMode::workers_for`] and the benchmarks).
pub fn map_with_mode<T, S, R, I, F>(mode: SweepMode, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    map_with_workers(items, mode.workers_for(items.len()), &init, &f)
}

/// Like [`parallel_map`], but hands each result to `consume` **in item
/// order as soon as it and all its predecessors are ready**, instead of
/// waiting for the whole batch. Used by drivers that stream output (e.g.
/// `repro_all` printing each section as it completes).
pub fn parallel_map_consume<T, R, F, C>(items: &[T], f: F, mut consume: C)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, R),
{
    pool_run(items, available_workers(), &|| (), &|(), item| f(item), &mut consume);
}

fn map_with_workers<T, S, R, I, F>(items: &[T], workers: usize, init: &I, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    // Delivery is in item order, so collecting is a plain push.
    pool_run(items, workers, init, f, &mut |_, result| out.push(result));
    out
}

/// The single worker-pool core every public entry point delegates to:
/// work-stealing over an atomic cursor, per-worker `init` state, and
/// in-item-order delivery to `consume` (each result is emitted as soon as
/// it and all its predecessors are ready).
fn pool_run<T, S, R, I, F>(
    items: &[T],
    workers: usize,
    init: &I,
    f: &F,
    consume: &mut dyn FnMut(usize, R),
) where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        let mut state = init();
        for (i, item) in items.iter().enumerate() {
            consume(i, f(&mut state, item));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // Work stealing: each worker grabs the next unclaimed
                    // item, so uneven per-item cost balances automatically.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&mut state, &items[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Receive concurrently with the workers, emitting the longest
        // ready prefix after every arrival.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut emitted = 0;
        for (i, result) in rx {
            slots[i] = Some(result);
            while emitted < n {
                match slots[emitted].take() {
                    Some(ready) => {
                        consume(emitted, ready);
                        emitted += 1;
                    }
                    None => break,
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shards_partition_any_item_list() {
        let items: Vec<u64> = (0..37).collect();
        for n in 1..=5 {
            let shards: Vec<Shard> =
                (0..n).map(|i| Shard::parse(&format!("{i}/{n}")).unwrap()).collect();
            // Every item is owned by exactly one shard, order preserved.
            let mut owners = vec![0usize; items.len()];
            for s in &shards {
                let mine = s.select(&items);
                assert!(mine.windows(2).all(|w| w[0] < w[1]));
                for &&x in &mine {
                    owners[x as usize] += 1;
                }
            }
            assert!(owners.iter().all(|&c| c == 1), "{n} shards");
        }
    }

    #[test]
    fn shard_union_equals_the_one_process_sweep() {
        // A tenant-tagged sweep: each work item names a tenant and a
        // seed, as a sharded multi-tenant repro run would. The union of
        // the shards' results, reassembled by owned position, must equal
        // the single-process sweep bit-for-bit.
        let tenants = ["chat", "api", "bulk"];
        let items: Vec<(&str, u64)> =
            (0..23).map(|i| (tenants[i % tenants.len()], 0xBEEF + i as u64)).collect();
        let work = |&(tenant, seed): &(&str, u64)| format!("{tenant}:{}", seed.wrapping_mul(31));
        let one_process = parallel_map(&items, work);
        for n in 1..=4 {
            let mut union: Vec<Option<String>> = vec![None; items.len()];
            for i in 0..n {
                let shard = Shard::parse(&format!("{i}/{n}")).unwrap();
                let mine: Vec<(&str, u64)> =
                    shard.select(&items).into_iter().copied().collect();
                let results = parallel_map(&mine, work);
                let positions: Vec<usize> =
                    (0..items.len()).filter(|&p| shard.owns(p)).collect();
                assert_eq!(positions.len(), results.len());
                for (p, r) in positions.into_iter().zip(results) {
                    assert!(union[p].is_none(), "position {p} owned twice under {n} shards");
                    union[p] = Some(r);
                }
            }
            let union: Vec<String> = union
                .into_iter()
                .map(|r| r.expect("every position owned by some shard"))
                .collect();
            assert_eq!(union, one_process, "{n} shards");
        }
    }

    #[test]
    fn shard_parse_rejects_malformed_specs() {
        assert_eq!(Shard::parse("0/1"), Some(Shard { index: 0, count: 1 }));
        assert_eq!(Shard::parse("2/3"), Some(Shard { index: 2, count: 3 }));
        for bad in ["", "1", "3/3", "4/3", "1/0", "-1/2", "a/b", "1/2/3"] {
            assert_eq!(Shard::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn init_runs_at_most_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, &x| {
                *state += 1;
                x
            },
        );
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= available_workers().min(items.len()));
    }

    #[test]
    fn sequential_mode_uses_one_worker() {
        assert_eq!(SweepMode::SequentialUncached.workers_for(100), 1);
        assert!(!SweepMode::SequentialUncached.cache_enabled());
        assert!(SweepMode::Parallel.cache_enabled());
        let items: Vec<u64> = (0..10).collect();
        let out = map_with_mode(SweepMode::SequentialUncached, &items, || (), |(), &x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn consume_delivers_in_order_and_completely() {
        let items: Vec<u64> = (0..50).collect();
        let mut seen = Vec::new();
        parallel_map_consume(&items, |&x| x * 3, |i, r| seen.push((i, r)));
        assert_eq!(
            seen,
            items.iter().map(|&x| (x as usize, x * 3)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn errors_pass_through_as_results() {
        let items = [1u64, 0, 3];
        let out = parallel_map(&items, |&x| {
            if x == 0 { Err("zero") } else { Ok(x) }
        });
        assert_eq!(out, vec![Ok(1), Err("zero"), Ok(3)]);
    }
}
