//! One function per paper table/figure (see DESIGN.md §4).
//!
//! The multi-point experiments (`fig7`, the extension sweeps, `moe_study`)
//! fan their independent design points out through [`crate::sweep`]; each
//! worker evaluates on its own memoized [`Simulator`], so results are
//! bit-identical to — but much faster than — a sequential uncached run
//! (see [`fig7_with`] and the `sweep` bench).

use serde::Serialize;

use crate::sweep::{self, SweepMode};
use cimtpu_core::{inference, Simulator, TpuConfig};
use cimtpu_models::{presets, LlmInferenceSpec, OpCategory, Workload};
use cimtpu_multi::MultiTpu;
use cimtpu_units::{DataType, Frequency, GemmShape, Joules, Result, Seconds};

/// Per-worker pair of simulators (baseline, CIM) built lazily inside the
/// sweep closure so construction errors propagate into the row `Result`.
type SimPair = Option<(Simulator, Simulator)>;

/// Returns the worker's `(baseline, cim)` simulators, building them on
/// first use.
fn base_cim_pair(state: &mut SimPair) -> Result<&(Simulator, Simulator)> {
    if state.is_none() {
        *state = Some((
            Simulator::new(TpuConfig::tpuv4i())?,
            Simulator::new(TpuConfig::cim_base())?,
        ));
    }
    Ok(state.as_ref().expect("just initialized"))
}

/// The evaluation batch size used throughout the paper.
pub const BATCH: u64 = 8;
/// Prefill input length (Fig. 6 / Fig. 7).
pub const INPUT_LEN: u64 = 1024;
/// Decode output length (Fig. 7).
pub const OUTPUT_LEN: u64 = 512;
/// Fig. 6 decode point: the 256th output token.
pub const FIG6_DECODE_TOKEN: u64 = 256;
/// DiT image resolution.
pub const DIT_RESOLUTION: u64 = 512;

/// Comparison of one workload on the baseline vs the CIM-based TPU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageComparison {
    /// Stage name (e.g. `"LLM Prefilling"`).
    pub stage: String,
    /// Baseline report.
    pub baseline: cimtpu_core::Report,
    /// CIM-TPU report.
    pub cim: cimtpu_core::Report,
    /// Relative latency change of CIM vs baseline (negative = faster).
    pub latency_delta: f64,
    /// MXU energy reduction factor (baseline / CIM).
    pub energy_reduction: f64,
}

fn compare(stage: &str, base: &Simulator, cim: &Simulator, w: &Workload) -> Result<StageComparison> {
    let b = base.run(w)?;
    let c = cim.run(w)?;
    Ok(StageComparison {
        stage: stage.to_owned(),
        latency_delta: c.total_latency() / b.total_latency() - 1.0,
        energy_reduction: c.mxu_energy_reduction_vs(&b).recip().recip(),
        baseline: b,
        cim: c,
    })
}

/// Table II: standalone digital MXU vs CIM-MXU.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2Result {
    /// MACs per cycle (identical by design).
    pub macs_per_cycle: (u64, u64),
    /// Energy efficiency in TOPS/W (digital, CIM).
    pub tops_per_w: (f64, f64),
    /// Area efficiency in TOPS/mm² (digital, CIM).
    pub tops_per_mm2: (f64, f64),
    /// CIM / digital energy-efficiency ratio (paper: 9.43×).
    pub energy_ratio: f64,
    /// CIM / digital area-efficiency ratio (paper: 2.02×).
    pub area_ratio: f64,
}

/// Computes the Table II comparison from the calibrated engine models.
///
/// # Errors
///
/// Returns an error if the default configurations are invalid.
pub fn table2() -> Result<Table2Result> {
    use cimtpu_cim::{CimMxu, CimMxuConfig};
    use cimtpu_systolic::{SystolicArray, SystolicConfig};

    let clock = Frequency::from_ghz(1.05);
    let digital = SystolicArray::new(SystolicConfig::tpuv4i_mxu())?;
    let cim = CimMxu::new(CimMxuConfig::paper_default())?;

    let peak = |macs: u64| macs as f64 * 2.0 * clock.as_hz() / 1e12;
    let d_peak = peak(digital.peak_macs_per_cycle());
    let c_peak = peak(cim.peak_macs_per_cycle());

    let d_power = digital.peak_macs_per_cycle() as f64
        * digital.energy_model().mac_energy(DataType::Int8).get()
        * clock.as_hz()
        + digital.static_power().get();
    let c_power = cim.peak_macs_per_cycle() as f64
        * cim.energy_model().mac_energy(DataType::Int8).get()
        * clock.as_hz()
        + cim.static_power().get();

    let tops_per_w = (d_peak / d_power, c_peak / c_power);
    let tops_per_mm2 = (d_peak / digital.area().as_mm2(), c_peak / cim.area().as_mm2());
    Ok(Table2Result {
        macs_per_cycle: (digital.peak_macs_per_cycle(), cim.peak_macs_per_cycle()),
        energy_ratio: tops_per_w.1 / tops_per_w.0,
        area_ratio: tops_per_mm2.1 / tops_per_mm2.0,
        tops_per_w,
        tops_per_mm2,
    })
}

/// Fig. 2d: full-model runtime breakdown on a big accelerator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig2Row {
    /// Model name.
    pub model: String,
    /// Layer group.
    pub layer: String,
    /// Simulated latency (ms).
    pub latency_ms: f64,
    /// Fraction of total model time.
    pub fraction: f64,
}

/// Simulates the Fig. 2d breakdown (Transformer layers dominate ≥98%).
///
/// # Errors
///
/// Returns an error if the workloads cannot be built or mapped.
pub fn fig2_breakdown() -> Result<Vec<Fig2Row>> {
    let sim = Simulator::new(TpuConfig::a100_like())?;
    let mut rows = Vec::new();

    // Llama2-13B, Alpaca-style lengths: short prompt, moderate generation.
    let llama = presets::llama2_13b_full();
    let spec = LlmInferenceSpec::new(1, 128, 128)?;
    let prefill = sim.run(&llama.full_prefill(spec.batch(), spec.input_len())?)?;
    let decode = sim.run(&llama.full_decode_step(spec.batch(), spec.ctx_at_step(spec.output_len() / 2))?)?;
    let group = |rep: &cimtpu_core::Report, cat: OpCategory| rep.latency_in(cat);
    let embed = group(&prefill, OpCategory::Embedding)
        + group(&decode, OpCategory::Embedding) * spec.output_len() as f64;
    let head = group(&prefill, OpCategory::Head)
        + group(&decode, OpCategory::Head) * spec.output_len() as f64;
    let total = prefill.total_latency()
        + decode.total_latency() * spec.output_len() as f64;
    let layers = total - embed - head;
    for (layer, lat) in [
        ("Token Embedding", embed),
        ("Transformer Layers", layers),
        ("Prediction Head", head),
    ] {
        rows.push(Fig2Row {
            model: "Llama2-13B".to_owned(),
            layer: layer.to_owned(),
            latency_ms: lat.as_millis(),
            fraction: lat / total,
        });
    }

    // DiT-XL/2 @ 512x512, one diffusion step.
    let dit = presets::dit_xl_2();
    let full = sim.run(&dit.full_forward(BATCH, DIT_RESOLUTION)?)?;
    let total = full.total_latency();
    let pre = full.latency_in(OpCategory::Embedding);
    let post = full.latency_in(OpCategory::Head);
    let blocks = total - pre - post;
    for (layer, lat) in [
        ("Pre-Process", pre),
        ("DiT Blocks", blocks),
        ("Post-Process", post),
    ] {
        rows.push(Fig2Row {
            model: "DiT-XL/2".to_owned(),
            layer: layer.to_owned(),
            latency_ms: lat.as_millis(),
            fraction: lat / total,
        });
    }
    Ok(rows)
}

/// Fig. 6: baseline vs CIM-TPU on the three evaluated stages.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig6Result {
    /// GPT-3-30B single-layer prefill (L = 1024).
    pub llm_prefill: StageComparison,
    /// GPT-3-30B single-layer decode at the 256th output token.
    pub llm_decode: StageComparison,
    /// DiT-XL/2 single block @ 512×512.
    pub dit_block: StageComparison,
}

/// Runs the Fig. 6 comparison.
///
/// # Errors
///
/// Returns an error if the workloads cannot be built or mapped.
pub fn fig6() -> Result<Fig6Result> {
    let base = Simulator::new(TpuConfig::tpuv4i())?;
    let cim = Simulator::new(TpuConfig::cim_base())?;
    let gpt3 = presets::gpt3_30b();
    let dit = presets::dit_xl_2();

    Ok(Fig6Result {
        llm_prefill: compare(
            "LLM Prefilling",
            &base,
            &cim,
            &gpt3.prefill_layer(BATCH, INPUT_LEN)?,
        )?,
        llm_decode: compare(
            "LLM Decoding",
            &base,
            &cim,
            &gpt3.decode_layer(BATCH, INPUT_LEN + FIG6_DECODE_TOKEN)?,
        )?,
        dit_block: compare("DiT Block", &base, &cim, &dit.block(BATCH, DIT_RESOLUTION)?)?,
    })
}

/// One Fig. 7 sweep point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Row {
    /// Configuration name.
    pub config: String,
    /// MXU count.
    pub mxu_count: u64,
    /// CIM grid label (empty for the baseline).
    pub grid: String,
    /// Full LLM inference latency.
    pub llm_latency: Seconds,
    /// Full LLM inference MXU energy.
    pub llm_mxu_energy: Joules,
    /// LLM latency normalized to the baseline.
    pub llm_latency_norm: f64,
    /// LLM MXU energy normalized to the baseline.
    pub llm_energy_norm: f64,
    /// DiT forward latency.
    pub dit_latency: Seconds,
    /// DiT forward MXU energy.
    pub dit_mxu_energy: Joules,
    /// DiT latency normalized to the baseline.
    pub dit_latency_norm: f64,
    /// DiT MXU energy normalized to the baseline.
    pub dit_energy_norm: f64,
}

/// Runs the Fig. 7 design-space exploration (baseline + all nine Table IV
/// points, full LLM inference with 1024/512 tokens + DiT forward) on the
/// parallel memoized fast path.
///
/// # Errors
///
/// Returns an error if any configuration cannot map the workloads.
pub fn fig7() -> Result<Vec<Fig7Row>> {
    fig7_with(SweepMode::Parallel)
}

/// [`fig7`] with an explicit [`SweepMode`].
///
/// Both modes produce identical rows; `SequentialUncached` is the
/// pre-optimization reference path the `sweep` bench measures against.
///
/// # Errors
///
/// Returns an error if any configuration cannot map the workloads.
pub fn fig7_with(mode: SweepMode) -> Result<Vec<Fig7Row>> {
    let spec = LlmInferenceSpec::new(BATCH, INPUT_LEN, OUTPUT_LEN)?;
    let gpt3 = presets::gpt3_30b();
    let dit = presets::dit_xl_2();

    let mut configs = vec![TpuConfig::tpuv4i()];
    configs.extend(TpuConfig::table4_designs());

    // Fan the ten design points out; each is evaluated on its own
    // simulator, whose mapping cache serves the repeated weight-GEMM
    // queries across the decode-context samples.
    let evals = sweep::map_with_mode(mode, &configs, || (), |(), cfg| {
        let sim = Simulator::new(cfg.clone())?;
        sim.mapping_cache().set_enabled(mode.cache_enabled());
        let llm = inference::run_llm(&sim, &gpt3, spec)?;
        let dit_run = inference::run_dit(&sim, &dit, BATCH, DIT_RESOLUTION)?;
        if mode.cache_enabled() {
            // Cross-process reuse: no-op unless CIMTPU_CACHE_DIR is set.
            let _ = sim.persist_cache();
        }
        Ok::<_, cimtpu_units::Error>((llm, dit_run))
    });

    let mut rows: Vec<Fig7Row> = Vec::new();
    let mut base_llm = (Seconds::new(1.0), Joules::new(1.0));
    let mut base_dit = (Seconds::new(1.0), Joules::new(1.0));
    for (i, (cfg, eval)) in configs.iter().zip(evals).enumerate() {
        let (llm, dit_run) = eval?;
        if i == 0 {
            base_llm = (llm.total_latency(), llm.total_mxu_energy());
            base_dit = (dit_run.total_latency, dit_run.total_mxu_energy);
        }
        let grid = match cfg.mxu() {
            cimtpu_core::MxuKind::Cim(c) => format!("{}x{}", c.grid_rows(), c.grid_cols()),
            cimtpu_core::MxuKind::DigitalSystolic(_) => String::new(),
        };
        rows.push(Fig7Row {
            config: cfg.name().to_owned(),
            mxu_count: cfg.mxu_count(),
            grid,
            llm_latency: llm.total_latency(),
            llm_mxu_energy: llm.total_mxu_energy(),
            llm_latency_norm: llm.total_latency() / base_llm.0,
            llm_energy_norm: llm.total_mxu_energy().get() / base_llm.1.get(),
            dit_latency: dit_run.total_latency,
            dit_mxu_energy: dit_run.total_mxu_energy,
            dit_latency_norm: dit_run.total_latency / base_dit.0,
            dit_energy_norm: dit_run.total_mxu_energy.get() / base_dit.1.get(),
        });
    }
    Ok(rows)
}

/// One Fig. 8 multi-device point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig8Row {
    /// Configuration name.
    pub config: String,
    /// Devices in the ring.
    pub devices: u64,
    /// LLM throughput (tokens/s).
    pub llm_tokens_per_s: f64,
    /// LLM MXU energy per token.
    pub llm_energy_per_token: Joules,
    /// DiT throughput (images/s, 50-step sampler).
    pub dit_images_per_s: f64,
    /// DiT MXU energy per image.
    pub dit_energy_per_image: Joules,
}

/// Runs the Fig. 8 multi-device comparison (baseline, Design A, Design B
/// at 1/2/4 TPUs, pipeline parallelism over the ICI ring).
///
/// # Errors
///
/// Returns an error if any configuration cannot map the workloads.
pub fn fig8() -> Result<Vec<Fig8Row>> {
    let spec = LlmInferenceSpec::new(BATCH, INPUT_LEN, OUTPUT_LEN)?;
    let gpt3 = presets::gpt3_30b();
    let dit = presets::dit_xl_2();
    let mut rows = Vec::new();
    for cfg in [TpuConfig::tpuv4i(), TpuConfig::design_a(), TpuConfig::design_b()] {
        for devices in [1u64, 2, 4] {
            let cluster = MultiTpu::new(cfg.clone(), devices)?;
            let llm = cluster.llm_pipeline_throughput(&gpt3, spec)?;
            let dit_r = cluster.dit_pipeline_throughput(&dit, BATCH, DIT_RESOLUTION, 50)?;
            rows.push(Fig8Row {
                config: cfg.name().to_owned(),
                devices,
                llm_tokens_per_s: llm.throughput,
                llm_energy_per_token: llm.mxu_energy_per_unit,
                dit_images_per_s: dit_r.throughput,
                dit_energy_per_image: dit_r.mxu_energy_per_unit,
            });
        }
    }
    Ok(rows)
}

/// One ablation result: a design knob toggled on/off.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationRow {
    /// Knob name.
    pub knob: String,
    /// Workload evaluated.
    pub workload: String,
    /// Latency with the knob enabled.
    pub enabled: Seconds,
    /// Latency with the knob disabled.
    pub disabled: Seconds,
    /// Disabled / enabled latency ratio (>1 means the knob helps).
    pub ratio: f64,
}

/// Runs the DESIGN.md §7 ablations.
///
/// # Errors
///
/// Returns an error if any configuration cannot map the workloads.
pub fn ablations() -> Result<Vec<AblationRow>> {
    use cimtpu_cim::CimMxuConfig;
    use cimtpu_core::MxuKind;

    let gpt3 = presets::gpt3_30b();
    let decode = gpt3.decode_layer(BATCH, INPUT_LEN + FIG6_DECODE_TOKEN)?;
    let prefill = gpt3.prefill_layer(BATCH, INPUT_LEN)?;
    let mut rows = Vec::new();

    // 1. Simultaneous MAC + weight update in the CIM-MXU.
    let on = Simulator::new(TpuConfig::cim_base())?;
    let off = Simulator::new(TpuConfig::cim_base().with_mxu(
        4,
        MxuKind::Cim(CimMxuConfig::paper_default().with_overlap_weight_update(false)),
    ))?;
    let e = on.run(&decode)?.total_latency();
    let d = off.run(&decode)?.total_latency();
    rows.push(AblationRow {
        knob: "weight-update overlap".to_owned(),
        workload: "LLM decode layer".to_owned(),
        enabled: e,
        disabled: d,
        ratio: d / e,
    });

    // 2. Double buffering in the mapper.
    let base = TpuConfig::tpuv4i();
    let on = Simulator::new(base.clone())?;
    let off = Simulator::new(
        base.clone()
            .with_levels(base.levels().clone().with_double_buffering(false)),
    )?;
    let e = on.run(&prefill)?.total_latency();
    let d = off.run(&prefill)?.total_latency();
    rows.push(AblationRow {
        knob: "double buffering".to_owned(),
        workload: "LLM prefill layer".to_owned(),
        enabled: e,
        disabled: d,
        ratio: d / e,
    });

    // 3. Memory coalescing.
    let off = Simulator::new(
        base.clone()
            .with_levels(base.levels().clone().with_memory_coalescing(false)),
    )?;
    let e = on.run(&decode)?.total_latency();
    let d = off.run(&decode)?.total_latency();
    rows.push(AblationRow {
        knob: "memory coalescing".to_owned(),
        workload: "LLM decode layer".to_owned(),
        enabled: e,
        disabled: d,
        ratio: d / e,
    });

    // 4. Bit-serial width in the CIM core: 4 serial bits halve the wave
    // latency (at the cost of doubled column-group hardware, reflected in
    // the geometry). "Enabled" = 4-bit waves, "disabled" = the default 8.
    let dit_block = presets::dit_xl_2().block(BATCH, DIT_RESOLUTION)?;
    let fast_core = cimtpu_cim::CimCoreConfig::paper_default().with_bit_serial_bits(4);
    let fast = Simulator::new(TpuConfig::cim_base().with_mxu(
        4,
        MxuKind::Cim(CimMxuConfig::paper_default().with_core(fast_core)),
    ))?;
    let default = Simulator::new(TpuConfig::cim_base())?;
    let e = fast.run(&dit_block)?.total_latency();
    let d = default.run(&dit_block)?.total_latency();
    rows.push(AblationRow {
        knob: "bit-serial width 4 (vs 8)".to_owned(),
        workload: "DiT block (compute-bound)".to_owned(),
        enabled: e,
        disabled: d,
        ratio: d / e,
    });
    Ok(rows)
}

/// One point of the batch-size extension sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchSweepRow {
    /// Batch size.
    pub batch: u64,
    /// Baseline decode-layer latency.
    pub baseline: Seconds,
    /// CIM decode-layer latency.
    pub cim: Seconds,
    /// CIM speedup over baseline.
    pub speedup: f64,
    /// CIM MXU-energy reduction.
    pub energy_reduction: f64,
}

/// Extension study: how the CIM decode benefit varies with batch size.
///
/// Two effects compete as batch grows: the weight GEMVs gain arithmetic
/// intensity (eroding the CIM advantage there), but the batched attention
/// GEMVs multiply — and those serialize badly on the systolic baseline
/// while staying KV-bandwidth-bound on the CIM-MXU. Attention wins: the
/// CIM decode speedup *grows* with batch size.
///
/// # Errors
///
/// Returns an error if any workload cannot be mapped.
pub fn sweep_batch() -> Result<Vec<BatchSweepRow>> {
    let gpt3 = presets::gpt3_30b();
    let batches = [1u64, 2, 4, 8, 16, 32, 64];
    sweep::parallel_map_init(&batches, || SimPair::None, |sims, &batch| {
        let (base, cim) = base_cim_pair(sims)?;
        let layer = gpt3.decode_layer(batch, INPUT_LEN + FIG6_DECODE_TOKEN)?;
        let b = base.run(&layer)?;
        let c = cim.run(&layer)?;
        Ok(BatchSweepRow {
            batch,
            baseline: b.total_latency(),
            cim: c.total_latency(),
            speedup: c.speedup_vs(&b),
            energy_reduction: c.mxu_energy_reduction_vs(&b),
        })
    })
    .into_iter()
    .collect()
}

/// One point of the context-length extension sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContextSweepRow {
    /// Context length (prompt + generated tokens).
    pub ctx: u64,
    /// Baseline decode-layer latency.
    pub baseline: Seconds,
    /// CIM decode-layer latency.
    pub cim: Seconds,
    /// Attention's share of the baseline layer.
    pub baseline_attention_fraction: f64,
    /// CIM speedup over baseline.
    pub speedup: f64,
}

/// Extension study: decode cost vs context length.
///
/// KV-cache traffic (and the attention GEMVs the CIM-MXU accelerates)
/// grows linearly with context, so the CIM advantage *increases* with
/// longer contexts — relevant for today's long-context serving.
///
/// # Errors
///
/// Returns an error if any workload cannot be mapped.
pub fn sweep_context() -> Result<Vec<ContextSweepRow>> {
    let gpt3 = presets::gpt3_30b();
    let contexts = [256u64, 512, 1024, 2048, 4096, 8192, 16384];
    // Per-worker simulator pairs: the weight GEMMs are identical across
    // context lengths, so after a worker's first point every non-attention
    // operator is a mapping-cache hit.
    sweep::parallel_map_init(&contexts, || SimPair::None, |sims, &ctx| {
        let (base, cim) = base_cim_pair(sims)?;
        let layer = gpt3.decode_layer(BATCH, ctx)?;
        let b = base.run(&layer)?;
        let c = cim.run(&layer)?;
        Ok(ContextSweepRow {
            ctx,
            baseline: b.total_latency(),
            cim: c.total_latency(),
            baseline_attention_fraction: b.latency_in(OpCategory::Attention)
                / b.total_latency(),
            speedup: c.speedup_vs(&b),
        })
    })
    .into_iter()
    .collect()
}

/// One row of the MoE extension study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MoeStudyRow {
    /// Stage name.
    pub stage: String,
    /// Baseline latency.
    pub baseline: Seconds,
    /// CIM latency.
    pub cim: Seconds,
    /// CIM speedup.
    pub speedup: f64,
    /// CIM MXU-energy reduction.
    pub energy_reduction: f64,
}

/// Extension study: a Mixtral-like MoE model on baseline vs CIM TPU.
///
/// MoE decoding multiplies weight traffic (every activated expert streams
/// its FFN), stressing exactly the memory-bound regime the paper analyzes.
///
/// # Errors
///
/// Returns an error if any workload cannot be mapped.
pub fn moe_study() -> Result<Vec<MoeStudyRow>> {
    use cimtpu_models::MoeConfig;
    let moe = MoeConfig::mixtral_8x7b_like()?;
    let stages = vec![
        ("MoE prefill layer", moe.prefill_layer(BATCH, INPUT_LEN)?),
        ("MoE decode layer", moe.decode_layer(BATCH, INPUT_LEN + FIG6_DECODE_TOKEN)?),
    ];
    sweep::parallel_map_init(&stages, || SimPair::None, |sims, (stage, workload)| {
        let (base, cim) = base_cim_pair(sims)?;
        let b = base.run(workload)?;
        let c = cim.run(workload)?;
        Ok(MoeStudyRow {
            stage: (*stage).to_owned(),
            baseline: b.total_latency(),
            cim: c.total_latency(),
            speedup: c.speedup_vs(&b),
            energy_reduction: c.mxu_energy_reduction_vs(&b),
        })
    })
    .into_iter()
    .collect()
}

/// One point of the HBM-bandwidth sensitivity study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HbmSweepRow {
    /// Main-memory bandwidth in GB/s.
    pub hbm_gb_per_s: f64,
    /// Baseline decode-layer latency.
    pub baseline: Seconds,
    /// CIM decode-layer latency.
    pub cim: Seconds,
    /// CIM speedup.
    pub speedup: f64,
}

/// Sensitivity study: how the CIM decode advantage shifts with HBM
/// bandwidth (614 GB/s in TPUv4i up to HBM3e-class 2.5 TB/s).
///
/// More bandwidth raises the memory roofline; the baseline's serialized
/// attention becomes the binding constraint, so the CIM advantage *grows*
/// — CIM-based TPUs age well with faster memory.
///
/// # Errors
///
/// Returns an error if any workload cannot be mapped.
pub fn sweep_hbm_bandwidth() -> Result<Vec<HbmSweepRow>> {
    use cimtpu_units::Bandwidth;
    let gpt3 = presets::gpt3_30b();
    let layer = gpt3.decode_layer(BATCH, INPUT_LEN + FIG6_DECODE_TOKEN)?;
    let points = [307.0f64, 614.0, 1228.0, 2456.0];
    // Bandwidth changes the memory hierarchy, so each point needs its own
    // simulators (a cache is only valid for one configuration).
    sweep::parallel_map(&points, |&gbps| {
        let levels = |cfg: TpuConfig| {
            let l = cfg.levels().clone().with_hbm_bandwidth(Bandwidth::from_gb_per_s(gbps));
            cfg.with_levels(l)
        };
        let base = Simulator::new(levels(TpuConfig::tpuv4i()))?;
        let cim = Simulator::new(levels(TpuConfig::cim_base()))?;
        let b = base.run(&layer)?;
        let c = cim.run(&layer)?;
        Ok(HbmSweepRow {
            hbm_gb_per_s: gbps,
            baseline: b.total_latency(),
            cim: c.total_latency(),
            speedup: c.speedup_vs(&b),
        })
    })
    .into_iter()
    .collect()
}

/// Quick sanity accessor: the engines' GEMV asymmetry (used by benches).
///
/// # Errors
///
/// Returns an error if the engine configurations are invalid.
pub fn gemv_cycle_ratio() -> Result<f64> {
    use cimtpu_core::MatrixEngine;
    let base = MatrixEngine::from_kind(TpuConfig::tpuv4i().mxu())?;
    let cim = MatrixEngine::from_kind(TpuConfig::cim_base().mxu())?;
    let shape = GemmShape::gemv(128, 1280)?;
    let b = base.batched_gemm_cycles(112, shape, DataType::Int8);
    let c = cim.batched_gemm_cycles(112, shape, DataType::Int8);
    Ok(b.get() as f64 / c.get() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ratios_match_paper() {
        let t = table2().unwrap();
        assert!((t.energy_ratio - 9.43).abs() < 0.5, "{}", t.energy_ratio);
        assert!((t.area_ratio - 2.02).abs() < 0.15, "{}", t.area_ratio);
        assert_eq!(t.macs_per_cycle, (16384, 16384));
    }

    #[test]
    fn fig2_layers_dominate() {
        let rows = fig2_breakdown().unwrap();
        for (model, layer) in [("Llama2-13B", "Transformer Layers"), ("DiT-XL/2", "DiT Blocks")] {
            let row = rows
                .iter()
                .find(|r| r.model == model && r.layer == layer)
                .unwrap();
            assert!(row.fraction > 0.95, "{model}/{layer}: {}", row.fraction);
        }
    }

    #[test]
    fn fig6_headline_numbers_in_band() {
        let f = fig6().unwrap();
        // Prefill: approximately equal latency (paper +2.43%).
        assert!(f.llm_prefill.latency_delta.abs() < 0.10, "{}", f.llm_prefill.latency_delta);
        // Decode: substantial latency reduction (paper -29.9%).
        assert!(
            (-0.45..=-0.15).contains(&f.llm_decode.latency_delta),
            "{}",
            f.llm_decode.latency_delta
        );
        // DiT: modest improvement (paper -6.67%).
        assert!(
            (-0.20..=0.02).contains(&f.dit_block.latency_delta),
            "{}",
            f.dit_block.latency_delta
        );
        // Energy: 9.21x / 13.4x / 10.4x, order preserved.
        let ep = f.llm_prefill.cim.mxu_energy_reduction_vs(&f.llm_prefill.baseline);
        let ed = f.llm_decode.cim.mxu_energy_reduction_vs(&f.llm_decode.baseline);
        let et = f.dit_block.cim.mxu_energy_reduction_vs(&f.dit_block.baseline);
        assert!(ep > 5.0 && ed > ep && et > 5.0, "ep={ep:.1} ed={ed:.1} et={et:.1}");
    }

    #[test]
    fn fig7_tradeoffs_hold() {
        let rows = fig7().unwrap();
        assert_eq!(rows.len(), 10);
        let find = |count: u64, grid: &str| {
            rows.iter()
                .find(|r| r.mxu_count == count && r.grid == grid)
                .unwrap()
        };
        // Memory-bound LLM: doubling peak (16x16 vs 16x8 at 8 MXUs) buys
        // almost nothing (paper: 2.5% improvement at 95% energy increase).
        let big = find(8, "16x16");
        let wide = find(8, "16x8");
        let marginal = 1.0 - big.llm_latency_norm / wide.llm_latency_norm;
        assert!(
            (0.0..0.10).contains(&marginal),
            "16x16 vs 16x8 improvement {marginal:.3}"
        );
        assert!(big.llm_energy_norm > wide.llm_energy_norm);
        // The headline: up to ~44.2% LLM improvement vs the baseline.
        let best = rows.iter().map(|r| r.llm_latency_norm).fold(f64::MAX, f64::min);
        assert!((0.5..0.8).contains(&best), "best LLM norm {best:.3}");
        // The smallest config trades latency for huge energy savings
        // (paper: +38% latency, 27.3x energy).
        let smallest = find(2, "8x8");
        assert!(
            (1.2..1.9).contains(&smallest.llm_latency_norm),
            "{}",
            smallest.llm_latency_norm
        );
        assert!(smallest.llm_energy_norm < 1.0 / 10.0, "{}", smallest.llm_energy_norm);
        // Compute-bound DiT: bigger configs are monotonically faster
        // (paper: -25.3% at 4x(16x16), -33.8% at 8x(16x16), +100% at 2x(8x8)).
        let d_small = find(2, "8x8").dit_latency_norm;
        let d_mid = find(4, "16x16").dit_latency_norm;
        let d_big = find(8, "16x16").dit_latency_norm;
        assert!(d_big < d_mid && d_mid < 1.0, "mid {d_mid}, big {d_big}");
        assert!((0.55..0.80).contains(&d_big), "big-config DiT norm {d_big}");
        assert!(d_small > 1.5, "small-config DiT should be much slower: {d_small}");
    }

    #[test]
    fn fig7_fast_path_matches_sequential_uncached_reference() {
        // Acceptance: the memoized parallel sweep must be numerically
        // identical to the pre-optimization path, row for row.
        let fast = fig7_with(SweepMode::Parallel).unwrap();
        let reference = fig7_with(SweepMode::SequentialUncached).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn batch_sweep_grows_latency_benefit() {
        let rows = sweep_batch().unwrap();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        // Attention items scale with batch and serialize on the baseline:
        // the CIM speedup grows with batch size.
        assert!(last.speedup > first.speedup, "{} vs {}", first.speedup, last.speedup);
        // The energy advantage persists at every batch size.
        assert!(rows.iter().all(|r| r.energy_reduction > 5.0));
        // Per-layer latency itself is monotone in batch on both designs.
        assert!(rows.windows(2).all(|w| w[1].baseline >= w[0].baseline));
    }

    #[test]
    fn context_sweep_grows_attention_share() {
        let rows = sweep_context().unwrap();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.baseline_attention_fraction > first.baseline_attention_fraction);
        // Longer contexts widen the CIM advantage.
        assert!(last.speedup > first.speedup);
        // Decode cost grows monotonically with ctx on both architectures.
        assert!(rows.windows(2).all(|w| w[1].baseline >= w[0].baseline));
        assert!(rows.windows(2).all(|w| w[1].cim >= w[0].cim));
    }

    #[test]
    fn hbm_sweep_monotone() {
        let rows = sweep_hbm_bandwidth().unwrap();
        // More bandwidth never slows anything down.
        assert!(rows.windows(2).all(|w| w[1].baseline <= w[0].baseline));
        assert!(rows.windows(2).all(|w| w[1].cim <= w[0].cim));
        // The CIM advantage grows (or at least persists) with bandwidth.
        let first = rows.first().unwrap().speedup;
        let last = rows.last().unwrap().speedup;
        assert!(last >= first * 0.95, "{first} -> {last}");
    }

    #[test]
    fn moe_study_shows_cim_benefit() {
        let rows = moe_study().unwrap();
        assert_eq!(rows.len(), 2);
        let decode = rows.iter().find(|r| r.stage.contains("decode")).unwrap();
        // MoE decoding is weight-streaming heavy: CIM is no slower and far
        // more efficient.
        assert!(decode.speedup >= 1.0, "speedup {}", decode.speedup);
        assert!(decode.energy_reduction > 5.0, "{}", decode.energy_reduction);
    }

    #[test]
    fn ablations_all_positive() {
        for row in ablations().unwrap() {
            assert!(
                row.ratio >= 0.999,
                "{} should not hurt: {}",
                row.knob,
                row.ratio
            );
        }
    }
}
