//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a plain function returning structured results so it
//! can be driven three ways: the `--bin` reproduction binaries (printing
//! the same rows/series the paper reports), the Criterion benches, and the
//! integration tests. See DESIGN.md §4 for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod experiments;
pub mod sweep;
pub mod table;
