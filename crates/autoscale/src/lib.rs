//! Reconcile-loop autoscaling control plane for the cimtpu fleet
//! simulator.
//!
//! The control plane is split the same way a real one would be:
//!
//! * [`AutoscalePolicy`] / [`GroupPolicy`] — the declarative spec: per-group
//!   replica bands, target-utilization hysteresis, cooldowns, scale-to-zero,
//!   and optional model swaps, plus the shared reconcile cadence and the
//!   provisioning cost model (boot delay, warmup, idle watts).
//! * [`GroupObservation`] — the telemetry snapshot a driver hands the
//!   controller at each tick (queue depth, outstanding work, KV occupancy,
//!   rolling SLO goodput). The reconciler sees *only* these snapshots,
//!   never the engines, which is what makes decisions replayable.
//! * [`Reconciler`] — the pure decision function: observations in,
//!   [`ScalingDecision`]s out, on a fixed interval of the simulated clock.
//!   Same policy + same observation stream ⇒ the same decisions, always.
//! * [`ScalingStats`] / [`ScalingAction`] — the `scaling` section of a
//!   cluster report: the applied-action log, ramp SLO damage, and fleet
//!   cost in chip-seconds and joules, so an elastic run and a peak-sized
//!   static fleet compare head-to-head.
//! * [`parse_autoscale`] / [`AutoscaleSpec`] — the `--autoscale SPEC`
//!   CLI grammar.
//!
//! Applying the decisions — actually booting, draining, and swapping
//! replicas inside the discrete-event loop — is the cluster driver's job
//! (see `cimtpu-cluster`); this crate deliberately has no engine
//! dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod policy;
mod reconcile;
mod stats;

pub use parse::{parse_autoscale, AutoscaleSpec};
pub use policy::{AutoscalePolicy, GroupObservation, GroupPolicy};
pub use reconcile::{Reconciler, ScalingDecision};
pub use stats::{action, ScalingAction, ScalingStats};
