//! The deterministic reconcile loop: observe → diff against policy →
//! decide.

use cimtpu_units::Seconds;

use crate::policy::{AutoscalePolicy, GroupObservation};

/// One scaling decision the driver must apply. Decisions name groups, not
/// replicas: the driver picks the concrete slot (lowest free slot for an
/// add, highest routable slot for a drain), keeping slot choice — a
/// driver concern — out of the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Provision one replica in `group` (pays provisioning + warmup).
    Add {
        /// Target group index.
        group: usize,
    },
    /// Drain one replica from `group` (finishes in-flight work, then
    /// retires).
    Drain {
        /// Target group index.
        group: usize,
    },
    /// Repurpose a replica: drain one from `from` and start one in `to`,
    /// paying warmup but not provisioning (the machine already exists).
    Swap {
        /// Donor group (under-utilized above its min).
        from: usize,
        /// Recipient group (over-utilized at its max).
        to: usize,
    },
}

/// Per-group controller memory: the timestamps hysteresis and cooldowns
/// compare against.
#[derive(Debug, Clone, Copy)]
struct GroupState {
    last_add: f64,
    last_drain: f64,
    /// Last tick at which the group had any work — scale-to-zero requires
    /// `down_cooldown` of continuous observed idleness.
    last_busy: f64,
}

/// The control loop's decision core. [`reconcile`](Reconciler::reconcile)
/// is a pure function of the policy, the observations, and the
/// reconciler's own (deterministic) cooldown memory: same policy + same
/// observation stream → same decision stream, which is the determinism
/// contract the replay tests pin.
///
/// Decision rules, per group and in group order:
///
/// 1. **Scale up** when utilization exceeds `scale_up_above` (or the
///    rolling goodput falls below `slo_floor`) and the group has headroom
///    (`up + pending < max`) and the up-cooldown has passed. Capacity
///    already provisioning counts, so a slow ramp is not double-bought.
/// 2. **Scale down** when utilization falls below `scale_down_below`,
///    the group stays at or above `min`, and both the down-cooldown and
///    an add-settle guard (`down_cooldown` since the last add) have
///    passed. Dropping the *last* routable replica additionally requires
///    zero work, nothing pending, and `down_cooldown` of observed
///    idleness — that is scale-to-zero.
/// 3. **Swap** (when the policy allows it): if some group is over its
///    band *at* its max while another sits under its band above its min,
///    repurpose one replica from the latter to the former. At most one
///    swap per tick, lowest-index pairs first.
///
/// At most one decision per group per tick: fleets move one replica at a
/// time per group, which is what makes hysteresis effective.
#[derive(Debug, Clone)]
pub struct Reconciler {
    policy: AutoscalePolicy,
    groups: Vec<GroupState>,
}

impl Reconciler {
    /// A reconciler over `policy` (assumed validated).
    pub fn new(policy: AutoscalePolicy) -> Self {
        let n = policy.groups.len();
        Reconciler {
            policy,
            groups: vec![
                GroupState {
                    last_add: f64::NEG_INFINITY,
                    last_drain: f64::NEG_INFINITY,
                    last_busy: 0.0,
                };
                n
            ],
        }
    }

    /// The policy the reconciler runs.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// One control-loop iteration at simulated time `now`: observe each
    /// group, compare against its policy band, and return the decisions
    /// to apply. `obs` must have one entry per policy group.
    ///
    /// # Panics
    ///
    /// Panics if `obs.len()` differs from the policy's group count.
    pub fn reconcile(&mut self, now: Seconds, obs: &[GroupObservation]) -> Vec<ScalingDecision> {
        assert_eq!(
            obs.len(),
            self.policy.groups.len(),
            "one observation per policy group"
        );
        let t = now.get();
        for (g, o) in obs.iter().enumerate() {
            if o.work() > 0 {
                self.groups[g].last_busy = t;
            }
        }
        let mut decisions = Vec::new();
        let mut decided = vec![false; obs.len()];

        // Swaps first: a donor group that qualifies for a swap must not be
        // consumed by a plain drain in the per-group pass below.
        if self.policy.swap {
            if let Some((from, to)) = self.swap_pair(t, obs) {
                decisions.push(ScalingDecision::Swap { from, to });
                self.groups[from].last_drain = t;
                self.groups[to].last_add = t;
                decided[from] = true;
                decided[to] = true;
            }
        }

        for (g, (o, pol)) in obs.iter().zip(&self.policy.groups).enumerate() {
            if decided[g] {
                continue;
            }
            let state = &mut self.groups[g];
            let util = o.utilization(pol.concurrency);
            let capacity = o.up + o.pending;

            let goodput_bad = pol.slo_floor > 0.0
                && o.delivered > 0
                && (o.slo_ok as f64) < pol.slo_floor * o.delivered as f64;
            if (util > pol.scale_up_above || goodput_bad)
                && capacity < pol.max
                && t - state.last_add >= pol.up_cooldown.get()
            {
                decisions.push(ScalingDecision::Add { group: g });
                state.last_add = t;
                continue;
            }

            if util < pol.scale_down_below
                && o.up > pol.min
                && t - state.last_drain >= pol.down_cooldown.get()
                && t - state.last_add >= pol.down_cooldown.get()
            {
                let to_zero = o.up == 1;
                let idle_long_enough = o.work() == 0
                    && o.pending == 0
                    && t - state.last_busy >= pol.down_cooldown.get();
                if !to_zero || idle_long_enough {
                    decisions.push(ScalingDecision::Drain { group: g });
                    state.last_drain = t;
                }
            }
        }
        decisions
    }

    /// The lowest-index (donor, recipient) pair eligible for a swap this
    /// tick, if any: the recipient is over its band with no headroom left
    /// (`up + pending >= max`), the donor under its band above its `min`,
    /// both with their cooldowns passed.
    fn swap_pair(&self, t: f64, obs: &[GroupObservation]) -> Option<(usize, usize)> {
        let eligible_to = |g: usize| {
            let (o, pol) = (&obs[g], &self.policy.groups[g]);
            o.utilization(pol.concurrency) > pol.scale_up_above
                && o.up + o.pending >= pol.max
                && t - self.groups[g].last_add >= pol.up_cooldown.get()
        };
        let eligible_from = |g: usize| {
            let (o, pol) = (&obs[g], &self.policy.groups[g]);
            o.utilization(pol.concurrency) < pol.scale_down_below
                && o.up > pol.min
                && t - self.groups[g].last_drain >= pol.down_cooldown.get()
                && t - self.groups[g].last_add >= pol.down_cooldown.get()
        };
        let to = (0..obs.len()).find(|&g| eligible_to(g))?;
        let from = (0..obs.len()).find(|&g| g != to && eligible_from(g))?;
        Some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GroupPolicy;

    fn policy(groups: Vec<GroupPolicy>) -> AutoscalePolicy {
        AutoscalePolicy {
            interval: Seconds::new(1.0),
            provision: Seconds::new(1.0),
            warmup: Seconds::new(0.5),
            idle_watts: 30.0,
            swap: false,
            groups,
        }
    }

    fn busy(up: u64, work: u64) -> GroupObservation {
        GroupObservation { up, outstanding: work, ..GroupObservation::default() }
    }

    #[test]
    fn hysteresis_band_holds_steady_state() {
        let g = GroupPolicy { min: 1, max: 4, ..GroupPolicy::default() };
        let mut r = Reconciler::new(policy(vec![g]));
        // util = 2/(1×4) = 0.5: inside (0.25, 0.75) — no decision.
        assert!(r.reconcile(Seconds::new(1.0), &[busy(1, 2)]).is_empty());
        // util = 4/4 = 1.0 > 0.75: scale up.
        assert_eq!(
            r.reconcile(Seconds::new(2.0), &[busy(1, 4)]),
            vec![ScalingDecision::Add { group: 0 }]
        );
        // util = 1/(2×4) = 0.125 < 0.25: scale down (back above min).
        assert_eq!(
            r.reconcile(Seconds::new(3.0), &[busy(2, 1)]),
            vec![ScalingDecision::Drain { group: 0 }]
        );
    }

    #[test]
    fn cooldowns_rate_limit_decisions() {
        let g = GroupPolicy {
            min: 1,
            max: 8,
            up_cooldown: Seconds::new(2.0),
            down_cooldown: Seconds::new(3.0),
            ..GroupPolicy::default()
        };
        let mut r = Reconciler::new(policy(vec![g]));
        assert_eq!(r.reconcile(Seconds::new(1.0), &[busy(1, 40)]).len(), 1);
        // 1 s later: up-cooldown (2 s) blocks the next add.
        assert!(r.reconcile(Seconds::new(2.0), &[busy(1, 40)]).is_empty());
        assert_eq!(r.reconcile(Seconds::new(3.0), &[busy(1, 40)]).len(), 1);
        // A drain within down_cooldown of the last add is blocked too
        // (add-settle guard), then allowed.
        assert!(r.reconcile(Seconds::new(4.0), &[busy(4, 0)]).is_empty());
        assert_eq!(
            r.reconcile(Seconds::new(6.0), &[busy(4, 0)]),
            vec![ScalingDecision::Drain { group: 0 }]
        );
    }

    #[test]
    fn pending_capacity_prevents_double_buying() {
        let g = GroupPolicy { min: 1, max: 2, ..GroupPolicy::default() };
        let mut r = Reconciler::new(policy(vec![g]));
        // Over the band, but a replica is already provisioning and max is
        // 2: up + pending == max, no further add.
        let obs = GroupObservation { up: 1, pending: 1, outstanding: 40, ..Default::default() };
        assert!(r.reconcile(Seconds::new(1.0), &[obs]).is_empty());
    }

    #[test]
    fn scale_to_zero_requires_sustained_idleness() {
        let g = GroupPolicy {
            min: 0,
            max: 2,
            down_cooldown: Seconds::new(5.0),
            ..GroupPolicy::default()
        };
        let mut r = Reconciler::new(policy(vec![g]));
        // Busy at t=1 refreshes last_busy.
        assert!(r.reconcile(Seconds::new(1.0), &[busy(1, 2)]).is_empty());
        // Idle at t=2: only 1 s of idleness — hold.
        assert!(r.reconcile(Seconds::new(2.0), &[busy(1, 0)]).is_empty());
        // Idle at t=6: 5 s since last busy — drop the last replica.
        assert_eq!(
            r.reconcile(Seconds::new(6.0), &[busy(1, 0)]),
            vec![ScalingDecision::Drain { group: 0 }]
        );
        // Parked work on a zero-replica group is the wake signal.
        let parked = GroupObservation { queued: 1, ..GroupObservation::default() };
        assert_eq!(
            r.reconcile(Seconds::new(7.0), &[parked]),
            vec![ScalingDecision::Add { group: 0 }]
        );
    }

    #[test]
    fn slo_floor_triggers_scale_up_inside_the_band() {
        let g = GroupPolicy { slo_floor: 0.9, ..GroupPolicy::default() };
        let mut r = Reconciler::new(policy(vec![g]));
        // util = 2/4 = 0.5 (inside the band), but only 1 of 4 completions
        // met the SLO since the last tick: goodput trigger fires.
        let obs = GroupObservation {
            up: 1,
            outstanding: 2,
            delivered: 4,
            slo_ok: 1,
            ..Default::default()
        };
        assert_eq!(
            r.reconcile(Seconds::new(1.0), &[obs]),
            vec![ScalingDecision::Add { group: 0 }]
        );
    }

    #[test]
    fn swap_repurposes_a_replica_across_groups() {
        let hot = GroupPolicy { min: 1, max: 2, ..GroupPolicy::default() };
        let cold = GroupPolicy { min: 1, max: 4, ..GroupPolicy::default() };
        let mut p = policy(vec![cold, hot]);
        p.swap = true;
        let mut r = Reconciler::new(p);
        let obs = [
            busy(3, 1),  // cold donor: util 1/12 < 0.25, above min
            busy(2, 40), // hot recipient: util 5.0 at max
        ];
        assert_eq!(
            r.reconcile(Seconds::new(1.0), &obs),
            vec![ScalingDecision::Swap { from: 0, to: 1 }]
        );
        // The swap charged both groups' cooldown clocks… which are zero
        // here, so the same skew immediately swaps again — but with swap
        // off, the donor would have plainly drained instead.
        let mut plain = Reconciler::new(policy(vec![cold, hot]));
        assert_eq!(
            plain.reconcile(Seconds::new(1.0), &obs),
            vec![ScalingDecision::Drain { group: 0 }]
        );
    }

    #[test]
    fn same_observation_stream_replays_the_same_decisions() {
        let g = GroupPolicy { min: 0, max: 4, ..GroupPolicy::default() };
        let ticks: Vec<(f64, GroupObservation)> = (1..40)
            .map(|i| {
                let work = if i % 7 < 4 { (i % 9) * 2 } else { 0 };
                (i as f64, busy(1 + i % 3, work))
            })
            .collect();
        let run = |p: AutoscalePolicy| {
            let mut r = Reconciler::new(p);
            ticks
                .iter()
                .map(|(t, o)| r.reconcile(Seconds::new(*t), &[*o]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(policy(vec![g])), run(policy(vec![g])));
    }
}
