//! The `scaling` section of a cluster report: what the control plane did
//! and what elasticity cost.

use serde::{Deserialize, Serialize};

/// Kinds of applied scaling actions, as they appear in the action log.
pub mod action {
    /// A replica started provisioning (scale-up decision applied).
    pub const SCALE_UP: &str = "scale-up";
    /// A replica began draining toward retirement.
    pub const SCALE_DOWN: &str = "scale-down";
    /// A drain that empties its group (the scale-to-zero event).
    pub const SCALE_TO_ZERO: &str = "scale-to-zero";
    /// The donor half of a model swap (drains like a scale-down).
    pub const SWAP_OUT: &str = "swap-out";
    /// The recipient half of a model swap (warms up, skips provisioning).
    pub const SWAP_IN: &str = "swap-in";
    /// A replica finished warmup and turned `Up` (routable).
    pub const UP: &str = "up";
    /// A draining replica finished its in-flight work and retired.
    pub const RETIRED: &str = "retired";
}

/// One entry of the scaling-action log — every fleet mutation the
/// control plane applied, in simulated-time order. The log is part of
/// the serialized report, so two seeded runs must produce byte-identical
/// logs (the replay test pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingAction {
    /// Simulated time the action was applied.
    pub at_s: f64,
    /// Action kind — one of the [`action`] constants.
    pub kind: String,
    /// Group (base replica spec) name.
    pub group: String,
    /// Concrete slot replica name (`{group}-{slot}`).
    pub replica: String,
}

impl ScalingAction {
    /// Builds a log entry.
    pub fn new(at_s: f64, kind: &str, group: &str, replica: String) -> Self {
        ScalingAction { at_s, kind: kind.to_owned(), group: group.to_owned(), replica }
    }
}

/// The report's `scaling` section: control-loop activity, the action
/// log, SLO damage attributable to ramps, and the cost of the fleet in
/// chip-seconds and joules — the numbers that make an autoscaled run and
/// a peak-sized static fleet comparable head-to-head.
///
/// Cost model: `chip_seconds` integrates `chips × held-time` over every
/// replica's lifetime (a scaled-up replica is *held* — and paid for —
/// from the scale-up decision through provisioning, warmup, service, and
/// drain until retirement). `idle_energy_j` prices the held-but-idle
/// remainder (`idle_watts × (chip_seconds − busy chip-seconds)`), and
/// `total_cost_j = compute energy + idle energy`: a fleet sized for peak
/// pays idle watts all night, an elastic one does not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScalingStats {
    /// Reconcile ticks the control loop ran.
    pub reconciles: u64,
    /// Scale-up decisions applied.
    pub scale_ups: u64,
    /// Scale-down (drain) decisions applied, including scale-to-zero.
    pub scale_downs: u64,
    /// Drains that emptied their group (scale-to-zero events).
    pub scale_to_zero: u64,
    /// Model swaps applied (each one drain + one warm start).
    pub swaps: u64,
    /// Most replicas simultaneously held (up, booting, or draining).
    pub peak_replicas: u64,
    /// Chip-seconds held over the run (see the cost model above).
    pub chip_seconds: f64,
    /// Energy the held-but-idle chip-seconds cost, in joules.
    pub idle_energy_j: f64,
    /// Compute energy plus idle energy, in joules.
    pub total_cost_j: f64,
    /// Completions that missed the SLO while their group was ramping
    /// (between a scale-up decision and the replica turning `Up`) — the
    /// latency price of scaling reactively instead of holding peak.
    pub slo_violations_ramp: u64,
    /// Every applied fleet mutation, in simulated-time order.
    pub actions: Vec<ScalingAction>,
}

impl ScalingStats {
    /// The scaling section of a fleet that never changed: no reconciler
    /// activity, every replica held for the whole `makespan_s`. This is
    /// what a pinned policy attaches to a plain-driver run so a static
    /// peak-sized fleet reports cost numbers comparable with an elastic
    /// one.
    pub fn static_fleet(
        replicas: u64,
        chip_seconds: f64,
        busy_chip_seconds: f64,
        compute_energy_j: f64,
        idle_watts: f64,
    ) -> Self {
        let idle_energy_j = idle_watts * (chip_seconds - busy_chip_seconds).max(0.0);
        ScalingStats {
            peak_replicas: replicas,
            chip_seconds,
            idle_energy_j,
            total_cost_j: compute_energy_j + idle_energy_j,
            ..ScalingStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_fleet_prices_idle_time() {
        let s = ScalingStats::static_fleet(4, 100.0, 40.0, 500.0, 30.0);
        assert_eq!(s.peak_replicas, 4);
        assert_eq!(s.reconciles, 0);
        assert!(s.actions.is_empty());
        assert!((s.idle_energy_j - 1800.0).abs() < 1e-9);
        assert!((s.total_cost_j - 2300.0).abs() < 1e-9);
        // Busy time can exceed held time only through rounding: clamp.
        assert_eq!(ScalingStats::static_fleet(1, 1.0, 2.0, 5.0, 30.0).idle_energy_j, 0.0);
    }

    #[test]
    fn stats_round_trip_with_declaration_order() {
        let mut s = ScalingStats { scale_ups: 2, ..ScalingStats::default() };
        s.actions.push(ScalingAction::new(1.5, action::SCALE_UP, "g", "g-1".to_owned()));
        let json = serde_json::to_string(&s).unwrap();
        // Declaration order, ending with the action log.
        let reconciles = json.find("\"reconciles\"").unwrap();
        let cost = json.find("\"total_cost_j\"").unwrap();
        let actions = json.find("\"actions\"").unwrap();
        assert!(reconciles < cost && cost < actions, "{json}");
        let back: ScalingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
