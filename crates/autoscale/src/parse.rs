//! The `--autoscale SPEC` CLI grammar.

use cimtpu_units::{Error, Result, Seconds};

use crate::policy::{AutoscalePolicy, GroupPolicy};

/// A parsed `--autoscale` spec: policy knobs without a group count. The
/// CLI does not know how many replica groups a scenario has, so the spec
/// holds fleet-wide defaults plus per-group band overrides and
/// [`policy_for`](AutoscaleSpec::policy_for) expands them once the
/// topology is known.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleSpec {
    /// Reconcile interval (`interval=1s`; default 1 s).
    pub interval: Seconds,
    /// Provisioning delay (`provision=2s`; default 1 s).
    pub provision: Seconds,
    /// Warmup after provisioning (`warmup=500ms`; default 0.5 s).
    pub warmup: Seconds,
    /// Idle watts per chip (`idle-w=30`; default 30).
    pub idle_watts: f64,
    /// Model swaps allowed (`swap`; default off).
    pub swap: bool,
    /// Default replica band for every group (`replicas=0..4`; default
    /// 1..4).
    pub band: (u64, u64),
    /// Initial replicas (`init=2`; default `max(min, 1)` clamped to the
    /// band).
    pub initial: Option<u64>,
    /// Target per-replica concurrency (`conc=8`; default 4).
    pub concurrency: u64,
    /// Scale-up threshold (`up=0.75`; default 0.75).
    pub up: f64,
    /// Scale-down threshold (`down=0.25`; default 0.25).
    pub down: f64,
    /// Scale-up cooldown (`up-cd=2s`; default 0).
    pub up_cooldown: Seconds,
    /// Scale-down cooldown (`down-cd=5s`; default 0).
    pub down_cooldown: Seconds,
    /// Rolling SLO-goodput floor (`slo-floor=0.9`; default 0 = off).
    pub slo_floor: f64,
    /// Per-group band overrides (`group0=1..6`), as `(group, (min, max))`.
    pub group_bands: Vec<(usize, (u64, u64))>,
}

impl Default for AutoscaleSpec {
    fn default() -> Self {
        AutoscaleSpec {
            interval: Seconds::new(1.0),
            provision: Seconds::new(1.0),
            warmup: Seconds::new(0.5),
            idle_watts: 30.0,
            swap: false,
            band: (1, 4),
            initial: None,
            concurrency: 4,
            up: 0.75,
            down: 0.25,
            up_cooldown: Seconds::ZERO,
            down_cooldown: Seconds::ZERO,
            slo_floor: 0.0,
            group_bands: Vec::new(),
        }
    }
}

impl AutoscaleSpec {
    /// Expands the spec into an [`AutoscalePolicy`] over `ngroups` replica
    /// groups: every group takes the fleet-wide defaults, then its
    /// `groupK=` band override if present.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if an override names a group
    /// index `>= ngroups`, or if the expanded policy fails
    /// [`AutoscalePolicy::validate`].
    pub fn policy_for(&self, ngroups: usize) -> Result<AutoscalePolicy> {
        if let Some(&(g, _)) = self.group_bands.iter().find(|&&(g, _)| g >= ngroups) {
            return Err(Error::invalid_config(format!(
                "autoscale spec names group{g} but the fleet has {ngroups} group(s)"
            )));
        }
        let groups = (0..ngroups)
            .map(|g| {
                let (min, max) = self
                    .group_bands
                    .iter()
                    .rev() // the last override of a group wins
                    .find(|&&(i, _)| i == g)
                    .map_or(self.band, |&(_, band)| band);
                let initial =
                    self.initial.unwrap_or_else(|| min.max(1)).clamp(min, max.max(min));
                GroupPolicy {
                    min,
                    max,
                    initial,
                    concurrency: self.concurrency,
                    scale_up_above: self.up,
                    scale_down_below: self.down,
                    up_cooldown: self.up_cooldown,
                    down_cooldown: self.down_cooldown,
                    slo_floor: self.slo_floor,
                }
            })
            .collect();
        let policy = AutoscalePolicy {
            interval: self.interval,
            provision: self.provision,
            warmup: self.warmup,
            idle_watts: self.idle_watts,
            swap: self.swap,
            groups,
        };
        policy.validate()?;
        Ok(policy)
    }
}

/// Parses `3.5s`, `150ms`, or a bare non-negative second count.
fn parse_time(s: &str) -> Option<Seconds> {
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1.0)
    };
    let x: f64 = num.parse().ok()?;
    (x.is_finite() && x >= 0.0).then(|| Seconds::new(x * scale))
}

/// Parses `LO..HI` as a replica band.
fn parse_band(s: &str) -> Option<(u64, u64)> {
    let (lo, hi) = s.split_once("..")?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Parses the comma-separated `--autoscale SPEC` grammar of
/// `cluster_sim` — case-insensitive `key=value` tokens, every one
/// optional:
///
/// ```text
/// interval=1s      reconcile cadence            provision=2s  boot delay
/// warmup=500ms     weight-load / cache warmup   idle-w=30     idle W per chip
/// replicas=0..4    replica band (all groups)    group0=1..6   per-group band
/// init=2           initial replicas             conc=8        target concurrency
/// up=0.75          scale-up threshold           down=0.25     scale-down threshold
/// up-cd=2s         scale-up cooldown            down-cd=5s    scale-down cooldown
/// slo-floor=0.9    goodput floor (0 = off)      swap          allow model swaps
/// ```
///
/// Example: `--autoscale 'interval=1s,replicas=0..4,up=0.8,down=0.2,swap'`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for an unknown key or a malformed
/// value (group indices are range-checked later, in
/// [`AutoscaleSpec::policy_for`], when the fleet size is known).
pub fn parse_autoscale(spec: &str) -> Result<AutoscaleSpec> {
    let bad = |part: &str, why: &str| {
        Error::invalid_config(format!(
            "invalid autoscale spec '{part}': {why} (expected e.g. \
             'interval=1s,replicas=0..4,up=0.75,down=0.25,up-cd=2s,swap')"
        ))
    };
    let mut out = AutoscaleSpec::default();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let lower = part.to_ascii_lowercase();
        if lower == "swap" {
            out.swap = true;
            continue;
        }
        let (key, value) =
            lower.split_once('=').ok_or_else(|| bad(part, "missing '=<value>'"))?;
        let time = |why: &str| parse_time(value).ok_or_else(|| bad(part, why));
        match key {
            "interval" => out.interval = time("bad interval")?,
            "provision" => out.provision = time("bad provisioning delay")?,
            "warmup" => out.warmup = time("bad warmup")?,
            "idle-w" => {
                out.idle_watts =
                    value.parse().map_err(|_| bad(part, "bad idle watts"))?;
            }
            "replicas" => {
                out.band = parse_band(value).ok_or_else(|| bad(part, "bad band"))?;
            }
            "init" => {
                out.initial =
                    Some(value.parse().map_err(|_| bad(part, "bad initial count"))?);
            }
            "conc" => {
                out.concurrency =
                    value.parse().map_err(|_| bad(part, "bad concurrency"))?;
            }
            "up" => out.up = value.parse().map_err(|_| bad(part, "bad threshold"))?,
            "down" => out.down = value.parse().map_err(|_| bad(part, "bad threshold"))?,
            "up-cd" => out.up_cooldown = time("bad cooldown")?,
            "down-cd" => out.down_cooldown = time("bad cooldown")?,
            "slo-floor" => {
                out.slo_floor = value.parse().map_err(|_| bad(part, "bad floor"))?;
            }
            _ => {
                let band = key
                    .strip_prefix("group")
                    .and_then(|g| g.parse::<usize>().ok())
                    .zip(parse_band(value));
                let (g, band) = band.ok_or_else(|| bad(part, "unknown key"))?;
                out.group_bands.push((g, band));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_expand_to_a_valid_policy() {
        let spec = parse_autoscale("").unwrap();
        assert_eq!(spec, AutoscaleSpec::default());
        let policy = spec.policy_for(2).unwrap();
        assert_eq!(policy.groups.len(), 2);
        assert_eq!((policy.groups[0].min, policy.groups[0].max), (1, 4));
        assert_eq!(policy.groups[0].initial, 1);
        assert!(!policy.is_pinned());
    }

    #[test]
    fn full_grammar_round_trips_into_policy() {
        let spec = parse_autoscale(
            "interval=2s,provision=1500ms,warmup=250ms,idle-w=45,replicas=0..6,\
             init=2,conc=8,up=0.8,down=0.2,up-cd=4s,down-cd=10s,slo-floor=0.9,\
             group1=1..3,swap",
        )
        .unwrap();
        assert_eq!(spec.interval, Seconds::new(2.0));
        assert_eq!(spec.provision, Seconds::new(1.5));
        assert_eq!(spec.warmup, Seconds::new(0.25));
        assert_eq!(spec.idle_watts, 45.0);
        assert!(spec.swap);
        let policy = spec.policy_for(2).unwrap();
        assert_eq!((policy.groups[0].min, policy.groups[0].max), (0, 6));
        assert_eq!((policy.groups[1].min, policy.groups[1].max), (1, 3));
        assert_eq!(policy.groups[0].initial, 2);
        assert_eq!(policy.groups[0].concurrency, 8);
        assert_eq!(policy.groups[0].slo_floor, 0.9);
        assert_eq!(policy.groups[0].down_cooldown, Seconds::new(10.0));
    }

    #[test]
    fn scale_to_zero_band_defaults_initial_to_one() {
        let policy = parse_autoscale("replicas=0..3").unwrap().policy_for(1).unwrap();
        assert_eq!(policy.groups[0].min, 0);
        assert_eq!(policy.groups[0].initial, 1, "start with one, not zero");
    }

    #[test]
    fn pinned_specs_expand_to_pinned_policies() {
        let policy = parse_autoscale("replicas=3..3").unwrap().policy_for(4).unwrap();
        assert!(policy.is_pinned());
        assert!(policy.groups.iter().all(|g| g.initial == 3));
    }

    #[test]
    fn bad_tokens_are_rejected_with_the_offender_named() {
        for bad in [
            "interval",          // missing value
            "interval=fast",     // bad time
            "replicas=4",        // not a band
            "replicas=4..x",     // bad band edge
            "bogus=1",           // unknown key
            "group=1..2",        // group without an index
            "up=hot",            // bad float
        ] {
            let err = parse_autoscale(bad).unwrap_err().to_string();
            assert!(err.contains(bad.split('=').next().unwrap()), "{bad}: {err}");
        }
        // Group indices are checked against the fleet at expansion time.
        let spec = parse_autoscale("group7=1..2").unwrap();
        let err = spec.policy_for(2).unwrap_err().to_string();
        assert!(err.contains("group7"), "{err}");
        // An empty band parses but fails policy validation.
        assert!(parse_autoscale("replicas=5..2").unwrap().policy_for(1).is_err());
    }

    #[test]
    fn case_and_whitespace_are_forgiven() {
        let spec = parse_autoscale(" Interval=1S , SWAP ,, replicas=0..2 ").unwrap();
        assert!(spec.swap);
        assert_eq!(spec.band, (0, 2));
        assert_eq!(spec.interval, Seconds::new(1.0));
    }
}
