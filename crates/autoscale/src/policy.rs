//! Declarative autoscaling policies and the telemetry the reconciler
//! observes.

use cimtpu_units::{Error, Result, Seconds};

/// Scaling rules for one replica group (one [`ReplicaSpec`] of the fleet
/// becomes one elastic group of identically-configured slots).
///
/// Utilization is `(queued + outstanding) / (up_replicas × concurrency)`,
/// taken against the group's KV occupancy high-water if that is higher —
/// so a group can be "full" on memory before it is full on work. The
/// band `(scale_down_below, scale_up_above)` is the hysteresis gap: no
/// decision fires while utilization sits inside it.
///
/// [`ReplicaSpec`]: https://docs.rs/cimtpu-cluster
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupPolicy {
    /// Fewest replicas the group may hold (0 enables scale-to-zero).
    pub min: u64,
    /// Most replicas the group may hold. Scale-ups never exceed it;
    /// a model swap (when the policy allows swaps) may carry the group
    /// past it temporarily, since the donated machine arrives on top of
    /// a group already at its max.
    pub max: u64,
    /// Replicas up at t = 0 (clamped into `min..=max` by validation).
    pub initial: u64,
    /// Target concurrent requests per replica — the denominator of the
    /// utilization signal.
    pub concurrency: u64,
    /// Scale up when utilization exceeds this fraction.
    pub scale_up_above: f64,
    /// Scale down when utilization falls below this fraction.
    pub scale_down_below: f64,
    /// Minimum simulated time between scale-ups of this group.
    pub up_cooldown: Seconds,
    /// Minimum simulated time between scale-downs — and the idle time a
    /// group must accumulate before its last replica may scale to zero.
    pub down_cooldown: Seconds,
    /// Rolling-goodput trigger: scale up when the fraction of completions
    /// meeting the SLO since the last reconcile drops below this floor
    /// (0 disables the trigger; requires the run to have an SLO).
    pub slo_floor: f64,
}

impl Default for GroupPolicy {
    fn default() -> Self {
        GroupPolicy {
            min: 1,
            max: 4,
            initial: 1,
            concurrency: 4,
            scale_up_above: 0.75,
            scale_down_below: 0.25,
            up_cooldown: Seconds::ZERO,
            down_cooldown: Seconds::ZERO,
            slo_floor: 0.0,
        }
    }
}

impl GroupPolicy {
    /// Checks the group's knobs are coherent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty replica band, an
    /// `initial` outside it, zero concurrency, a threshold band without
    /// hysteresis (`down >= up`), non-finite thresholds, negative
    /// cooldowns, or an SLO floor outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.max == 0 {
            return Err(Error::invalid_config("a group needs max >= 1 replica"));
        }
        if self.min > self.max {
            return Err(Error::invalid_config(format!(
                "empty replica band {}..{}",
                self.min, self.max
            )));
        }
        if self.initial < self.min || self.initial > self.max {
            return Err(Error::invalid_config(format!(
                "initial replicas {} outside the {}..{} band",
                self.initial, self.min, self.max
            )));
        }
        if self.concurrency == 0 {
            return Err(Error::invalid_config("target concurrency must be >= 1"));
        }
        let (up, down) = (self.scale_up_above, self.scale_down_below);
        if !(up.is_finite() && down.is_finite() && 0.0 < down && down < up) {
            return Err(Error::invalid_config(format!(
                "utilization band needs 0 < down < up (got down={down}, up={up})"
            )));
        }
        if self.up_cooldown.get() < 0.0 || self.down_cooldown.get() < 0.0 {
            return Err(Error::invalid_config("cooldowns must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.slo_floor) {
            return Err(Error::invalid_config("the SLO goodput floor must be in [0, 1]"));
        }
        Ok(())
    }

    /// Whether the band pins the group to a fixed size (no elasticity).
    pub fn is_pinned(&self) -> bool {
        self.min == self.max
    }
}

/// The whole control plane's declarative configuration: one
/// [`GroupPolicy`] per replica group plus the shared reconcile cadence
/// and the provisioning cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    /// Reconcile interval: the controller observes and decides at
    /// `interval, 2·interval, …` on the simulated clock.
    pub interval: Seconds,
    /// Machine-provisioning delay a scale-up pays before warmup starts.
    pub provision: Seconds,
    /// Warmup a fresh replica pays after provisioning (weight load plus a
    /// cold `MappingCache`) before it turns `Up` and routable.
    pub warmup: Seconds,
    /// Idle power per chip, in watts — prices the chip-seconds a replica
    /// is held but not computing, so elastic and static fleets compare on
    /// cost.
    pub idle_watts: f64,
    /// Allow model-swap decisions: repurpose a replica from an
    /// under-utilized group to one that is over-utilized at its max
    /// (pays warmup but not provisioning).
    pub swap: bool,
    /// Per-group scaling rules, in fleet group order.
    pub groups: Vec<GroupPolicy>,
}

impl AutoscalePolicy {
    /// A policy with the default cadence (1 s interval, 1 s provisioning,
    /// 0.5 s warmup, 30 W idle, no swap) over `groups`.
    pub fn new(groups: Vec<GroupPolicy>) -> Self {
        AutoscalePolicy {
            interval: Seconds::new(1.0),
            provision: Seconds::new(1.0),
            warmup: Seconds::new(0.5),
            idle_watts: 30.0,
            swap: false,
            groups,
        }
    }

    /// Checks the policy is coherent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for no groups, a non-positive
    /// interval, negative provisioning/warmup/idle power, or any group
    /// failing [`GroupPolicy::validate`].
    pub fn validate(&self) -> Result<()> {
        if self.groups.is_empty() {
            return Err(Error::invalid_config("an autoscale policy needs >= 1 group"));
        }
        if !(self.interval.get().is_finite() && self.interval.get() > 0.0) {
            return Err(Error::invalid_config("reconcile interval must be positive"));
        }
        if self.provision.get() < 0.0 || self.warmup.get() < 0.0 {
            return Err(Error::invalid_config(
                "provisioning delay and warmup must be non-negative",
            ));
        }
        if !(self.idle_watts.is_finite() && self.idle_watts >= 0.0) {
            return Err(Error::invalid_config("idle power must be non-negative"));
        }
        for (i, g) in self.groups.iter().enumerate() {
            g.validate().map_err(|e| {
                Error::invalid_config(format!("group {i}: {e}"))
            })?;
        }
        Ok(())
    }

    /// Whether the policy can never change the fleet: every group is
    /// pinned (`min == max`) and swaps are off. A pinned policy lets the
    /// driver dispatch to the plain (non-elastic) fleet code paths
    /// bit-identically.
    pub fn is_pinned(&self) -> bool {
        !self.swap && self.groups.iter().all(GroupPolicy::is_pinned)
    }
}

/// One group's telemetry snapshot at a reconcile tick — everything the
/// [`Reconciler`](crate::Reconciler) is allowed to see. The driver builds
/// these from live engine state; the reconciler never touches the engines
/// directly, which is what keeps decisions replayable from a recorded
/// observation stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupObservation {
    /// Routable replicas (up and not draining).
    pub up: u64,
    /// Replicas provisioning or warming (capacity already on the way).
    pub pending: u64,
    /// Replicas draining toward retirement.
    pub draining: u64,
    /// Requests queued on the group's replicas plus any parked while the
    /// group had no routable replica.
    pub queued: u64,
    /// Requests admitted and not yet finished, across routable replicas.
    pub outstanding: u64,
    /// Highest KV occupancy fraction across routable replicas.
    pub kv_frac: f64,
    /// Completions delivered since the previous reconcile tick.
    pub delivered: u64,
    /// Of those, completions that met the run's latency SLO.
    pub slo_ok: u64,
}

impl GroupObservation {
    /// Queued plus outstanding work.
    pub fn work(&self) -> u64 {
        self.queued + self.outstanding
    }

    /// The utilization signal scaling decisions compare against the
    /// policy band: work over target capacity, or the KV occupancy
    /// high-water if that is higher. A group with work but no routable
    /// replica is infinitely utilized (the wake-from-zero signal).
    pub fn utilization(&self, concurrency: u64) -> f64 {
        if self.up == 0 {
            return if self.work() > 0 { f64::INFINITY } else { 0.0 };
        }
        let target = (self.up * concurrency.max(1)) as f64;
        (self.work() as f64 / target).max(self.kv_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_group_is_valid_and_elastic() {
        let g = GroupPolicy::default();
        g.validate().unwrap();
        assert!(!g.is_pinned());
        assert!(AutoscalePolicy::new(vec![g]).validate().is_ok());
    }

    #[test]
    fn pinned_means_every_band_is_degenerate_and_no_swap() {
        let pinned = GroupPolicy { min: 2, max: 2, initial: 2, ..GroupPolicy::default() };
        let mut policy = AutoscalePolicy::new(vec![pinned, pinned]);
        assert!(policy.is_pinned());
        policy.swap = true;
        assert!(!policy.is_pinned(), "swap makes a pinned band elastic");
        policy.swap = false;
        policy.groups[1] = GroupPolicy { min: 1, max: 2, ..pinned };
        assert!(!policy.is_pinned());
    }

    #[test]
    fn group_validation_rejects_incoherent_knobs() {
        let ok = GroupPolicy::default();
        for bad in [
            GroupPolicy { max: 0, min: 0, initial: 0, ..ok },
            GroupPolicy { min: 5, max: 2, ..ok },
            GroupPolicy { initial: 9, ..ok },
            GroupPolicy { initial: 0, ..ok }, // below min=1
            GroupPolicy { concurrency: 0, ..ok },
            GroupPolicy { scale_up_above: 0.2, scale_down_below: 0.5, ..ok },
            GroupPolicy { scale_down_below: 0.0, ..ok },
            GroupPolicy { scale_up_above: f64::NAN, ..ok },
            GroupPolicy { up_cooldown: Seconds::new(-1.0), ..ok },
            GroupPolicy { slo_floor: 1.5, ..ok },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
        ok.validate().unwrap();
    }

    #[test]
    fn policy_validation_rejects_bad_cadence() {
        let g = GroupPolicy::default();
        let ok = AutoscalePolicy::new(vec![g]);
        assert!(AutoscalePolicy::new(vec![]).validate().is_err());
        assert!(AutoscalePolicy { interval: Seconds::ZERO, ..ok.clone() }
            .validate()
            .is_err());
        assert!(AutoscalePolicy { provision: Seconds::new(-1.0), ..ok.clone() }
            .validate()
            .is_err());
        assert!(AutoscalePolicy { idle_watts: f64::NAN, ..ok.clone() }
            .validate()
            .is_err());
        // A bad group is reported with its index.
        let nested = AutoscalePolicy::new(vec![g, GroupPolicy { concurrency: 0, ..g }]);
        let msg = nested.validate().unwrap_err().to_string();
        assert!(msg.contains("group 1"), "{msg}");
    }

    #[test]
    fn utilization_signal_covers_work_memory_and_zero() {
        let obs = GroupObservation {
            up: 2,
            queued: 2,
            outstanding: 4,
            kv_frac: 0.2,
            ..GroupObservation::default()
        };
        // 6 work over 2×4 target = 0.75; kv 0.2 is lower.
        assert!((obs.utilization(4) - 0.75).abs() < 1e-12);
        // KV pressure dominates when higher.
        let hot = GroupObservation { kv_frac: 0.95, ..obs };
        assert!((hot.utilization(4) - 0.95).abs() < 1e-12);
        // Scaled to zero: idle is 0, parked work is infinite.
        let idle = GroupObservation::default();
        assert_eq!(idle.utilization(4), 0.0);
        let parked = GroupObservation { queued: 1, ..idle };
        assert_eq!(parked.utilization(4), f64::INFINITY);
    }
}
