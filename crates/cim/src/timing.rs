//! Analytical timing of GEMM/GEMV on a CIM-MXU grid.
//!
//! ## Model
//!
//! A weight residency covers `k_extent × n_extent` of the weight matrix
//! (grid rows × 128 contraction channels, grid columns × 256 output
//! channels). Larger GEMMs fold into `⌈k/k_extent⌉ · ⌈n/n_extent⌉`
//! macro-tiles. For one macro-tile:
//!
//! - each of the `m` input vectors is broadcast bit-serially inside every
//!   core, taking one *wave* of [`CimCoreConfig::vector_cycles`] cycles;
//! - the input vector hops across the grid columns systolically
//!   ([`CimMxuConfig::input_hop_cycles`] per hop) — this replaces the
//!   `R + C − 2` PE-granularity skew of a systolic array and is why GEMV
//!   latency collapses;
//! - partial sums ripple down the grid rows
//!   ([`CimMxuConfig::psum_hop_cycles`] per hop);
//! - re-writing the weights for the next macro-tile takes
//!   [`CimCoreConfig::weight_update_cycles`]; with
//!   [`CimMxuConfig::overlap_weight_update`] enabled the update hides under
//!   the previous tile's compute (only stalls when compute is shorter than
//!   the update — exactly the GEMV-burst regime where the feature matters).
//!
//! [`CimCoreConfig::vector_cycles`]: crate::CimCoreConfig::vector_cycles
//! [`CimCoreConfig::weight_update_cycles`]: crate::CimCoreConfig::weight_update_cycles
//! [`CimMxuConfig::input_hop_cycles`]: crate::CimMxuConfig::input_hop_cycles
//! [`CimMxuConfig::psum_hop_cycles`]: crate::CimMxuConfig::psum_hop_cycles
//! [`CimMxuConfig::overlap_weight_update`]: crate::CimMxuConfig::overlap_weight_update

use serde::{Deserialize, Serialize};

use cimtpu_units::{Cycles, DataType, GemmShape};

use crate::geometry::CimMxuConfig;

/// Cycle-count breakdown of one GEMM on a CIM-MXU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimGemmTiming {
    shape: GemmShape,
    total: Cycles,
    compute: Cycles,
    exposed_weight_update: Cycles,
    macro_tiles: u64,
    peak_macs_per_cycle: u64,
}

impl CimGemmTiming {
    /// The GEMM shape this timing describes.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// End-to-end cycles including exposed weight updates.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Cycles spent computing (waves + grid fill).
    pub fn compute(&self) -> Cycles {
        self.compute
    }

    /// Weight-update cycles *not* hidden under compute.
    pub fn exposed_weight_update(&self) -> Cycles {
        self.exposed_weight_update
    }

    /// Number of weight residencies (macro-tiles).
    pub fn macro_tiles(&self) -> u64 {
        self.macro_tiles
    }

    /// Fraction of peak MAC slots doing useful work, in `(0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total == Cycles::ZERO {
            return 0.0;
        }
        self.shape.macs() as f64
            / (self.total.get() as f64 * self.peak_macs_per_cycle as f64)
    }
}

/// Number of full bit-serial passes needed for `dtype` operands.
fn passes(dtype: DataType) -> u64 {
    // The integer MAC datapath chews `mantissa_bits` per pass of 8.
    u64::from(dtype.mantissa_bits().div_ceil(8))
}

/// Fixed pipeline latency of the FP pre/post-processing units per macro-tile.
const FP_PIPELINE_LATENCY: u64 = 16;

pub(crate) fn gemm_timing(
    config: &CimMxuConfig,
    shape: GemmShape,
    dtype: DataType,
) -> CimGemmTiming {
    let (m, k, n) = (shape.m(), shape.k(), shape.n());
    let core = config.core();

    // Chain packing ("flexible mapping"): a contraction extent shorter than
    // the full grid column occupies only ⌈k/128⌉ cores per partial-sum
    // chain; the weight layout is free (per-core weight ports), so the
    // remaining cores host additional chains serving extra output columns.
    // This is how Design A ("half the peak performance ... more flexible
    // mapping strategies and a higher utilization rate") and DiT's
    // d_model = 1152 avoid stranding grid rows.
    let chain_len = k.div_ceil(core.rows()).min(config.grid_rows());
    let chains = (config.core_count() / chain_len).max(1);
    let k_ext = chain_len * core.rows();
    let n_ext = chains * core.cols();
    let k_tiles = k.div_ceil(k_ext);
    let n_tiles = n.div_ceil(n_ext);
    let elem_bytes = dtype.size_bytes();
    let fp_latency = if dtype.is_float() { FP_PIPELINE_LATENCY } else { 0 };

    let mut compute_total: u64 = 0;
    let mut exposed_update: u64 = 0;
    let mut prev_compute: u64 = 0;
    let mut first = true;

    for ni in 0..n_tiles {
        // Columns covered by this macro-tile, split across the chains.
        let tile_n = (n - ni * n_ext).min(n_ext);
        let n_per_core = tile_n.div_ceil(chains);
        let wave = core.vector_cycles(n_per_core, core.bit_serial_bits()) * passes(dtype);

        for ki in 0..k_tiles {
            // Weight delivery for this residency: the whole tile crosses the
            // MXU-level ingest bus; each core writes its slice in parallel.
            let tile_k = (k - ki * k_ext).min(k_ext);
            let tile_bytes = tile_k * tile_n * elem_bytes;
            let per_core_bytes = tile_k.min(core.rows()) * n_per_core * elem_bytes;
            let update = config.weight_write_cycles(tile_bytes, per_core_bytes);

            let fill = (config.grid_cols() - 1) * config.input_hop_cycles()
                + (chain_len - 1) * config.psum_hop_cycles();
            let tile_compute = m * wave + fill + fp_latency;
            compute_total += tile_compute;
            if first {
                // The first residency's write is always exposed.
                exposed_update += update;
                first = false;
            } else if config.overlap_weight_update() {
                // Update overlaps the previous tile's compute.
                exposed_update += update.saturating_sub(prev_compute);
            } else {
                exposed_update += update;
            }
            prev_compute = tile_compute;
        }
    }

    let macro_tiles = k_tiles * n_tiles;
    CimGemmTiming {
        shape,
        total: Cycles::new(compute_total + exposed_update),
        compute: Cycles::new(compute_total),
        exposed_weight_update: Cycles::new(exposed_update),
        macro_tiles,
        peak_macs_per_cycle: config.peak_macs_per_cycle(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CimMxuConfig;

    fn mxu() -> CimMxuConfig {
        CimMxuConfig::paper_default()
    }

    #[test]
    fn single_tile_gemm_formula() {
        // m=64, full 2048x2048 residency: wave = 256, fill = 7*32 + 15*4 = 284.
        // The initial weight delivery (4 MiB over the 128 B/cycle ingest
        // bus = 32768 cycles) is exposed once.
        let t = gemm_timing(
            &mxu(),
            GemmShape::new(64, 2048, 2048).unwrap(),
            DataType::Int8,
        );
        assert_eq!(t.macro_tiles(), 1);
        assert_eq!(t.compute(), Cycles::new(64 * 256 + 284));
        assert_eq!(t.total(), Cycles::new(64 * 256 + 284 + 32768));
    }

    #[test]
    fn near_peak_for_large_m() {
        let t = gemm_timing(
            &mxu(),
            GemmShape::new(1 << 14, 2048, 2048).unwrap(),
            DataType::Int8,
        );
        assert!(t.utilization() > 0.98, "utilization {}", t.utilization());
    }

    #[test]
    fn gemv_is_weight_delivery_bound() {
        // One residency, m=1: compute is a single wave + fill (540 cycles);
        // virtually the whole latency is delivering 4 MiB of weights over
        // the ingest bus — exactly the memory-bound GEMV regime of LLM
        // decoding (the systolic array is equally delivery-bound, so the
        // CIM win on *single* weight GEMVs is energy, not latency; the
        // latency win comes from batched attention packing, see
        // cimtpu-core's engine tests).
        let t = gemm_timing(&mxu(), GemmShape::gemv(2048, 2048).unwrap(), DataType::Int8);
        assert_eq!(t.compute(), Cycles::new(256 + 284));
        assert!(t.exposed_weight_update() >= Cycles::new(32768));
        assert!(t.utilization() < 0.01);
    }

    #[test]
    fn weight_update_overlap_hides_updates_for_big_tiles() {
        let shape = GemmShape::new(512, 4096, 4096).unwrap(); // 2x2 macro-tiles
        let overlapped = gemm_timing(&mxu(), shape, DataType::Int8);
        let serial = gemm_timing(
            &mxu().with_overlap_weight_update(false),
            shape,
            DataType::Int8,
        );
        // 4 residencies: serial pays 4 updates, overlapped pays only the first
        // (compute per tile = 512*256 >> 32768-cycle update).
        assert_eq!(
            serial.total() - overlapped.total(),
            Cycles::new(3 * 32768)
        );
    }

    #[test]
    fn gemv_bursts_expose_updates_even_with_overlap() {
        // When compute per tile (1 wave) < update, overlap cannot fully hide
        // the update stream — matches the paper's "low weight reuse" concern.
        let shape = GemmShape::gemv(2048, 16384).unwrap(); // 8 n-tiles
        let t = gemm_timing(&mxu(), shape, DataType::Int8);
        assert!(t.exposed_weight_update() > Cycles::new(1024));
        let serial = gemm_timing(
            &mxu().with_overlap_weight_update(false),
            shape,
            DataType::Int8,
        );
        assert!(serial.exposed_weight_update() > t.exposed_weight_update());
    }

    #[test]
    fn bf16_adds_pipeline_latency_only() {
        let shape = GemmShape::new(128, 2048, 2048).unwrap();
        let int8 = gemm_timing(&mxu(), shape, DataType::Int8);
        let bf16 = gemm_timing(&mxu(), shape, DataType::Bf16);
        // Same number of passes (8-bit mantissa); BF16 pays FP pipeline
        // latency and a 2x weight update (2 bytes/elem).
        assert_eq!(
            bf16.compute() - int8.compute(),
            Cycles::new(FP_PIPELINE_LATENCY)
        );
        assert!(bf16.total() > int8.total());
    }

    #[test]
    fn partial_n_tile_shrinks_wave() {
        // n = 256 across 8 grid columns: 32 columns per core -> wave 32.
        let t = gemm_timing(&mxu(), GemmShape::new(1024, 2048, 256).unwrap(), DataType::Int8);
        let full = gemm_timing(&mxu(), GemmShape::new(1024, 2048, 2048).unwrap(), DataType::Int8);
        assert!(t.total().get() * 4 < full.total().get());
    }

    #[test]
    fn smaller_grids_cover_less_per_residency() {
        let small = CimMxuConfig::with_grid(8, 8);
        let t = gemm_timing(&small, GemmShape::new(64, 2048, 2048).unwrap(), DataType::Int8);
        assert_eq!(t.macro_tiles(), 2); // k folds twice at k_extent=1024
    }

    #[test]
    fn utilization_bounded() {
        for (m, k, n) in [(1, 128, 1280), (8, 7168, 7168), (8192, 7168, 28672)] {
            let t = gemm_timing(&mxu(), GemmShape::new(m, k, n).unwrap(), DataType::Int8);
            assert!(t.utilization() <= 1.0 + 1e-12, "{m}x{k}x{n}");
            assert!(t.utilization() > 0.0);
        }
    }
}
