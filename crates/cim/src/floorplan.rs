//! Component-level floorplan and energy decomposition of the CIM core.
//!
//! The paper obtains core area from a manually drawn layout; this module is
//! the analytical substitute (DESIGN.md §2): a parametric decomposition of
//! the macro into its Fig. 4 components — bitcell array, local readout &
//! compute circuits, adder trees, shift-accumulators, word-line/input
//! drivers, weight I/O, PSUM buffer and control — normalized so the totals
//! equal the Table II-calibrated aggregates. The value of the breakdown is
//! *relative*: it shows where area/energy goes and how it scales with
//! geometry, which is what architecture exploration needs.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Area, DataType, Joules};

use crate::energy::CimEnergyModel;
use crate::geometry::CimCoreConfig;

/// Per-component silicon area of one CIM core.
///
/// # Examples
///
/// ```
/// use cimtpu_cim::{CimCoreConfig, CimCoreFloorplan};
/// let fp = CimCoreFloorplan::tsmc22(&CimCoreConfig::paper_default());
/// // The bitcell array dominates a memory-centric macro.
/// assert!(fp.bitcell_fraction() > 0.3);
/// let total = fp.total().as_mm2();
/// assert!((total - 0.2052).abs() / 0.2052 < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimCoreFloorplan {
    bitcell_array: Area,
    local_readout: Area,
    adder_trees: Area,
    shift_accumulators: Area,
    input_drivers: Area,
    weight_io: Area,
    psum_buffer: Area,
    control: Area,
}

/// Relative weights of the floorplan components (unitless; derived from
/// typical digital-CIM macro publications: the 6T/8T array plus its local
/// compute is roughly half the macro, arithmetic another third).
struct ComponentWeights {
    bitcell: f64,
    readout: f64,
    adder: f64,
    shift_acc: f64,
    drivers: f64,
    weight_io: f64,
    psum: f64,
    control: f64,
}

impl ComponentWeights {
    fn tsmc22(core: &CimCoreConfig) -> Self {
        let cells = (core.rows() * core.cols()) as f64;
        // Adder-tree size grows with rows * log2(rows) per column group.
        let adder_units =
            core.cols() as f64 * core.rows() as f64 * (core.rows() as f64).log2() / 16.0;
        let column_groups = (core.cols() / core.column_group()) as f64;
        ComponentWeights {
            bitcell: cells,
            readout: cells * 0.28,
            adder: adder_units,
            shift_acc: column_groups * 96.0,
            drivers: core.rows() as f64 * 40.0,
            weight_io: core.weight_io_bytes_per_cycle() as f64 * 100.0,
            psum: core.cols() as f64 * 16.0,
            control: cells * 0.02,
        }
    }

    fn total(&self) -> f64 {
        self.bitcell
            + self.readout
            + self.adder
            + self.shift_acc
            + self.drivers
            + self.weight_io
            + self.psum
            + self.control
    }
}

impl CimCoreFloorplan {
    /// Builds the 22 nm floorplan for `core`, normalized to the calibrated
    /// per-core area of [`CimEnergyModel::tsmc22_cim`].
    pub fn tsmc22(core: &CimCoreConfig) -> Self {
        let target = CimEnergyModel::tsmc22_cim()
            .mxu_area(&crate::geometry::CimMxuConfig::with_grid(1, 1).with_core(*core));
        CimCoreFloorplan::scaled(core, target)
    }

    /// Builds the floorplan scaled to an arbitrary total core area.
    pub fn scaled(core: &CimCoreConfig, total: Area) -> Self {
        let w = ComponentWeights::tsmc22(core);
        let unit = total.as_mm2() / w.total();
        let mm2 = |x: f64| Area::from_mm2(x * unit);
        CimCoreFloorplan {
            bitcell_array: mm2(w.bitcell),
            local_readout: mm2(w.readout),
            adder_trees: mm2(w.adder),
            shift_accumulators: mm2(w.shift_acc),
            input_drivers: mm2(w.drivers),
            weight_io: mm2(w.weight_io),
            psum_buffer: mm2(w.psum),
            control: mm2(w.control),
        }
    }

    /// Bitcell (SRAM) array area.
    pub fn bitcell_array(&self) -> Area {
        self.bitcell_array
    }

    /// Local readout-and-compute circuit area.
    pub fn local_readout(&self) -> Area {
        self.local_readout
    }

    /// Adder-tree area.
    pub fn adder_trees(&self) -> Area {
        self.adder_trees
    }

    /// Shift-accumulator area.
    pub fn shift_accumulators(&self) -> Area {
        self.shift_accumulators
    }

    /// Word-line and input-driver area.
    pub fn input_drivers(&self) -> Area {
        self.input_drivers
    }

    /// Weight I/O port area.
    pub fn weight_io(&self) -> Area {
        self.weight_io
    }

    /// PSUM buffer area.
    pub fn psum_buffer(&self) -> Area {
        self.psum_buffer
    }

    /// Control logic area.
    pub fn control(&self) -> Area {
        self.control
    }

    /// Total core area (sum of all components).
    pub fn total(&self) -> Area {
        Area::from_mm2(
            self.bitcell_array.as_mm2()
                + self.local_readout.as_mm2()
                + self.adder_trees.as_mm2()
                + self.shift_accumulators.as_mm2()
                + self.input_drivers.as_mm2()
                + self.weight_io.as_mm2()
                + self.psum_buffer.as_mm2()
                + self.control.as_mm2(),
        )
    }

    /// Fraction of the core occupied by the bitcell array.
    pub fn bitcell_fraction(&self) -> f64 {
        self.bitcell_array.as_mm2() / self.total().as_mm2()
    }

    /// All components as `(name, area)` rows for reporting.
    pub fn components(&self) -> Vec<(&'static str, Area)> {
        vec![
            ("bitcell array", self.bitcell_array),
            ("local readout & compute", self.local_readout),
            ("adder trees", self.adder_trees),
            ("shift-accumulators", self.shift_accumulators),
            ("WL & input drivers", self.input_drivers),
            ("weight I/O", self.weight_io),
            ("PSUM buffer", self.psum_buffer),
            ("control", self.control),
        ]
    }
}

/// Per-MAC energy decomposition of the CIM datapath.
///
/// Splits the calibrated [`CimEnergyModel::mac_energy`] into the Fig. 4
/// pipeline stages so sensitivity studies can scale individual components.
///
/// # Examples
///
/// ```
/// use cimtpu_cim::{CimCoreConfig, MacEnergyBreakdown};
/// use cimtpu_units::DataType;
/// let b = MacEnergyBreakdown::tsmc22(&CimCoreConfig::paper_default(), DataType::Int8);
/// // Integer mode leaves the FP hardware idle: the named stages carry
/// // slightly less than the calibrated 0.25 pJ/MAC aggregate.
/// assert!(b.total().as_picojoules() > 0.22 && b.total().as_picojoules() <= 0.25);
/// assert!(b.adder_tree() > b.bitcell_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacEnergyBreakdown {
    bitcell_read: Joules,
    bitwise_multiply: Joules,
    adder_tree: Joules,
    shift_accumulate: Joules,
    broadcast: Joules,
    fp_processing: Joules,
}

impl MacEnergyBreakdown {
    /// Decomposes the calibrated per-MAC energy for `core` at `dtype`.
    pub fn tsmc22(core: &CimCoreConfig, dtype: DataType) -> Self {
        let total = CimEnergyModel::tsmc22_cim().mac_energy(dtype);
        // Stage shares: the adder tree dominates digital-CIM MAC energy
        // (every bit-plane ripples through log2(rows) adder levels); local
        // bitcell reads are nearly free compared to a full SRAM access.
        let depth = (core.rows() as f64).log2();
        let shares = [
            ("bitcell", 0.10),
            ("mult", 0.08),
            ("adder", 0.075 * depth), // 0.525 at 128 rows
            ("shift", 0.12),
            ("broadcast", 0.10),
        ];
        let named: f64 = shares.iter().map(|(_, s)| s).sum();
        let fp_share = (1.0 - named).max(0.0); // remainder: FP pre/post
        let part = |s: f64| Joules::new(total.get() * s);
        MacEnergyBreakdown {
            bitcell_read: part(shares[0].1),
            bitwise_multiply: part(shares[1].1),
            adder_tree: part(shares[2].1),
            shift_accumulate: part(shares[3].1),
            broadcast: part(shares[4].1),
            fp_processing: part(if dtype.is_float() { fp_share } else { 0.0 }),
        }
    }

    /// SRAM local-read energy per MAC.
    pub fn bitcell_read(&self) -> Joules {
        self.bitcell_read
    }

    /// Bitwise AND/multiply energy per MAC.
    pub fn bitwise_multiply(&self) -> Joules {
        self.bitwise_multiply
    }

    /// Adder-tree energy per MAC.
    pub fn adder_tree(&self) -> Joules {
        self.adder_tree
    }

    /// Shift-accumulate energy per MAC.
    pub fn shift_accumulate(&self) -> Joules {
        self.shift_accumulate
    }

    /// Input-broadcast energy per MAC.
    pub fn broadcast(&self) -> Joules {
        self.broadcast
    }

    /// FP pre/post-processing energy per MAC (zero for integer modes).
    pub fn fp_processing(&self) -> Joules {
        self.fp_processing
    }

    /// Sum of all stages.
    pub fn total(&self) -> Joules {
        self.bitcell_read
            + self.bitwise_multiply
            + self.adder_tree
            + self.shift_accumulate
            + self.broadcast
            + self.fp_processing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CimMxuConfig;

    #[test]
    fn floorplan_sums_to_calibrated_area() {
        let core = CimCoreConfig::paper_default();
        let fp = CimCoreFloorplan::tsmc22(&core);
        let calibrated = CimEnergyModel::tsmc22_cim()
            .mxu_area(&CimMxuConfig::with_grid(1, 1))
            .as_mm2();
        assert!((fp.total().as_mm2() - calibrated).abs() / calibrated < 1e-9);
    }

    #[test]
    fn components_sum_to_total() {
        let fp = CimCoreFloorplan::tsmc22(&CimCoreConfig::paper_default());
        let sum: f64 = fp.components().iter().map(|(_, a)| a.as_mm2()).sum();
        assert!((sum - fp.total().as_mm2()).abs() < 1e-12);
    }

    #[test]
    fn memory_dominates_the_macro() {
        let fp = CimCoreFloorplan::tsmc22(&CimCoreConfig::paper_default());
        // Bitcells + local readout are most of a memory-centric design.
        let mem =
            (fp.bitcell_array().as_mm2() + fp.local_readout().as_mm2()) / fp.total().as_mm2();
        assert!(mem > 0.5, "memory fraction {mem:.3}");
        assert!(fp.control().as_mm2() < fp.bitcell_array().as_mm2());
    }

    #[test]
    fn int8_mac_energy_decomposition_is_exact() {
        let core = CimCoreConfig::paper_default();
        let b = MacEnergyBreakdown::tsmc22(&core, DataType::Int8);
        let calibrated = CimEnergyModel::tsmc22_cim().mac_energy(DataType::Int8);
        // INT8 has no FP stage; the named stages must carry ~92.5% of the
        // calibrated per-MAC energy (remainder is FP hardware, idle).
        assert!(b.fp_processing() == Joules::ZERO);
        let named = b.total().get() / calibrated.get();
        assert!((0.9..1.0).contains(&named), "named share {named:.3}");
    }

    #[test]
    fn bf16_pays_for_fp_processing() {
        let core = CimCoreConfig::paper_default();
        let int8 = MacEnergyBreakdown::tsmc22(&core, DataType::Int8);
        let bf16 = MacEnergyBreakdown::tsmc22(&core, DataType::Bf16);
        assert!(bf16.fp_processing().get() > 0.0);
        assert!(bf16.total() > int8.total());
    }

    #[test]
    fn adder_tree_grows_with_rows() {
        let small = CimCoreFloorplan::scaled(
            &CimCoreConfig::paper_default(),
            Area::from_mm2(1.0),
        );
        // Relative adder share for a 128-row core.
        let share = small.adder_trees().as_mm2() / small.total().as_mm2();
        assert!(share > 0.1 && share < 0.5, "adder share {share:.3}");
    }
}
