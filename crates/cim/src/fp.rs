//! BF16 floating-point support: the pre/post-processing pipeline.
//!
//! In FP mode the CIM macro stores weight *mantissas* in the bitcell array
//! and performs integer MACs on aligned mantissas:
//!
//! 1. **Pre-processing** — for each input/weight pair the product exponent
//!    is `e_a + e_w`; the unit finds the maximum product exponent across the
//!    dot product and right-shifts every product mantissa by the difference
//!    (exponent alignment + mantissa shifting).
//! 2. **In-array MAC** — integer multiply-accumulate of aligned mantissas.
//! 3. **Post-processing** — shift-and-accumulate of the wide integer sum,
//!    normalization, and round-to-nearest-even back to BF16.
//!
//! Alignment discards mantissa bits of small products, so the result is not
//! bit-identical to an `f32` reference — the tests bound the relative error
//! instead, which is the fidelity argument used by FP-CIM macro papers
//! ([Guo, ISSCC'23]-style designs).
//!
//! # Examples
//!
//! ```
//! use cimtpu_cim::fp::{Bf16, FpCimPipeline};
//!
//! let a: Vec<Bf16> = [1.5f32, -2.0, 0.25].iter().map(|&x| Bf16::from_f32(x)).collect();
//! let w: Vec<Bf16> = [2.0f32, 0.5, 8.0].iter().map(|&x| Bf16::from_f32(x)).collect();
//! let got = FpCimPipeline::default().dot(&a, &w)?.to_f32();
//! assert!((got - 4.0).abs() < 0.1); // 3.0 - 1.0 + 2.0
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use cimtpu_units::{Error, Result};

/// A bfloat16 value stored as its 16-bit pattern.
///
/// BF16 is the upper half of an IEEE-754 `f32`, so conversions are exact
/// truncations/extensions of the bit pattern (with round-to-nearest-even on
/// the way down).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);

    /// Creates a BF16 from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Rounds an `f32` to the nearest BF16 (ties to even).
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve a quiet NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x8000u32;
        let lower = bits & 0xffff;
        let mut upper = (bits >> 16) as u16;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper = upper.wrapping_add(1);
        }
        Bf16(upper)
    }

    /// Widens to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Sign bit (true = negative).
    pub const fn sign(self) -> bool {
        self.0 >> 15 == 1
    }

    /// Biased exponent (0..=255).
    pub const fn biased_exponent(self) -> u32 {
        ((self.0 >> 7) & 0xff) as u32
    }

    /// Significand with the hidden one materialized (8 bits for normals,
    /// the raw 7-bit fraction for subnormals).
    pub const fn significand(self) -> u32 {
        let frac = (self.0 & 0x7f) as u32;
        if self.biased_exponent() == 0 {
            frac
        } else {
            frac | 0x80
        }
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

/// The FP pre/post-processing pipeline around the integer CIM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpCimPipeline {
    /// Width of the alignment window in bits: products whose exponent is
    /// more than this far below the maximum are flushed to zero, exactly as
    /// a fixed-width aligner does in hardware.
    alignment_bits: u32,
}

impl Default for FpCimPipeline {
    fn default() -> Self {
        // 24-bit aligner: enough for BF16 dot products of length <= 256
        // with bounded error.
        FpCimPipeline { alignment_bits: 24 }
    }
}

impl FpCimPipeline {
    /// Creates a pipeline with a custom aligner width.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `alignment_bits` is zero or
    /// greater than 40 (the accumulator width budget).
    pub fn new(alignment_bits: u32) -> Result<Self> {
        if alignment_bits == 0 || alignment_bits > 40 {
            return Err(Error::invalid_config(format!(
                "alignment width {alignment_bits} out of range 1..=40"
            )));
        }
        Ok(FpCimPipeline { alignment_bits })
    }

    /// The aligner width in bits.
    pub fn alignment_bits(&self) -> u32 {
        self.alignment_bits
    }

    /// Computes `Σ a[i] * w[i]` through the FP-CIM pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if the vectors differ in length, and
    /// [`Error::InvalidConfig`] if any operand is NaN or infinite (the
    /// hardware pipeline has no special-value path; saturating behaviour is
    /// out of scope for the model).
    pub fn dot(&self, a: &[Bf16], w: &[Bf16]) -> Result<Bf16> {
        if a.len() != w.len() {
            return Err(Error::invalid_shape(format!(
                "dot product operands differ in length: {} vs {}",
                a.len(),
                w.len()
            )));
        }
        for &x in a.iter().chain(w) {
            if x.biased_exponent() == 0xff {
                return Err(Error::invalid_config(
                    "NaN/Inf operands are not supported by the FP-CIM pipeline",
                ));
            }
        }

        // Pre-processing: per-product sign, exponent, and exact mantissa.
        struct Product {
            sign: bool,
            exp: i32,        // unbiased product exponent
            mant: u32,       // 16-bit mantissa product (8x8 bits)
        }
        let products: Vec<Product> = a
            .iter()
            .zip(w)
            .filter(|(x, y)| x.significand() != 0 && y.significand() != 0)
            .map(|(x, y)| Product {
                sign: x.sign() ^ y.sign(),
                // Biased exponents: subtract 2*127; subnormal exponents are
                // min-clamped like exponent 1 in hardware.
                exp: x.biased_exponent().max(1) as i32 + y.biased_exponent().max(1) as i32 - 254,
                mant: x.significand() * y.significand(),
            })
            .collect();
        if products.is_empty() {
            return Ok(Bf16::ZERO);
        }

        // Alignment: find the maximum product exponent; shift every mantissa
        // right by the exponent gap, dropping bits beyond the aligner width.
        let max_exp = products.iter().map(|p| p.exp).max().expect("non-empty");
        let mut acc: i64 = 0;
        for p in &products {
            let shift = (max_exp - p.exp) as u32;
            if shift >= self.alignment_bits {
                continue; // flushed by the fixed-width aligner
            }
            let aligned = i64::from(p.mant) >> shift;
            acc += if p.sign { -aligned } else { aligned };
        }

        // Post-processing: normalize the wide sum and round to BF16.
        if acc == 0 {
            return Ok(Bf16::ZERO);
        }
        let sign = acc < 0;
        let mag = acc.unsigned_abs();
        // The mantissa product has its binary point after bit 14 (8-bit
        // significands each with the point after bit 7).
        let value = mag as f64 * 2f64.powi(max_exp - 14);
        let rounded = Bf16::from_f32(if sign { -(value as f32) } else { value as f32 });
        Ok(rounded)
    }

    /// `f64` reference dot product for validation.
    pub fn dot_reference(a: &[Bf16], w: &[Bf16]) -> f64 {
        a.iter()
            .zip(w)
            .map(|(x, y)| f64::from(x.to_f32()) * f64::from(y.to_f32()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bf16_round_trip_exact_values() {
        for &x in &[0.0f32, 1.0, -1.5, 0.25, 3.140625, -65504.0, 1e-3] {
            let b = Bf16::from_f32(x);
            let back = b.to_f32();
            // BF16 has ~3 decimal digits; values representable in BF16
            // round-trip exactly.
            assert!(((back - x) / x.abs().max(1e-6)).abs() < 0.01, "{x} -> {back}");
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next BF16; the
        // even mantissa (1.0) wins.
        let x = f32::from_bits(0x3f80_8000);
        assert_eq!(Bf16::from_f32(x).to_bits(), 0x3f80);
        // Just above halfway rounds up.
        let y = f32::from_bits(0x3f80_8001);
        assert_eq!(Bf16::from_f32(y).to_bits(), 0x3f81);
    }

    #[test]
    fn simple_dot_products() {
        let p = FpCimPipeline::default();
        let a: Vec<Bf16> = [1.0f32, 2.0, 3.0].iter().map(|&x| Bf16::from_f32(x)).collect();
        let w: Vec<Bf16> = [4.0f32, 5.0, 6.0].iter().map(|&x| Bf16::from_f32(x)).collect();
        let got = p.dot(&a, &w).unwrap().to_f32();
        assert!((got - 32.0).abs() < 0.25);
    }

    #[test]
    fn cancellation_is_exact_when_aligned() {
        let p = FpCimPipeline::default();
        let a: Vec<Bf16> = [1.0f32, -1.0].iter().map(|&x| Bf16::from_f32(x)).collect();
        let w: Vec<Bf16> = [1.0f32, 1.0].iter().map(|&x| Bf16::from_f32(x)).collect();
        assert_eq!(p.dot(&a, &w).unwrap(), Bf16::ZERO);
    }

    #[test]
    fn rejects_nan_and_length_mismatch() {
        let p = FpCimPipeline::default();
        let nan = Bf16::from_f32(f32::NAN);
        assert!(p.dot(&[nan], &[Bf16::from_f32(1.0)]).is_err());
        assert!(p
            .dot(&[Bf16::from_f32(1.0)], &[Bf16::from_f32(1.0), Bf16::ZERO])
            .is_err());
        assert!(FpCimPipeline::new(0).is_err());
        assert!(FpCimPipeline::new(64).is_err());
    }

    #[test]
    fn zeros_short_circuit() {
        let p = FpCimPipeline::default();
        let out = p.dot(&[Bf16::ZERO; 4], &[Bf16::from_f32(5.0); 4]).unwrap();
        assert_eq!(out, Bf16::ZERO);
    }

    proptest! {
        /// Pipeline output tracks the f64 reference within BF16-level error.
        #[test]
        fn dot_tracks_reference(
            pairs in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..128)
        ) {
            let a: Vec<Bf16> = pairs.iter().map(|&(x, _)| Bf16::from_f32(x)).collect();
            let w: Vec<Bf16> = pairs.iter().map(|&(_, y)| Bf16::from_f32(y)).collect();
            let got = f64::from(FpCimPipeline::default().dot(&a, &w).unwrap().to_f32());
            let want = FpCimPipeline::dot_reference(&a, &w);
            // Error bound: BF16 rounding of inputs is already done (we
            // compare against the BF16-rounded reference), so remaining error
            // comes from alignment + final rounding. Scale by the L1 norm of
            // the products (worst-case cancellation amplifies relative error).
            let scale: f64 = a.iter().zip(&w)
                .map(|(x, y)| (f64::from(x.to_f32()) * f64::from(y.to_f32())).abs())
                .sum::<f64>()
                .max(1e-3);
            prop_assert!(
                (got - want).abs() <= scale * 0.02,
                "got {got}, want {want}, scale {scale}"
            );
        }

        /// from_f32/to_f32 round trip never moves more than half a ULP of BF16.
        #[test]
        fn bf16_round_trip_error_bounded(x in -1e30f32..1e30) {
            let b = Bf16::from_f32(x);
            let back = b.to_f32();
            if x != 0.0 && x.is_finite() && back.is_finite() {
                prop_assert!(((back - x) / x).abs() <= 1.0 / 256.0, "{x} -> {back}");
            }
        }
    }
}
