//! Energy and area model for the CIM-MXU.
//!
//! Constants are calibrated to the paper's Table II CIM column
//! (**7.26 TOPS/W**, **1.31 TOPS/mm²** at INT8, TSMC 22 nm, ~1.05 GHz,
//! from the authors' manually drawn CIM core layout + RTL P&R of the MXU).
//! As with the digital model, only these aggregates feed the system-level
//! evaluation, so a calibrated event-energy model substitutes for the
//! layout flow (DESIGN.md §2).

use serde::{Deserialize, Serialize};

use cimtpu_units::{Area, Cycles, DataType, Frequency, GemmShape, Joules, Seconds, Watts};

use crate::geometry::CimMxuConfig;
use crate::timing::CimGemmTiming;

/// Per-event energy and per-core area constants for a CIM-MXU.
///
/// # Examples
///
/// ```
/// use cimtpu_cim::CimEnergyModel;
/// use cimtpu_units::DataType;
/// let m = CimEnergyModel::tsmc22_cim();
/// assert!(m.mac_energy(DataType::Int8).as_picojoules() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimEnergyModel {
    /// Dynamic energy of one INT8 MAC inside the bitcell array (local
    /// readout + AND + adder tree + shift-accumulate, amortized).
    mac_int8: Joules,
    /// Dynamic energy of one BF16 MAC (adds pre/post-processing).
    mac_bf16: Joules,
    /// Energy per weight byte written through the weight I/O port.
    weight_write_per_byte: Joules,
    /// Energy per activation/output byte moved through the grid edge.
    io_per_byte: Joules,
    /// Leakage power per CIM core.
    static_per_core: Watts,
    /// Layout area per CIM core.
    area_per_core: Area,
}

impl CimEnergyModel {
    /// Calibration reference clock for the Table II numbers.
    pub const REFERENCE_CLOCK_GHZ: f64 = 1.05;

    /// The TSMC 22 nm digital-CIM calibration (paper Table II).
    ///
    /// A 16×8 grid of 128×256 cores evaluates to 7.26 TOPS/W and
    /// 1.31 TOPS/mm² at full utilization with these constants.
    pub fn tsmc22_cim() -> Self {
        CimEnergyModel {
            mac_int8: Joules::from_picojoules(0.25),
            mac_bf16: Joules::from_picojoules(0.45),
            weight_write_per_byte: Joules::from_picojoules(0.8),
            io_per_byte: Joules::from_picojoules(0.4),
            static_per_core: Watts::from_milliwatts(3.43),
            area_per_core: Area::from_mm2(0.2052),
        }
    }

    /// Dynamic energy of one MAC at the given precision.
    pub fn mac_energy(&self, dtype: DataType) -> Joules {
        match dtype {
            DataType::Int8 => self.mac_int8,
            DataType::Bf16 => self.mac_bf16,
            DataType::Fp32 => self.mac_bf16 * 3.0,
        }
    }

    /// Energy per weight byte written into the bitcell array.
    pub fn weight_write_per_byte(&self) -> Joules {
        self.weight_write_per_byte
    }

    /// Energy per streamed I/O byte.
    pub fn io_per_byte(&self) -> Joules {
        self.io_per_byte
    }

    /// Static power of the full grid.
    pub fn static_power(&self, config: &CimMxuConfig) -> Watts {
        Watts::new(self.static_per_core.get() * config.core_count() as f64)
    }

    /// Area of the full grid.
    pub fn mxu_area(&self, config: &CimMxuConfig) -> Area {
        Area::new(self.area_per_core.as_mm2() * config.core_count() as f64)
    }

    /// Overrides the leakage per core (for ablations).
    #[must_use]
    pub fn with_static_per_core(mut self, p: Watts) -> Self {
        self.static_per_core = p;
        self
    }

    /// Full energy accounting of one GEMM given its timing.
    pub(crate) fn gemm_energy(
        &self,
        config: &CimMxuConfig,
        shape: GemmShape,
        dtype: DataType,
        timing: &CimGemmTiming,
    ) -> CimGemmEnergy {
        let mac = Joules::new(self.mac_energy(dtype).get() * shape.macs() as f64);
        // Weights are written exactly once per residency; the written bytes
        // equal the weight matrix itself (partial tiles write less, we charge
        // the unique weight bytes).
        let weight_bytes = shape.weight_bytes(dtype).get();
        let weight_write = Joules::new(self.weight_write_per_byte.get() * weight_bytes as f64);
        // Activations re-streamed per n-macro-tile, outputs written per
        // k-macro-tile (32-bit partial sums).
        let n_tiles = shape.n().div_ceil(config.n_extent());
        let k_tiles = shape.k().div_ceil(config.k_extent());
        let io_bytes = shape.activation_bytes(dtype).get() * n_tiles
            + shape.m() * shape.n() * 4 * k_tiles;
        let io = Joules::new(self.io_per_byte.get() * io_bytes as f64);
        CimGemmEnergy {
            mac,
            weight_write,
            io,
            static_power: self.static_power(config),
            busy_cycles: timing.total(),
        }
    }
}

/// Energy breakdown of one GEMM on a CIM-MXU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimGemmEnergy {
    mac: Joules,
    weight_write: Joules,
    io: Joules,
    static_power: Watts,
    busy_cycles: Cycles,
}

impl CimGemmEnergy {
    /// Dynamic in-array MAC energy.
    pub fn mac(&self) -> Joules {
        self.mac
    }

    /// Weight-write energy.
    pub fn weight_write(&self) -> Joules {
        self.weight_write
    }

    /// Streaming I/O energy.
    pub fn io(&self) -> Joules {
        self.io
    }

    /// Static (leakage) energy over the busy window at clock `clock`.
    pub fn static_energy_at(&self, clock: Frequency) -> Joules {
        self.static_power.for_duration(self.busy_cycles.at(clock))
    }

    /// Total energy at clock `clock`.
    pub fn total_at(&self, clock: Frequency) -> Joules {
        self.mac + self.weight_write + self.io + self.static_energy_at(clock)
    }

    /// Total energy at the calibration clock (1.05 GHz).
    pub fn total(&self) -> Joules {
        self.total_at(Frequency::from_ghz(CimEnergyModel::REFERENCE_CLOCK_GHZ))
    }

    /// Busy window used for static-energy accounting, in cycles.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Busy window at the calibration clock.
    pub fn busy_time(&self) -> Seconds {
        self.busy_cycles
            .at(Frequency::from_ghz(CimEnergyModel::REFERENCE_CLOCK_GHZ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CimMxu, CimMxuConfig};

    #[test]
    fn gemm_energy_far_below_digital_constants() {
        // Sanity: per-MAC dynamic energy is ~9x below the digital 2.18 pJ.
        let m = CimEnergyModel::tsmc22_cim();
        let ratio = 2.18 / m.mac_energy(DataType::Int8).as_picojoules();
        assert!(ratio > 8.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn fewer_cores_less_leakage() {
        let big = CimMxu::new(CimMxuConfig::with_grid(16, 16)).unwrap();
        let small = CimMxu::new(CimMxuConfig::with_grid(8, 8)).unwrap();
        assert!(
            (big.static_power().get() / small.static_power().get() - 4.0).abs() < 1e-9
        );
    }

    #[test]
    fn totals_are_additive() {
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        let e = mxu.gemm_energy(GemmShape::new(64, 2048, 2048).unwrap(), DataType::Int8);
        let clock = Frequency::from_ghz(1.05);
        let sum = e.mac() + e.weight_write() + e.io() + e.static_energy_at(clock);
        assert!((sum.get() - e.total_at(clock).get()).abs() < 1e-18);
    }

    #[test]
    fn gemv_energy_dominated_by_weight_writes() {
        // A decode GEMV writes the whole weight matrix once for very few MACs.
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        let e = mxu.gemm_energy(GemmShape::gemv(7168, 7168).unwrap(), DataType::Int8);
        assert!(e.weight_write() > e.mac());
    }
}
