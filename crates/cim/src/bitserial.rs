//! Functional bit-serial INT8 MAC engine.
//!
//! Digital SRAM CIM macros compute a dot product by applying the input
//! vector one *bit-plane* at a time: in each bit-cycle, every bitcell row
//! whose input bit is 1 contributes its stored weight to a per-column adder
//! tree; the per-bit partial sums are then combined by a shift-accumulator
//! (`psum += bit_psum << b`), with the MSB plane weighted negatively for
//! two's-complement inputs.
//!
//! This module implements that computation *exactly* (no timing), so tests
//! can prove the CIM datapath is numerically identical to a plain integer
//! dot product — the digital-CIM robustness argument from the paper's
//! Section II-B.
//!
//! # Examples
//!
//! ```
//! use cimtpu_cim::bitserial::BitSerialMacUnit;
//!
//! let unit = BitSerialMacUnit::new(4); // 4 input channels
//! let input = [1i8, -2, 3, -4];
//! let weights = [[10i8], [20], [30], [40]]; // one output column
//! let cols: Vec<Vec<i8>> = weights.iter().map(|r| r.to_vec()).collect();
//! let out = unit.matvec(&input, &cols)?;
//! assert_eq!(out, vec![1 * 10 - 2 * 20 + 3 * 30 - 4 * 40]);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

use cimtpu_units::{Error, Result};

/// A functional model of one bank's bit-serial MAC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSerialMacUnit {
    rows: usize,
}

impl BitSerialMacUnit {
    /// Creates a unit with `rows` input channels.
    pub fn new(rows: usize) -> Self {
        BitSerialMacUnit { rows }
    }

    /// Number of input channels.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Computes `input · weights` exactly as the bit-serial hardware does.
    ///
    /// `weights` is row-major: `weights[row][col]`. Returns one `i32`
    /// accumulator per output column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if `input.len()` exceeds the unit's
    /// row count, `weights` row count differs from `input.len()`, or the
    /// weight matrix is ragged.
    pub fn matvec(&self, input: &[i8], weights: &[Vec<i8>]) -> Result<Vec<i32>> {
        if input.len() > self.rows {
            return Err(Error::invalid_shape(format!(
                "input length {} exceeds {} rows",
                input.len(),
                self.rows
            )));
        }
        if weights.len() != input.len() {
            return Err(Error::invalid_shape(format!(
                "weight rows {} != input length {}",
                weights.len(),
                input.len()
            )));
        }
        let cols = weights.first().map_or(0, Vec::len);
        if weights.iter().any(|r| r.len() != cols) {
            return Err(Error::invalid_shape("weight matrix must be rectangular"));
        }

        let mut acc = vec![0i32; cols];
        // Bit-plane loop: LSB first, MSB carries negative weight (two's
        // complement: x = -b7*2^7 + Σ_{b<7} b_i*2^i).
        for bit in 0..8u32 {
            let sign: i32 = if bit == 7 { -1 } else { 1 };
            for (row, &x) in input.iter().enumerate() {
                if (x as u8 >> bit) & 1 == 1 {
                    // This row's wordline fires: add its weights into the
                    // per-column adder tree for this bit-plane.
                    for (col, acc_c) in acc.iter_mut().enumerate() {
                        *acc_c += sign * (i32::from(weights[row][col]) << bit);
                    }
                }
            }
        }
        Ok(acc)
    }

    /// Reference integer dot product for validation.
    pub fn matvec_reference(input: &[i8], weights: &[Vec<i8>]) -> Vec<i32> {
        let cols = weights.first().map_or(0, Vec::len);
        (0..cols)
            .map(|c| {
                input
                    .iter()
                    .zip(weights)
                    .map(|(&x, w_row)| i32::from(x) * i32::from(w_row[c]))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_reference_on_corner_values() {
        let unit = BitSerialMacUnit::new(4);
        let input = [i8::MIN, i8::MAX, -1, 0];
        let weights = vec![
            vec![i8::MIN, i8::MAX],
            vec![i8::MAX, i8::MIN],
            vec![-1, 1],
            vec![127, -128],
        ];
        assert_eq!(
            unit.matvec(&input, &weights).unwrap(),
            BitSerialMacUnit::matvec_reference(&input, &weights)
        );
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let unit = BitSerialMacUnit::new(2);
        assert!(unit.matvec(&[1, 2, 3], &[vec![1], vec![2], vec![3]]).is_err());
        assert!(unit.matvec(&[1, 2], &[vec![1]]).is_err());
        assert!(unit.matvec(&[1, 2], &[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn empty_columns_yield_empty_output() {
        let unit = BitSerialMacUnit::new(2);
        let out = unit.matvec(&[1, 2], &[vec![], vec![]]).unwrap();
        assert!(out.is_empty());
    }

    proptest! {
        /// The bit-serial decomposition is exact for all INT8 inputs.
        #[test]
        fn bit_serial_equals_reference(
            input in proptest::collection::vec(any::<i8>(), 1..128),
            cols in 1usize..16,
            seed in any::<u64>(),
        ) {
            let rows = input.len();
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s % 256) as i64 as i8
            };
            let weights: Vec<Vec<i8>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let unit = BitSerialMacUnit::new(128);
            let got = unit.matvec(&input, &weights).unwrap();
            let want = BitSerialMacUnit::matvec_reference(&input, &weights);
            prop_assert_eq!(got, want);
        }
    }
}
