//! Geometry of the CIM core and the CIM-MXU grid.

use serde::{Deserialize, Serialize};

use cimtpu_units::{Error, Result};

/// One digital SRAM CIM macro ("CIM core" in the paper, Fig. 4).
///
/// The default geometry follows Table I / Fig. 4: a 128×256 bitcell array
/// (128 input channels × 256 output channels) organized as 32 banks; each
/// bank serves 8 local output columns through a local readout-and-compute
/// circuit, an adder tree and a shift-accumulator. Inputs are broadcast
/// **bit-serially**: one input bit-plane is applied per cycle to one group
/// of [`CimCoreConfig::column_group`] output columns.
///
/// Sustained throughput at 8-bit precision is therefore
/// `rows × column_group / 8bits × 8bits = rows` MACs per cycle — 128 for the
/// default core, matching the paper's "128 MAC operations are performed each
/// cycle within each CIM core".
///
/// # Examples
///
/// ```
/// use cimtpu_cim::CimCoreConfig;
/// let core = CimCoreConfig::paper_default();
/// assert_eq!((core.rows(), core.cols()), (128, 256));
/// assert_eq!(core.macs_per_cycle(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CimCoreConfig {
    rows: u64,
    cols: u64,
    banks: u64,
    column_group: u64,
    /// Bytes per cycle the dedicated weight I/O port can write.
    weight_io_bytes_per_cycle: u64,
    /// Input bits applied serially for one 8-bit operand.
    bit_serial_bits: u32,
}

impl CimCoreConfig {
    /// The paper's 128×256 core.
    pub fn paper_default() -> Self {
        CimCoreConfig {
            rows: 128,
            cols: 256,
            banks: 32,
            column_group: 8,
            weight_io_bytes_per_cycle: 32,
            bit_serial_bits: 8,
        }
    }

    /// Number of input channels (bitcell rows).
    pub const fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of output channels (bitcell columns).
    pub const fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of banks.
    pub const fn banks(&self) -> u64 {
        self.banks
    }

    /// Output columns computed concurrently each bit-cycle.
    pub const fn column_group(&self) -> u64 {
        self.column_group
    }

    /// Weight-port write bandwidth in bytes per cycle.
    pub const fn weight_io_bytes_per_cycle(&self) -> u64 {
        self.weight_io_bytes_per_cycle
    }

    /// Serial input bits per 8-bit operand pass.
    pub const fn bit_serial_bits(&self) -> u32 {
        self.bit_serial_bits
    }

    /// Overrides the bit-serial width (for ablations; 4 halves the wave
    /// latency at the cost of two passes for 8-bit operands — the caller
    /// models that trade-off).
    #[must_use]
    pub fn with_bit_serial_bits(mut self, bits: u32) -> Self {
        self.bit_serial_bits = bits;
        self
    }

    /// Sustained 8-bit MACs per cycle.
    ///
    /// All `rows` operate in parallel on one `column_group` of output
    /// columns; a full operand takes `bit_serial_bits` serial cycles, so
    /// `rows × column_group` MACs complete every `bit_serial_bits` cycles.
    pub const fn macs_per_cycle(&self) -> u64 {
        self.rows * self.column_group / self.bit_serial_bits as u64
    }

    /// Cycles for this core to apply one input vector to `n_used` of its
    /// output columns at `bits` serial bits.
    pub fn vector_cycles(&self, n_used: u64, bits: u32) -> u64 {
        let n = n_used.min(self.cols).max(1);
        n.div_ceil(self.column_group) * bits as u64
    }

    /// Cycles to (re)write the full weight array through the weight port.
    pub fn weight_update_cycles(&self, bytes_per_elem: u64) -> u64 {
        (self.rows * self.cols * bytes_per_elem).div_ceil(self.weight_io_bytes_per_cycle)
    }

    /// Weight storage capacity in bytes at 1 byte per cell-group element.
    pub const fn weight_bytes(&self) -> u64 {
        self.rows * self.cols
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero dimensions, a column group
    /// that does not divide the column count, or unsupported bit widths.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 || self.banks == 0 || self.column_group == 0 {
            return Err(Error::invalid_config("CIM core dimensions must be non-zero"));
        }
        if !self.cols.is_multiple_of(self.column_group) {
            return Err(Error::invalid_config(format!(
                "column group {} must divide column count {}",
                self.column_group, self.cols
            )));
        }
        if self.weight_io_bytes_per_cycle == 0 {
            return Err(Error::invalid_config("weight I/O bandwidth must be non-zero"));
        }
        if !matches!(self.bit_serial_bits, 1 | 2 | 4 | 8 | 16) {
            return Err(Error::invalid_config(format!(
                "unsupported bit-serial width {}",
                self.bit_serial_bits
            )));
        }
        Ok(())
    }
}

impl Default for CimCoreConfig {
    fn default() -> Self {
        CimCoreConfig::paper_default()
    }
}

/// A CIM-MXU: a `grid_rows × grid_cols` systolic grid of CIM cores.
///
/// Grid **rows** extend the contraction dimension (K); partial sums are
/// accumulated down the rows. Grid **columns** extend the output-channel
/// dimension (N); the input vector propagates systolically across columns.
/// Table IV explores `8×8`, `16×8` and `16×16` grids.
///
/// # Examples
///
/// ```
/// use cimtpu_cim::CimMxuConfig;
/// let mxu = CimMxuConfig::paper_default();
/// assert_eq!(mxu.core_count(), 128);
/// assert_eq!(mxu.k_extent(), 2048);
/// assert_eq!(mxu.n_extent(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CimMxuConfig {
    grid_rows: u64,
    grid_cols: u64,
    core: CimCoreConfig,
    /// Whether weight updates overlap with computation (simultaneous MAC +
    /// weight write through the dedicated weight port).
    overlap_weight_update: bool,
    /// Cycles for the input vector to hop between adjacent grid columns.
    input_hop_cycles: u64,
    /// Pipeline latency of the inter-core partial-sum accumulation per grid row.
    psum_hop_cycles: u64,
    /// Bytes per cycle the MXU-level weight distribution bus can deliver
    /// from VMEM into the grid (all cores share this ingest path, exactly
    /// as a 128-wide systolic array ingests one 128-byte weight row per
    /// cycle). Per-core ports bound the *in-array* write rate; this bus
    /// bounds the *delivery* rate.
    weight_ingest_bytes_per_cycle: u64,
}

impl CimMxuConfig {
    /// The paper's default 16×8 grid of 128×256 cores (Table I).
    pub fn paper_default() -> Self {
        CimMxuConfig::with_grid(16, 8)
    }

    /// A grid of the default cores with the given dimensions.
    ///
    /// Grid dimensions are written `rows×cols` as in Table IV
    /// (`8×8`, `16×8`, `16×16`).
    pub fn with_grid(grid_rows: u64, grid_cols: u64) -> Self {
        let core = CimCoreConfig::paper_default();
        CimMxuConfig {
            grid_rows,
            grid_cols,
            core,
            overlap_weight_update: true,
            // One 128-element INT8 vector at 4 bytes (32 bits) per cycle.
            input_hop_cycles: core.rows() / 4,
            psum_hop_cycles: 4,
            // Same delivery width as the baseline systolic array's weight
            // path (one 128-byte row per cycle).
            weight_ingest_bytes_per_cycle: 128,
        }
    }

    /// Grid rows (contraction dimension).
    pub const fn grid_rows(&self) -> u64 {
        self.grid_rows
    }

    /// Grid columns (output-channel dimension).
    pub const fn grid_cols(&self) -> u64 {
        self.grid_cols
    }

    /// The per-core configuration.
    pub const fn core(&self) -> &CimCoreConfig {
        &self.core
    }

    /// Total CIM cores in the grid.
    pub const fn core_count(&self) -> u64 {
        self.grid_rows * self.grid_cols
    }

    /// Contraction extent covered by one weight residency (rows × core rows).
    pub const fn k_extent(&self) -> u64 {
        self.grid_rows * self.core.rows()
    }

    /// Output-channel extent covered by one weight residency.
    pub const fn n_extent(&self) -> u64 {
        self.grid_cols * self.core.cols()
    }

    /// Peak MAC throughput of the grid.
    pub const fn peak_macs_per_cycle(&self) -> u64 {
        self.core_count() * self.core.macs_per_cycle()
    }

    /// Whether weight updates overlap with compute.
    pub const fn overlap_weight_update(&self) -> bool {
        self.overlap_weight_update
    }

    /// Input-vector hop latency between grid columns.
    pub const fn input_hop_cycles(&self) -> u64 {
        self.input_hop_cycles
    }

    /// Partial-sum hop latency between grid rows.
    pub const fn psum_hop_cycles(&self) -> u64 {
        self.psum_hop_cycles
    }

    /// Weight-delivery bus width in bytes per cycle (shared by all cores).
    pub const fn weight_ingest_bytes_per_cycle(&self) -> u64 {
        self.weight_ingest_bytes_per_cycle
    }

    /// Overrides the weight-delivery bus width (for ablations).
    #[must_use]
    pub fn with_weight_ingest_bytes_per_cycle(mut self, bytes: u64) -> Self {
        self.weight_ingest_bytes_per_cycle = bytes;
        self
    }

    /// Cycles to deliver and write `bytes` of weights into the grid: the
    /// maximum of the delivery-bus time and the per-core port time
    /// (`per_core_bytes` through each core's own port in parallel).
    pub fn weight_write_cycles(&self, bytes: u64, per_core_bytes: u64) -> u64 {
        let bus = bytes.div_ceil(self.weight_ingest_bytes_per_cycle);
        let port = per_core_bytes.div_ceil(self.core.weight_io_bytes_per_cycle());
        bus.max(port)
    }

    /// Replaces the per-core configuration.
    #[must_use]
    pub fn with_core(mut self, core: CimCoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Enables or disables simultaneous MAC + weight update (for the
    /// ablation in DESIGN.md §7).
    #[must_use]
    pub fn with_overlap_weight_update(mut self, enabled: bool) -> Self {
        self.overlap_weight_update = enabled;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the grid is empty or the core
    /// configuration is invalid.
    pub fn validate(&self) -> Result<()> {
        if self.grid_rows == 0 || self.grid_cols == 0 {
            return Err(Error::invalid_config("CIM grid dimensions must be non-zero"));
        }
        if self.weight_ingest_bytes_per_cycle == 0 {
            return Err(Error::invalid_config(
                "weight ingest bandwidth must be non-zero",
            ));
        }
        self.core.validate()
    }
}

impl Default for CimMxuConfig {
    fn default() -> Self {
        CimMxuConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_throughput_is_128() {
        assert_eq!(CimCoreConfig::paper_default().macs_per_cycle(), 128);
    }

    #[test]
    fn paper_grid_matches_table1() {
        let mxu = CimMxuConfig::paper_default();
        assert_eq!((mxu.grid_rows(), mxu.grid_cols()), (16, 8));
        assert_eq!(mxu.peak_macs_per_cycle(), 16384);
    }

    #[test]
    fn table4_grids_scale_peak() {
        assert_eq!(CimMxuConfig::with_grid(8, 8).peak_macs_per_cycle(), 8192);
        assert_eq!(CimMxuConfig::with_grid(16, 16).peak_macs_per_cycle(), 32768);
    }

    #[test]
    fn vector_cycles_full_and_partial() {
        let core = CimCoreConfig::paper_default();
        // Full 256 columns at 8 bits: 32 groups * 8 = 256 cycles.
        assert_eq!(core.vector_cycles(256, 8), 256);
        // 160 columns: 20 groups * 8 = 160 cycles.
        assert_eq!(core.vector_cycles(160, 8), 160);
        // Clamped to the physical column count.
        assert_eq!(core.vector_cycles(10_000, 8), 256);
        // At 4 serial bits the wave halves.
        assert_eq!(core.vector_cycles(256, 4), 128);
    }

    #[test]
    fn weight_update_cycles() {
        let core = CimCoreConfig::paper_default();
        // 128*256 bytes at 32 B/cycle = 1024 cycles.
        assert_eq!(core.weight_update_cycles(1), 1024);
        assert_eq!(core.weight_update_cycles(2), 2048);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut core = CimCoreConfig::paper_default();
        core = core.with_bit_serial_bits(3);
        assert!(core.validate().is_err());
        assert!(CimMxuConfig::with_grid(0, 8).validate().is_err());
    }
}
