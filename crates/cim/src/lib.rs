//! Digital SRAM compute-in-memory (CIM) macro and CIM-MXU model.
//!
//! This crate models the paper's replacement for the TPU matrix unit:
//!
//! - [`CimCoreConfig`] — one digital CIM macro (by default 128×256 bitcells
//!   organized as 32 banks × 32 sub-arrays × 8 local columns, Fig. 4),
//!   computing with **bit-serial input broadcast** over weight-stationary
//!   SRAM rows and supporting **simultaneous MAC + weight update** through a
//!   dedicated weight I/O port (the [Mori, ISSCC'23]-style feature);
//! - [`CimMxuConfig`] — a 2-D systolic grid of CIM cores (16×8 by default):
//!   inputs propagate across grid columns, weights propagate down grid rows,
//!   partial sums accumulate along the contraction dimension;
//! - [`bitserial`] — a *functional* bit-serial INT8 MAC engine that computes
//!   real dot products the way the macro hardware does (bit-plane AND +
//!   adder tree + shift-accumulate) and is validated against an integer
//!   reference;
//! - [`fp`] — the BF16 pre/post-processing pipeline (exponent alignment,
//!   mantissa shift, wide accumulation, rounding) validated against an
//!   `f32` reference;
//! - [`CimMxu`] — analytical timing/energy for GEMM/GEMV, calibrated to the
//!   paper's Table II CIM column (7.26 TOPS/W, 1.31 TOPS/mm²).
//!
//! # Why CIM wins on GEMV
//!
//! On a weight-stationary systolic array, a matrix-vector product must still
//! traverse the full `R + C − 2` pipeline skew and pay an `R`-cycle weight
//! load per tile. In the CIM core the input vector is **broadcast** to all
//! output channels bit-serially — no traversal of preceding MAC units — and
//! weight updates overlap with computation. [`CimMxu::gemm_timing`] captures
//! exactly this asymmetry.
//!
//! # Examples
//!
//! ```
//! use cimtpu_cim::{CimMxu, CimMxuConfig};
//! use cimtpu_units::{DataType, GemmShape};
//!
//! let mxu = CimMxu::new(CimMxuConfig::paper_default())?; // 16x8 grid
//! assert_eq!(mxu.peak_macs_per_cycle(), 16384);
//!
//! let gemv = mxu.gemm_timing(GemmShape::gemv(2048, 2048)?, DataType::Int8);
//! let gemm = mxu.gemm_timing(GemmShape::new(8192, 2048, 2048)?, DataType::Int8);
//! // A weight GEMV is bound by weight delivery, not by MAC-array skew —
//! // its compute phase is a single bit-serial wave plus grid fill…
//! assert!(gemv.compute().get() < 1000);
//! // …while large GEMMs still reach near-peak utilization.
//! assert!(gemm.utilization() > 0.9);
//! # Ok::<(), cimtpu_units::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitserial;
mod energy;
mod floorplan;
pub mod fp;
mod geometry;
mod timing;

pub use energy::{CimEnergyModel, CimGemmEnergy};
pub use floorplan::{CimCoreFloorplan, MacEnergyBreakdown};
pub use geometry::{CimCoreConfig, CimMxuConfig};
pub use timing::CimGemmTiming;

use cimtpu_units::{Area, DataType, GemmShape, Result, Watts};

/// Analytical model of one CIM-MXU (a systolic grid of CIM cores).
///
/// See the [crate-level documentation](crate) for the hardware background.
#[derive(Debug, Clone, PartialEq)]
pub struct CimMxu {
    config: CimMxuConfig,
    energy: CimEnergyModel,
}

impl CimMxu {
    /// Creates an MXU model with the default (22 nm-calibrated) energy model.
    ///
    /// # Errors
    ///
    /// Returns an error if `config` is internally inconsistent.
    pub fn new(config: CimMxuConfig) -> Result<Self> {
        config.validate()?;
        Ok(CimMxu {
            config,
            energy: CimEnergyModel::tsmc22_cim(),
        })
    }

    /// Creates an MXU model with a custom energy model.
    ///
    /// # Errors
    ///
    /// Returns an error if `config` is internally inconsistent.
    pub fn with_energy_model(config: CimMxuConfig, energy: CimEnergyModel) -> Result<Self> {
        config.validate()?;
        Ok(CimMxu { config, energy })
    }

    /// The MXU configuration.
    pub fn config(&self) -> &CimMxuConfig {
        &self.config
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &CimEnergyModel {
        &self.energy
    }

    /// Peak MAC throughput (cores × per-core throughput).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.config.peak_macs_per_cycle()
    }

    /// Analytical cycle count for one GEMM, including (possibly overlapped)
    /// weight updates.
    pub fn gemm_timing(&self, shape: GemmShape, dtype: DataType) -> CimGemmTiming {
        timing::gemm_timing(&self.config, shape, dtype)
    }

    /// Energy spent executing one GEMM.
    pub fn gemm_energy(&self, shape: GemmShape, dtype: DataType) -> CimGemmEnergy {
        let timing = self.gemm_timing(shape, dtype);
        self.energy.gemm_energy(&self.config, shape, dtype, &timing)
    }

    /// Total silicon area of the MXU.
    pub fn area(&self) -> Area {
        self.energy.mxu_area(&self.config)
    }

    /// Leakage power of the whole MXU.
    pub fn static_power(&self) -> Watts {
        self.energy.static_power(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimtpu_units::Frequency;

    #[test]
    fn table2_cim_column_is_reproduced() {
        // Paper Table II: CIM-MXU, 16384 MACs/cycle,
        // 7.26 TOPS/W and 1.31 TOPS/mm^2 (INT8, 22 nm, ~1.05 GHz).
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        assert_eq!(mxu.peak_macs_per_cycle(), 16384);

        let clock = Frequency::from_ghz(1.05);
        let peak_tops = mxu.peak_macs_per_cycle() as f64 * 2.0 * clock.as_hz() / 1e12;
        let dyn_w = mxu.peak_macs_per_cycle() as f64
            * mxu.energy_model().mac_energy(DataType::Int8).get()
            * clock.as_hz();
        let power = dyn_w + mxu.static_power().get();
        let tops_per_w = peak_tops / power;
        assert!(
            (tops_per_w - 7.26).abs() / 7.26 < 0.03,
            "expected ~7.26 TOPS/W, got {tops_per_w:.3}"
        );
        let tops_per_mm2 = peak_tops / mxu.area().as_mm2();
        assert!(
            (tops_per_mm2 - 1.31).abs() / 1.31 < 0.03,
            "expected ~1.31 TOPS/mm^2, got {tops_per_mm2:.3}"
        );
    }

    #[test]
    fn cim_beats_systolic_ratios_from_table2() {
        // 9.43x energy efficiency and 2.02x area efficiency vs the digital
        // constants (cross-checked against cimtpu-systolic in integration
        // tests; here we verify against the published digital numbers).
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        let clock = Frequency::from_ghz(1.05);
        let peak_tops = mxu.peak_macs_per_cycle() as f64 * 2.0 * clock.as_hz() / 1e12;
        let dyn_w = mxu.peak_macs_per_cycle() as f64
            * mxu.energy_model().mac_energy(DataType::Int8).get()
            * clock.as_hz();
        let eff = peak_tops / (dyn_w + mxu.static_power().get());
        assert!((eff / 0.77 - 9.43).abs() / 9.43 < 0.05);
        let area_eff = peak_tops / mxu.area().as_mm2();
        assert!((area_eff / 0.648 - 2.02).abs() / 2.02 < 0.05);
    }

    #[test]
    fn same_peak_half_area_vs_digital() {
        // "Our CIM-MXU contains 128 CIM cores, delivering the same peak
        // performance as the baseline MXU with only 50% area."
        let mxu = CimMxu::new(CimMxuConfig::paper_default()).unwrap();
        let digital_area_mm2 = 16384.0 * 3241.0 * 1e-6; // from systolic calibration
        let ratio = mxu.area().as_mm2() / digital_area_mm2;
        assert!((0.45..0.55).contains(&ratio), "area ratio {ratio:.3}");
    }
}
