//! Closed-loop traffic: seeded determinism, concurrency bounds, and
//! think-time semantics of `ArrivalPattern::ClosedLoop`.

use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, Parallelism, PrefixTraffic, ServingEngine, ServingModel,
    ServingRun,
    TrafficSpec,
};

fn tiny() -> TransformerConfig {
    TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()
}

fn engine(policy: BatchPolicy) -> ServingEngine {
    ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        policy,
    )
    .unwrap()
}

fn closed_loop(requests: u64, clients: u64, think_ms: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        requests,
        arrival: ArrivalPattern::ClosedLoop { clients, think_ms },
        prompt: LenDist::Uniform { lo: 16, hi: 48 },
        steps: LenDist::Uniform { lo: 2, hi: 8 },
        prefix: PrefixTraffic::None,
        seed,
    }
}

fn run(policy: BatchPolicy, traffic: &TrafficSpec) -> ServingRun {
    engine(policy).run("closed-loop", traffic).unwrap()
}

#[test]
fn closed_loop_is_seeded_deterministic_for_every_policy() {
    for policy in [
        BatchPolicy::Static { batch: 2 },
        BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 1.0 },
        BatchPolicy::Continuous { max_batch: 4 },
    ] {
        let traffic = closed_loop(12, 3, 10.0, 42);
        let a = run(policy, &traffic);
        let b = run(policy, &traffic);
        assert_eq!(a.report, b.report, "{}", policy.name());
        assert_eq!(a.completions, b.completions, "{}", policy.name());
        assert_eq!(a.report.completed, 12);

        // A different seed samples different lengths, changing the run.
        let c = run(policy, &closed_loop(12, 3, 10.0, 43));
        assert_ne!(a.report, c.report, "{}", policy.name());
    }
}

#[test]
fn closed_loop_caps_concurrency_at_client_count() {
    let clients = 3;
    let a = run(BatchPolicy::Continuous { max_batch: 16 }, &closed_loop(15, clients, 0.0, 7));
    // At every arrival instant, at most `clients` requests are in flight.
    for c in &a.completions {
        let t = c.arrival;
        let in_flight = a
            .completions
            .iter()
            .filter(|o| o.arrival <= t && o.finish > t)
            .count() as u64;
        assert!(in_flight <= clients, "at t={t}: {in_flight} in flight");
    }
}

#[test]
fn think_time_spaces_a_clients_requests() {
    let think_ms = 25.0;
    let a = run(BatchPolicy::Continuous { max_batch: 4 }, &closed_loop(8, 2, think_ms, 9));
    // Requests alternate between the two clients in issue order; each
    // client's next arrival is its previous completion plus think time.
    // Reconstruct per-client chains from the serving completions: ids are
    // issue-ordered, so pair each id with the client that issued it by
    // replaying the stream coupling.
    let mut per_client_last_finish: Vec<Option<f64>> = vec![None; 2];
    let mut completions = a.completions.clone();
    completions.sort_by_key(|c| c.id);
    for c in &completions {
        // The issuing client is whichever client's (finish + think)
        // matches this arrival — or either idle client at t = 0.
        let arrival = c.arrival.get();
        let client = if arrival == 0.0 {
            per_client_last_finish.iter().position(Option::is_none).expect("an idle client")
        } else {
            per_client_last_finish
                .iter()
                .position(|f| {
                    f.is_some_and(|f| (arrival - (f + think_ms / 1000.0)).abs() < 1e-9)
                })
                .unwrap_or_else(|| panic!("arrival {arrival} matches no client chain"))
        };
        per_client_last_finish[client] = Some(c.finish.get());
    }
}

#[test]
fn more_clients_saturate_throughput() {
    // Closed-loop throughput grows with the client count until the
    // engine saturates (1 client leaves the chip idle during think time).
    let lo = run(BatchPolicy::Continuous { max_batch: 8 }, &closed_loop(10, 1, 20.0, 5));
    let hi = run(BatchPolicy::Continuous { max_batch: 8 }, &closed_loop(10, 8, 20.0, 5));
    assert!(
        hi.report.throughput_rps > lo.report.throughput_rps,
        "8 clients {:.2} rps should beat 1 client {:.2} rps",
        hi.report.throughput_rps,
        lo.report.throughput_rps
    );
}

#[test]
fn static_batching_flushes_partial_closed_loop_batches() {
    // 2 clients can never fill a static batch of 4: the engine must
    // flush partial batches instead of deadlocking.
    let a = run(BatchPolicy::Static { batch: 4 }, &closed_loop(6, 2, 1.0, 3));
    assert_eq!(a.report.completed, 6);
}
