//! Memory-subsystem behaviour: KV pressure semantics and the
//! chunked-prefill equivalence properties.

use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, Parallelism, PrefixTraffic,
    ServingEngine, ServingModel,
    ServingRun, TrafficSpec,
};
use cimtpu_units::Bytes;
use proptest::prelude::*;

fn tiny() -> TransformerConfig {
    TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()
}

fn run(policy: BatchPolicy, memory: MemoryConfig, traffic: &TrafficSpec) -> ServingRun {
    ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        policy,
    )
    .unwrap()
    .with_memory(memory)
    .run("kv-memory", traffic)
    .unwrap()
}

fn traffic(seed: u64) -> TrafficSpec {
    TrafficSpec {
        requests: 8,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 5_000.0 },
        prompt: LenDist::Uniform { lo: 17, hi: 64 },
        steps: LenDist::Uniform { lo: 3, hi: 12 },
        prefix: PrefixTraffic::None,
        seed,
    }
}

/// Traffic + budget crafted to force decode-time preemption: a burst
/// admits two 32-token prompts (2 blocks each) that fill the 4-block
/// budget exactly, so the first decode step's growth must evict the
/// younger resident.
fn pressure_traffic() -> TrafficSpec {
    TrafficSpec {
        requests: 8,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(8),
        prefix: PrefixTraffic::None,
        seed: 5,
    }
}

fn tight_four_blocks() -> MemoryConfig {
    MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(64))
        .with_block_tokens(16)
}

const POLICIES: [BatchPolicy; 3] = [
    BatchPolicy::Static { batch: 4 },
    BatchPolicy::Dynamic { max_batch: 4, max_wait_ms: 10.0 },
    BatchPolicy::Continuous { max_batch: 4 },
];

/// Chunked prefill must change *when* tokens are computed, never *which*
/// tokens: completions are token-for-token identical to the unchunked
/// run — same requests, same step counts — for every batching policy.
#[test]
fn chunked_prefill_token_for_token_across_policies() {
    for policy in POLICIES {
        let plain = run(policy, MemoryConfig::unlimited(), &traffic(11));
        for chunk in [1, 7, 16, 1 << 20] {
            let chunked = run(
                policy,
                MemoryConfig::unlimited().with_chunked_prefill(chunk),
                &traffic(11),
            );
            let tokens = |r: &ServingRun| -> Vec<(u64, u64)> {
                r.completions.iter().map(|c| (c.id, c.steps)).collect()
            };
            assert_eq!(
                tokens(&plain),
                tokens(&chunked),
                "{} with chunk {chunk}",
                policy.name()
            );
            assert_eq!(chunked.report.completed, plain.report.completed);
        }
    }
}

/// A chunk at least as long as every prompt is a single monolithic pass,
/// so the whole run — timing included — matches unchunked bit-exactly.
#[test]
fn oversized_chunk_is_bitwise_monolithic() {
    for policy in POLICIES {
        let plain = run(policy, MemoryConfig::unlimited(), &traffic(3));
        let chunked = run(
            policy,
            MemoryConfig::unlimited().with_chunked_prefill(1 << 20),
            &traffic(3),
        );
        assert_eq!(plain.completions, chunked.completions, "{}", policy.name());
        assert_eq!(plain.report, chunked.report);
    }
}

/// A tight budget must not lose or truncate requests under any policy:
/// everything completes with its full token count, only later.
#[test]
fn tight_budget_completes_all_requests() {
    // Tiny model: 1 KiB/token; 96 KiB = 6 blocks of 16 tokens. Uniform
    // prompts (17..=64 → 2-4 blocks each, +1 for decode growth) both
    // squeeze batch admission and trigger decode-time preemption.
    let tight = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(96))
        .with_block_tokens(16);
    for policy in POLICIES {
        let plain = run(policy, MemoryConfig::unlimited(), &traffic(5));
        let squeezed = run(policy, tight, &traffic(5));
        let tokens = |r: &ServingRun| -> Vec<(u64, u64)> {
            r.completions.iter().map(|c| (c.id, c.steps)).collect()
        };
        assert_eq!(tokens(&plain), tokens(&squeezed), "{}", policy.name());
        // (No makespan ordering assertion: a KV-shrunk *static* batch
        // launches without waiting for a full batch, which can finish
        // the tail sooner.)
        assert!(squeezed.report.kv_hwm_frac > 0.0, "{}", policy.name());
    }
}

/// Continuous batching under pressure reports the full event picture:
/// preemptions, queue-full time, and a saturated high-water mark.
#[test]
fn continuous_pressure_reports_memory_events() {
    let squeezed = run(
        BatchPolicy::Continuous { max_batch: 4 },
        tight_four_blocks(),
        &pressure_traffic(),
    );
    assert!(squeezed.report.preemptions >= 1, "report: {}", squeezed.report);
    assert!(squeezed.report.queue_full_s > 0.0, "report: {}", squeezed.report);
    assert!(squeezed.report.kv_hwm_frac > 0.8, "report: {}", squeezed.report);
    // Preempted requests pay recompute: mean latency strictly above the
    // unlimited run's.
    let plain = run(
        BatchPolicy::Continuous { max_batch: 4 },
        MemoryConfig::unlimited(),
        &pressure_traffic(),
    );
    assert!(squeezed.report.latency.mean_ms > plain.report.latency.mean_ms);
    assert_eq!(squeezed.report.completed, plain.report.completed);
}

/// A budget that cannot hold even one request is a configuration error,
/// not a hang.
#[test]
fn impossible_budget_errors() {
    let impossible = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(16)) // 1 block of 16 tokens
        .with_block_tokens(16);
    for policy in POLICIES {
        let engine = ServingEngine::new(
            TpuConfig::tpuv4i(),
            ServingModel::Llm(tiny()),
            Parallelism::Replicated { chips: 1 },
            policy,
        )
        .unwrap()
        .with_memory(impossible);
        let err = engine.run("impossible", &traffic(1)).unwrap_err();
        assert!(format!("{err}").contains("KV budget too small"), "{err}");
    }
}

/// A model with no prefill phase (DiT) under chunked prefill must enter
/// decode directly, even with a nonzero nominal prompt length — not spin
/// forever waiting for prompt chunks that never run.
#[test]
fn chunked_prefill_with_dit_completes() {
    use cimtpu_models::presets;
    let traffic = TrafficSpec {
        requests: 4,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(32), // nominal; DiT ignores prompts
        steps: LenDist::Fixed(3),
        prefix: PrefixTraffic::None,
        seed: 1,
    };
    let run = ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Dit { dit: presets::dit_b_2(), resolution: 256 },
        Parallelism::Replicated { chips: 1 },
        BatchPolicy::Continuous { max_batch: 4 },
    )
    .unwrap()
    .with_memory(MemoryConfig::unlimited().with_chunked_prefill(8))
    .run("dit-chunked", &traffic)
    .unwrap();
    assert_eq!(run.report.completed, 4);
}

/// With a second idle replica, a KV-shrunk batch's excluded request
/// launches immediately elsewhere — the queue-full clock must charge the
/// deferral actually experienced (none), not the donor batch's duration.
#[test]
fn queue_full_not_charged_when_another_chip_serves() {
    let traffic = TrafficSpec {
        requests: 4,
        arrival: ArrivalPattern::Burst,
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(8),
        prefix: PrefixTraffic::None,
        seed: 2,
    };
    // 6 blocks: a static batch of 4 (3 blocks worst-case each) shrinks
    // to 2 per chip.
    let tight = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(96))
        .with_block_tokens(16);
    let one = ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        BatchPolicy::Static { batch: 4 },
    )
    .unwrap()
    .with_memory(tight)
    .run("one-chip", &traffic)
    .unwrap();
    let two = ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 2 },
        BatchPolicy::Static { batch: 4 },
    )
    .unwrap()
    .with_memory(tight)
    .run("two-chips", &traffic)
    .unwrap();
    // One chip: the excluded pair really waits out the first batch.
    assert!(one.report.queue_full_s > 0.0, "report: {}", one.report);
    // Two chips: the excluded pair starts at once on the idle replica.
    assert_eq!(two.report.queue_full_s, 0.0, "report: {}", two.report);
    assert_eq!(two.report.completed, 4);
}

/// Chunked prefill on a tensor-parallel ring is rejected up front.
#[test]
fn chunked_tensor_parallel_rejected() {
    let engine = ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::TensorParallel { chips: 4 },
        BatchPolicy::Continuous { max_batch: 4 },
    )
    .unwrap()
    .with_memory(MemoryConfig::unlimited().with_chunked_prefill(16));
    assert!(engine.run("tp-chunk", &traffic(1)).is_err());
}

/// A tensor-parallel ring shards the KV footprint, so a budget that
/// chokes one chip admits more on a ring of four.
#[test]
fn tensor_parallel_shards_the_footprint() {
    // 4-way ring: 256 B/token/shard → the same 64 KiB budget holds 4x
    // the tokens per device, so the pressure traffic fits untouched.
    let single = run(
        BatchPolicy::Continuous { max_batch: 4 },
        tight_four_blocks(),
        &pressure_traffic(),
    );
    let ring = ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::TensorParallel { chips: 4 },
        BatchPolicy::Continuous { max_batch: 4 },
    )
    .unwrap()
    .with_memory(tight_four_blocks())
    .run("tp-kv", &pressure_traffic())
    .unwrap();
    assert!(single.report.preemptions >= 1);
    assert_eq!(ring.report.preemptions, 0, "sharded KV fits without eviction");
    assert_eq!(ring.report.completed, single.report.completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Token-for-token chunked-prefill equivalence holds across seeds and
    /// chunk sizes for every policy (the satellite property, randomized).
    #[test]
    fn chunked_equivalence_randomized(seed in 0u64..1000, chunk in 1u64..96) {
        for policy in POLICIES {
            let plain = run(policy, MemoryConfig::unlimited(), &traffic(seed));
            let chunked =
                run(policy, MemoryConfig::unlimited().with_chunked_prefill(chunk), &traffic(seed));
            let tokens = |r: &ServingRun| -> Vec<(u64, u64)> {
                r.completions.iter().map(|c| (c.id, c.steps)).collect()
            };
            prop_assert_eq!(tokens(&plain), tokens(&chunked));
        }
    }
}
