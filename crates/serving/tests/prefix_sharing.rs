//! Prefix-sharing correctness properties: sharing changes *when* work
//! happens — never *what* is generated — and with sharing disabled the
//! engine is bit-identical to the sharing-oblivious scheduler.
//!
//! "Token-for-token" in this simulator: a request's generated tokens are
//! a deterministic function of its identity and step count, so two runs
//! generate identical text iff they complete the same request ids with
//! the same `steps` from the same arrivals. The properties below pin
//! exactly that, plus completeness (nothing dropped or duplicated).

use cimtpu_core::TpuConfig;
use cimtpu_models::TransformerConfig;
use cimtpu_serving::{
    ArrivalPattern, BatchPolicy, LenDist, MemoryConfig, Parallelism, PrefixTraffic,
    ServingEngine, ServingModel, ServingRun, TrafficSpec,
};
use cimtpu_units::Bytes;
use proptest::prelude::*;

fn tiny() -> TransformerConfig {
    TransformerConfig::new("Tiny-2L", 2, 4, 256, 1024).unwrap()
}

fn run(policy: BatchPolicy, memory: MemoryConfig, traffic: &TrafficSpec) -> ServingRun {
    ServingEngine::new(
        TpuConfig::tpuv4i(),
        ServingModel::Llm(tiny()),
        Parallelism::Replicated { chips: 1 },
        policy,
    )
    .unwrap()
    .with_memory(memory)
    .run("prefix-sharing", traffic)
    .unwrap()
}

const POLICIES: [BatchPolicy; 3] = [
    BatchPolicy::Static { batch: 3 },
    BatchPolicy::Dynamic { max_batch: 3, max_wait_ms: 0.5 },
    BatchPolicy::Continuous { max_batch: 3 },
];

/// The generated text of a run: (id, arrival, steps) per completion, in
/// id order (completions are already id-sorted).
fn tokens(r: &ServingRun) -> Vec<(u64, f64, u64)> {
    r.completions.iter().map(|c| (c.id, c.arrival.get(), c.steps)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shared-prefix completions are token-for-token identical to the
    /// unshared path, for every batching policy, across seeds, head
    /// lengths (aligned and not), and group counts.
    #[test]
    fn sharing_is_token_for_token_identical_across_policies(
        seed in 0u64..500,
        head in 1u64..48,
        groups in 1u64..4,
    ) {
        let traffic = TrafficSpec {
            requests: 8,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 5_000.0 },
            prompt: LenDist::Uniform { lo: 17, hi: 64 },
            steps: LenDist::Uniform { lo: 3, hi: 12 },
            prefix: PrefixTraffic::SharedHead { tokens: head, groups },
            seed,
        };
        for policy in POLICIES {
            let shared = run(policy, MemoryConfig::unlimited().with_prefix_sharing(), &traffic);
            let cold = run(policy, MemoryConfig::unlimited(), &traffic);
            prop_assert_eq!(shared.completions.len() as u64, traffic.requests,
                "{}: dropped or duplicated requests", policy.name());
            prop_assert_eq!(tokens(&shared), tokens(&cold), "{}", policy.name());
            // No win is asserted here: with a tiny shared head, peeling a
            // hit member out of its padded prefill group can cost more
            // than the skipped tokens save (batching efficiency lost).
            // The targeted tests below pin the win on realistic
            // shared-heavy traffic; this property pins only correctness.
        }
    }

    /// With unique prompts (PrefixTraffic::None) the sharing-enabled
    /// engine can never hit, and its report is bit-identical to the
    /// sharing-disabled engine — turning the feature on is free until the
    /// traffic can actually share.
    #[test]
    fn sharing_on_unique_traffic_is_bit_identical(seed in 0u64..500) {
        let traffic = TrafficSpec {
            requests: 8,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 5_000.0 },
            prompt: LenDist::Uniform { lo: 17, hi: 64 },
            steps: LenDist::Uniform { lo: 3, hi: 12 },
            prefix: PrefixTraffic::None,
            seed,
        };
        for policy in POLICIES {
            let on = run(policy, MemoryConfig::unlimited().with_prefix_sharing(), &traffic);
            let off = run(policy, MemoryConfig::unlimited(), &traffic);
            prop_assert_eq!(on.prefix.hits, 0, "unique prompts can never match");
            prop_assert_eq!(&on.report, &off.report, "{}", policy.name());
            prop_assert_eq!(&on.completions, &off.completions);
        }
    }

    /// Under a tight paged budget the sharing engine still completes
    /// everything token-for-token (eviction of cached blocks and
    /// preemption of residents interleave), and never exceeds capacity.
    #[test]
    fn sharing_survives_kv_pressure(
        seed in 0u64..200,
        head in 1u64..40,
        blocks in 6u64..16,
    ) {
        let traffic = TrafficSpec {
            requests: 8,
            arrival: ArrivalPattern::OpenLoop { rate_rps: 5_000.0 },
            prompt: LenDist::Uniform { lo: 17, hi: 48 },
            steps: LenDist::Uniform { lo: 3, hi: 10 },
            prefix: PrefixTraffic::SharedHead { tokens: head, groups: 2 },
            seed,
        };
        // blocks x 16 tokens x 1 KiB/token (Tiny-2L).
        let memory = MemoryConfig::unlimited()
            .with_budget_bytes(Bytes::new(blocks * 16 * 1024))
            .with_block_tokens(16)
            .with_prefix_sharing();
        for policy in POLICIES {
            let shared = run(policy, memory, &traffic);
            let cold = run(
                policy,
                MemoryConfig {
                    prefix_sharing: false,
                    ..memory
                },
                &traffic,
            );
            prop_assert_eq!(tokens(&shared), tokens(&cold), "{}", policy.name());
            prop_assert!(shared.report.kv_hwm_frac <= 1.0 + 1e-12,
                "{}: occupancy over capacity", policy.name());
        }
    }
}

/// Chunked prefill composes with prefix sharing: a shared-head trace run
/// with both features produces the same tokens as with neither, and the
/// cached prefix still saves work on top of chunking.
#[test]
fn sharing_composes_with_chunked_prefill() {
    let traffic = TrafficSpec {
        requests: 8,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 5_000.0 },
        prompt: LenDist::Uniform { lo: 33, hi: 96 },
        steps: LenDist::Fixed(6),
        prefix: PrefixTraffic::SharedHead { tokens: 32, groups: 1 },
        seed: 11,
    };
    let policy = BatchPolicy::Continuous { max_batch: 4 };
    let both = run(
        policy,
        MemoryConfig::unlimited().with_chunked_prefill(16).with_prefix_sharing(),
        &traffic,
    );
    let chunked_only = run(policy, MemoryConfig::unlimited().with_chunked_prefill(16), &traffic);
    let plain = run(policy, MemoryConfig::unlimited(), &traffic);
    assert_eq!(tokens(&both), tokens(&plain));
    assert_eq!(tokens(&both), tokens(&chunked_only));
    assert!(both.prefix.hits > 0, "prefix stats: {}", both.prefix);
    assert!(
        both.report.total_energy_j < chunked_only.report.total_energy_j,
        "sharing must save prefill work on top of chunking: {} !< {}",
        both.report.total_energy_j,
        chunked_only.report.total_energy_j
    );
}

/// A *bounded* budget still retains the cache between requests: spaced
/// identical prompts re-hit the blocks their predecessors left behind
/// (the index's reference keeps them alive after release), and sharing
/// saves energy while staying within capacity.
#[test]
fn bounded_budget_retains_prefix_across_requests() {
    let traffic = TrafficSpec {
        requests: 8,
        arrival: ArrivalPattern::OpenLoop { rate_rps: 50.0 }, // spaced: ~1 resident
        prompt: LenDist::Fixed(32),
        steps: LenDist::Fixed(4),
        prefix: PrefixTraffic::SharedHead { tokens: 32, groups: 1 },
        seed: 5,
    };
    // 8 blocks of 16 tokens: one resident (3 blocks at its peak) plus the
    // 2 retained prompt blocks fit with room to spare.
    let memory = MemoryConfig::unlimited()
        .with_budget_bytes(Bytes::from_kib(128))
        .with_block_tokens(16);
    let policy = BatchPolicy::Continuous { max_batch: 4 };
    let cold = run(policy, memory, &traffic);
    let shared = run(policy, memory.with_prefix_sharing(), &traffic);
    assert_eq!(tokens(&shared), tokens(&cold));
    // Every request after the first re-hits the retained head.
    assert!(shared.prefix.hits >= 6, "prefix stats: {}", shared.prefix);
    assert!(shared.report.kv_hwm_frac <= 1.0);
    assert!(
        shared.report.total_energy_j < cold.report.total_energy_j,
        "{} !< {}",
        shared.report.total_energy_j,
        cold.report.total_energy_j
    );
}
